#!/usr/bin/env bash
# CI entry point: audit gate first (cheapest, catches policy regressions
# before a long build), then the rustdoc gate, then release build, then
# tests. Fail-fast.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> snbc-audit (static analysis gate)"
cargo run -q -p snbc-audit

echo "==> snbc-audit self-test (engine, fixtures, formats)"
cargo test -q -p snbc-audit

echo "==> snbc-audit SARIF artifact (deterministic bytes)"
mkdir -p target/audit
cargo run -q -p snbc-audit -- --format sarif --output target/audit/audit.sarif
cargo run -q -p snbc-audit -- --format json --output target/audit/audit.json
grep -q '"name":"snbc-audit"' target/audit/audit.sarif
grep -q '"schema":"snbc-audit/4"' target/audit/audit.json
grep -q '"rules":\[' target/audit/audit.json

echo "==> snbc-audit determinism (SARIF twice, byte-identical)"
cargo run -q -p snbc-audit -- --format sarif --output target/audit/audit-2.sarif
cmp target/audit/audit.sarif target/audit/audit-2.sarif
rm target/audit/audit-2.sarif

echo "==> snbc-audit graph artifact (call/arch DAG, canonical bytes)"
cargo run -q -p snbc-audit -- graph --format dot --output target/audit/graph.dot
cargo run -q -p snbc-audit -- graph --format json --output target/audit/graph.json
grep -q '^digraph' target/audit/graph.dot
grep -q '"schema":"snbc-audit-graph/1"' target/audit/graph.json

echo "==> snbc-audit effect-contract gate (absent baseline, tree must be clean)"
# With an empty/absent baseline every finding is a regression, so this leg
# proves the tree satisfies the interprocedural contracts (solver-effects,
# hot-alloc, par-callee) with zero tolerance, on top of the leaf rules.
cargo run -q -p snbc-audit -- --baseline target/audit/no-such-baseline.txt

echo "==> cargo doc (rustdoc gate, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo test --doc (workspace doc-tests)"
cargo test -q --workspace --doc

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace, default parallelism)"
cargo test -q --workspace

echo "==> cargo test -q (workspace, SNBC_THREADS=1 — guaranteed-serial leg)"
SNBC_THREADS=1 cargo test -q --workspace

echo "==> cargo test -q --features sanitize (solver + SOS + par + trace crates)"
cargo test -q -p snbc-linalg -p snbc-lp -p snbc-sdp --features snbc-linalg/sanitize
cargo test -q -p snbc-sos --features sanitize
cargo test -q -p snbc-par --features sanitize
cargo test -q -p snbc-trace --features sanitize

echo "==> snbc-bench check (run-report regression gate, strict then loose)"
SNBC_THREADS=1 cargo run -q --release -p snbc-bench --bin snbc-bench -- check
SNBC_THREADS=4 cargo run -q --release -p snbc-bench --bin snbc-bench -- check

echo "==> snbc-bench check --suite interval (strict leg + Perfetto trace artifact)"
# The interval suite exercises the parallel branch-and-bound wave engine on
# top of the quickstart synthesis; strict compare pins its deterministic box
# counts. The loose 4-thread leg keeps its trace as a CI artifact
# (target/ci-artifacts/) — the worked example in docs/PERFORMANCE.md.
mkdir -p target/ci-artifacts
SNBC_THREADS=1 cargo run -q --release -p snbc-bench --bin snbc-bench -- check --suite interval
SNBC_THREADS=4 cargo run -q --release -p snbc-bench --bin snbc-bench -- check --suite interval \
  --trace target/ci-artifacts/interval-trace.json
grep -q '"schema":"snbc-trace/1"' target/ci-artifacts/interval-trace.json

echo "==> snbc-bench check --suite portfolio (racing + cache regression gate)"
# The portfolio suite runs a two-job batch twice through one scratch cache:
# the strict 1-thread leg pins the deterministic winner indices and the
# cold-hit/cold-miss counters; the 4-thread leg proves the racing layer is
# thread-count-invariant end to end.
SNBC_THREADS=1 cargo run -q --release -p snbc-bench --bin snbc-bench -- check --suite portfolio
SNBC_THREADS=4 cargo run -q --release -p snbc-bench --bin snbc-bench -- check --suite portfolio

echo "==> snbc batch smoke (cold race streams NDJSON, warm cache must serve every job)"
batch_tmp="$(mktemp -d)"
target/release/snbc batch examples/batch_jobs.json \
  --cache-dir "$batch_tmp/cache" --report target/ci-artifacts/batch-report.json \
  --progress - --metrics-out target/ci-artifacts/metrics.prom \
  > target/ci-artifacts/progress.ndjson
# stdout hygiene: with `--progress -` every stdout line must be an NDJSON
# event (human progress goes to stderr — docs/OBSERVABILITY.md).
awk '!/^\{"seq":/ { bad = 1 } END { exit bad }' target/ci-artifacts/progress.ndjson
grep -q '"schema":"snbc-progress/1"' target/ci-artifacts/progress.ndjson
grep -q '^snbc_' target/ci-artifacts/metrics.prom
target/release/snbc batch examples/batch_jobs.json \
  --cache-dir "$batch_tmp/cache" --report "$batch_tmp/warm.json" --require-all-hits > /dev/null
cmp target/ci-artifacts/batch-report.json "$batch_tmp/warm.json"
grep -q '"schema": "snbc-batch-report/1"' target/ci-artifacts/batch-report.json
rm -rf "$batch_tmp"

echo "==> observability determinism (canonical stream/snapshot vs threads and cache temperature)"
obs_tmp="$(mktemp -d)"
SNBC_THREADS=1 target/release/snbc batch examples/batch_jobs.json \
  --cache-dir "$obs_tmp/cache-a" --progress "$obs_tmp/p1.ndjson" --canonical \
  --metrics-json "$obs_tmp/m1.json" > /dev/null
SNBC_THREADS=4 target/release/snbc batch examples/batch_jobs.json \
  --cache-dir "$obs_tmp/cache-b" --progress "$obs_tmp/p4.ndjson" --canonical \
  --metrics-json "$obs_tmp/m4.json" > /dev/null
SNBC_THREADS=4 target/release/snbc batch examples/batch_jobs.json \
  --cache-dir "$obs_tmp/cache-a" --require-all-hits \
  --progress "$obs_tmp/pw.ndjson" --canonical --metrics-json "$obs_tmp/mw.json" > /dev/null
cmp "$obs_tmp/p1.ndjson" "$obs_tmp/p4.ndjson"
cmp "$obs_tmp/p1.ndjson" "$obs_tmp/pw.ndjson"
cmp "$obs_tmp/m1.json" "$obs_tmp/m4.json"
cmp "$obs_tmp/m1.json" "$obs_tmp/mw.json"
grep -q '"schema":"snbc-progress/1"' "$obs_tmp/p1.ndjson"
grep -q '"schema": "snbc-metrics/1"' "$obs_tmp/m1.json"
rm -rf "$obs_tmp"

echo "==> snbc synth --trace smoke (Perfetto export)"
trace_tmp="$(mktemp -d)"
target/release/snbc example > "$trace_tmp/plant.sys"
target/release/snbc synth "$trace_tmp/plant.sys" --trace "$trace_tmp/trace.json" > /dev/null
grep -q '"schema":"snbc-trace/1"' "$trace_tmp/trace.json"
rm -rf "$trace_tmp"

echo "==> docs cross-link check (tuning guide must stay discoverable)"
grep -q 'docs/PERFORMANCE.md' README.md

echo "CI OK"
