//! Umbrella package hosting workspace-level examples and integration tests.
pub use snbc;
