//! Multi-input systems (§3's "multiple-output cases can be handled in a
//! similar manner"): a planar system with two NN-controlled channels.
//!
//! Each control channel gets its own polynomial inclusion `uⱼ = hⱼ(x) + wⱼ`;
//! the flow condition is verified robustly over the product of the error
//! bands with `snbc::verify_multi`.
//!
//! Run: `cargo run --release --example multi_input`

use snbc::{
    approximate_mlp, verify_multi, ApproxOptions, Learner, LearnerConfig, TrainingSets,
    VerifierConfig,
};
use snbc_dynamics::{Ccds, SemiAlgebraicSet};
use snbc_nn::{train_controller, ControllerTraining, MultiplierNet, QuadraticNet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Coupled planar system with two inputs:
    //   ẋ₀ = x₁ + u₁,  ẋ₁ = −0.5·x₀ + 0.2·x₀·x₁ + u₂  (u₁ = x2, u₂ = x3).
    let system = Ccds::new_multi(
        "planar-2u",
        vec![
            "x1 + x2".parse()?,
            "-0.5*x0 + 0.2*x0*x1 + x3".parse()?,
        ],
        2,
        SemiAlgebraicSet::box_set(&[(-0.3, 0.3), (-0.3, 0.3)]),
        SemiAlgebraicSet::box_set(&[(-2.0, 2.0), (-2.0, 2.0)]),
        SemiAlgebraicSet::box_set(&[(1.5, 2.0), (1.5, 2.0)]),
    );
    println!("System: {} with {} control channels", system.name(), system.num_inputs());

    // One tanh controller per channel (the DDPG substitute, per channel).
    let domain = system.domain().bounding_box();
    let k1 = train_controller(domain, |x| -1.2 * x[0], &ControllerTraining::default());
    let k2 = train_controller(domain, |x| -1.2 * x[1], &ControllerTraining::default());

    // Per-channel polynomial inclusions (§3).
    let opts = ApproxOptions::default();
    let inc1 = approximate_mlp(&k1, domain, &opts)?;
    let inc2 = approximate_mlp(&k2, domain, &opts)?;
    println!(
        "channel 1: |k₁ − h₁| ≤ {:.4};  channel 2: |k₂ − h₂| ≤ {:.4}",
        inc1.sigma_star, inc2.sigma_star
    );

    // Learn a barrier candidate on the robust closed loop (w₁, w₂ at the
    // worst corners are bracketed by training on the nominal loop here; the
    // verifier carries the full band).
    let closed = system.close_loop_multi(&[inc1.h.clone(), inc2.h.clone()]);
    let mut learner = Learner::new(
        QuadraticNet::new(2, &[10], 3),
        MultiplierNet::linear(2, &[5], 4),
        LearnerConfig::default(),
    );
    let sets = TrainingSets::sample(&system, 300, 5);
    learner.train(&closed, 0.0, &sets);
    let b = learner.barrier_polynomial().prune(1e-9);
    println!("candidate B(x) = {b}");

    // Robust multi-channel verification.
    let inclusions = [inc1, inc2];
    let outcome = verify_multi(&system, &inclusions, &b, &VerifierConfig::default());
    println!(
        "init: {} (margin {:.4}) | unsafe: {} (margin {:.4}) | flow: {} (margin {:.4})",
        outcome.init.feasible,
        outcome.init.margin,
        outcome.unsafe_.feasible,
        outcome.unsafe_.margin,
        outcome.flow.feasible,
        outcome.flow.margin
    );
    if outcome.is_certified() {
        println!("VERIFIED: B is a barrier certificate for the two-input closed loop.");
    } else {
        println!(
            "not certified (failed: {:?}) — in the full pipeline this feeds the CEGIS loop",
            outcome.failed_conditions()
        );
    }
    Ok(())
}
