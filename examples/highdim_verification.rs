//! High-dimensional verification: the 7-D linear cascade C12.
//!
//! Demonstrates the paper's scalability claim: the three split LMI
//! feasibility problems stay tractable as `n_x` grows, while an SMT-style
//! δ-complete check of the same conditions grinds through exponentially many
//! boxes.
//!
//! Run: `cargo run --release --example highdim_verification`

use std::time::{Duration, Instant};

use snbc::Snbc;
use snbc_bench::{pretrain_controller, snbc_config_for};
use snbc_dynamics::benchmarks;
use snbc_interval::{BranchAndBound, Interval};
use snbc_poly::lie_derivative;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = benchmarks::benchmark(12);
    println!(
        "C12: {} (n_x = {}, d_f = {})\n",
        bench.citation,
        bench.system.nvars(),
        bench.d_f
    );
    let controller = pretrain_controller(&bench);

    // The Table 1 configuration: capped Halton mesh, degree-1 abstraction,
    // interval-certified error bound (see snbc_bench::snbc_config_for).
    let cfg = snbc_config_for(&bench, Duration::from_secs(600));
    let t = Instant::now();
    let result = Snbc::new(cfg).synthesize(&bench, &controller)?;
    println!("SNBC certified C12 in {:.2} s ({} iterations)", t.elapsed().as_secs_f64(), result.iterations);
    println!("  T_v (three LMI problems) = {:.3} s", result.t_verify.as_secs_f64());
    println!("  B(x) has {} terms, degree {}", result.barrier.num_terms(), result.barrier.degree());

    // Contrast: the SMT-style check of just the flow condition.
    let field = bench.system.close_loop_with_error(&result.inclusion.h);
    let lie = lie_derivative(&result.barrier, &field);
    let expr = &lie - &(&result.lambda * &result.barrier);
    let mut dom: Vec<Interval> = bench
        .system
        .domain()
        .bounding_box()
        .iter()
        .map(|&(lo, hi)| Interval::new(lo, hi))
        .collect();
    dom.push(Interval::new(
        -result.inclusion.sigma_star,
        result.inclusion.sigma_star,
    ));
    let budget = 400_000;
    let bb = BranchAndBound {
        delta: 1e-2,
        max_boxes: budget,
        ..Default::default()
    };
    let t = Instant::now();
    let rep = bb.check_at_least(&expr, &dom, bench.system.domain().polys(), 0.0);
    println!(
        "\nSMT-style check of the flow condition alone: {:?} after {} boxes in {:.2} s",
        match rep.verdict {
            snbc_interval::Verdict::Holds => "proved",
            snbc_interval::Verdict::Violated { .. } => "violated?!",
            snbc_interval::Verdict::Unknown { .. } => "GAVE UP (box budget)",
        },
        rep.boxes_processed,
        t.elapsed().as_secs_f64()
    );
    println!(
        "This is the Table 1 story: at n_x = 7 the SMT route needs ~{budget}+ boxes, \
         the LMI route three small SDPs."
    );
    Ok(())
}
