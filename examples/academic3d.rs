//! Example 1 of the paper: the academic 3D model (eq. (18)), reproducing the
//! shape of the synthesized certificate (19) and the safety claim of Fig. 3.
//!
//! Run: `cargo run --release --example academic3d`

use snbc::{recheck_with_intervals, Snbc, SnbcConfig};
use snbc_dynamics::{benchmarks, simulate};
use snbc_interval::BranchAndBound;
use snbc_nn::{train_controller, ControllerTraining};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = benchmarks::academic_3d();
    println!("Academic 3D model (eq. 18): ẋ = z + 8y, ẏ = −y + z, ż = −z − x² + u");
    println!("Θ = [−0.4, 0.4]³, Ψ = [−2.2, 2.2]³, Ξ = [2, 2.2]³\n");

    // DDPG substitute: regress the controller onto a stabilizing law.
    let controller = train_controller(
        bench.system.domain().bounding_box(),
        bench.target_law,
        &ControllerTraining::default(),
    );

    let result = Snbc::new(SnbcConfig::default()).synthesize(&bench, &controller)?;
    println!("Synthesized after {} iteration(s) — the paper reports 2:", result.iterations);
    println!("  B(x) = {}", result.barrier);
    println!("  (cf. the paper's eq. (19): a degree-2 polynomial in x, y, z)\n");
    assert_eq!(result.barrier.degree(), 2, "Table 1 reports d_B = 2");

    // Fig. 3(b)'s claim: trajectories from Θ never cross into Ξ, and B keeps
    // its sign along them.
    let mut checked = 0;
    for i in 0..8 {
        let x0 = [
            if i & 1 == 0 { -0.4 } else { 0.4 },
            if i & 2 == 0 { -0.4 } else { 0.4 },
            if i & 4 == 0 { -0.4 } else { 0.4 },
        ];
        let traj = simulate(&bench.system, |x| controller.forward(x), &x0, 0.01, 2000);
        assert!(!traj.enters(bench.system.unsafe_set()), "trajectory reached Ξ");
        for x in traj.states.iter().step_by(50) {
            if bench.system.domain().contains(x) {
                assert!(
                    result.barrier.eval(x) >= -1e-6,
                    "B went negative on a reachable state {x:?}"
                );
                checked += 1;
            }
        }
    }
    println!("Checked B ≥ 0 on {checked} reachable states from 8 corner trajectories.");

    // Independent soundness path: δ-complete interval re-check of all three
    // barrier conditions.
    let ok = recheck_with_intervals(
        &result.barrier,
        &result.lambda,
        &bench.system,
        &result.inclusion,
        &BranchAndBound::default(),
    );
    println!(
        "Interval (dReal-substitute) re-check of the certificate: {}",
        if ok { "CONFIRMED" } else { "NOT confirmed" }
    );
    Ok(())
}
