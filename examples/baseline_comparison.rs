//! One row of Table 1 in miniature: all four tools on benchmark C3.
//!
//! Run: `cargo run --release --example baseline_comparison`

use std::time::Duration;

use snbc_bench::{pretrain_controller, run_tool, Tool};
use snbc_dynamics::benchmarks;

fn main() {
    let bench = benchmarks::benchmark(3);
    println!("Benchmark {} (n_x = {}, d_f = {})\n", bench.name, bench.system.nvars(), bench.d_f);
    let controller = pretrain_controller(&bench);

    println!("| tool | result | d_B | iters | T_l | T_v | T_e |");
    println!("|---|---|---|---|---|---|---|");
    for tool in Tool::all() {
        let r = run_tool(tool, &bench, &controller, Duration::from_secs(600));
        println!(
            "| {} | {} | {} | {} | {:.3} | {:.3} | {:.3} |",
            tool.name(),
            if r.success { "ok".to_string() } else { r.failure.clone().unwrap_or_default() },
            r.barrier_degree.map_or("-".into(), |d| d.to_string()),
            r.iterations,
            r.t_learn.as_secs_f64(),
            r.t_verify.as_secs_f64(),
            r.t_total.as_secs_f64()
        );
    }
    println!("\nExpected shape (cf. Table 1 row C3): every tool succeeds on a small 2-D");
    println!("system — including the SMT-based ones, cheaply. The separation appears as");
    println!("the dimension grows (see examples/highdim_verification.rs): SNBC's three");
    println!("convex LMI tests stay cheap while δ-complete SMT checks blow up.");
}
