//! Quickstart: synthesize a neural barrier certificate for a 2-D benchmark.
//!
//! Run: `cargo run --release --example quickstart [-- --report <json-file>]`
//!
//! With `--report`, the run's full telemetry document (schema
//! `snbc-run-report/1`, see `docs/TELEMETRY.md`) is written to the given
//! path; the per-round table is printed either way.

use snbc::{Snbc, SnbcConfig};
use snbc_dynamics::benchmarks;
use snbc_nn::{train_controller, ControllerTraining};
use snbc_telemetry::Telemetry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut report_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--report" => report_path = Some(args.next().ok_or("--report needs a path")?),
            other => return Err(format!("unknown argument {other}").into()),
        }
    }

    // 1. Pick a benchmark system C = ⟨f, Θ, Ψ⟩ with unsafe set Ξ.
    let bench = benchmarks::benchmark(3);
    println!(
        "System {}: n_x = {}, d_f = {}",
        bench.name,
        bench.system.nvars(),
        bench.d_f
    );

    // 2. Pre-train the NN controller (the paper uses DDPG; we regress onto a
    //    stabilizing law — the pipeline only sees the fixed network).
    let controller = train_controller(
        bench.system.domain().bounding_box(),
        bench.target_law,
        &ControllerTraining::default(),
    );
    println!(
        "Controller: tanh MLP {:?}, Lipschitz bound {:.3}",
        controller.layer_sizes(),
        controller.lipschitz_bound()
    );

    // 3. Run SNBC (Algorithm 1) with a recording telemetry sink:
    //    abstraction → learn → LMI-verify → refine, every phase timed.
    let telemetry = Telemetry::recording();
    let result = Snbc::new(SnbcConfig::default())
        .with_telemetry(telemetry.clone())
        .synthesize(&bench, &controller)?;

    // 4. The telemetry report: per-round table on stdout, JSON on request.
    if let Some(report) = telemetry.report() {
        println!("\n{}", snbc_telemetry::render_round_table(&report));
        if let Some(path) = &report_path {
            std::fs::write(path, report.to_json_string())?;
            println!("run report written to {path}");
        }
    }

    println!("\nVerified barrier certificate (after {} iterations):", result.iterations);
    println!("  B(x) = {}", result.barrier);
    println!("  λ(x) = {}", result.lambda);
    println!(
        "  controller abstraction: h(x) with |k(x) − h(x)| ≤ σ* = {:.4}",
        result.inclusion.sigma_star
    );
    println!(
        "  LMI margins: init {:.4}, unsafe {:.4}, flow {:.4}",
        result.verification.init.margin,
        result.verification.unsafe_.margin,
        result.verification.flow.margin
    );
    println!(
        "  timings: T_l {:.3}s, T_c {:.3}s, T_v {:.3}s, T_e {:.3}s",
        result.t_learn.as_secs_f64(),
        result.t_cex.as_secs_f64(),
        result.t_verify.as_secs_f64(),
        result.t_total.as_secs_f64()
    );
    Ok(())
}
