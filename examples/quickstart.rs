//! Quickstart: synthesize a neural barrier certificate for a 2-D benchmark.
//!
//! Run: `cargo run --release --example quickstart`

use snbc::{Snbc, SnbcConfig};
use snbc_dynamics::benchmarks;
use snbc_nn::{train_controller, ControllerTraining};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a benchmark system C = ⟨f, Θ, Ψ⟩ with unsafe set Ξ.
    let bench = benchmarks::benchmark(3);
    println!(
        "System {}: n_x = {}, d_f = {}",
        bench.name,
        bench.system.nvars(),
        bench.d_f
    );

    // 2. Pre-train the NN controller (the paper uses DDPG; we regress onto a
    //    stabilizing law — the pipeline only sees the fixed network).
    let controller = train_controller(
        bench.system.domain().bounding_box(),
        bench.target_law,
        &ControllerTraining::default(),
    );
    println!(
        "Controller: tanh MLP {:?}, Lipschitz bound {:.3}",
        controller.layer_sizes(),
        controller.lipschitz_bound()
    );

    // 3. Run SNBC (Algorithm 1): abstraction → learn → LMI-verify → refine.
    let result = Snbc::new(SnbcConfig::default()).synthesize(&bench, &controller)?;

    println!("\nVerified barrier certificate (after {} iterations):", result.iterations);
    println!("  B(x) = {}", result.barrier);
    println!("  λ(x) = {}", result.lambda);
    println!(
        "  controller abstraction: h(x) with |k(x) − h(x)| ≤ σ* = {:.4}",
        result.inclusion.sigma_star
    );
    println!(
        "  LMI margins: init {:.4}, unsafe {:.4}, flow {:.4}",
        result.verification.init.margin,
        result.verification.unsafe_.margin,
        result.verification.flow.margin
    );
    println!(
        "  timings: T_l {:.3}s, T_c {:.3}s, T_v {:.3}s, T_e {:.3}s",
        result.t_learn.as_secs_f64(),
        result.t_cex.as_secs_f64(),
        result.t_verify.as_secs_f64(),
        result.t_total.as_secs_f64()
    );
    Ok(())
}
