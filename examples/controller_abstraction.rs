//! §3 in isolation: polynomial inclusion of an NN controller.
//!
//! Trains a small tanh controller, abstracts it as `h(x) + w` with
//! `w ∈ [−σ*, σ*]` at several polynomial degrees and mesh spacings, and
//! validates the Theorem 2 bound against dense probing.
//!
//! Run: `cargo run --release --example controller_abstraction`

use snbc::{approximate_controller, ApproxOptions};
use snbc_dynamics::sample_box_halton;
use snbc_nn::{train_controller, ControllerTraining};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let domain = [(-2.0, 2.0), (-2.0, 2.0)];
    let controller = train_controller(&domain, |x| -x[0] - 0.5 * x[1] * x[1], &ControllerTraining::default());
    let lipschitz = controller.lipschitz_bound();
    println!("Controller: tanh MLP {:?}, Lipschitz bound {lipschitz:.3}\n", controller.layer_sizes());

    println!("| degree d | spacing s | v = C(n+d,n) | sigma_tilde | sigma* | probed sup |");
    println!("|---|---|---|---|---|---|");
    for degree in [1u32, 2, 3, 4] {
        for spacing in [0.2, 0.05] {
            let opts = ApproxOptions {
                degree,
                mesh_spacing: spacing,
                max_mesh_points: 200_000,
                ..Default::default()
            };
            let inc = approximate_controller(&|x| controller.forward(x), lipschitz, &domain, &opts)?;
            let mut sup: f64 = 0.0;
            for p in sample_box_halton(&domain, 20_000) {
                sup = sup.max((controller.forward(&p) - inc.h.eval(&p)).abs());
            }
            println!(
                "| {degree} | {spacing} | {} | {:.5} | {:.5} | {:.5} |",
                snbc_poly::basis_size(2, degree),
                inc.sigma_tilde,
                inc.sigma_star,
                sup
            );
            // Soundness of the inclusion: probed error within σ*.
            assert!(sup <= inc.sigma_star + 1e-9, "Theorem 2 bound violated");
        }
    }
    println!("\nEvery probed error is within the verified bound sigma* (Theorem 2).");
    println!("Higher degree shrinks sigma_tilde; finer mesh shrinks the Lipschitz gap.");
    Ok(())
}
