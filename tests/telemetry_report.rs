//! Integration test for the telemetry layer: a real (quickstart-sized) CEGIS
//! run must produce a populated `snbc-run-report/1` document whose span tree
//! matches the schema documented in `docs/TELEMETRY.md`, and the document
//! must survive a JSON round-trip byte-identically.

use snbc::{Snbc, SnbcConfig};
use snbc_dynamics::benchmarks;
use snbc_nn::{train_controller, ControllerTraining};
use snbc_telemetry::{Report, Telemetry, SCHEMA};

#[test]
fn cegis_run_produces_populated_report() {
    let bench = benchmarks::benchmark(3);
    let controller = train_controller(
        bench.system.domain().bounding_box(),
        bench.target_law,
        &ControllerTraining {
            epochs: 150,
            ..Default::default()
        },
    );
    let mut cfg = SnbcConfig::default();
    cfg.max_iterations = 3;
    cfg.learner.epochs = 60;
    let telemetry = Telemetry::recording();
    // Whether this small budget certifies or not is irrelevant here: the
    // report must be populated either way (a failing run is exactly when the
    // telemetry matters).
    let _ = Snbc::new(cfg)
        .with_telemetry(telemetry.clone())
        .synthesize(&bench, &controller);
    let report = telemetry.report().expect("recording sink yields a report");

    // Top level: one "cegis" span with the iteration counter and the
    // certified flag recorded on it.
    let cegis = report.root.child("cegis").expect("cegis span");
    assert!(cegis.counter("iterations").unwrap_or(0) >= 1);
    assert!(cegis.gauge("certified").is_some());
    assert_eq!(cegis.label("benchmark"), Some("C3"));

    // §3 abstraction: σ* chain and mesh size.
    let approx = cegis.child("approx").expect("approx span");
    let sigma_star = approx.gauge("sigma_star").expect("sigma_star gauge");
    let sigma_tilde = approx.gauge("sigma_tilde").expect("sigma_tilde gauge");
    assert!(sigma_star >= sigma_tilde, "σ* = σ̃ + r_cov·L ≥ σ̃");
    assert!(approx.counter("mesh_points").unwrap_or(0) > 0);
    let lp = approx.child("lp").expect("Chebyshev LP span");
    assert!(lp.counter("iterations").unwrap_or(0) > 0);

    // At least one CEGIS round with learner and verifier phases populated.
    let rounds = report.rounds();
    assert!(!rounds.is_empty(), "at least one round span");
    assert_eq!(rounds[0].index, Some(1));
    let learn = rounds[0].child("learn").expect("learn span");
    assert!(learn.counter("epochs").unwrap_or(0) >= 1);
    assert!(learn.gauge("final_loss").is_some_and(f64::is_finite));
    let verify = rounds[0].child("verify").expect("verify span");
    for cond in ["init", "unsafe", "flow"] {
        let sub = verify.child(cond).unwrap_or_else(|| panic!("{cond} span"));
        assert!(sub.gauge("margin").is_some(), "{cond} margin");
        assert!(sub.gauge("feasible").is_some(), "{cond} feasible flag");
        let sdp = sub.child("sdp").expect("nested sdp span");
        assert!(sdp.counter("iterations").unwrap_or(0) > 0);
        assert!(sdp.counter("cholesky").unwrap_or(0) > 0);
    }

    // Timers: children nest inside their parents.
    assert!(cegis.elapsed_s <= report.root.elapsed_s);
    assert!(learn.elapsed_s <= rounds[0].elapsed_s);

    // The human-readable table mentions every round.
    let table = snbc_telemetry::render_round_table(&report);
    assert!(table.lines().count() >= 1 + rounds.len());

    // JSON round-trip: parse our own serialization back byte-identically.
    let text = report.to_json_string();
    assert!(text.contains(SCHEMA));
    let back = Report::parse(&text).expect("parse own serialization");
    assert_eq!(back.to_json_string(), text);
}
