//! Cross-crate integration: the full SNBC pipeline end-to-end, with both
//! soundness paths (SOS margins and interval re-check) and dynamical
//! validation (trajectories never cross the certified zero level set).

use snbc::{recheck_with_intervals, Snbc, SnbcConfig};
use snbc_dynamics::{benchmarks, simulate};
use snbc_interval::BranchAndBound;
use snbc_nn::{train_controller, ControllerTraining};

fn synthesize(id: usize) -> (snbc_dynamics::benchmarks::Benchmark, snbc_nn::Mlp, snbc::SnbcResult) {
    let bench = benchmarks::benchmark(id);
    let controller = train_controller(
        bench.system.domain().bounding_box(),
        bench.target_law,
        &ControllerTraining::default(),
    );
    let result = Snbc::new(SnbcConfig::default())
        .synthesize(&bench, &controller)
        .unwrap_or_else(|e| panic!("benchmark {id} failed: {e}"));
    (bench, controller, result)
}

#[test]
fn c1_certificate_is_doubly_sound() {
    let (bench, _controller, result) = synthesize(1);
    assert!(result.verification.is_certified());
    // Margins are strictly positive.
    assert!(result.verification.init.margin > -1e-7);
    assert!(result.verification.unsafe_.margin > -1e-7);
    assert!(result.verification.flow.margin > -1e-7);
    // Independent δ-complete confirmation.
    assert!(recheck_with_intervals(
        &result.barrier,
        &result.lambda,
        &bench.system,
        &result.inclusion,
        &BranchAndBound::default(),
    ));
}

#[test]
fn c3_trajectories_respect_certificate() {
    let (bench, controller, result) = synthesize(3);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    for x0 in bench.system.init().sample(10, &mut rng) {
        let traj = simulate(&bench.system, |x| controller.forward(x), &x0, 0.01, 1200);
        assert!(!traj.enters(bench.system.unsafe_set()));
        // B stays nonnegative along reachable states inside Ψ — the defining
        // invariant of a barrier certificate.
        for x in traj.states.iter().step_by(20) {
            if bench.system.domain().contains(x) {
                assert!(
                    result.barrier.eval(x) >= -1e-6,
                    "B(x) < 0 at reachable {x:?}"
                );
            }
        }
    }
}

#[test]
fn controller_abstraction_feeds_verifier_consistently() {
    let (bench, controller, result) = synthesize(5);
    // σ* really bounds the abstraction error on dense probes.
    let mut sup: f64 = 0.0;
    for p in snbc_dynamics::sample_box_halton(bench.system.domain().bounding_box(), 10_000) {
        sup = sup.max((controller.forward(&p) - result.inclusion.h.eval(&p)).abs());
    }
    assert!(
        sup <= result.inclusion.sigma_star + 1e-9,
        "probed abstraction error {sup} exceeds certified sigma* {}",
        result.inclusion.sigma_star
    );
}

#[test]
fn timings_are_populated() {
    let (_bench, _controller, result) = synthesize(3);
    assert!(result.t_total >= result.t_learn);
    assert!(result.t_total.as_secs_f64() > 0.0);
    assert!(result.iterations >= 1);
}
