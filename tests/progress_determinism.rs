//! The observability determinism contract (docs/OBSERVABILITY.md): a batch
//! run's **canonical** progress stream (`snbc-progress/1` with `canonical`
//! mode on) and **canonical** metrics snapshot (`snbc-metrics/1` with
//! environmental entries stripped) must be byte-identical at `SNBC_THREADS=1`
//! and `SNBC_THREADS=4`, and again when every job is served from a warm cache
//! instead of racing — the replayed cache artifacts must reproduce the live
//! race's stream and counters exactly.
//!
//! A single `#[test]` drives all three legs because `snbc_par::set_threads`
//! is process-global (same shape as `tests/portfolio_determinism.rs`).

use snbc::SnbcConfig;
use snbc_dynamics::benchmarks::Benchmark;
use snbc_metrics::{Metrics, Progress};
use snbc_nn::Mlp;
use snbc_portfolio::{run_batch, BatchOptions, BatchSpec};
use snbc_telemetry::Telemetry;
use std::io::Write;
use std::sync::{Arc, Mutex};

const JOBS: &str = r#"{
    "schema": "snbc-batch-jobs/1",
    "jobs": [
        {"name": "c3-race", "benchmark": 3, "grid": {"seeds": [1, 2]},
         "max_iterations": 12, "controller_epochs": 300}
    ]
}"#;

/// An in-memory `Write` target the test can read back after the run (the
/// `Progress` writer takes ownership of its `Box<dyn Write>`).
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        let buf = self.0.lock().unwrap_or_else(|p| p.into_inner());
        String::from_utf8(buf.clone()).expect("NDJSON stream is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One leg: run the fixed job set with a canonical progress writer and a
/// recording registry; return (canonical stream bytes, canonical snapshot
/// JSON, full snapshot JSON).
fn run_leg(spec: &BatchSpec, cache_dir: &std::path::Path) -> (String, String, String) {
    let resolve = |path: &str| -> Result<(Benchmark, Mlp), String> {
        Err(format!("benchmark jobs only, got `{path}`"))
    };
    let opts = BatchOptions {
        base: SnbcConfig::default(),
        cache_dir: Some(cache_dir.to_path_buf()),
    };
    let buf = SharedBuf::default();
    let progress = Progress::writer(Box::new(buf.clone()), true);
    let metrics = Metrics::recording();
    run_batch(spec, &opts, &resolve, &Telemetry::off(), &progress, &metrics)
        .expect("batch runs");
    drop(progress);
    (
        buf.contents(),
        metrics.snapshot(true).to_json_string(),
        metrics.snapshot(false).to_json_string(),
    )
}

#[test]
fn canonical_stream_and_snapshot_are_deterministic() {
    let spec = BatchSpec::parse(JOBS).expect("fixed jobs document parses");
    let root = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("progress-determinism");
    let dir_a = root.join("threads-1");
    let dir_b = root.join("threads-4");
    for dir in [&dir_a, &dir_b] {
        if dir.exists() {
            std::fs::remove_dir_all(dir).expect("wipe scratch cache");
        }
    }

    // Leg 1: cold cache, one worker thread.
    snbc_par::set_threads(Some(1));
    let (stream_1cold, canon_1cold, full_1cold) = run_leg(&spec, &dir_a);
    // Leg 2: cold cache (separate directory), four worker threads.
    snbc_par::set_threads(Some(4));
    let (stream_4cold, canon_4cold, _) = run_leg(&spec, &dir_b);
    // Leg 3: warm cache from leg 1, still four threads — the stored
    // progress.ndjson / metrics.json artifacts replay instead of racing.
    let (stream_warm, canon_warm, full_warm) = run_leg(&spec, &dir_a);
    snbc_par::set_threads(None);

    // The stream is non-trivial: a header plus per-round events.
    assert!(
        stream_1cold.lines().count() > 3,
        "canonical stream is suspiciously short:\n{stream_1cold}"
    );
    assert!(
        stream_1cold.starts_with("{\"seq\":0,"),
        "stream header missing: {stream_1cold}"
    );
    assert!(
        stream_1cold.contains("snbc-progress/1"),
        "schema tag missing from stream header"
    );
    assert!(
        canon_1cold.contains("snbc-metrics/1"),
        "schema tag missing from snapshot"
    );

    // Canonical progress streams: byte-identical across thread counts and
    // cache temperature.
    assert_eq!(
        stream_1cold, stream_4cold,
        "canonical stream differs across thread counts"
    );
    assert_eq!(
        stream_1cold, stream_warm,
        "canonical stream differs across cache temperature"
    );

    // Canonical snapshots: likewise byte-identical.
    assert_eq!(
        canon_1cold, canon_4cold,
        "canonical snapshot differs across thread counts"
    );
    assert_eq!(
        canon_1cold, canon_warm,
        "canonical snapshot differs across cache temperature"
    );

    // The *full* snapshots are intentionally NOT identical across cache
    // temperature: environmental counters record what actually happened
    // (leg 1 misses, leg 3 hits), which is exactly why `canonical` strips
    // them. Guard that the distinction is real, not vacuous.
    assert!(
        full_1cold.contains("cache_miss"),
        "cold leg should record a cache_miss env counter: {full_1cold}"
    );
    assert!(
        full_warm.contains("cache_hit"),
        "warm leg should record a cache_hit env counter: {full_warm}"
    );
    assert!(
        !canon_1cold.contains("cache_"),
        "canonical snapshot must not carry env counters: {canon_1cold}"
    );

    // And the stream body round-trips through the parser (the `stream-start`
    // header at seq 0 is writer framing, not a replayable event).
    let body: String = stream_1cold
        .lines()
        .skip(1)
        .flat_map(|l| [l, "\n"])
        .collect();
    let events =
        snbc_metrics::progress::parse_stream(&body).expect("canonical stream body parses");
    assert!(!events.is_empty());
}
