//! Integration test of the `snbc-audit` binary as a gate: the committed tree
//! plus `audit-baseline.txt` must pass, and a seeded violation must fail.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Run the audit binary via `cargo run` (builds it if needed).
fn run_audit(extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO"))
        .current_dir(workspace_root())
        .args(["run", "-q", "-p", "snbc-audit", "--"])
        .args(extra)
        .output()
        .expect("failed to spawn cargo run -p snbc-audit")
}

#[test]
fn committed_tree_passes_the_gate() {
    let out = run_audit(&[]);
    assert!(
        out.status.success(),
        "audit gate failed on the committed tree.\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("no regressions"),
        "unexpected output: {stdout}"
    );
}

#[test]
fn seeded_violation_fails_the_gate() {
    // Build a minimal fake workspace with one solver crate containing one
    // exact float comparison and one unwrap, and no baseline.
    let root = std::env::temp_dir().join(format!("snbc-audit-seeded-{}", std::process::id()));
    let src_dir = root.join("crates/lp/src");
    fs::create_dir_all(&src_dir).unwrap();
    fs::write(
        root.join("crates/lp/Cargo.toml"),
        "[package]\nname = \"snbc-lp\"\n\n[dependencies]\nsnbc-linalg.workspace = true\n",
    )
    .unwrap();
    fs::write(
        src_dir.join("lib.rs"),
        "pub fn seeded(a: f64, v: Option<u64>) -> u64 {\n    if a == 0.5 { v.unwrap() } else { 0 }\n}\n",
    )
    .unwrap();

    let out = run_audit(&["--root", root.to_str().unwrap(), "--list"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    fs::remove_dir_all(&root).ok();

    assert_eq!(
        out.status.code(),
        Some(1),
        "expected exit 1 on seeded violations.\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stderr.contains("REGRESSIONS"), "stderr: {stderr}");
    assert!(stdout.contains("float-eq"), "stdout: {stdout}");
    assert!(stdout.contains("panicking"), "stdout: {stdout}");
}

#[test]
fn baseline_file_is_committed_and_parseable() {
    let path = workspace_root().join("audit-baseline.txt");
    assert!(
        Path::new(&path).is_file(),
        "audit-baseline.txt must be committed at the workspace root"
    );
    let text = fs::read_to_string(&path).unwrap();
    // Every non-comment line must have the `<rule> <file> <count>` shape the
    // parser accepts (the binary asserts this too; here it guards the file
    // against hand edits breaking CI far from the edit).
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = t.split_whitespace().collect();
        assert_eq!(fields.len(), 3, "malformed baseline line: {line}");
        fields[2]
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("bad count in baseline line: {line}"));
    }
}
