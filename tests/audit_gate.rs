//! Integration test of the `snbc-audit` binary as a gate: the committed tree
//! plus `audit-baseline.txt` must pass, and a seeded violation must fail.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Run the audit binary via `cargo run` (builds it if needed).
fn run_audit(extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO"))
        .current_dir(workspace_root())
        .args(["run", "-q", "-p", "snbc-audit", "--"])
        .args(extra)
        .output()
        .expect("failed to spawn cargo run -p snbc-audit")
}

#[test]
fn committed_tree_passes_the_gate() {
    let out = run_audit(&[]);
    assert!(
        out.status.success(),
        "audit gate failed on the committed tree.\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("no regressions"),
        "unexpected output: {stdout}"
    );
}

#[test]
fn seeded_violation_fails_the_gate() {
    // Build a minimal fake workspace with one solver crate containing one
    // exact float comparison and one unwrap, and no baseline.
    let root = std::env::temp_dir().join(format!("snbc-audit-seeded-{}", std::process::id()));
    let src_dir = root.join("crates/lp/src");
    fs::create_dir_all(&src_dir).unwrap();
    fs::write(
        root.join("crates/lp/Cargo.toml"),
        "[package]\nname = \"snbc-lp\"\n\n[dependencies]\nsnbc-linalg.workspace = true\n",
    )
    .unwrap();
    fs::write(
        src_dir.join("lib.rs"),
        "pub fn seeded(a: f64, v: Option<u64>) -> u64 {\n    if a == 0.5 { v.unwrap() } else { 0 }\n}\n",
    )
    .unwrap();

    let out = run_audit(&["--root", root.to_str().unwrap(), "--list"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    fs::remove_dir_all(&root).ok();

    assert_eq!(
        out.status.code(),
        Some(1),
        "expected exit 1 on seeded violations.\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stderr.contains("REGRESSIONS"), "stderr: {stderr}");
    assert!(stdout.contains("float-eq"), "stdout: {stdout}");
    assert!(stdout.contains("panicking"), "stdout: {stdout}");
}

#[test]
fn baseline_file_is_committed_and_parseable() {
    let path = workspace_root().join("audit-baseline.txt");
    assert!(
        Path::new(&path).is_file(),
        "audit-baseline.txt must be committed at the workspace root"
    );
    let text = fs::read_to_string(&path).unwrap();
    // Every non-comment line must have a shape the v2 parser accepts: a
    // `version N` header, `rule <id> <version>` pins, or `<rule> <file>
    // <count>` entries (the binary asserts this too; here it guards the file
    // against hand edits breaking CI far from the edit).
    let mut saw_version = false;
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = t.split_whitespace().collect();
        match fields.as_slice() {
            ["version", v] => {
                v.parse::<u32>()
                    .unwrap_or_else(|_| panic!("bad version line: {line}"));
                saw_version = true;
            }
            ["rule", _id, ver] => {
                ver.parse::<u32>()
                    .unwrap_or_else(|_| panic!("bad rule line: {line}"));
            }
            [_rule, _file, count] => {
                count
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad count in baseline line: {line}"));
            }
            _ => panic!("malformed baseline line: {line}"),
        }
    }
    assert!(saw_version, "committed baseline must carry a `version` header");
}

/// Run the audit binary with extra args and an SNBC_THREADS override,
/// returning stdout bytes (the machine-format document).
fn run_audit_stdout(extra: &[&str], threads: Option<&str>) -> Vec<u8> {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.current_dir(workspace_root())
        .args(["run", "-q", "-p", "snbc-audit", "--"])
        .args(extra);
    if let Some(t) = threads {
        cmd.env("SNBC_THREADS", t);
    }
    let out = cmd.output().expect("failed to spawn cargo run -p snbc-audit");
    assert!(
        out.status.success(),
        "audit failed.\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn machine_formats_are_deterministic_across_runs_and_threads() {
    for format in ["json", "sarif"] {
        let a = run_audit_stdout(&["--format", format], None);
        let b = run_audit_stdout(&["--format", format], None);
        assert_eq!(a, b, "{format} output differs between identical runs");
        let t1 = run_audit_stdout(&["--format", format], Some("1"));
        let t7 = run_audit_stdout(&["--format", format], Some("7"));
        assert_eq!(a, t1, "{format} output differs under SNBC_THREADS=1");
        assert_eq!(a, t7, "{format} output differs under SNBC_THREADS=7");
        // Machine mode keeps stdout document-only: it must start with `{`.
        assert_eq!(a.first(), Some(&b'{'), "{format} stdout is not a bare document");
    }
    // The JSON document carries the current schema tag and the
    // self-describing rule-version catalog.
    let json = String::from_utf8(run_audit_stdout(&["--format", "json"], None)).unwrap();
    assert!(
        json.contains("\"schema\":\"snbc-audit/4\""),
        "json must carry the snbc-audit/4 schema tag"
    );
    assert!(
        json.contains("\"rules\":[") && json.contains("\"id\":\"par-capture-race\""),
        "json must embed the rule catalog"
    );
}

#[test]
fn paths_filter_narrows_the_report_not_the_scan() {
    // A filter that matches nothing keeps full scan coverage but reports no
    // findings; a filter that covers everything is byte-identical to no
    // filter at all.
    let none = String::from_utf8(run_audit_stdout(
        &["--format", "json", "--paths", "crates/does-not-exist"],
        None,
    ))
    .unwrap();
    assert!(none.contains("\"findings\":[]"), "{none}");
    assert!(!none.contains("\"files_scanned\":0"), "{none}");
    let all = run_audit_stdout(&["--format", "json", "--paths", "crates"], None);
    let unfiltered = run_audit_stdout(&["--format", "json"], None);
    assert_eq!(all, unfiltered);
}

#[test]
fn graph_dumps_are_deterministic_across_runs_and_threads() {
    // The call-graph export must be canonical: byte-identical between
    // identical runs and invariant under the worker count.
    let json = run_audit_stdout(&["graph", "--format", "json"], None);
    let json2 = run_audit_stdout(&["graph", "--format", "json"], None);
    assert_eq!(json, json2, "graph json differs between identical runs");
    let json_t1 = run_audit_stdout(&["graph", "--format", "json"], Some("1"));
    assert_eq!(json, json_t1, "graph json differs under SNBC_THREADS=1");
    assert_eq!(json.first(), Some(&b'{'), "graph json is not a bare document");
    let text = String::from_utf8(json).unwrap();
    assert!(
        text.contains("snbc-audit-graph/1"),
        "graph json must carry its schema tag"
    );

    let dot = run_audit_stdout(&["graph", "--format", "dot"], None);
    let dot_t1 = run_audit_stdout(&["graph", "--format", "dot"], Some("1"));
    assert_eq!(dot, dot_t1, "graph dot differs under SNBC_THREADS=1");
    let dot = String::from_utf8(dot).unwrap();
    assert!(dot.starts_with("digraph"), "dot output: {dot}");
}

#[test]
fn gate_passes_with_an_absent_baseline_when_tree_is_clean() {
    // The committed tree carries zero findings, so pointing --baseline at a
    // non-existent file (every finding a regression) must still exit 0.
    let missing = std::env::temp_dir().join(format!(
        "snbc-audit-no-baseline-{}.txt",
        std::process::id()
    ));
    let out = run_audit(&["--baseline", missing.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "clean tree must pass with an empty/absent baseline.\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn explain_subcommand_documents_every_rule() {
    for rule in [
        "float-eq",
        "panicking",
        "lossy-cast",
        "raw-thread",
        "raw-instant",
        "nondet-iter",
        "swallowed-result",
        "env-read",
        "unordered-reduce",
        "par-capture-race",
        "raw-print",
        "solver-effects",
        "hot-alloc",
        "par-callee",
        "arch",
    ] {
        let out = run_audit(&["explain", rule]);
        assert!(out.status.success(), "explain {rule} failed");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("rationale:"), "explain {rule}: {stdout}");
        assert!(stdout.contains("audit:allow"), "explain {rule}: {stdout}");
    }
    // Unknown rules exit non-zero and list the catalog on stderr.
    let out = run_audit(&["explain", "no-such-rule"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("nondet-iter"));
}

#[test]
fn explain_reports_the_dataflow_rule_versions() {
    // The dataflow engine bumped these; `explain` is where a developer
    // checks why baseline pins went stale.
    for (rule, version) in [
        ("unordered-reduce", "v3"),
        ("swallowed-result", "v2"),
        ("par-capture-race", "v1"),
    ] {
        let out = run_audit(&["explain", rule]);
        assert!(out.status.success(), "explain {rule} failed");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("{rule} ({version})")),
            "explain {rule}: {stdout}"
        );
    }
}
