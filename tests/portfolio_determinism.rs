//! The portfolio determinism contract (docs/PORTFOLIO.md): the same job set
//! must produce byte-identical certificates, winner indices, and
//! `snbc-batch-report/1` documents at `SNBC_THREADS=1` and `SNBC_THREADS=4`,
//! and again when every job is served from a warm cache instead of racing.
//!
//! A single `#[test]` drives all three legs because `snbc_par::set_threads`
//! is process-global — parallel test functions would race on it (the same
//! shape as `tests/par_determinism.rs`).

use snbc::SnbcConfig;
use snbc_dynamics::benchmarks::Benchmark;
use snbc_metrics::{Metrics, Progress};
use snbc_nn::Mlp;
use snbc_portfolio::{run_batch, BatchOptions, BatchOutcome, BatchSpec};
use snbc_telemetry::Telemetry;

const JOBS: &str = r#"{
    "schema": "snbc-batch-jobs/1",
    "jobs": [
        {"name": "c3-race", "benchmark": 3, "grid": {"seeds": [1, 2]},
         "max_iterations": 12, "controller_epochs": 300}
    ]
}"#;

fn run_legs(spec: &BatchSpec, cache_dir: &std::path::Path) -> BatchOutcome {
    let resolve = |path: &str| -> Result<(Benchmark, Mlp), String> {
        Err(format!("benchmark jobs only, got `{path}`"))
    };
    let opts = BatchOptions {
        base: SnbcConfig::default(),
        cache_dir: Some(cache_dir.to_path_buf()),
    };
    run_batch(
        spec,
        &opts,
        &resolve,
        &Telemetry::off(),
        &Progress::off(),
        &Metrics::off(),
    )
    .expect("batch runs")
}

#[test]
fn batch_is_deterministic_across_threads_and_cache_temperature() {
    let spec = BatchSpec::parse(JOBS).expect("fixed jobs document parses");
    let root = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("portfolio-determinism");
    let dir_a = root.join("threads-1");
    let dir_b = root.join("threads-4");
    for dir in [&dir_a, &dir_b] {
        if dir.exists() {
            std::fs::remove_dir_all(dir).expect("wipe scratch cache");
        }
    }

    // Leg 1: cold cache, one worker thread.
    snbc_par::set_threads(Some(1));
    let t1_cold = run_legs(&spec, &dir_a);
    // Leg 2: cold cache (separate directory), four worker threads.
    snbc_par::set_threads(Some(4));
    let t4_cold = run_legs(&spec, &dir_b);
    // Leg 3: warm cache from leg 1, still four threads.
    let t1_warm = run_legs(&spec, &dir_a);
    snbc_par::set_threads(None);

    assert_eq!(t1_cold.misses(), 1, "leg 1 must race");
    assert_eq!(t4_cold.misses(), 1, "leg 2 must race");
    assert_eq!(t1_warm.hits(), 1, "leg 3 must be a pure cache lookup");

    // The batch reports are byte-identical across thread counts and cache
    // temperature — the `snbc-batch-report/1` schema carries no timings,
    // paths, or hit/miss flags precisely so this holds.
    let report = t1_cold.report_json();
    assert_eq!(report, t4_cold.report_json(), "reports differ across thread counts");
    assert_eq!(report, t1_warm.report_json(), "reports differ across cache temperature");

    // And the individual verdicts agree field-by-field, not just textually.
    for (leg, outcome) in [("t4-cold", &t4_cold), ("t1-warm", &t1_warm)] {
        for (a, b) in t1_cold.jobs.iter().zip(&outcome.jobs) {
            assert_eq!(a.key.hash(), b.key.hash(), "{leg}: cache keys differ");
            assert_eq!(
                a.result.winner_index, b.result.winner_index,
                "{leg}: winner index differs"
            );
            assert_eq!(
                a.result.certificate, b.result.certificate,
                "{leg}: certificate bytes differ"
            );
        }
    }
    let winner = t1_cold.jobs[0]
        .result
        .winner_index
        .expect("the c3 race certifies");
    assert!(winner < 2, "winner index is a grid position");
    assert!(
        t1_cold.jobs[0].result.certificate.is_some(),
        "certified job carries its certificate text"
    );
}
