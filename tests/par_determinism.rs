//! Determinism contract of the `snbc-par` runtime (docs/PARALLELISM.md):
//! the synthesized certificate and the telemetry round structure must be
//! bitwise identical no matter how many worker threads execute the SDP
//! assembly, the learner batches, and the counterexample restarts.

use std::sync::Mutex;

use snbc::{Snbc, SnbcConfig, SnbcResult};
use snbc_dynamics::benchmarks;
use snbc_nn::{train_controller, ControllerTraining, Mlp};
use snbc_telemetry::{Report, Telemetry};

/// Both tests mutate the process-wide `SNBC_THREADS` variable; serialize them
/// so the harness's default test parallelism cannot interleave the settings.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn synthesize_with_threads(controller: &Mlp, threads: usize) -> (SnbcResult, Report) {
    // The env var is the documented user-facing knob; set it (rather than the
    // programmatic override) so the test exercises the same path as
    // `SNBC_THREADS=4 cargo run`.
    std::env::set_var("SNBC_THREADS", threads.to_string());
    let bench = benchmarks::benchmark(3);
    let telemetry = Telemetry::recording();
    let result = Snbc::new(SnbcConfig::default())
        .with_telemetry(telemetry.clone())
        .synthesize(&bench, controller)
        .unwrap_or_else(|e| panic!("synthesis failed at SNBC_THREADS={threads}: {e}"));
    let report = telemetry.report().expect("recording sink yields a report");
    std::env::remove_var("SNBC_THREADS");
    (result, report)
}

#[test]
fn synthesis_is_bitwise_identical_across_thread_counts() {
    let _env = ENV_LOCK.lock().unwrap();
    let bench = benchmarks::benchmark(3);
    let controller = train_controller(
        bench.system.domain().bounding_box(),
        bench.target_law,
        &ControllerTraining::default(),
    );

    let (serial, serial_report) = synthesize_with_threads(&controller, 1);
    let (parallel, parallel_report) = synthesize_with_threads(&controller, 4);

    // Same CEGIS trajectory: identical round count on both sinks.
    assert_eq!(serial.iterations, parallel.iterations);
    assert_eq!(
        serial_report.rounds().len(),
        parallel_report.rounds().len(),
        "telemetry disagrees on the number of CEGIS rounds"
    );

    // Same certificate, bit for bit: Polynomial equality compares exact f64
    // coefficients, and the rendered forms must agree too.
    assert_eq!(serial.barrier, parallel.barrier, "barrier coefficients differ");
    assert_eq!(serial.lambda, parallel.lambda, "multiplier coefficients differ");
    assert_eq!(serial.barrier.to_string(), parallel.barrier.to_string());
    assert_eq!(serial.lambda.to_string(), parallel.lambda.to_string());

    // Same abstraction and margins (the whole verification record is data
    // computed from the certificate; spot-check the floats that summarize it).
    assert_eq!(
        serial.inclusion.sigma_star.to_bits(),
        parallel.inclusion.sigma_star.to_bits()
    );
    assert_eq!(
        serial.verification.init.margin.to_bits(),
        parallel.verification.init.margin.to_bits()
    );
    assert_eq!(
        serial.verification.unsafe_.margin.to_bits(),
        parallel.verification.unsafe_.margin.to_bits()
    );
    assert_eq!(
        serial.verification.flow.margin.to_bits(),
        parallel.verification.flow.margin.to_bits()
    );
}

/// Runs the quickstart synthesis with a recording trace sink attached and
/// returns the trace snapshot.
fn trace_with_threads(controller: &Mlp, threads: usize) -> snbc_trace::ChromeTrace {
    std::env::set_var("SNBC_THREADS", threads.to_string());
    let bench = benchmarks::benchmark(3);
    let telemetry = Telemetry::recording().with_trace(snbc_trace::Trace::recording());
    Snbc::new(SnbcConfig::default())
        .with_telemetry(telemetry.clone())
        .synthesize(&bench, controller)
        .unwrap_or_else(|e| panic!("synthesis failed at SNBC_THREADS={threads}: {e}"));
    let dump = telemetry.trace().dump().expect("recording trace yields a dump");
    std::env::remove_var("SNBC_THREADS");
    dump
}

#[test]
fn trace_event_stream_is_deterministic_across_thread_counts() {
    let _env = ENV_LOCK.lock().unwrap();
    let bench = benchmarks::benchmark(3);
    let controller = train_controller(
        bench.system.domain().bounding_box(),
        bench.target_law,
        &ControllerTraining::default(),
    );

    let serial = trace_with_threads(&controller, 1);
    let parallel = trace_with_threads(&controller, 4);

    // No lane may overflow on a quickstart-sized run; a dropped event would
    // silently break the count comparison below.
    assert_eq!(serial.dropped, 0, "serial trace dropped events");
    assert_eq!(parallel.dropped, 0, "parallel trace dropped events");

    // Same events in both runs: identical totals, and the sorted
    // thread-count-invariant keys (name + deterministic payload, timestamps
    // and track/span-id allocation excluded) must agree element-wise. The
    // parallel run spreads the events over more tracks, but every IPM
    // iteration, learner epoch, ascent trajectory, and span pair must still
    // happen exactly once with bit-identical numbers.
    assert_eq!(
        serial.event_count(),
        parallel.event_count(),
        "trace event totals differ between SNBC_THREADS=1 and 4"
    );
    assert_eq!(
        serial.ordering_keys(),
        parallel.ordering_keys(),
        "trace ordering keys differ between SNBC_THREADS=1 and 4"
    );

    // The parallel run actually used extra worker tracks (otherwise this
    // test would pass vacuously with everything on `main`).
    assert!(
        parallel.tracks.len() > serial.tracks.len(),
        "parallel run produced no extra worker tracks ({} vs {})",
        parallel.tracks.len(),
        serial.tracks.len()
    );
}

/// Runs a dependency-heavy δ-complete check at the given thread count and
/// returns the full report (verdict, witness, box count, depth).
fn interval_check_with_threads(threads: usize) -> Vec<snbc_interval::CheckReport> {
    use snbc_interval::{BranchAndBound, Interval, RangeTightening};
    std::env::set_var("SNBC_THREADS", threads.to_string());
    // The squared circle constraint maximizes interval dependency, forcing
    // deep subdivision — thousands of boxes, so the branch-and-bound wave
    // engine genuinely fans out (waves above its parallel threshold).
    let p: snbc_poly::Polynomial = "(x0^2 + x1^2 - 1)^2 + 0.0001".parse().unwrap();
    let violated: snbc_poly::Polynomial = "(x0^2 + x1^2 - 1)^2 - 0.25".parse().unwrap();
    let g: snbc_poly::Polynomial = "x0 + x1".parse().unwrap();
    let dom = vec![Interval::new(-1.0, 1.0), Interval::new(-1.0, 1.0)];
    let reports = vec![
        BranchAndBound::default().check_at_least(&p, &dom, &[], 0.0),
        BranchAndBound {
            tightening: RangeTightening::Bernstein,
            ..Default::default()
        }
        .check_at_least(&p, &dom, &[g], 0.0),
        BranchAndBound::default().check_at_least(&violated, &dom, &[], 0.0),
    ];
    std::env::remove_var("SNBC_THREADS");
    reports
}

#[test]
fn interval_branch_and_bound_is_bitwise_identical_across_thread_counts() {
    let _env = ENV_LOCK.lock().unwrap();
    let serial = interval_check_with_threads(1);
    let parallel = interval_check_with_threads(4);

    // Full report equality: verdict (witness coordinates compare as exact
    // f64), box count, and subdivision depth — the wave engine's exploration
    // order must be a pure function of the problem, not the worker count.
    assert_eq!(
        serial, parallel,
        "interval B&B reports differ between SNBC_THREADS=1 and 4"
    );

    // Guard against vacuity: the proof legs must have processed enough boxes
    // to actually cross the engine's parallel-wave threshold.
    assert!(
        serial[0].boxes_processed > 1_000,
        "dependency-heavy check finished in {} boxes — too few to exercise parallel waves",
        serial[0].boxes_processed
    );
    assert!(matches!(
        serial[2].verdict,
        snbc_interval::Verdict::Violated { .. }
    ));
}
