//! Integration checks of the Table 1 baselines: each tool's certificates are
//! genuine (validated by the independent interval verifier), and the scaling
//! behaviour the paper reports is visible in-simulator.

use std::time::Duration;

use snbc_baselines::{Fossil, FossilConfig, NncChecker, NncCheckerConfig, SosTools, SosToolsConfig};
use snbc_dynamics::benchmarks;
use snbc_interval::{BranchAndBound, Interval, Verdict};
use snbc_poly::Polynomial;

fn inclusion(law: &str) -> snbc::PolynomialInclusion {
    snbc::PolynomialInclusion {
        h: law.parse().unwrap(),
        sigma_tilde: 0.0,
        sigma_star: 0.0,
        lipschitz: 0.0,
        covering_radius: 0.0,
        mesh_points: 0,
    }
}

/// Checks conditions (i) and (ii) of a produced certificate with the interval
/// verifier — a tool-independent audit.
fn audit_separation(b: &Polynomial, bench: &benchmarks::Benchmark) {
    let boxed = |bounds: &[(f64, f64)]| -> Vec<Interval> {
        bounds.iter().map(|&(lo, hi)| Interval::new(lo, hi)).collect()
    };
    let bb = BranchAndBound::default();
    let r1 = bb.check_at_least(
        b,
        &boxed(bench.system.init().bounding_box()),
        bench.system.init().polys(),
        0.0,
    );
    assert_eq!(r1.verdict, Verdict::Holds, "B not nonnegative on Θ");
    let neg = -b;
    let r2 = bb.check_at_least(
        &neg,
        &boxed(bench.system.unsafe_set().bounding_box()),
        bench.system.unsafe_set().polys(),
        0.0,
    );
    assert_eq!(r2.verdict, Verdict::Holds, "B not negative on Ξ");
}

#[test]
fn fossil_certificate_audited() {
    let bench = benchmarks::benchmark(3);
    let report = Fossil::new(FossilConfig {
        time_limit: Duration::from_secs(600),
        ..Default::default()
    })
    .synthesize(&bench, &inclusion("-0.5*x0"));
    assert!(report.success, "{:?}", report.failure);
    audit_separation(report.barrier.as_ref().unwrap(), &bench);
}

#[test]
fn nncchecker_certificate_audited() {
    let bench = benchmarks::benchmark(3);
    let report = NncChecker::new(NncCheckerConfig {
        time_limit: Duration::from_secs(600),
        ..Default::default()
    })
    .synthesize(&bench, &inclusion("-0.5*x0"));
    assert!(report.success, "{:?}", report.failure);
    audit_separation(report.barrier.as_ref().unwrap(), &bench);
}

#[test]
fn sostools_certificate_audited() {
    let bench = benchmarks::benchmark(3);
    let report = SosTools::new(SosToolsConfig {
        time_limit: Duration::from_secs(600),
        ..Default::default()
    })
    .synthesize(&bench, &inclusion("-0.5*x0"));
    assert!(report.success, "{:?}", report.failure);
    audit_separation(report.barrier.as_ref().unwrap(), &bench);
}

/// The dimensional blow-up of SMT-style verification (the Table 1 `OT`
/// mechanism): the same δ-complete query costs orders of magnitude more boxes
/// as the dimension rises.
#[test]
fn smt_box_count_grows_with_dimension() {
    let boxes = |n: usize| {
        let terms: Vec<String> = (0..n).map(|i| format!("0.5*x{i}^2")).collect();
        // Tight positivity query with cross terms to defeat term-wise
        // tightness.
        let cross: Vec<String> = (0..n - 1).map(|i| format!("0.3*x{i}*x{}", i + 1)).collect();
        let p: Polynomial = format!("{} + {} + 0.01", terms.join("+"), cross.join("+"))
            .parse()
            .unwrap();
        let domain = vec![Interval::new(-1.0, 1.0); n];
        BranchAndBound::default()
            .check_at_least(&p, &domain, &[], 0.0)
            .boxes_processed
    };
    let b2 = boxes(2);
    let b4 = boxes(4);
    assert!(
        b4 >= 4 * b2,
        "expected strong growth with dimension: {b2} boxes in 2-D vs {b4} in 4-D"
    );
}
