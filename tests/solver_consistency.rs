//! Property-based cross-solver consistency: independent implementations must
//! agree — the strongest correctness signal a from-scratch numerical stack
//! can give.

use proptest::prelude::*;
use snbc_interval::{eval_range, BranchAndBound, Interval, Verdict};
use snbc_linalg::Matrix;
use snbc_lp::{simplex, solve_standard, LpOptions};
use snbc_poly::Polynomial;
use snbc_sos::{extract_squares, SosExpr, SosProgram};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Simplex and interior-point agree on random feasible standard-form LPs.
    #[test]
    fn lp_simplex_matches_ipm(
        entries in proptest::collection::vec(-1.0f64..1.0, 3 * 7),
        xstar in proptest::collection::vec(0.1f64..1.5, 7),
        costs in proptest::collection::vec(-1.0f64..1.0, 7),
    ) {
        let a = Matrix::from_vec(3, 7, entries);
        let b = a.matvec(&xstar); // feasible by construction
        let sx = simplex::solve(&a, &b, &costs);
        let ip = solve_standard(&a, &b, &costs, &LpOptions::default());
        match (sx, ip) {
            (Ok(s), Ok(p)) => {
                prop_assert!(
                    (s.objective - p.objective).abs() < 1e-4 * (1.0 + s.objective.abs()),
                    "simplex {} vs ipm {}", s.objective, p.objective
                );
            }
            (Err(snbc_lp::LpError::Unbounded), Err(snbc_lp::LpError::Unbounded)) => {}
            // Rare borderline unbounded/iteration-limit disagreements are
            // acceptable; both must at least refuse to return a number.
            (Err(_), Err(_)) => {}
            (s, p) => prop_assert!(false, "solver disagreement: {s:?} vs {p:?}"),
        }
    }

    /// Every SOS certificate the SDP route produces evaluates nonnegatively —
    /// checked pointwise and via interval arithmetic.
    #[test]
    fn sos_certificates_are_pointwise_nonnegative(
        c1 in -1.0f64..1.0,
        c2 in -1.0f64..1.0,
        c3 in 0.2f64..2.0,
    ) {
        // p = (x + c1·y)² + (y − c2)² + c3 is strictly SOS.
        let p: Polynomial = format!(
            "(x0 + {c1}*x1)^2 + (x1 - {c2})^2 + {c3}"
        ).parse().unwrap();
        let mut prog = SosProgram::new(2);
        let cert = prog.require_sos(SosExpr::from_poly(p.clone()));
        let sol = prog.solve_default().expect("strictly SOS input");
        prop_assert!(sol.margin() > 0.0);

        // Explicit decomposition reproduces p.
        let (basis, gram) = sol.gram(cert).expect("gram");
        let dec = extract_squares(sol.poly(cert), basis, gram).expect("decomposition");
        prop_assert!(dec.residual < 1e-4, "residual {}", dec.residual);

        // Interval verification over a box agrees that p > 0.
        let bx = vec![Interval::new(-2.0, 2.0); 2];
        let rep = BranchAndBound::default().check_at_least(&p, &bx, &[], 0.0);
        prop_assert_eq!(rep.verdict, Verdict::Holds);
    }

    /// Interval range bounds contain dense-sample ranges for random
    /// polynomials (soundness of the abstract domain used by the SMT
    /// substitute).
    #[test]
    fn interval_ranges_contain_samples(
        coeffs in proptest::collection::vec(-2.0f64..2.0, 6),
    ) {
        let basis = snbc_poly::monomial_basis(2, 2);
        let p = Polynomial::from_coeffs(&coeffs, &basis);
        let bx = [Interval::new(-1.3, 0.7), Interval::new(0.2, 1.9)];
        let range = eval_range(&p, &bx);
        for i in 0..8 {
            for j in 0..8 {
                let x = [
                    -1.3 + 2.0 * i as f64 / 7.0,
                    0.2 + 1.7 * j as f64 / 7.0,
                ];
                prop_assert!(range.contains(p.eval(&x)));
            }
        }
    }

    /// The quadratic network, its tape forward pass and its extracted
    /// polynomial all agree at random points and parameters.
    #[test]
    fn quadratic_net_three_way_agreement(
        seed in 0u64..1000,
        x0 in -1.0f64..1.0,
        x1 in -1.0f64..1.0,
    ) {
        use snbc_autodiff::Tape;
        use snbc_nn::QuadraticNet;
        let net = QuadraticNet::new(2, &[4], seed);
        let x = [x0, x1];
        let direct = net.forward(&x);
        let poly = net.to_polynomial().eval(&x);
        let mut tape = Tape::new();
        let pv: Vec<_> = net.params().iter().map(|&p| tape.input(p)).collect();
        let xv: Vec<_> = x.iter().map(|&v| tape.input(v)).collect();
        let out = net.forward_tape(&mut tape, &pv, &xv);
        let taped = tape.value(out);
        prop_assert!((direct - poly).abs() < 1e-9);
        prop_assert!((direct - taped).abs() < 1e-12);
    }
}
