//! Cross-crate integration: synthesize on a file-format system, export the
//! certificate, re-import it and validate through both soundness paths.

use std::time::Duration;

use snbc::certificate::SafetyCertificate;
use snbc::{Snbc, SnbcConfig};
use snbc_cli::{parse_system, ControllerSpec, EXAMPLE_SYSTEM};
use snbc_dynamics::benchmarks::{Benchmark, LambdaSpec};
use snbc_nn::{train_controller, ControllerTraining};

#[test]
fn file_to_certificate_and_back() {
    let sf = parse_system(EXAMPLE_SYSTEM).expect("example parses");
    let law = match &sf.controller {
        ControllerSpec::Train(p) => p.clone(),
        other => panic!("example uses a trained controller, got {other:?}"),
    };
    let controller = train_controller(
        sf.system.domain().bounding_box(),
        move |x| law.eval(x),
        &ControllerTraining::default(),
    );
    let bench = Benchmark {
        name: "cli",
        index: 0,
        system: sf.system.clone(),
        target_law: |_| 0.0,
        nn_b_hidden: vec![10],
        lambda_spec: LambdaSpec::Linear(vec![5]),
        citation: "integration test",
        d_f: sf.system.field_degree(),
    };
    let result = Snbc::new(SnbcConfig {
        time_limit: Duration::from_secs(600),
        ..Default::default()
    })
    .synthesize(&bench, &controller)
    .expect("example system certifies");

    // Round trip the certificate through its text form.
    let cert = SafetyCertificate::from_result(&sf.name, &result);
    let text = cert.to_string();
    let back: SafetyCertificate = text.parse().expect("certificate parses");
    assert_eq!(cert, back);

    // Deep validation (LMI + interval) of the re-imported certificate.
    assert!(back.validate(&sf.system, true), "re-imported certificate must validate");

    // A tampered certificate must fail.
    let mut bad = back.clone();
    bad.barrier = &bad.barrier - &"10".parse().unwrap();
    assert!(!bad.validate(&sf.system, false));
}
