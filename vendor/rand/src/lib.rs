//! Offline, dependency-free stand-in for the subset of the `rand` 0.8 API
//! that the SNBC workspace uses: `Rng::gen_range` over float/integer ranges,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically good enough for sampling counterexample candidates
//! and test inputs. It is NOT cryptographically secure, which matches how the
//! workspace uses randomness (it never needs security).

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniformly distributed `u64` words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Uniform value in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // Scale by 2^-53 over an inclusive lattice; endpoint hit is possible.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * u
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (uniform_u128(rng, span) as i128)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (uniform_u128(rng, span) as i128)) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64, u32, u64, usize, isize);

/// Uniform value in `[0, span)` by rejection sampling (span > 0).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let zone = u128::MAX - (u128::MAX % span);
    loop {
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if v < zone {
            return v % span;
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, the stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors; guarantees a non-zero state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5..1.5);
            assert!((-2.5..1.5).contains(&x));
            let y = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(-2i32..=2);
            seen[(v + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
