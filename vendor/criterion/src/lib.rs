//! Offline, dependency-free stand-in for the subset of `criterion` that the
//! SNBC bench harness uses. It keeps benches compiling and runnable without
//! the real statistics engine: each benchmark runs a small warm-up plus a
//! fixed number of timed iterations and prints mean / min wall-clock times.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Mirrors `criterion::Criterion` (builder methods only).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.measurement_time,
            max_samples: self.sample_size,
        };
        f(&mut b);
        report(id, &b.samples);
        self
    }
}

/// Mirrors `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    max_samples: usize,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // One warm-up iteration, then timed samples until the sample quota or
        // the time budget is exhausted (whichever comes first).
        black_box(f());
        let started = Instant::now();
        for _ in 0..self.max_samples {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!(
        "{id:<40} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        samples.len()
    );
}

/// Mirrors `criterion::criterion_group!` (both the plain and the
/// `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
