//! Offline, dependency-free stand-in for the subset of `proptest` that the
//! SNBC workspace uses: the `proptest!` test macro, range/array/`vec`
//! strategies, `prop_map`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` family.
//!
//! Semantics differ from real proptest in two deliberate ways:
//! - no shrinking: a failing case panics immediately with its case index and
//!   seed, which is enough to reproduce deterministically;
//! - deterministic seeding: case `i` of test `t` always sees the same inputs,
//!   derived from FNV-1a of the test name mixed with `i`.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Value`, mirroring `proptest::strategy::Strategy`.
    pub trait Strategy {
        type Value;

        /// Draw one value. (Real proptest builds value trees for shrinking;
        /// this stub samples directly.)
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                whence,
                f,
            }
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Result of [`Strategy::prop_filter`]. Rejection-samples with a retry cap.
    pub struct Filter<S, F> {
        source: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn sample(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.source.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive samples: {}", self.whence);
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, i32, i64, u32, u64, usize);

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];

        fn sample(&self, rng: &mut StdRng) -> [S::Value; N] {
            std::array::from_fn(|i| self[i].sample(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut StdRng) -> S::Value {
            (**self).sample(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// Strategy for `Vec`s of a fixed length, mirroring
    /// `proptest::collection::vec` (the workspace only uses exact sizes).
    pub fn vec<S: Strategy>(element: S, size: usize) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.size).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Mirrors `proptest::test_runner::Config` (aliased `ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-test, per-case RNG: FNV-1a of the test name, mixed
    /// with the case index.
    pub fn case_rng(test_name: &str, case: u32) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        rand::rngs::StdRng::seed_from_u64(h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(a in 0.0..1.0, v in proptest::collection::vec(-1.0f64..1.0, 5)) {
///         prop_assert!(a >= 0.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::case_rng(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
}

/// Assert inside a property test. The stub panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::case_rng;

    #[test]
    fn determinism_per_case() {
        let s = crate::collection::vec(-1.0f64..1.0, 8);
        let a = s.sample(&mut case_rng("t", 3));
        let b = s.sample(&mut case_rng("t", 3));
        assert_eq!(a, b);
        let c = s.sample(&mut case_rng("t", 4));
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in -2.0f64..3.0, k in -4i32..=4) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((-4..=4).contains(&k));
        }

        #[test]
        fn arrays_and_maps(p in [0.0f64..1.0, 0.0f64..1.0],
                           v in crate::collection::vec(0i32..10, 3)) {
            prop_assert!(p[0] < 1.0 && p[1] < 1.0);
            prop_assert_eq!(v.len(), 3);
        }
    }
}
