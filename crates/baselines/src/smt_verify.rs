//! The δ-complete three-condition check shared by the SMT-based baselines
//! (FOSSIL- and NNCChecker-style): dReal's role, factored out so both tools
//! verify identically and only differ in how they produce candidates.

use snbc_dynamics::Ccds;
use snbc_interval::{BranchAndBound, CheckReport, Interval, Verdict};
use snbc_poly::{lie_derivative, Polynomial};

/// Outcome of one SMT-style verification pass over the three barrier
/// conditions.
pub(crate) enum SmtOutcome {
    /// All three conditions proven.
    Certified,
    /// Concrete violations found; each tagged 0 = init, 1 = unsafe, 2 = flow
    /// (flow witnesses include the error coordinate, which callers truncate).
    Counterexamples(Vec<(u8, Vec<f64>)>),
    /// Box budget exhausted (the `OT` analogue).
    Timeout,
    /// δ-undecided (dReal's "δ-sat" weak answer) — the tool fails with `×`.
    Undecided,
}

fn unknown_outcome(r: &CheckReport, max_boxes: usize) -> SmtOutcome {
    if r.boxes_processed >= max_boxes {
        SmtOutcome::Timeout
    } else {
        SmtOutcome::Undecided
    }
}

/// Checks conditions (i)–(iii) of Theorem 1 for candidate `b` with multiplier
/// `lambda` over the robust closed loop (`w` at slot `n`, `|w| ≤ sigma`).
pub(crate) fn verify_conditions(
    b: &Polynomial,
    lambda: &Polynomial,
    system: &Ccds,
    sigma: f64,
    closed_robust: &[Polynomial],
    bb: &BranchAndBound,
) -> SmtOutcome {
    let boxed = |bounds: &[(f64, f64)]| -> Vec<Interval> {
        bounds.iter().map(|&(lo, hi)| Interval::new(lo, hi)).collect()
    };
    let mut cexs: Vec<(u8, Vec<f64>)> = Vec::new();

    // (i) B ≥ 0 on Θ.
    let r = bb.check_at_least(
        b,
        &boxed(system.init().bounding_box()),
        system.init().polys(),
        0.0,
    );
    match r.verdict {
        Verdict::Holds => {}
        Verdict::Violated { witness, .. } => cexs.push((0, witness)),
        Verdict::Unknown { .. } => return unknown_outcome(&r, bb.max_boxes),
    }
    // (ii) B < 0 on Ξ.
    let neg_b = -b;
    let r = bb.check_at_least(
        &neg_b,
        &boxed(system.unsafe_set().bounding_box()),
        system.unsafe_set().polys(),
        1e-12,
    );
    match r.verdict {
        Verdict::Holds => {}
        Verdict::Violated { witness, .. } => cexs.push((1, witness)),
        Verdict::Unknown { .. } => return unknown_outcome(&r, bb.max_boxes),
    }
    // (iii) L_f B − λB > 0 on Ψ × [−σ, σ].
    let lie = lie_derivative(b, closed_robust);
    let expr = &lie - &(lambda * b);
    let mut dom = boxed(system.domain().bounding_box());
    dom.push(Interval::new(-sigma.max(1e-9), sigma.max(1e-9)));
    let r = bb.check_at_least(&expr, &dom, system.domain().polys(), 0.0);
    match r.verdict {
        Verdict::Holds => {}
        Verdict::Violated { witness, .. } => cexs.push((2, witness)),
        Verdict::Unknown { .. } => return unknown_outcome(&r, bb.max_boxes),
    }

    if cexs.is_empty() {
        SmtOutcome::Certified
    } else {
        SmtOutcome::Counterexamples(cexs)
    }
}
