//! SOSTOOLS-style direct synthesis: one large SOS program with the barrier
//! coefficients as decision variables.
//!
//! SOSTOOLS [11] formulates barrier synthesis as a single SOS program. With
//! both `B` and `λ` unknown the flow constraint is bilinear (a BMI); the
//! paper evaluates this baseline with *fixed multipliers of degree ≤ 2 with
//! random coefficients*, which restores convexity at the cost of guessing.
//! Each attempt draws a fresh `λ`, builds the joint program
//!
//! ```text
//!   find B (free, deg d_B), σᵢ, δᵢ, φᵢ ∈ Σ[x]
//!   s.t.  B − Σσᵢθᵢ ∈ Σ,   −B − Σδᵢξᵢ − ε₁ − ρ ∈ Σ,
//!         L_f B − λB − Σφᵢψᵢ − φ_w(σ*² − w²) − ε₂ ∈ Σ[x, w],
//! ```
//!
//! and accepts the first feasible draw. The term `ρ > 0` forces a
//! non-trivial normalization (`B ≡ 0` satisfies (13) and (15) trivially, so
//! a separation offset is required; we require `B ≤ −ε₁ − ρ` on `Ξ` while
//! pinning `B(x̄_Θ) ≥ ρ` at the initial set's center via an extra linear
//! constraint).

use std::time::Duration;

use snbc_trace::Stopwatch;

use rand::Rng;
use rand::SeedableRng;
use snbc::PolynomialInclusion;
use snbc_dynamics::benchmarks::Benchmark;
use snbc_poly::{lie_derivative, monomial_basis, Polynomial};
use snbc_sos::{SosError, SosExpr, SosProgram};

use crate::SynthesisReport;

/// Configuration of the SOSTOOLS-style baseline.
#[derive(Debug, Clone)]
pub struct SosToolsConfig {
    /// Degree of the unknown barrier polynomial (the paper bounds it by 6).
    pub barrier_degree: u32,
    /// Degree of the SOS multipliers.
    pub multiplier_degree: u32,
    /// Degree of the random fixed multiplier `λ`.
    pub lambda_degree: u32,
    /// Number of random `λ` draws before giving up (`×`).
    pub attempts: usize,
    /// Strictness constants.
    pub epsilon1: f64,
    /// Strictness of the flow condition.
    pub epsilon2: f64,
    /// Normalization offset forcing a non-trivial certificate.
    pub rho: f64,
    /// Wall-clock budget.
    pub time_limit: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SosToolsConfig {
    fn default() -> Self {
        SosToolsConfig {
            barrier_degree: 2,
            multiplier_degree: 2,
            lambda_degree: 0,
            attempts: 5,
            epsilon1: 1e-4,
            epsilon2: 1e-4,
            rho: 0.1,
            time_limit: Duration::from_secs(7200),
            seed: 23,
        }
    }
}

/// The SOSTOOLS-style synthesizer.
#[derive(Debug, Clone, Default)]
pub struct SosTools {
    cfg: SosToolsConfig,
}

impl SosTools {
    /// Creates the baseline with the given configuration.
    pub fn new(cfg: SosToolsConfig) -> Self {
        SosTools { cfg }
    }

    /// Attempts direct SOS synthesis on a benchmark under the shared
    /// controller abstraction.
    pub fn synthesize(&self, bench: &Benchmark, inclusion: &PolynomialInclusion) -> SynthesisReport {
        let t0 = Stopwatch::start();
        let system = &bench.system;
        let n = system.nvars();
        let sigma = inclusion.sigma_star;
        let robust = sigma > 1e-12;
        let nvars = if robust { n + 1 } else { n };
        let field = if robust {
            system.close_loop_with_error(&inclusion.h)
        } else {
            system.close_loop(&inclusion.h)
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.cfg.seed);
        let lambda_basis = monomial_basis(n, self.cfg.lambda_degree);
        let theta_center = system.init().box_center();

        for attempt in 1..=self.cfg.attempts {
            if t0.elapsed() > self.cfg.time_limit {
                return SynthesisReport::failed("SOSTOOLS", bench.name, attempt - 1, t0.elapsed(), "OT");
            }
            // Random fixed multiplier λ with coefficients in [−2, 0] (negative
            // leaning: stable systems want λ < 0 near the equilibrium).
            let lambda = Polynomial::from_coeffs(
                &lambda_basis
                    .iter()
                    .map(|_| rng.gen_range(-2.0..0.0))
                    .collect::<Vec<_>>(),
                &lambda_basis,
            );

            let mut prog = SosProgram::new(nvars);
            // The unknown barrier is represented by one scalar free unknown
            // per basis monomial, B = Σ_α c_α·x^α: every occurrence of B —
            // including the Lie derivative, which is linear in the c_α — is
            // then an affine SosExpr term with a *known* polynomial
            // multiplier.
            let b_basis = monomial_basis(n, self.cfg.barrier_degree);
            let b_coeffs: Vec<_> = (0..b_basis.len()).map(|_| prog.add_free(0)).collect();

            // (13): B − Σσθ ∈ Σ.
            let mut e13 = SosExpr::new();
            for (c, m) in b_coeffs.iter().zip(&b_basis) {
                e13 = e13.add_term(Polynomial::term(1.0, m.clone()), *c);
            }
            for theta in system.init().polys() {
                let s = prog.add_sos(self.cfg.multiplier_degree);
                e13 = e13.add_term(-theta, s);
            }
            prog.require_sos(e13);

            // (14): −B − Σδξ − ε₁ − ρ ∈ Σ.
            let mut e14 =
                SosExpr::from_poly(Polynomial::constant(-self.cfg.epsilon1 - self.cfg.rho));
            for (c, m) in b_coeffs.iter().zip(&b_basis) {
                e14 = e14.add_term(Polynomial::term(-1.0, m.clone()), *c);
            }
            for xi in system.unsafe_set().polys() {
                let d = prog.add_sos(self.cfg.multiplier_degree);
                e14 = e14.add_term(-xi, d);
            }
            prog.require_sos(e14);

            // (15): L_f B − λB − Σφψ − φ_w·(σ*² − w²) − ε₂ ∈ Σ[x, w].
            let mut e15 = SosExpr::from_poly(Polynomial::constant(-self.cfg.epsilon2));
            for (c, m) in b_coeffs.iter().zip(&b_basis) {
                // L_f(x^α) − λ·x^α as the multiplier of coefficient c_α.
                let mono = Polynomial::term(1.0, m.clone());
                let lie_m = lie_derivative(&mono, &field);
                let mult = &lie_m - &(&lambda * &mono);
                e15 = e15.add_term(mult, *c);
            }
            for psi in system.domain().polys() {
                let f = prog.add_sos(self.cfg.multiplier_degree);
                e15 = e15.add_term(-psi, f);
            }
            if robust {
                let w = Polynomial::var(n);
                let wball = &Polynomial::constant(sigma * sigma) - &(&w * &w);
                let fw = prog.add_sos(self.cfg.multiplier_degree);
                e15 = e15.add_term(-&wball, fw);
            }
            prog.require_sos(e15);

            // Normalization: B(center of Θ) ≥ ρ (linear equality with slack —
            // encoded as B(c) − ρ − s = 0, s ≥ 0 via a degree-0 SOS unknown).
            let slack = prog.add_sos(0);
            let mut norm = SosExpr::from_poly(Polynomial::constant(-self.cfg.rho))
                .add_scaled_unknown(-1.0, slack);
            for (c, m) in b_coeffs.iter().zip(&b_basis) {
                norm = norm.add_scaled_unknown(m.eval(&theta_center), *c);
            }
            prog.require_zero(norm);

            // Bound the single big solve by the remaining budget so one
            // monolithic SDP cannot blow through the tool's deadline.
            let remaining = self
                .cfg
                .time_limit
                .saturating_sub(t0.elapsed());
            let solver = snbc_sdp::SdpSolver {
                time_limit: Some(remaining),
                ..Default::default()
            };
            match prog.solve(&solver) {
                Ok(sol) => {
                    let mut barrier = Polynomial::zero();
                    for (c, m) in b_coeffs.iter().zip(&b_basis) {
                        barrier.add_term(sol.poly(*c).constant_term(), m.clone());
                    }
                    let barrier = barrier.prune(1e-10);
                    return SynthesisReport {
                        tool: "SOSTOOLS",
                        benchmark: bench.name.to_string(),
                        success: true,
                        barrier_degree: Some(barrier.degree()),
                        iterations: attempt,
                        t_learn: Duration::ZERO,
                        t_cex: Duration::ZERO,
                        t_verify: t0.elapsed(),
                        t_total: t0.elapsed(),
                        barrier: Some(barrier),
                        failure: None,
                    };
                }
                Err(SosError::Infeasible { .. }) => continue,
                Err(_) => continue,
            }
        }
        SynthesisReport::failed(
            "SOSTOOLS",
            bench.name,
            self.cfg.attempts,
            t0.elapsed(),
            "×",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snbc_dynamics::benchmarks;

    fn trivial_inclusion(law: &str) -> PolynomialInclusion {
        PolynomialInclusion {
            h: law.parse().unwrap(),
            sigma_tilde: 0.0,
            sigma_star: 0.0,
            lipschitz: 0.0,
            covering_radius: 0.0,
            mesh_points: 0,
        }
    }

    #[test]
    fn direct_synthesis_on_small_benchmark() {
        let bench = benchmarks::benchmark(3);
        let report =
            SosTools::new(SosToolsConfig::default()).synthesize(&bench, &trivial_inclusion("-0.5*x0"));
        assert!(report.success, "SOSTOOLS failed: {:?}", report.failure);
        let b = report.barrier.unwrap();
        // The synthesized barrier separates Θ from Ξ.
        assert!(b.eval(&bench.system.init().box_center()) > 0.0);
        assert!(b.eval(&bench.system.unsafe_set().box_center()) < 0.0);
    }

    #[test]
    fn gives_up_cleanly_when_degree_insufficient() {
        // Degree-0 barrier cannot separate anything.
        let bench = benchmarks::benchmark(3);
        let cfg = SosToolsConfig {
            barrier_degree: 0,
            attempts: 2,
            ..Default::default()
        };
        let report = SosTools::new(cfg).synthesize(&bench, &trivial_inclusion("-0.5*x0"));
        assert!(!report.success);
        assert_eq!(report.failure.as_deref(), Some("×"));
    }
}
