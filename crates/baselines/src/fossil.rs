//! FOSSIL-style CEGIS: neural learner + SMT-style (δ-complete interval)
//! verifier.
//!
//! FOSSIL [1] trains a neural barrier certificate and certifies it with an
//! SMT solver, feeding SMT counterexamples back into training. The verifier
//! here is the interval branch-and-bound of [`snbc_interval`] — the same
//! δ-decision procedure family as dReal, with the same exponential
//! sensitivity to the state dimension that Table 1 exposes (`OT` for
//! `n_x ≥ 5`).

use std::time::Duration;

use snbc_trace::Stopwatch;

use snbc::{Learner, LearnerConfig, PolynomialInclusion, TrainingSets};
use snbc_dynamics::benchmarks::{Benchmark, LambdaSpec};
use snbc_interval::BranchAndBound;
use snbc_nn::{MultiplierNet, QuadraticNet};


use crate::smt_verify::{verify_conditions, SmtOutcome};
use crate::SynthesisReport;

/// Configuration of the FOSSIL-style baseline.
#[derive(Debug, Clone)]
pub struct FossilConfig {
    /// Learner hyper-parameters (shared shape with SNBC's learner).
    pub learner: LearnerConfig,
    /// Per-set sample count.
    pub batch: usize,
    /// Maximum CEGIS iterations.
    pub max_iterations: usize,
    /// Wall-clock budget (the paper's 7200 s `OT` limit).
    pub time_limit: Duration,
    /// δ precision of the SMT-style verifier.
    pub delta: f64,
    /// Box budget per verifier call (the in-simulator stand-in for solver
    /// wall-clock: when exhausted the verdict is Unknown and the run aborts
    /// as a timeout, mirroring dReal giving up).
    pub max_boxes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FossilConfig {
    fn default() -> Self {
        FossilConfig {
            learner: LearnerConfig::default(),
            batch: 300,
            max_iterations: 20,
            time_limit: Duration::from_secs(7200),
            delta: 1e-3,
            max_boxes: 20_000_000,
            seed: 5,
        }
    }
}

/// The FOSSIL-style synthesizer.
#[derive(Debug, Clone, Default)]
pub struct Fossil {
    cfg: FossilConfig,
}

impl Fossil {
    /// Creates the baseline with the given configuration.
    pub fn new(cfg: FossilConfig) -> Self {
        Fossil { cfg }
    }

    /// Runs the CEGIS loop on a benchmark under the controller abstraction
    /// `u = h(x) + w` (shared with SNBC so the comparison isolates the
    /// verifier technology).
    pub fn synthesize(&self, bench: &Benchmark, inclusion: &PolynomialInclusion) -> SynthesisReport {
        let t0 = Stopwatch::start();
        let system = &bench.system;
        let n = system.nvars();

        let b_net = QuadraticNet::new(n, &bench.nn_b_hidden, self.cfg.seed);
        let lambda_net = match &bench.lambda_spec {
            LambdaSpec::Constant => MultiplierNet::constant(-0.5),
            LambdaSpec::Linear(hidden) => MultiplierNet::linear(n, hidden, self.cfg.seed + 1),
        };
        let mut learner = Learner::new(b_net, lambda_net, self.cfg.learner.clone());
        let mut sets = TrainingSets::sample(system, self.cfg.batch, self.cfg.seed + 2);
        let closed_robust = system.close_loop_with_error(&inclusion.h);

        let mut t_learn = Duration::ZERO;
        let mut t_verify = Duration::ZERO;

        for iter in 1..=self.cfg.max_iterations {
            if t0.elapsed() > self.cfg.time_limit {
                return SynthesisReport::failed("FOSSIL", bench.name, iter - 1, t0.elapsed(), "OT");
            }
            let tl = Stopwatch::start();
            learner.train(&closed_robust, inclusion.sigma_star, &sets);
            t_learn += tl.elapsed();
            let b = learner.barrier_polynomial().prune(1e-9);
            let lambda = learner.lambda_polynomial();

            let tv = Stopwatch::start();
            let bb = BranchAndBound {
                delta: self.cfg.delta,
                max_boxes: self.cfg.max_boxes,
                ..Default::default()
            };
            let verdicts = verify_conditions(
                &b,
                &lambda,
                system,
                inclusion.sigma_star,
                &closed_robust,
                &bb,
            );
            t_verify += tv.elapsed();
            match verdicts {
                SmtOutcome::Certified => {
                    return SynthesisReport {
                        tool: "FOSSIL",
                        benchmark: bench.name.to_string(),
                        success: true,
                        barrier_degree: Some(b.degree()),
                        iterations: iter,
                        t_learn,
                        t_cex: Duration::ZERO,
                        t_verify,
                        t_total: t0.elapsed(),
                        barrier: Some(b),
                        failure: None,
                    };
                }
                SmtOutcome::Counterexamples(cexs) => {
                    // Each SMT witness seeds a small jittered cloud so the
                    // learner feels the violated region, not a single point.
                    use rand::Rng;
                    use rand::SeedableRng;
                    let mut rng =
                        rand::rngs::StdRng::seed_from_u64(self.cfg.seed ^ (iter as u64) << 8);
                    for (kind, mut point) in cexs {
                        point.truncate(n);
                        let set = match kind {
                            0 => system.init(),
                            1 => system.unsafe_set(),
                            _ => system.domain(),
                        };
                        let mut cloud = vec![point.clone()];
                        let scale = 0.03;
                        for _ in 0..8 {
                            let jit: Vec<f64> = point
                                .iter()
                                .zip(set.bounding_box())
                                .map(|(&p, &(lo, hi))| {
                                    (p + rng.gen_range(-scale..scale) * (hi - lo)).clamp(lo, hi)
                                })
                                .collect();
                            if set.contains(&jit) {
                                cloud.push(jit);
                            }
                        }
                        match kind {
                            0 => sets.init.extend(cloud),
                            1 => sets.unsafe_.extend(cloud),
                            _ => sets.domain.extend(cloud),
                        }
                    }
                }
                SmtOutcome::Timeout => {
                    return SynthesisReport::failed("FOSSIL", bench.name, iter, t0.elapsed(), "OT");
                }
                SmtOutcome::Undecided => {
                    return SynthesisReport::failed("FOSSIL", bench.name, iter, t0.elapsed(), "×");
                }
            }
        }
        SynthesisReport::failed(
            "FOSSIL",
            bench.name,
            self.cfg.max_iterations,
            t0.elapsed(),
            "iterations exhausted",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snbc_dynamics::benchmarks;

    fn trivial_inclusion(law: &str) -> PolynomialInclusion {
        PolynomialInclusion {
            h: law.parse().unwrap(),
            sigma_tilde: 0.0,
            sigma_star: 0.0,
            lipschitz: 0.0,
            covering_radius: 0.0,
            mesh_points: 0,
        }
    }

    #[test]
    fn solves_small_benchmark() {
        let bench = benchmarks::benchmark(3);
        let inclusion = trivial_inclusion("-0.5*x0");
        let cfg = FossilConfig {
            max_iterations: 12,
            time_limit: Duration::from_secs(300),
            ..Default::default()
        };
        let report = Fossil::new(cfg).synthesize(&bench, &inclusion);
        assert!(report.success, "FOSSIL failed: {:?}", report.failure);
        assert_eq!(report.tool, "FOSSIL");
        assert!(report.barrier.is_some());
    }

    #[test]
    fn times_out_with_tiny_box_budget() {
        let bench = benchmarks::benchmark(9); // 5-D: box budget explodes
        let inclusion = trivial_inclusion("-0.5*x4");
        let cfg = FossilConfig {
            max_iterations: 3,
            max_boxes: 2_000,
            time_limit: Duration::from_secs(60),
            learner: LearnerConfig {
                epochs: 30,
                ..Default::default()
            },
            ..Default::default()
        };
        let report = Fossil::new(cfg).synthesize(&bench, &inclusion);
        assert!(!report.success);
        assert_eq!(report.failure.as_deref(), Some("OT"));
    }
}
