use std::time::Duration;

use snbc_poly::Polynomial;

/// Uniform outcome record for every synthesizer (SNBC and baselines), carrying
/// the Table 1 columns.
#[derive(Debug, Clone)]
pub struct SynthesisReport {
    /// Tool name.
    pub tool: &'static str,
    /// Benchmark name.
    pub benchmark: String,
    /// `true` when a certificate was produced and verified by the tool's own
    /// verifier.
    pub success: bool,
    /// Degree of the produced barrier certificate, if any (`d_B`).
    pub barrier_degree: Option<u32>,
    /// CEGIS / refinement iterations used.
    pub iterations: usize,
    /// Learning / candidate-generation time (`T_l`).
    pub t_learn: Duration,
    /// Counterexample-generation time (`T_c`; zero for tools without a
    /// dedicated phase).
    pub t_cex: Duration,
    /// Verification time (`T_v`).
    pub t_verify: Duration,
    /// End-to-end time (`T_e`).
    pub t_total: Duration,
    /// The certificate, when produced.
    pub barrier: Option<Polynomial>,
    /// Failure classification for the table: `"OT"` (budget), `"×"`
    /// (infeasible within degree bounds), or a free-form message.
    pub failure: Option<String>,
}

impl SynthesisReport {
    /// A failed report with the given classification.
    pub fn failed(
        tool: &'static str,
        benchmark: impl Into<String>,
        iterations: usize,
        elapsed: Duration,
        failure: impl Into<String>,
    ) -> Self {
        SynthesisReport {
            tool,
            benchmark: benchmark.into(),
            success: false,
            barrier_degree: None,
            iterations,
            t_learn: Duration::ZERO,
            t_cex: Duration::ZERO,
            t_verify: Duration::ZERO,
            t_total: elapsed,
            barrier: None,
            failure: Some(failure.into()),
        }
    }
}
