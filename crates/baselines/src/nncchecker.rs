//! NNCChecker-style synthesis: numerically fitted *polynomial* candidates,
//! verified with the dReal-substitute.
//!
//! NNCChecker [14] synthesizes polynomial barrier certificates of NN-controlled
//! systems by numerical (SOS-flavoured) optimization and certifies them with
//! dReal. Here the candidate is fitted by hinge-loss minimization directly in
//! the monomial-coefficient space (a convex surrogate of the same numerical
//! step), and verification/counterexamples come from the interval
//! branch-and-bound verifier.

use std::time::Duration;

use snbc_trace::Stopwatch;

use rand::Rng;
use rand::SeedableRng;
use snbc::PolynomialInclusion;
use snbc_dynamics::benchmarks::Benchmark;
use snbc_interval::BranchAndBound;
use snbc_poly::{monomial_basis, Monomial, Polynomial};

use crate::smt_verify::{verify_conditions, SmtOutcome};
use crate::SynthesisReport;

/// Configuration of the NNCChecker-style baseline.
#[derive(Debug, Clone)]
pub struct NncCheckerConfig {
    /// Degree of the polynomial candidate `B`.
    pub barrier_degree: u32,
    /// Fixed multiplier constant `λ` used in the flow condition fit.
    pub lambda: f64,
    /// Gradient steps per refinement round.
    pub fit_steps: usize,
    /// Learning rate of the coefficient fit.
    pub learning_rate: f64,
    /// Per-set sample count.
    pub batch: usize,
    /// Maximum refinement iterations.
    pub max_iterations: usize,
    /// Wall-clock budget.
    pub time_limit: Duration,
    /// δ precision of the verifier.
    pub delta: f64,
    /// Box budget per verifier call.
    pub max_boxes: usize,
    /// Margin enforced during fitting.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NncCheckerConfig {
    fn default() -> Self {
        NncCheckerConfig {
            barrier_degree: 2,
            lambda: -0.5,
            fit_steps: 600,
            learning_rate: 0.05,
            batch: 300,
            max_iterations: 15,
            time_limit: Duration::from_secs(7200),
            delta: 1e-3,
            max_boxes: 20_000_000,
            epsilon: 0.05,
            seed: 11,
        }
    }
}

/// The NNCChecker-style synthesizer.
#[derive(Debug, Clone, Default)]
pub struct NncChecker {
    cfg: NncCheckerConfig,
}

impl NncChecker {
    /// Creates the baseline with the given configuration.
    pub fn new(cfg: NncCheckerConfig) -> Self {
        NncChecker { cfg }
    }

    /// Runs candidate-fit / verify / refine on a benchmark under the shared
    /// controller abstraction.
    pub fn synthesize(&self, bench: &Benchmark, inclusion: &PolynomialInclusion) -> SynthesisReport {
        let t0 = Stopwatch::start();
        let system = &bench.system;
        let n = system.nvars();
        let basis = monomial_basis(n, self.cfg.barrier_degree);
        let closed_robust = system.close_loop_with_error(&inclusion.h);
        let sigma = inclusion.sigma_star.max(1e-9);

        let mut rng = rand::rngs::StdRng::seed_from_u64(self.cfg.seed);
        let mut init_pts = system.init().sample(self.cfg.batch, &mut rng);
        let mut unsafe_pts = system.unsafe_set().sample(self.cfg.batch, &mut rng);
        let mut domain_pts = system.domain().sample(self.cfg.batch, &mut rng);

        // Coefficients of B in the basis, random small init.
        let mut coeffs: Vec<f64> = (0..basis.len()).map(|_| rng.gen_range(-0.1..0.1)).collect();

        let mut t_learn = Duration::ZERO;
        let mut t_verify = Duration::ZERO;

        for iter in 1..=self.cfg.max_iterations {
            if t0.elapsed() > self.cfg.time_limit {
                return SynthesisReport::failed("NNCChecker", bench.name, iter - 1, t0.elapsed(), "OT");
            }
            let tl = Stopwatch::start();
            self.fit(
                &mut coeffs,
                &basis,
                &closed_robust,
                sigma,
                &init_pts,
                &unsafe_pts,
                &domain_pts,
            );
            t_learn += tl.elapsed();
            let b = Polynomial::from_coeffs(&coeffs, &basis).prune(1e-10);

            let tv = Stopwatch::start();
            let bb = BranchAndBound {
                delta: self.cfg.delta,
                max_boxes: self.cfg.max_boxes,
                ..Default::default()
            };
            let lambda = Polynomial::constant(self.cfg.lambda);
            let outcome = verify_conditions(&b, &lambda, system, sigma, &closed_robust, &bb);
            t_verify += tv.elapsed();
            match outcome {
                SmtOutcome::Certified => {
                    return SynthesisReport {
                        tool: "NNCChecker",
                        benchmark: bench.name.to_string(),
                        success: true,
                        barrier_degree: Some(b.degree()),
                        iterations: iter,
                        t_learn,
                        t_cex: Duration::ZERO,
                        t_verify,
                        t_total: t0.elapsed(),
                        barrier: Some(b),
                        failure: None,
                    };
                }
                SmtOutcome::Counterexamples(cexs) => {
                    for (kind, mut point) in cexs {
                        point.truncate(n);
                        match kind {
                            0 => init_pts.push(point),
                            1 => unsafe_pts.push(point),
                            _ => domain_pts.push(point),
                        }
                    }
                }
                SmtOutcome::Timeout => {
                    return SynthesisReport::failed("NNCChecker", bench.name, iter, t0.elapsed(), "OT");
                }
                SmtOutcome::Undecided => {
                    return SynthesisReport::failed("NNCChecker", bench.name, iter, t0.elapsed(), "×");
                }
            }
        }
        SynthesisReport::failed(
            "NNCChecker",
            bench.name,
            self.cfg.max_iterations,
            t0.elapsed(),
            "×",
        )
    }

    /// Hinge-loss fit of the barrier coefficients (convex in the coefficients;
    /// plain subgradient descent).
    #[allow(clippy::too_many_arguments)]
    fn fit(
        &self,
        coeffs: &mut [f64],
        basis: &[Monomial],
        closed_robust: &[Polynomial],
        sigma: f64,
        init_pts: &[Vec<f64>],
        unsafe_pts: &[Vec<f64>],
        domain_pts: &[Vec<f64>],
    ) {
        let n = closed_robust.len();
        let eps = self.cfg.epsilon;
        let lam = self.cfg.lambda;
        // Precompute features and Lie features at samples.
        let feats = |x: &[f64]| -> Vec<f64> { basis.iter().map(|m| m.eval(x)).collect() };
        // Lie features: ∂(x^α)/∂xᵢ·fᵢ(x, w) at worst-case w — approximated by
        // evaluating at both w = ±σ and keeping both rows.
        let lie_feats = |x: &[f64], w: f64| -> Vec<f64> {
            let mut xw = x[..n].to_vec();
            xw.push(w);
            let f: Vec<f64> = closed_robust.iter().map(|p| p.eval(&xw)).collect();
            basis
                .iter()
                .map(|m| {
                    let mut acc = 0.0;
                    for i in 0..n {
                        if let Some((c, dm)) = m.derivative(i) {
                            acc += c * dm.eval(x) * f[i];
                        }
                    }
                    acc
                })
                .collect()
        };
        let init_f: Vec<Vec<f64>> = init_pts.iter().map(|x| feats(x)).collect();
        let unsafe_f: Vec<Vec<f64>> = unsafe_pts.iter().map(|x| feats(x)).collect();
        let dom_f: Vec<Vec<f64>> = domain_pts.iter().map(|x| feats(x)).collect();
        let dom_lo: Vec<Vec<f64>> = domain_pts.iter().map(|x| lie_feats(x, -sigma)).collect();
        let dom_hi: Vec<Vec<f64>> = domain_pts.iter().map(|x| lie_feats(x, sigma)).collect();

        let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
        for step in 0..self.cfg.fit_steps {
            let lr = self.cfg.learning_rate / (1.0 + 0.01 * step as f64);
            let mut grad = vec![0.0; coeffs.len()];
            // Init: want c·φ ≥ eps; hinge on eps − c·φ.
            for f in &init_f {
                if dot(coeffs, f) < eps {
                    for (g, fi) in grad.iter_mut().zip(f) {
                        *g -= fi;
                    }
                }
            }
            // Unsafe: want c·φ ≤ −eps.
            for f in &unsafe_f {
                if dot(coeffs, f) > -eps {
                    for (g, fi) in grad.iter_mut().zip(f) {
                        *g += fi;
                    }
                }
            }
            // Flow: want c·lie − λ·c·φ ≥ eps at both error extremes.
            for ((f, lo), hi) in dom_f.iter().zip(&dom_lo).zip(&dom_hi) {
                for lie in [lo, hi] {
                    let margin = dot(coeffs, lie) - lam * dot(coeffs, f);
                    if margin < eps {
                        for ((g, li), fi) in grad.iter_mut().zip(lie.iter()).zip(f) {
                            *g -= li - lam * fi;
                        }
                    }
                }
            }
            let total = init_f.len() + unsafe_f.len() + 2 * dom_f.len();
            for (c, g) in coeffs.iter_mut().zip(&grad) {
                *c -= lr * g / total as f64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snbc_dynamics::benchmarks;

    fn trivial_inclusion(law: &str) -> PolynomialInclusion {
        PolynomialInclusion {
            h: law.parse().unwrap(),
            sigma_tilde: 0.0,
            sigma_star: 0.0,
            lipschitz: 0.0,
            covering_radius: 0.0,
            mesh_points: 0,
        }
    }

    #[test]
    fn solves_small_benchmark() {
        let bench = benchmarks::benchmark(3);
        let report =
            NncChecker::new(NncCheckerConfig::default()).synthesize(&bench, &trivial_inclusion("-0.5*x0"));
        assert!(report.success, "NNCChecker failed: {:?}", report.failure);
        assert_eq!(report.barrier_degree, Some(2));
    }

    #[test]
    fn reports_timeout_with_tiny_budget() {
        let bench = benchmarks::benchmark(10); // 6-D
        let cfg = NncCheckerConfig {
            max_boxes: 1_000,
            fit_steps: 50,
            max_iterations: 2,
            ..Default::default()
        };
        let report = NncChecker::new(cfg).synthesize(&bench, &trivial_inclusion("-0.5*x5"));
        assert!(!report.success);
    }
}
