//! Baseline synthesizers that SNBC is compared against in Table 1.
//!
//! Three tools, reproduced to their architectural essence:
//!
//! * [`Fossil`] — FOSSIL \[1\]: a CEGIS loop pairing a *neural* BC learner with
//!   an **SMT-style verifier**. The original uses dReal/Z3; here the
//!   δ-complete interval branch-and-bound of [`snbc_interval`] plays that
//!   role, with the same qualitative behaviour: complete on small systems,
//!   exponential blow-up with the state dimension.
//! * [`NncChecker`] — NNCChecker \[14\]: iterative synthesis of *polynomial*
//!   BC candidates by numerical optimization, verified with dReal (again the
//!   interval substitute here).
//! * [`SosTools`] — SOSTOOLS \[11\]: direct one-shot SOS synthesis with the
//!   barrier coefficients as decision variables. The bilinear `λ·B` term is
//!   handled as the paper describes evaluating this baseline: fixed
//!   multipliers `λ` with random coefficients of degree ≤ 2, a fresh draw per
//!   attempt. This solves *one large* SOS program per attempt — precisely the
//!   cost the split LMI formulation of SNBC avoids.
//!
//! All baselines consume the same [`snbc_dynamics::benchmarks::Benchmark`]
//! and controller abstractions as the main pipeline and emit a uniform
//! [`SynthesisReport`] so the Table 1 harness can tabulate them side by side.

mod fossil;
mod nncchecker;
mod report;
mod smt_verify;
mod sostools;

pub use fossil::{Fossil, FossilConfig};
pub use nncchecker::{NncChecker, NncCheckerConfig};
pub use report::SynthesisReport;
pub use sostools::{SosTools, SosToolsConfig};
