//! Content-addressed on-disk certificate cache.
//!
//! A cache entry is keyed by the canonical compact JSON (`snbc-cache-key/1`)
//! of everything that determines a race's outcome bit-for-bit: the system
//! (name, dimension, vector field, set constraints and boxes), the trained
//! controller (layer sizes, activation, and the **exact parameter bit
//! stream** — every weight as its IEEE-754 bit pattern, so the byte-exact
//! `key.json` comparison below covers controller identity in full), every
//! deterministic configuration knob, the candidate grid, and the solver
//! version. `time_limit` is deliberately **excluded**: it can change
//! *whether* a run finishes, never *what* it produces, and the cache only
//! ever stores certified outcomes.
//!
//! The key text is hashed (two independent 64-bit FNV-1a passes → 32 hex
//! characters) into a directory name holding three artifacts:
//!
//! ```text
//! <cache>/<hash>/key.json          # the canonical key, for collision checks
//! <cache>/<hash>/result.json       # the job result (snbc-batch-report/1 shape)
//! <cache>/<hash>/certificate.txt   # the SafetyCertificate, human-readable
//! <cache>/<hash>/progress.ndjson   # canonical snbc-progress/1 event lines
//! <cache>/<hash>/metrics.json      # canonical snbc-metrics/1 per-job snapshot
//! ```
//!
//! The last two are the **observability artifacts**: the canonical (seq- and
//! job-less) progress events the job emitted and its per-job metric
//! snapshot. On a cache hit the batch driver replays the events and merges
//! the snapshot, which is what keeps the canonical progress stream and the
//! run-level metrics snapshot byte-identical between cold and warm runs.
//!
//! A lookup re-reads `key.json` and compares it byte-for-byte with the
//! probe's canonical text, so even a full 128-bit hash collision degrades to
//! a cache miss, never to a wrong certificate. Entries are staged in a
//! sibling temp directory and published with a single atomic `rename`, so
//! concurrent batch runs sharing a cache dir (and crashes mid-store) can
//! never expose a torn entry.

use std::path::{Path, PathBuf};

use snbc::SnbcConfig;
use snbc_dynamics::{Ccds, SemiAlgebraicSet};
use snbc_nn::Mlp;
use snbc_telemetry::json::Value;

use crate::grid::ConfigGrid;
use crate::jobs::BatchError;

/// Schema tag of the canonical key document.
pub const KEY_SCHEMA: &str = "snbc-cache-key/1";

/// A fully resolved cache key: the canonical JSON text plus its hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    canonical: String,
    hash: String,
}

impl CacheKey {
    /// Builds the key for racing `grid` over `system` under `controller` and
    /// `base` — see the module docs for exactly what is hashed.
    pub fn new(system: &Ccds, controller: &Mlp, base: &SnbcConfig, grid: &ConfigGrid) -> CacheKey {
        let canonical = key_json(system, controller, base, grid).to_compact_string();
        let hash = hash128_hex(canonical.as_bytes());
        CacheKey { canonical, hash }
    }

    /// The canonical `snbc-cache-key/1` JSON text.
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The 32-hex-character content hash (the cache directory name).
    pub fn hash(&self) -> &str {
        &self.hash
    }
}

/// The on-disk cache: a directory of content-addressed entries.
#[derive(Debug, Clone)]
pub struct CertificateCache {
    dir: PathBuf,
}

/// A cached entry, as returned by [`CertificateCache::lookup`].
#[derive(Debug, Clone)]
pub struct CachedEntry {
    /// The stored `result.json` text.
    pub result_json: String,
    /// The stored certificate text, when the entry has one.
    pub certificate: Option<String>,
    /// The stored canonical progress event lines, when the entry has them
    /// (entries written before the observability artifacts existed do not).
    pub progress_ndjson: Option<String>,
    /// The stored canonical per-job metrics snapshot text, when present.
    pub metrics_json: Option<String>,
}

impl CertificateCache {
    /// Opens (lazily — no I/O happens here) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> CertificateCache {
        CertificateCache { dir: dir.into() }
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks `key` up. Any failure — missing entry, unreadable files, or a
    /// key-byte mismatch (hash collision) — is reported as a miss.
    pub fn lookup(&self, key: &CacheKey) -> Option<CachedEntry> {
        let entry = self.dir.join(key.hash());
        let stored_key = std::fs::read_to_string(entry.join("key.json")).ok()?;
        if stored_key != key.canonical() {
            return None;
        }
        let result_json = std::fs::read_to_string(entry.join("result.json")).ok()?;
        let certificate = std::fs::read_to_string(entry.join("certificate.txt")).ok();
        let progress_ndjson = std::fs::read_to_string(entry.join("progress.ndjson")).ok();
        let metrics_json = std::fs::read_to_string(entry.join("metrics.json")).ok();
        Some(CachedEntry {
            result_json,
            certificate,
            progress_ndjson,
            metrics_json,
        })
    }

    /// Stores a result (and its certificate and observability artifacts,
    /// when present) under `key`.
    ///
    /// The entry is written into a private temp directory and published with
    /// one atomic `rename`, so a reader (or a crash) can never observe a
    /// torn entry — `key.json` present with `result.json` half-written.
    /// When an entry already exists (a concurrent `snbc batch` sharing the
    /// cache dir, or a stale entry that failed validation and triggered a
    /// re-race), it is replaced; losing that swap to another writer is fine,
    /// because entries are content-addressed and the bytes can only be
    /// replaced by equivalent bytes.
    pub fn store(
        &self,
        key: &CacheKey,
        result_json: &str,
        certificate: Option<&str>,
        progress_ndjson: Option<&str>,
        metrics_json: Option<&str>,
    ) -> Result<(), BatchError> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

        let entry = self.dir.join(key.hash());
        let io = |path: &Path, e: std::io::Error| BatchError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        // Unique per process × call, so two writers never share a staging dir.
        let tmp = self.dir.join(format!(
            "{}.tmp-{}-{}",
            key.hash(),
            std::process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&tmp).map_err(|e| io(&tmp, e))?;
        let staged = (|| -> Result<(), BatchError> {
            let key_path = tmp.join("key.json");
            std::fs::write(&key_path, key.canonical()).map_err(|e| io(&key_path, e))?;
            let result_path = tmp.join("result.json");
            std::fs::write(&result_path, result_json).map_err(|e| io(&result_path, e))?;
            if let Some(cert) = certificate {
                let cert_path = tmp.join("certificate.txt");
                std::fs::write(&cert_path, cert).map_err(|e| io(&cert_path, e))?;
            }
            if let Some(events) = progress_ndjson {
                let events_path = tmp.join("progress.ndjson");
                std::fs::write(&events_path, events).map_err(|e| io(&events_path, e))?;
            }
            if let Some(snap) = metrics_json {
                let snap_path = tmp.join("metrics.json");
                std::fs::write(&snap_path, snap).map_err(|e| io(&snap_path, e))?;
            }
            Ok(())
        })();
        if let Err(e) = staged {
            // Best-effort teardown: the staging failure is the real error.
            let _ = std::fs::remove_dir_all(&tmp); // audit:allow(swallowed-result)
            return Err(e);
        }
        if std::fs::rename(&tmp, &entry).is_ok() {
            return Ok(());
        }
        // The entry path is occupied (renaming a directory onto a non-empty
        // one fails). Clear it and retry once; if another writer repopulates
        // it first, accept their equivalent entry and discard ours. The
        // retried rename reports any failure that matters here.
        let _ = std::fs::remove_dir_all(&entry); // audit:allow(swallowed-result)
        match std::fs::rename(&tmp, &entry) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Best-effort teardown of the losing staging dir.
                let _ = std::fs::remove_dir_all(&tmp); // audit:allow(swallowed-result)
                if entry.join("key.json").is_file() {
                    Ok(())
                } else {
                    Err(io(&entry, e))
                }
            }
        }
    }
}

/// The canonical key document. Every `f64` knob is encoded as its exact IEEE
/// bit pattern (`f64::to_bits`) so the text never depends on float
/// formatting; human-readable floats appear only in display artifacts.
fn key_json(system: &Ccds, controller: &Mlp, base: &SnbcConfig, grid: &ConfigGrid) -> Value {
    Value::Obj(vec![
        ("schema".to_string(), Value::Str(KEY_SCHEMA.to_string())),
        (
            "solver".to_string(),
            Value::Obj(vec![(
                "snbc_version".to_string(),
                Value::Str(env!("CARGO_PKG_VERSION").to_string()),
            )]),
        ),
        ("system".to_string(), system_json(system)),
        ("controller".to_string(), controller_json(controller)),
        ("config".to_string(), config_json(base)),
        ("grid".to_string(), grid.to_json()),
    ])
}

fn system_json(system: &Ccds) -> Value {
    Value::Obj(vec![
        ("name".to_string(), Value::Str(system.name().to_string())),
        ("nvars".to_string(), Value::Int(system.nvars() as u64)),
        (
            "field".to_string(),
            Value::Arr(
                system
                    .field()
                    .iter()
                    .map(|p| Value::Str(p.to_string()))
                    .collect(),
            ),
        ),
        ("init".to_string(), set_json(system.init())),
        ("domain".to_string(), set_json(system.domain())),
        ("unsafe".to_string(), set_json(system.unsafe_set())),
    ])
}

fn set_json(set: &SemiAlgebraicSet) -> Value {
    Value::Obj(vec![
        (
            "polys".to_string(),
            Value::Arr(
                set.polys()
                    .iter()
                    .map(|p| Value::Str(p.to_string()))
                    .collect(),
            ),
        ),
        (
            "box".to_string(),
            Value::Arr(
                set.bounding_box()
                    .iter()
                    .flat_map(|&(lo, hi)| [Value::Int(lo.to_bits()), Value::Int(hi.to_bits())])
                    .collect(),
            ),
        ),
    ])
}

fn controller_json(controller: &Mlp) -> Value {
    Value::Obj(vec![
        (
            "layers".to_string(),
            Value::Arr(
                controller
                    .layer_sizes()
                    .iter()
                    .map(|&s| Value::Int(s as u64))
                    .collect(),
            ),
        ),
        (
            "activation".to_string(),
            Value::Str(format!("{:?}", controller.activation())),
        ),
        // The complete parameter stream, bit-exact. A digest here would
        // punch a hole in the `key.json` byte-compare collision guard: two
        // controllers with colliding digests would key identically and a
        // wrong certificate could be served. Controllers are small MLPs, so
        // the full stream costs little and closes that hole.
        (
            "params".to_string(),
            Value::Arr(
                controller
                    .params()
                    .iter()
                    .map(|&p| Value::Int(p.to_bits()))
                    .collect(),
            ),
        ),
    ])
}

fn config_json(cfg: &SnbcConfig) -> Value {
    let bits = |f: f64| Value::Int(f.to_bits());
    Value::Obj(vec![
        ("batch".to_string(), Value::Int(cfg.batch as u64)),
        (
            "max_iterations".to_string(),
            Value::Int(cfg.max_iterations as u64),
        ),
        (
            "reseed_after_plateau".to_string(),
            Value::Int(cfg.reseed_after_plateau as u64),
        ),
        ("seed".to_string(), Value::Int(cfg.seed)),
        (
            "approx".to_string(),
            Value::Obj(vec![
                ("degree".to_string(), Value::Int(u64::from(cfg.approx.degree))),
                ("mesh_spacing".to_string(), bits(cfg.approx.mesh_spacing)),
                (
                    "max_mesh_points".to_string(),
                    Value::Int(cfg.approx.max_mesh_points as u64),
                ),
            ]),
        ),
        (
            "learner".to_string(),
            Value::Obj(vec![
                ("learning_rate".to_string(), bits(cfg.learner.learning_rate)),
                ("epochs".to_string(), Value::Int(cfg.learner.epochs as u64)),
                ("epsilon".to_string(), bits(cfg.learner.epsilon)),
                ("leaky_slope".to_string(), bits(cfg.learner.leaky_slope)),
                ("weight_init".to_string(), bits(cfg.learner.weights.0)),
                ("weight_unsafe".to_string(), bits(cfg.learner.weights.1)),
                ("weight_flow".to_string(), bits(cfg.learner.weights.2)),
                ("loss_target".to_string(), bits(cfg.learner.loss_target)),
                ("weight_decay".to_string(), bits(cfg.learner.weight_decay)),
            ]),
        ),
        (
            "verifier".to_string(),
            Value::Obj(vec![
                (
                    "multiplier_degree".to_string(),
                    Value::Int(u64::from(cfg.verifier.multiplier_degree)),
                ),
                (
                    "lambda_degree".to_string(),
                    Value::Int(u64::from(cfg.verifier.lambda_degree)),
                ),
                ("epsilon1".to_string(), bits(cfg.verifier.epsilon1)),
                ("epsilon2".to_string(), bits(cfg.verifier.epsilon2)),
            ]),
        ),
        (
            "cex".to_string(),
            Value::Obj(vec![
                ("restarts".to_string(), Value::Int(cfg.cex.restarts as u64)),
                ("steps".to_string(), Value::Int(cfg.cex.steps as u64)),
                ("step_size".to_string(), bits(cfg.cex.step_size)),
                (
                    "ball_samples".to_string(),
                    Value::Int(cfg.cex.ball_samples as u64),
                ),
                ("seed".to_string(), Value::Int(cfg.cex.seed)),
            ]),
        ),
    ])
}

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = 0x9e37_79b9_7f4a_7c15;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(offset: u64, bytes: &[u8]) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 128 hash bits as 32 hex characters: two FNV-1a passes over the same
/// bytes from independent offset bases. Not cryptographic — the byte-exact
/// `key.json` comparison in [`CertificateCache::lookup`] is the correctness
/// guarantee; the hash only spreads entries across directories.
fn hash128_hex(bytes: &[u8]) -> String {
    format!(
        "{:016x}{:016x}",
        fnv1a64(FNV_OFFSET_A, bytes),
        fnv1a64(FNV_OFFSET_B, bytes)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use snbc_dynamics::benchmarks;
    use snbc_nn::{train_controller, ControllerTraining};

    fn c3_key(seed_axis: Vec<u64>) -> CacheKey {
        let bench = benchmarks::benchmark(3);
        let controller = train_controller(
            bench.system.domain().bounding_box(),
            bench.target_law,
            &ControllerTraining {
                epochs: 50,
                ..Default::default()
            },
        );
        let grid = ConfigGrid {
            seeds: seed_axis,
            ..Default::default()
        };
        CacheKey::new(&bench.system, &controller, &SnbcConfig::default(), &grid)
    }

    #[test]
    fn key_is_stable_and_grid_sensitive() {
        let a = c3_key(vec![1, 2]);
        let b = c3_key(vec![1, 2]);
        let c = c3_key(vec![2, 1]);
        assert_eq!(a, b, "same inputs, same canonical key");
        assert_ne!(a.hash(), c.hash(), "axis order is part of the key");
        assert_eq!(a.hash().len(), 32);
        assert!(a.canonical().starts_with("{\"schema\":\"snbc-cache-key/1\""));
    }

    /// Any single differing parameter bit must change the canonical key:
    /// controller identity is covered by the byte-exact `key.json`
    /// comparison itself, not by a collision-prone digest.
    #[test]
    fn key_covers_the_full_controller_parameter_stream() {
        let bench = benchmarks::benchmark(3);
        let controller = train_controller(
            bench.system.domain().bounding_box(),
            bench.target_law,
            &ControllerTraining {
                epochs: 50,
                ..Default::default()
            },
        );
        let mut tweaked = controller.clone();
        let mut params = tweaked.params().to_vec();
        params[0] = f64::from_bits(params[0].to_bits() ^ 1);
        tweaked.set_params(&params);
        let grid = ConfigGrid::default();
        let a = CacheKey::new(&bench.system, &controller, &SnbcConfig::default(), &grid);
        let b = CacheKey::new(&bench.system, &tweaked, &SnbcConfig::default(), &grid);
        assert_ne!(a.canonical(), b.canonical(), "one flipped bit must re-key");
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let key = c3_key(vec![1]);
        let dir = std::env::temp_dir().join(format!("snbc-cache-test-{}", key.hash()));
        let cache = CertificateCache::new(&dir);
        assert!(cache.lookup(&key).is_none(), "cold cache misses");
        cache
            .store(
                &key,
                "{\"certified\":true}",
                Some("certificate body"),
                Some("{\"ev\":\"job-done\"}\n"),
                Some("{\"schema\":\"snbc-metrics/1\"}"),
            )
            .unwrap();
        let hit = cache.lookup(&key).expect("warm cache hits");
        assert_eq!(hit.result_json, "{\"certified\":true}");
        assert_eq!(hit.certificate.as_deref(), Some("certificate body"));
        assert_eq!(hit.progress_ndjson.as_deref(), Some("{\"ev\":\"job-done\"}\n"));
        assert_eq!(hit.metrics_json.as_deref(), Some("{\"schema\":\"snbc-metrics/1\"}"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn collision_with_different_key_bytes_is_a_miss() {
        let key = c3_key(vec![1]);
        let other = c3_key(vec![1, 2]);
        let dir = std::env::temp_dir().join(format!("snbc-cache-test-x-{}", key.hash()));
        let cache = CertificateCache::new(&dir);
        cache.store(&key, "{}", None, None, None).unwrap();
        // Forge a directory under `other`'s hash holding `key`'s key bytes.
        let forged = dir.join(other.hash());
        std::fs::create_dir_all(&forged).unwrap();
        std::fs::write(forged.join("key.json"), key.canonical()).unwrap();
        std::fs::write(forged.join("result.json"), "{}").unwrap();
        assert!(cache.lookup(&other).is_none(), "key bytes must match exactly");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
