//! The racing driver: K candidate CEGIS loops advanced in deterministic
//! round-robin waves over `snbc-par`.
//!
//! # Scheduling and the winner rule
//!
//! The race expands a [`ConfigGrid`] into candidates and advances **all**
//! live candidates by exactly one cooperative slice per wave — a slice is
//! either the candidate's setup (§3 abstraction + network/sample
//! initialization) or one whole CEGIS round of its [`snbc::CegisEngine`].
//! Slices within a wave run in parallel via `snbc_par::par_for_chunks`
//! (chunk length 1: each candidate is a disjoint `&mut` unit), and the wave
//! boundary is a barrier.
//!
//! Because every candidate is bitwise deterministic in isolation (per-
//! candidate seeds, `snbc-par` inside the slice) and the wave barrier fixes
//! *when* winners are compared, the race outcome depends only on the grid —
//! never on `SNBC_THREADS` or scheduling luck: among all candidates that
//! have certified by the end of a wave, **the lowest grid index wins**. A
//! candidate that certifies in a later wave than another can never win over
//! it, and within a wave the index decides.
//!
//! To keep that contract load-invariant, racing candidates are budgeted by
//! **round count only**: the base config's wall-clock `time_limit` is
//! neutralized per candidate (a slow machine must not flip a candidate from
//! `InProgress` to `TimedOut` and change the winner), and `max_iterations`
//! — which also caps the wave loop — is the deterministic budget. The
//! one-shot [`Snbc::synthesize`] timeout contract is unchanged outside the
//! racer.
//!
//! # Telemetry
//!
//! Each candidate records into its own [`Telemetry::fork`] so concurrent
//! spans cannot interleave; after the race only the winner's span tree is
//! adopted (in deterministic position) under the `race` span, alongside the
//! `candidates_launched` / `waves` / `race_winner_index` counters.

use snbc::{CegisEngine, CegisStatus, Snbc, SnbcConfig, SnbcResult};
use snbc_dynamics::benchmarks::Benchmark;
use snbc_metrics::{Metrics, Progress, ProgressEvent};
use snbc_nn::Mlp;
use snbc_telemetry::Telemetry;

use crate::grid::{CandidateConfig, ConfigGrid};

/// Result of one race.
#[derive(Debug)]
pub struct RaceOutcome {
    /// The deterministic winner, if any candidate certified.
    pub winner: Option<RaceWinner>,
    /// Number of candidates the grid expanded to.
    pub candidates_launched: usize,
    /// Waves executed (setup wave included) before the race settled.
    pub waves: usize,
    /// Candidates whose setup failed (§3 LP infeasible), as
    /// `(grid index, message)` pairs in grid order.
    pub failures: Vec<(usize, String)>,
}

/// The winning candidate and its verified certificate.
#[derive(Debug)]
pub struct RaceWinner {
    /// The grid point that won.
    pub config: CandidateConfig,
    /// Its synthesis result (barrier, multiplier, margins, timings).
    pub result: SnbcResult,
}

/// One racing unit: a candidate configuration plus its cooperative state.
struct Candidate {
    cfg: CandidateConfig,
    tele: Telemetry,
    /// Private event buffer, drained into the race's sink in grid-index
    /// order at each wave barrier (see the module docs on determinism).
    prog: Progress,
    /// Private metric registry fork, merged in grid-index order after the
    /// race settles.
    met: Metrics,
    lane: Lane,
}

enum Lane {
    /// Not yet constructed; the next slice runs setup (§3 abstraction).
    Pending(Box<SnbcConfig>),
    /// Mid-CEGIS; the next slice runs one round.
    Running(Box<CegisEngine>),
    /// Reached a terminal CEGIS status.
    Done(CegisStatus),
    /// Setup failed (§3 LP infeasible); the candidate is out of the race.
    Failed(String),
}

impl Candidate {
    /// Runs one cooperative slice. No-op once the candidate is settled.
    fn advance(&mut self, bench: &Benchmark, controller: &Mlp) {
        // Temporarily park a cheap placeholder so the lane can be moved out.
        let lane = std::mem::replace(&mut self.lane, Lane::Failed(String::new()));
        self.lane = match lane {
            Lane::Pending(cfg) => {
                let snbc = Snbc::new(*cfg)
                    .with_telemetry(self.tele.clone())
                    .with_progress(self.prog.clone())
                    .with_metrics(self.met.clone());
                match snbc.engine(bench, controller) {
                    Ok(engine) => Lane::Running(Box::new(engine)),
                    Err(e) => Lane::Failed(e.to_string()),
                }
            }
            Lane::Running(mut engine) => {
                let status = engine.step();
                if status.is_terminal() {
                    Lane::Done(status)
                } else {
                    Lane::Running(engine)
                }
            }
            settled => settled,
        };
    }

    fn certified(&self) -> bool {
        matches!(&self.lane, Lane::Done(s) if s.is_certified())
    }

    /// Whether the candidate still has work to do.
    fn live(&self) -> bool {
        matches!(self.lane, Lane::Pending(_) | Lane::Running(_))
    }
}

/// Races the grid's candidates on a benchmark with its pre-trained
/// controller and returns the deterministic winner (lowest grid index among
/// the candidates certified at the end of the settling wave), or `None` when
/// every candidate exhausts its iteration budget or fails setup. The base
/// config's wall-clock `time_limit` is neutralized per candidate — racing
/// budgets by deterministic round count, see the module docs.
///
/// Records a `race` span on `telemetry` carrying `candidates_launched`,
/// `waves`, and (when a winner exists) `race_winner_index`, with the
/// winner's full CEGIS span tree adopted beneath it.
pub fn race(
    bench: &Benchmark,
    controller: &Mlp,
    base: &SnbcConfig,
    grid: &ConfigGrid,
    telemetry: &Telemetry,
    progress: &Progress,
    metrics: &Metrics,
) -> RaceOutcome {
    let span = telemetry.span("race");
    let mut candidates: Vec<Candidate> = grid
        .expand()
        .into_iter()
        .map(|cfg| {
            // Budget by round count only: a wall-clock limit is machine- and
            // load-dependent, so a candidate tripping `TimedOut` near the
            // budget could flip the winner between runs and break the
            // bitwise-determinism contract. `max_iterations` (which also
            // caps the wave loop below) is the racing budget.
            let mut applied = cfg.apply(base);
            applied.time_limit = std::time::Duration::MAX;
            Candidate {
                tele: telemetry.fork(),
                prog: progress.fork_buffer().with_candidate(cfg.index as u64),
                met: metrics.fork(),
                lane: Lane::Pending(Box::new(applied)),
                cfg,
            }
        })
        .collect();
    let launched = candidates.len();

    // Wave cap: one setup slice, at most `max_iterations` rounds, plus one
    // slack slice for the terminal-status bookkeeping — a race can never
    // need more, so the cap only guards against bookkeeping bugs.
    let max_waves = base.max_iterations + 2;
    let mut waves = 0usize;
    while waves < max_waves {
        if candidates.iter().all(|c| !c.live()) {
            break;
        }
        waves += 1;
        snbc_par::par_for_chunks(&mut candidates, 1, |_idx, unit| {
            for cand in unit {
                cand.advance(bench, controller);
            }
        });
        // Barrier: the wave is complete for *every* candidate before any
        // winner is declared, so the set of certified candidates at this
        // point is independent of the worker count. Candidate event buffers
        // drain here, in grid-index order — the one serialization point
        // that keeps the merged stream independent of `SNBC_THREADS`.
        if progress.is_on() {
            for cand in &candidates {
                cand.prog.drain_into(progress);
            }
            let live = candidates.iter().filter(|c| c.live()).count();
            let certified = candidates.iter().filter(|c| c.certified()).count();
            progress.emit(ProgressEvent::Wave {
                wave: waves as u64,
                live: live as u64,
                certified: certified as u64,
            });
        }
        if candidates.iter().any(Candidate::certified) {
            break;
        }
    }

    // Merge candidate registries in grid order (the index order fixes the
    // float accumulation order of histogram sums), then the race counters.
    for cand in &candidates {
        metrics.merge(&cand.met);
    }
    metrics.add("candidates", launched as u64);
    metrics.add("waves", waves as u64);
    metrics.observe(
        "waves_per_race",
        snbc_metrics::buckets::WAVES,
        waves as f64,
    );

    telemetry.add("candidates_launched", launched as u64);
    telemetry.add("waves", waves as u64);
    let failures: Vec<(usize, String)> = candidates
        .iter()
        .filter_map(|c| match &c.lane {
            Lane::Failed(msg) => Some((c.cfg.index, msg.clone())),
            _ => None,
        })
        .collect();
    let winner = candidates
        .iter()
        .position(Candidate::certified)
        .and_then(|i| {
            telemetry.add("race_winner_index", candidates[i].cfg.index as u64);
            telemetry.adopt(&candidates[i].tele);
            let cand = candidates.swap_remove(i);
            match cand.lane {
                Lane::Done(CegisStatus::Certified(result)) => Some(RaceWinner {
                    config: cand.cfg,
                    result: *result,
                }),
                _ => None,
            }
        });
    drop(span);
    RaceOutcome {
        winner,
        candidates_launched: launched,
        waves,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snbc_dynamics::benchmarks;
    use snbc_nn::{train_controller, ControllerTraining};

    fn c3_setup() -> (Benchmark, Mlp) {
        let bench = benchmarks::benchmark(3);
        let controller = train_controller(
            bench.system.domain().bounding_box(),
            bench.target_law,
            &ControllerTraining {
                epochs: 300,
                ..Default::default()
            },
        );
        (bench, controller)
    }

    #[test]
    fn race_winner_matches_solo_synthesis() {
        let (bench, controller) = c3_setup();
        let base = SnbcConfig {
            max_iterations: 12,
            ..Default::default()
        };
        let grid = ConfigGrid {
            seeds: vec![1, 2],
            lambda_degrees: vec![1],
            multiplier_degrees: vec![2],
            mesh_points: vec![20_000],
        };
        let telemetry = Telemetry::recording();
        let _root = telemetry.span("test");
        let metrics = Metrics::recording();
        let outcome = race(
            &bench,
            &controller,
            &base,
            &grid,
            &telemetry,
            &Progress::off(),
            &metrics,
        );
        let winner = outcome.winner.expect("some candidate certifies");
        assert_eq!(outcome.candidates_launched, 2);
        assert!(outcome.waves >= 2, "setup wave + at least one round");
        let snap = metrics.snapshot(false);
        assert_eq!(snap.counter("candidates"), 2);
        assert_eq!(snap.counter("waves"), outcome.waves as u64);
        assert!(snap.counter("rounds") >= 1, "candidate engines record rounds");

        // The winner's certificate must equal the one the solo driver finds
        // with the same candidate configuration.
        let cands = grid.expand();
        let solo = Snbc::new(cands[winner.config.index].apply(&base))
            .synthesize(&bench, &controller)
            .expect("solo run certifies too");
        assert_eq!(winner.result.barrier, solo.barrier);
        assert_eq!(winner.result.lambda, solo.lambda);
        assert_eq!(winner.result.iterations, solo.iterations);
    }

    #[test]
    fn empty_grid_has_no_winner() {
        let (bench, controller) = c3_setup();
        let grid = ConfigGrid {
            seeds: vec![],
            ..Default::default()
        };
        let telemetry = Telemetry::off();
        let outcome = race(
            &bench,
            &controller,
            &SnbcConfig::default(),
            &grid,
            &telemetry,
            &Progress::off(),
            &Metrics::off(),
        );
        assert!(outcome.winner.is_none());
        assert_eq!(outcome.candidates_launched, 0);
        assert_eq!(outcome.waves, 0);
    }
}
