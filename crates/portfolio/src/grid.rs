//! The configuration grid a race expands: seeds × multiplier shapes
//! (`lambda_degree`) × SOS multiplier degrees × §3 mesh granularities.
//!
//! The expansion order is **fixed** (seeds outermost, mesh innermost) and a
//! candidate's position in that expansion is its *grid index* — the
//! tie-breaker of the deterministic winner rule (`docs/PORTFOLIO.md`).

use snbc::SnbcConfig;
use snbc_telemetry::json::Value;

/// Axes of the candidate grid. Every combination becomes one racing
/// candidate, in the fixed nesting order `seeds → lambda_degrees →
/// multiplier_degrees → mesh_points`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigGrid {
    /// RNG seeds for network initialization and sampling (`SnbcConfig::seed`).
    pub seeds: Vec<u64>,
    /// Multiplier shapes: the verifier's `lambda_degree` (0 ⇒ constant λ).
    pub lambda_degrees: Vec<u32>,
    /// SOS S-procedure multiplier degrees (`VerifierConfig::multiplier_degree`).
    pub multiplier_degrees: Vec<u32>,
    /// §3 abstraction mesh budgets (`ApproxOptions::max_mesh_points`).
    pub mesh_points: Vec<usize>,
}

impl Default for ConfigGrid {
    /// Three seeds against the default shape axes — the smallest grid that
    /// exercises the racing rule without multiplying solver cost.
    fn default() -> Self {
        ConfigGrid {
            seeds: vec![1, 2, 3],
            lambda_degrees: vec![1],
            multiplier_degrees: vec![2],
            mesh_points: vec![20_000],
        }
    }
}

impl ConfigGrid {
    /// Number of candidates the grid expands to.
    pub fn len(&self) -> usize {
        self.seeds.len()
            * self.lambda_degrees.len()
            * self.multiplier_degrees.len()
            * self.mesh_points.len()
    }

    /// Whether the expansion is empty (any axis empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into candidate configurations in the fixed order;
    /// `CandidateConfig::index` is the expansion position.
    pub fn expand(&self) -> Vec<CandidateConfig> {
        let mut out = Vec::with_capacity(self.len());
        for &seed in &self.seeds {
            for &lambda_degree in &self.lambda_degrees {
                for &multiplier_degree in &self.multiplier_degrees {
                    for &mesh_points in &self.mesh_points {
                        out.push(CandidateConfig {
                            index: out.len(),
                            seed,
                            lambda_degree,
                            multiplier_degree,
                            mesh_points,
                        });
                    }
                }
            }
        }
        out
    }

    /// Canonical JSON for the cache key: axis order and element order are
    /// preserved exactly as configured (two grids with the same axes in a
    /// different order race in a different order, so they key differently).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            (
                "seeds".to_string(),
                Value::Arr(self.seeds.iter().map(|&s| Value::Int(s)).collect()),
            ),
            (
                "lambda_degrees".to_string(),
                Value::Arr(
                    self.lambda_degrees
                        .iter()
                        .map(|&d| Value::Int(u64::from(d)))
                        .collect(),
                ),
            ),
            (
                "multiplier_degrees".to_string(),
                Value::Arr(
                    self.multiplier_degrees
                        .iter()
                        .map(|&d| Value::Int(u64::from(d)))
                        .collect(),
                ),
            ),
            (
                "mesh_points".to_string(),
                Value::Arr(self.mesh_points.iter().map(|&m| Value::Int(m as u64)).collect()),
            ),
        ])
    }
}

/// One expanded grid point: the configuration a single racing candidate runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateConfig {
    /// Position in the grid expansion — the deterministic tie-breaker: among
    /// all candidates certified at the end of a wave, the lowest index wins.
    pub index: usize,
    /// `SnbcConfig::seed` for this candidate.
    pub seed: u64,
    /// `VerifierConfig::lambda_degree` (the multiplier shape axis).
    pub lambda_degree: u32,
    /// `VerifierConfig::multiplier_degree`.
    pub multiplier_degree: u32,
    /// `ApproxOptions::max_mesh_points`.
    pub mesh_points: usize,
}

impl CandidateConfig {
    /// Applies this grid point to a base configuration. The counterexample
    /// RNG gets its own per-candidate stream derived from the candidate seed
    /// (the same per-unit seeding idiom as `crates/core/src/cex.rs`), so
    /// candidates never share a random sequence however they are scheduled.
    pub fn apply(&self, base: &SnbcConfig) -> SnbcConfig {
        let mut cfg = base.clone();
        cfg.seed = self.seed;
        cfg.cex.seed = base.cex.seed.wrapping_add(self.seed.wrapping_mul(7919));
        cfg.verifier.lambda_degree = self.lambda_degree;
        cfg.verifier.multiplier_degree = self.multiplier_degree;
        cfg.approx.max_mesh_points = self.mesh_points;
        cfg
    }

    /// Canonical JSON used inside batch reports and cached results.
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("index".to_string(), Value::Int(self.index as u64)),
            ("seed".to_string(), Value::Int(self.seed)),
            ("lambda_degree".to_string(), Value::Int(u64::from(self.lambda_degree))),
            (
                "multiplier_degree".to_string(),
                Value::Int(u64::from(self.multiplier_degree)),
            ),
            ("mesh_points".to_string(), Value::Int(self.mesh_points as u64)),
        ])
    }

    /// Rebuilds a candidate from its report JSON.
    pub fn from_json(v: &Value) -> Result<CandidateConfig, String> {
        let field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("candidate config missing `{name}`"))
        };
        Ok(CandidateConfig {
            index: field("index")? as usize,
            seed: field("seed")?,
            lambda_degree: field("lambda_degree")? as u32, // audit:allow(lossy-cast) — degrees are tiny
            multiplier_degree: field("multiplier_degree")? as u32, // audit:allow(lossy-cast) — degrees are tiny
            mesh_points: field("mesh_points")? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_order_is_seeds_outermost_mesh_innermost() {
        let grid = ConfigGrid {
            seeds: vec![7, 8],
            lambda_degrees: vec![0, 1],
            multiplier_degrees: vec![2],
            mesh_points: vec![100, 200],
        };
        let cands = grid.expand();
        assert_eq!(cands.len(), 8);
        assert_eq!(grid.len(), 8);
        assert_eq!(
            cands.iter().map(|c| c.index).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>()
        );
        // First four share seed 7; mesh toggles fastest.
        assert!(cands[..4].iter().all(|c| c.seed == 7));
        assert_eq!((cands[0].mesh_points, cands[1].mesh_points), (100, 200));
        assert_eq!((cands[0].lambda_degree, cands[2].lambda_degree), (0, 1));
        assert_eq!(cands[4].seed, 8);
    }

    #[test]
    fn apply_overrides_the_base_config() {
        let base = SnbcConfig::default();
        let c = CandidateConfig {
            index: 3,
            seed: 42,
            lambda_degree: 0,
            multiplier_degree: 4,
            mesh_points: 500,
        };
        let cfg = c.apply(&base);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.verifier.lambda_degree, 0);
        assert_eq!(cfg.verifier.multiplier_degree, 4);
        assert_eq!(cfg.approx.max_mesh_points, 500);
        assert_ne!(cfg.cex.seed, base.cex.seed);
        // Round-trips through report JSON.
        let back = CandidateConfig::from_json(&c.to_json()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn empty_axis_empties_the_grid() {
        let grid = ConfigGrid {
            seeds: vec![],
            ..Default::default()
        };
        assert!(grid.is_empty());
        assert!(grid.expand().is_empty());
    }
}
