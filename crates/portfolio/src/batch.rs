//! The batch certificate service: run a parsed [`BatchSpec`] job-by-job,
//! racing each job's grid unless its certificate is already in the
//! content-addressed cache.
//!
//! # The `snbc-batch-report/1` schema
//!
//! [`BatchOutcome::report_json`] serializes one object per job — its name,
//! its cache key hash, and its [`JobResult`] — plus a totals summary. The
//! report deliberately contains **no** cache hit/miss flags, **no** wall
//! times, and **no** filesystem paths: it must be byte-identical across
//! `SNBC_THREADS` settings *and* across cold/warm cache runs of the same
//! job set (`tests/portfolio_determinism.rs` holds this line). Hit/miss
//! accounting lives in the telemetry counters (`cache_hit`, `cache_miss`)
//! instead, where run reports — which do carry timings — already live.
//!
//! # Observability
//!
//! The batch driver is the pipeline's progress/metrics aggregation point:
//! each job gets a job-scoped [`Progress`] handle (`job-start`, the race's
//! per-round events, `job-done`) and every job's race records into a fresh
//! per-job registry that is merged into the run-level [`Metrics`] **in job
//! order**. On a cache miss the job's canonical event lines and canonical
//! metric snapshot are stored next to the certificate; on a hit they are
//! replayed/merged back (plus an environmental `cache-hit` event and
//! `cache_hit` counter), which keeps the canonical stream and snapshot
//! byte-identical between cold and warm runs — see `docs/OBSERVABILITY.md`.

use std::path::PathBuf;

use snbc::{SafetyCertificate, SnbcConfig};
use snbc_dynamics::benchmarks::{self, Benchmark};
use snbc_metrics::progress::parse_stream;
use snbc_metrics::{Metrics, MetricsSnapshot, Progress, ProgressEvent};
use snbc_nn::{train_controller, ControllerTraining, Mlp};
use snbc_telemetry::json::{self, Value};
use snbc_telemetry::Telemetry;

use crate::cache::{CacheKey, CertificateCache};
use crate::grid::CandidateConfig;
use crate::jobs::{BatchError, BatchSpec, JobSource, JobSpec};
use crate::race::race;

/// Schema tag of the batch report document.
pub const REPORT_SCHEMA: &str = "snbc-batch-report/1";

/// Resolves a job's `"system": "<name>"` source into a benchmark and its
/// trained controller. The CLI wires its system-file loader in here; the
/// indirection keeps `snbc-portfolio` independent of the CLI crate.
pub type SystemResolver<'a> = &'a dyn Fn(&str) -> Result<(Benchmark, Mlp), String>;

/// Batch-wide options.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Base configuration every job starts from (job fields override it).
    pub base: SnbcConfig,
    /// Certificate-cache root; `None` disables caching (every job races).
    pub cache_dir: Option<PathBuf>,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            base: SnbcConfig::default(),
            cache_dir: None,
        }
    }
}

/// The deterministic per-job result — exactly what is cached and reported.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Whether any candidate certified.
    pub certified: bool,
    /// Candidates the grid expanded to.
    pub candidates: usize,
    /// Waves the race ran.
    pub waves: usize,
    /// Grid index of the winner, when one exists.
    pub winner_index: Option<usize>,
    /// The winning grid point.
    pub winner: Option<CandidateConfig>,
    /// CEGIS iterations the winner used.
    pub iterations: Option<usize>,
    /// The winner's certificate in `snbc-certificate v1` text form.
    pub certificate: Option<String>,
}

impl JobResult {
    /// Canonical JSON (the `result.json` cache artifact and the per-job
    /// payload of the batch report).
    pub fn to_json(&self) -> Value {
        let opt_int = |v: Option<usize>| match v {
            Some(n) => Value::Int(n as u64),
            None => Value::Null,
        };
        Value::Obj(vec![
            ("certified".to_string(), Value::Bool(self.certified)),
            ("candidates".to_string(), Value::Int(self.candidates as u64)),
            ("waves".to_string(), Value::Int(self.waves as u64)),
            ("winner_index".to_string(), opt_int(self.winner_index)),
            (
                "winner".to_string(),
                match &self.winner {
                    Some(w) => w.to_json(),
                    None => Value::Null,
                },
            ),
            ("iterations".to_string(), opt_int(self.iterations)),
            (
                "certificate".to_string(),
                match &self.certificate {
                    Some(c) => Value::Str(c.clone()),
                    None => Value::Null,
                },
            ),
        ])
    }

    /// Parses a cached `result.json`.
    pub fn from_json(v: &Value) -> Result<JobResult, String> {
        let certified = match v.get("certified") {
            Some(Value::Bool(b)) => *b,
            _ => return Err("missing bool `certified`".to_string()),
        };
        let int_field = |name: &str| -> Result<usize, String> {
            v.get(name)
                .and_then(Value::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("missing integer `{name}`"))
        };
        let opt_int = |name: &str| match v.get(name) {
            None | Some(Value::Null) => Ok(None),
            Some(x) => x
                .as_u64()
                .map(|n| Some(n as usize))
                .ok_or_else(|| format!("`{name}` must be an integer or null")),
        };
        let winner = match v.get("winner") {
            None | Some(Value::Null) => None,
            Some(w) => Some(CandidateConfig::from_json(w)?),
        };
        let certificate = match v.get("certificate") {
            None | Some(Value::Null) => None,
            Some(Value::Str(s)) => Some(s.clone()),
            Some(_) => return Err("`certificate` must be a string or null".to_string()),
        };
        Ok(JobResult {
            certified,
            candidates: int_field("candidates")?,
            waves: int_field("waves")?,
            winner_index: opt_int("winner_index")?,
            winner,
            iterations: opt_int("iterations")?,
            certificate,
        })
    }
}

/// One finished job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's name from the spec.
    pub name: String,
    /// Its content-addressed cache key.
    pub key: CacheKey,
    /// Whether the result came from the cache (telemetry carries this too).
    pub cache_hit: bool,
    /// The deterministic result.
    pub result: JobResult,
}

/// All finished jobs, in spec order.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-job outcomes.
    pub jobs: Vec<JobOutcome>,
}

impl BatchOutcome {
    /// Number of jobs served from the cache.
    pub fn hits(&self) -> usize {
        self.jobs.iter().filter(|j| j.cache_hit).count()
    }

    /// Number of jobs that ran a live race.
    pub fn misses(&self) -> usize {
        self.jobs.len() - self.hits()
    }

    /// The `snbc-batch-report/1` document. Byte-identical for the same job
    /// set regardless of thread count or cache temperature — see the module
    /// docs for what is therefore excluded.
    pub fn report_json(&self) -> String {
        let jobs = self
            .jobs
            .iter()
            .map(|j| {
                Value::Obj(vec![
                    ("name".to_string(), Value::Str(j.name.clone())),
                    ("key".to_string(), Value::Str(j.key.hash().to_string())),
                    ("result".to_string(), j.result.to_json()),
                ])
            })
            .collect();
        let certified = self.jobs.iter().filter(|j| j.result.certified).count();
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(REPORT_SCHEMA.to_string())),
            ("jobs".to_string(), Value::Arr(jobs)),
            (
                "summary".to_string(),
                Value::Obj(vec![
                    ("jobs".to_string(), Value::Int(self.jobs.len() as u64)),
                    ("certified".to_string(), Value::Int(certified as u64)),
                ]),
            ),
        ])
        .to_pretty_string()
    }
}

/// Runs every job in `spec`: resolve the system and controller, compute the
/// cache key, serve from the cache when the key is present (with the stored
/// certificate re-parsed as an integrity check — a corrupt entry degrades
/// to a live race, never to a bad answer), otherwise race the grid and
/// store the outcome when it certifies (failures are never cached, so a
/// rerun under a larger budget can still succeed).
///
/// Each job is bracketed by `job-start`/`job-done` events on a job-scoped
/// clone of `progress`, with the race's per-round events in between (live
/// on a miss, replayed from the cache entry on a hit). `metrics` gains each
/// job's per-job registry merged in job order plus the environmental
/// `cache_hit`/`cache_miss` counters; telemetry gains a `batch` span with
/// one indexed `job` span per job carrying the same hit/miss counters.
pub fn run_batch(
    spec: &BatchSpec,
    opts: &BatchOptions,
    resolve: SystemResolver<'_>,
    telemetry: &Telemetry,
    progress: &Progress,
    metrics: &Metrics,
) -> Result<BatchOutcome, BatchError> {
    let batch_span = telemetry.span("batch");
    let cache = opts.cache_dir.as_ref().map(CertificateCache::new);
    let ctx = JobCtx {
        opts,
        resolve,
        cache: cache.as_ref(),
        telemetry,
        metrics,
    };
    let mut jobs = Vec::with_capacity(spec.jobs.len());
    for (index, job) in spec.jobs.iter().enumerate() {
        let job_span = telemetry.span_indexed("job", index as u64);
        telemetry.label("name", &job.name);
        let jp = progress.with_job(index as u64);
        jp.emit(ProgressEvent::JobStart {
            name: job.name.clone(),
        });
        let outcome = run_job(index, job, &ctx, &jp)?;
        metrics.add("jobs", 1);
        if outcome.result.certified {
            metrics.add("jobs_certified", 1);
        }
        jp.emit(ProgressEvent::JobDone {
            name: outcome.name.clone(),
            certified: outcome.result.certified,
            candidates: outcome.result.candidates as u64,
            waves: outcome.result.waves as u64,
            winner_index: outcome.result.winner_index.map(|i| i as u64),
            iterations: outcome.result.iterations.map(|i| i as u64),
        });
        drop(job_span);
        jobs.push(outcome);
    }
    drop(batch_span);
    Ok(BatchOutcome { jobs })
}

/// Per-run context shared by every `run_job` call.
struct JobCtx<'a> {
    opts: &'a BatchOptions,
    resolve: SystemResolver<'a>,
    cache: Option<&'a CertificateCache>,
    telemetry: &'a Telemetry,
    metrics: &'a Metrics,
}

fn run_job(
    index: usize,
    job: &JobSpec,
    ctx: &JobCtx<'_>,
    progress: &Progress,
) -> Result<JobOutcome, BatchError> {
    let (bench, controller) = match &job.source {
        JobSource::Benchmark(k) => {
            let bench = benchmarks::benchmark(*k);
            let training = ControllerTraining {
                epochs: job
                    .controller_epochs
                    .unwrap_or(ControllerTraining::default().epochs),
                ..Default::default()
            };
            let controller = train_controller(
                bench.system.domain().bounding_box(),
                bench.target_law,
                &training,
            );
            (bench, controller)
        }
        JobSource::System(path) => (ctx.resolve)(path).map_err(|message| BatchError::Job {
            index,
            message: format!("system `{path}`: {message}"),
        })?,
    };
    let mut base = ctx.opts.base.clone();
    if let Some(iters) = job.max_iterations {
        base.max_iterations = iters;
    }
    let key = CacheKey::new(&bench.system, &controller, &base, &job.grid);

    if let Some(cache) = ctx.cache {
        if let Some((result, events, snap)) = cached_result(cache, &key) {
            ctx.telemetry.add("cache_hit", 1);
            ctx.metrics.add_env("cache_hit", 1);
            // The hit marker is environmental (live streams only); the
            // stored race events replay into canonical sinks so the
            // canonical stream is byte-identical to the cold run's.
            progress.emit(ProgressEvent::CacheHit);
            progress.replay(&events);
            ctx.metrics.merge_snapshot(&snap);
            return Ok(JobOutcome {
                name: job.name.clone(),
                key,
                cache_hit: true,
                result,
            });
        }
    }
    ctx.telemetry.add("cache_miss", 1);
    ctx.metrics.add_env("cache_miss", 1);

    // The race records into a capture sink and a fresh per-job registry
    // regardless of the caller's sinks, so a stored entry always carries
    // complete canonical artifacts for warm-run replay.
    let capture = Progress::capture();
    let race_progress = Progress::fanout(vec![progress.clone(), capture.clone()]);
    let job_metrics = Metrics::recording();
    let outcome = race(
        &bench,
        &controller,
        &base,
        &job.grid,
        ctx.telemetry,
        &race_progress,
        &job_metrics,
    );
    ctx.metrics.merge(&job_metrics);
    let result = match outcome.winner {
        Some(winner) => JobResult {
            certified: true,
            candidates: outcome.candidates_launched,
            waves: outcome.waves,
            winner_index: Some(winner.config.index),
            iterations: Some(winner.result.iterations),
            certificate: Some(
                SafetyCertificate::from_result(bench.system.name(), &winner.result).to_string(),
            ),
            winner: Some(winner.config),
        },
        None => JobResult {
            certified: false,
            candidates: outcome.candidates_launched,
            waves: outcome.waves,
            winner_index: None,
            winner: None,
            iterations: None,
            certificate: None,
        },
    };
    // Only certified outcomes enter the cache: the key deliberately excludes
    // `time_limit`, so a failure (which may be budget-dependent) must never
    // be pinned — a later run under a larger budget gets to race again.
    if result.certified {
        if let Some(cache) = ctx.cache {
            cache.store(
                &key,
                &result.to_json().to_pretty_string(),
                result.certificate.as_deref(),
                Some(&capture.captured()),
                Some(&job_metrics.snapshot(true).to_json_string()),
            )?;
        }
    }
    Ok(JobOutcome {
        name: job.name.clone(),
        key,
        cache_hit: false,
        result,
    })
}

/// Reads and validates a cached entry; any defect — unparseable JSON, a
/// non-certified result (only certified outcomes are ever stored), a
/// result/certificate mismatch, a certificate that fails to re-parse, or
/// missing/corrupt observability artifacts (entries written before they
/// existed included) — makes this a miss, and the job re-races.
fn cached_result(
    cache: &CertificateCache,
    key: &CacheKey,
) -> Option<(JobResult, Vec<(snbc_metrics::Scope, ProgressEvent)>, MetricsSnapshot)> {
    let entry = cache.lookup(key)?;
    let value = json::parse(&entry.result_json).ok()?;
    let result = JobResult::from_json(&value).ok()?;
    if !result.certified {
        return None;
    }
    let cert_text = result.certificate.as_deref()?;
    let _reparsed: SafetyCertificate = cert_text.parse().ok()?;
    if entry.certificate.as_deref() != Some(cert_text) {
        return None;
    }
    let events = parse_stream(entry.progress_ndjson.as_deref()?).ok()?;
    let snap = MetricsSnapshot::parse(entry.metrics_json.as_deref()?).ok()?;
    Some((result, events, snap))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_result_round_trips_through_json() {
        let result = JobResult {
            certified: true,
            candidates: 3,
            waves: 5,
            winner_index: Some(1),
            winner: Some(CandidateConfig {
                index: 1,
                seed: 2,
                lambda_degree: 1,
                multiplier_degree: 2,
                mesh_points: 20_000,
            }),
            iterations: Some(4),
            certificate: Some("snbc-certificate v1\n...".to_string()),
        };
        let back = JobResult::from_json(&result.to_json()).unwrap();
        assert_eq!(back, result);

        let failed = JobResult {
            certified: false,
            candidates: 2,
            waves: 14,
            winner_index: None,
            winner: None,
            iterations: None,
            certificate: None,
        };
        let back = JobResult::from_json(&failed.to_json()).unwrap();
        assert_eq!(back, failed);
    }

    /// A `certified: false` result in the cache (e.g. written by a pre-fix
    /// build, or forged) must read as a miss: the cache key excludes
    /// `time_limit`, so serving a stored failure would pin a potentially
    /// budget-dependent negative forever.
    #[test]
    fn cached_failures_are_never_served() {
        let bench = benchmarks::benchmark(1);
        let controller = train_controller(
            bench.system.domain().bounding_box(),
            bench.target_law,
            &ControllerTraining {
                epochs: 10,
                ..Default::default()
            },
        );
        let key = CacheKey::new(
            &bench.system,
            &controller,
            &SnbcConfig::default(),
            &crate::grid::ConfigGrid::default(),
        );
        let failed = JobResult {
            certified: false,
            candidates: 2,
            waves: 14,
            winner_index: None,
            winner: None,
            iterations: None,
            certificate: None,
        };
        let dir = std::env::temp_dir().join(format!("snbc-batch-test-{}", key.hash()));
        let cache = CertificateCache::new(&dir);
        cache
            .store(&key, &failed.to_json().to_pretty_string(), None, None, None)
            .unwrap();
        assert!(
            cached_result(&cache, &key).is_none(),
            "non-certified entries must degrade to a miss"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_schema_omits_cache_and_timing_fields() {
        let outcome = BatchOutcome {
            jobs: vec![JobOutcome {
                name: "a".to_string(),
                key: CacheKey::new(
                    &benchmarks::benchmark(1).system,
                    &train_controller(
                        benchmarks::benchmark(1).system.domain().bounding_box(),
                        benchmarks::benchmark(1).target_law,
                        &ControllerTraining {
                            epochs: 10,
                            ..Default::default()
                        },
                    ),
                    &SnbcConfig::default(),
                    &crate::grid::ConfigGrid::default(),
                ),
                cache_hit: true,
                result: JobResult {
                    certified: false,
                    candidates: 3,
                    waves: 14,
                    winner_index: None,
                    winner: None,
                    iterations: None,
                    certificate: None,
                },
            }],
        };
        let report = outcome.report_json();
        assert!(report.contains("\"schema\": \"snbc-batch-report/1\""));
        for leak in ["cache", "hit", "elapsed", "time", "path"] {
            assert!(!report.contains(leak), "report must not contain `{leak}`:\n{report}");
        }
        assert_eq!(outcome.hits(), 1);
        assert_eq!(outcome.misses(), 0);
    }
}
