//! The `snbc-batch-jobs/1` input schema: a list of racing jobs for the
//! batch certificate service.
//!
//! ```json
//! {
//!   "schema": "snbc-batch-jobs/1",
//!   "jobs": [
//!     {
//!       "name": "c3-default",
//!       "benchmark": 3,
//!       "grid": { "seeds": [1, 2] },
//!       "max_iterations": 12,
//!       "controller_epochs": 300
//!     },
//!     { "name": "my-plant", "system": "examples/system.json" }
//!   ]
//! }
//! ```
//!
//! Parsing is strict: every diagnostic is a typed [`BatchError`] carrying
//! the offending job index, and **unknown fields at any level are errors**
//! (a typo like `"seed"` for `"seeds"` must not silently race the default
//! grid). Malformed input never panics.

use std::fmt;

use snbc_telemetry::json::{self, Value};

use crate::grid::ConfigGrid;

/// Schema tag expected at the top of a jobs document.
pub const JOBS_SCHEMA: &str = "snbc-batch-jobs/1";

/// Everything that can go wrong preparing or running a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// The jobs document is not valid, at the document level.
    Parse(String),
    /// Job `index` (0-based position in the `jobs` array) is invalid.
    Job {
        /// 0-based position of the offending job.
        index: usize,
        /// What is wrong with it.
        message: String,
    },
    /// An I/O failure reading inputs or writing cache/report artifacts.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        message: String,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Parse(m) => write!(f, "invalid jobs document: {m}"),
            BatchError::Job { index, message } => write!(f, "job #{index}: {message}"),
            BatchError::Io { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for BatchError {}

/// Where a job's system and controller come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSource {
    /// Paper benchmark `C_k`, `k ∈ 1..=14` (`snbc_dynamics::benchmarks`).
    Benchmark(usize),
    /// A system file resolved by the caller (the CLI passes the path to its
    /// own `parse_system` loader via the batch resolver).
    System(String),
}

/// One batch job: a named system plus the grid to race over it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Display name, unique per document (reports and progress lines key on
    /// it; uniqueness is enforced at parse time).
    pub name: String,
    /// The system/controller source.
    pub source: JobSource,
    /// The candidate grid. Missing axes take [`ConfigGrid::default`] values.
    pub grid: ConfigGrid,
    /// Override of `SnbcConfig::max_iterations` for this job.
    pub max_iterations: Option<usize>,
    /// Override of the controller-training epoch count for benchmark jobs.
    pub controller_epochs: Option<usize>,
}

/// A parsed jobs document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSpec {
    /// The jobs, in document order.
    pub jobs: Vec<JobSpec>,
}

impl BatchSpec {
    /// Parses a `snbc-batch-jobs/1` document. See the module docs for the
    /// format; any defect yields a typed [`BatchError`], never a panic.
    pub fn parse(text: &str) -> Result<BatchSpec, BatchError> {
        let doc = json::parse(text).map_err(|e| BatchError::Parse(e.to_string()))?;
        let top = doc
            .as_object()
            .ok_or_else(|| BatchError::Parse("top level must be an object".to_string()))?;
        for (key, _) in top {
            if key != "schema" && key != "jobs" {
                return Err(BatchError::Parse(format!("unknown top-level field `{key}`")));
            }
        }
        match doc.get("schema").and_then(Value::as_str) {
            Some(JOBS_SCHEMA) => {}
            Some(other) => {
                return Err(BatchError::Parse(format!(
                    "unsupported schema `{other}` (expected `{JOBS_SCHEMA}`)"
                )))
            }
            None => {
                return Err(BatchError::Parse(format!(
                    "missing `schema` field (expected `{JOBS_SCHEMA}`)"
                )))
            }
        }
        let jobs_json = doc
            .get("jobs")
            .and_then(Value::as_array)
            .ok_or_else(|| BatchError::Parse("missing `jobs` array".to_string()))?;
        if jobs_json.is_empty() {
            return Err(BatchError::Parse("`jobs` array is empty".to_string()));
        }
        let mut jobs = Vec::with_capacity(jobs_json.len());
        for (index, job) in jobs_json.iter().enumerate() {
            jobs.push(parse_job(index, job)?);
        }
        for (index, job) in jobs.iter().enumerate() {
            if jobs[..index].iter().any(|prior| prior.name == job.name) {
                return Err(BatchError::Job {
                    index,
                    message: format!("duplicate job name `{}`", job.name),
                });
            }
        }
        Ok(BatchSpec { jobs })
    }
}

fn parse_job(index: usize, job: &Value) -> Result<JobSpec, BatchError> {
    let err = |message: String| BatchError::Job { index, message };
    let fields = job
        .as_object()
        .ok_or_else(|| err("must be an object".to_string()))?;
    const KNOWN: [&str; 6] = [
        "name",
        "benchmark",
        "system",
        "grid",
        "max_iterations",
        "controller_epochs",
    ];
    for (key, _) in fields {
        if !KNOWN.contains(&key.as_str()) {
            return Err(err(format!("unknown field `{key}`")));
        }
    }
    let name = job
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| err("missing string field `name`".to_string()))?
        .to_string();
    if name.is_empty() {
        return Err(err("`name` must be non-empty".to_string()));
    }
    let source = match (job.get("benchmark"), job.get("system")) {
        (Some(_), Some(_)) => {
            return Err(err(
                "`benchmark` and `system` are mutually exclusive".to_string()
            ))
        }
        (Some(b), None) => {
            let k = b
                .as_u64()
                .ok_or_else(|| err("`benchmark` must be an integer".to_string()))?;
            // `benchmarks::benchmark` panics outside 1..=14; reject here so a
            // bad job is a typed error with its index, not a panic mid-batch.
            if !(1..=14).contains(&k) {
                return Err(err(format!("`benchmark` must be in 1..=14, got {k}")));
            }
            JobSource::Benchmark(k as usize)
        }
        (None, Some(s)) => JobSource::System(
            s.as_str()
                .ok_or_else(|| err("`system` must be a string path".to_string()))?
                .to_string(),
        ),
        (None, None) => return Err(err("needs `benchmark` or `system`".to_string())),
    };
    let grid = match job.get("grid") {
        Some(g) => parse_grid(index, g)?,
        None => ConfigGrid::default(),
    };
    if grid.is_empty() {
        return Err(err("grid expands to zero candidates".to_string()));
    }
    let usize_field = |field: &str| -> Result<Option<usize>, BatchError> {
        match job.get(field) {
            None => Ok(None),
            Some(v) => {
                let n = v
                    .as_u64()
                    .ok_or_else(|| err(format!("`{field}` must be an integer")))?;
                if n == 0 {
                    return Err(err(format!("`{field}` must be positive")));
                }
                Ok(Some(n as usize))
            }
        }
    };
    Ok(JobSpec {
        name,
        source,
        grid,
        max_iterations: usize_field("max_iterations")?,
        controller_epochs: usize_field("controller_epochs")?,
    })
}

fn parse_grid(index: usize, g: &Value) -> Result<ConfigGrid, BatchError> {
    let err = |message: String| BatchError::Job { index, message };
    let fields = g
        .as_object()
        .ok_or_else(|| err("`grid` must be an object".to_string()))?;
    const AXES: [&str; 4] = ["seeds", "lambda_degrees", "multiplier_degrees", "mesh_points"];
    for (key, _) in fields {
        if !AXES.contains(&key.as_str()) {
            return Err(err(format!("unknown grid axis `{key}`")));
        }
    }
    let axis = |name: &str| -> Result<Option<Vec<u64>>, BatchError> {
        match g.get(name) {
            None => Ok(None),
            Some(v) => {
                let arr = v
                    .as_array()
                    .ok_or_else(|| err(format!("grid axis `{name}` must be an array")))?;
                arr.iter()
                    .map(|e| {
                        e.as_u64()
                            .ok_or_else(|| err(format!("grid axis `{name}` must hold integers")))
                    })
                    .collect::<Result<Vec<u64>, BatchError>>()
                    .map(Some)
            }
        }
    };
    let defaults = ConfigGrid::default();
    let narrow = |name: &str, vals: Option<Vec<u64>>, max: u64| -> Result<Option<Vec<u64>>, BatchError> {
        if let Some(vals) = &vals {
            for &v in vals {
                if v > max {
                    return Err(err(format!("grid axis `{name}` value {v} exceeds {max}")));
                }
            }
        }
        Ok(vals)
    };
    let lambda = narrow("lambda_degrees", axis("lambda_degrees")?, 8)?;
    let mult = narrow("multiplier_degrees", axis("multiplier_degrees")?, 8)?;
    Ok(ConfigGrid {
        seeds: axis("seeds")?.unwrap_or(defaults.seeds),
        lambda_degrees: lambda
            .map(|v| v.iter().map(|&d| d as u32).collect()) // audit:allow(lossy-cast) — bounded to ≤8 above
            .unwrap_or(defaults.lambda_degrees),
        multiplier_degrees: mult
            .map(|v| v.iter().map(|&d| d as u32).collect()) // audit:allow(lossy-cast) — bounded to ≤8 above
            .unwrap_or(defaults.multiplier_degrees),
        mesh_points: axis("mesh_points")?
            .map(|v| v.iter().map(|&m| m as usize).collect())
            .unwrap_or(defaults.mesh_points),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
        "schema": "snbc-batch-jobs/1",
        "jobs": [
            {"name": "a", "benchmark": 3, "grid": {"seeds": [1, 2]},
             "max_iterations": 12, "controller_epochs": 300},
            {"name": "b", "system": "examples/system.json"}
        ]
    }"#;

    #[test]
    fn parses_a_well_formed_document() {
        let spec = BatchSpec::parse(GOOD).unwrap();
        assert_eq!(spec.jobs.len(), 2);
        assert_eq!(spec.jobs[0].source, JobSource::Benchmark(3));
        assert_eq!(spec.jobs[0].grid.seeds, vec![1, 2]);
        assert_eq!(spec.jobs[0].grid.lambda_degrees, vec![1], "default axis");
        assert_eq!(spec.jobs[0].max_iterations, Some(12));
        assert_eq!(
            spec.jobs[1].source,
            JobSource::System("examples/system.json".to_string())
        );
        assert_eq!(spec.jobs[1].grid, ConfigGrid::default());
    }

    #[test]
    fn unknown_fields_carry_the_job_index() {
        let bad = r#"{"schema": "snbc-batch-jobs/1", "jobs": [
            {"name": "a", "benchmark": 3},
            {"name": "b", "benchmark": 4, "grd": {}}
        ]}"#;
        match BatchSpec::parse(bad) {
            Err(BatchError::Job { index: 1, message }) => {
                assert!(message.contains("unknown field `grd`"), "{message}")
            }
            other => panic!("expected job error, got {other:?}"),
        }
        let bad_axis = r#"{"schema": "snbc-batch-jobs/1", "jobs": [
            {"name": "a", "benchmark": 3, "grid": {"seed": [1]}}
        ]}"#;
        match BatchSpec::parse(bad_axis) {
            Err(BatchError::Job { index: 0, message }) => {
                assert!(message.contains("unknown grid axis `seed`"), "{message}")
            }
            other => panic!("expected job error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_defective_documents_without_panicking() {
        for (text, needle) in [
            ("not json", "invalid jobs document"),
            ("[]", "top level must be an object"),
            (r#"{"jobs": []}"#, "missing `schema`"),
            (r#"{"schema": "snbc-batch-jobs/2", "jobs": []}"#, "unsupported schema"),
            (r#"{"schema": "snbc-batch-jobs/1", "jobs": []}"#, "empty"),
            (r#"{"schema": "snbc-batch-jobs/1"}"#, "missing `jobs`"),
            (
                r#"{"schema": "snbc-batch-jobs/1", "jobs": [{"name": "a"}]}"#,
                "needs `benchmark` or `system`",
            ),
            (
                r#"{"schema": "snbc-batch-jobs/1", "jobs": [{"name": "a", "benchmark": 15}]}"#,
                "1..=14",
            ),
            (
                r#"{"schema": "snbc-batch-jobs/1", "jobs": [{"name": "a", "benchmark": 1, "system": "x"}]}"#,
                "mutually exclusive",
            ),
            (
                r#"{"schema": "snbc-batch-jobs/1", "jobs": [{"name": "a", "benchmark": 1, "grid": {"seeds": []}}]}"#,
                "zero candidates",
            ),
            (
                r#"{"schema": "snbc-batch-jobs/1", "jobs": [{"name": "a", "benchmark": 1}, {"name": "a", "benchmark": 2}]}"#,
                "duplicate job name",
            ),
            (
                r#"{"schema": "snbc-batch-jobs/1", "jobs": [{"name": "a", "benchmark": 1, "max_iterations": 0}]}"#,
                "must be positive",
            ),
        ] {
            let e = BatchSpec::parse(text).expect_err(text).to_string();
            assert!(e.contains(needle), "`{e}` should mention `{needle}`");
        }
    }
}
