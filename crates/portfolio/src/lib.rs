//! **snbc-portfolio** — portfolio CEGIS racing and the batch certificate
//! service for the SNBC reproduction.
//!
//! The paper's CEGIS loop (Algorithm 1) is sensitive to its starting point:
//! the learner's seed, the multiplier shape (`λ` degree), the SOS
//! multiplier degree, and the §3 mesh granularity all steer which barrier
//! basin the loop lands in, and a configuration that certifies `C_k` in two
//! rounds may plateau for ten under a neighboring seed. This crate turns
//! that sensitivity into throughput, in two layers:
//!
//! - [`race`](race()) ([`grid`] + [`race`](mod@race)): expand a
//!   [`ConfigGrid`] into K candidate configurations and advance all of them
//!   in lock-step waves — one CEGIS round per candidate per wave, scheduled
//!   over [`snbc_par`] — stopping at the first wave in which any candidate
//!   certifies. The winner is the **lowest grid index** among that wave's
//!   certified candidates, which makes the result bitwise independent of
//!   `SNBC_THREADS`.
//! - [`run_batch`] ([`jobs`] + [`cache`] + [`batch`]): a job-file front-end
//!   (`snbc batch jobs.json`) over the racer with a content-addressed
//!   on-disk certificate cache, so re-verifying a fleet of systems is one
//!   lookup per already-solved job. Batch reports
//!   ([`BatchOutcome::report_json`], schema `snbc-batch-report/1`) are
//!   byte-deterministic across thread counts and cache temperature.
//!
//! The racing contract, slice scheduling, cache-key schema, and report
//! schema are documented in `docs/PORTFOLIO.md`.

pub mod batch;
pub mod cache;
pub mod grid;
pub mod jobs;
pub mod race;

pub use batch::{
    run_batch, BatchOptions, BatchOutcome, JobOutcome, JobResult, SystemResolver, REPORT_SCHEMA,
};
pub use cache::{CacheKey, CachedEntry, CertificateCache, KEY_SCHEMA};
pub use grid::{CandidateConfig, ConfigGrid};
pub use jobs::{BatchError, BatchSpec, JobSource, JobSpec, JOBS_SCHEMA};
pub use race::{race, RaceOutcome, RaceWinner};
