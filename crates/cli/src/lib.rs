//! Library backing the `snbc` command-line tool: a plain-text system
//! description format plus the three user-facing operations —
//! *synthesize* a barrier certificate, *check* a saved certificate, and
//! *falsify* by simulation.
//!
//! # System description format
//!
//! Line-oriented `key: value` pairs; `#` starts a comment. Polynomials use
//! the `snbc-poly` syntax with state variables `x0 … x{n−1}` and the control
//! input as `x{n}` (for `m` inputs, `x{n} … x{n+m−1}`):
//!
//! ```text
//! system: my-plant
//! state: 2
//! f0: x1
//! f1: -x0 - x1 + 0.5*x0^2 + x2
//! init:   box -0.3 0.3  -0.3 0.3
//! domain: box -2 2  -2 2
//! unsafe: box 1.4 1.9  1.4 1.9
//! # Either a fixed polynomial controller …
//! controller: -0.5*x0
//! # … or `controller: train <law polynomial>` to fit a tanh MLP to the law
//! # (the paper's pretrained-NN setting).
//! ```
//!
//! Sets are `box lo hi lo hi …` (one pair per state dimension) or
//! `ball c1 … cn radius`.

use std::fmt;

use snbc_dynamics::{Ccds, SemiAlgebraicSet};
use snbc_poly::Polynomial;

/// How the controller in a description file is obtained.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerSpec {
    /// A fixed polynomial feedback law (abstraction error zero).
    Polynomial(Polynomial),
    /// Train a tanh MLP to imitate the given law, then abstract it (§3).
    Train(Polynomial),
}

/// A parsed system description.
#[derive(Debug, Clone)]
pub struct SystemFile {
    /// System name.
    pub name: String,
    /// The controlled system.
    pub system: Ccds,
    /// Controller specification.
    pub controller: ControllerSpec,
}

/// Error produced when parsing a system description.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseSystemError {
    line: usize,
    message: String,
}

impl ParseSystemError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseSystemError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseSystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseSystemError {}

/// Parses a system description (see the [crate docs](crate) for the format).
///
/// # Errors
///
/// Returns [`ParseSystemError`] with the offending line on any syntax or
/// consistency problem.
pub fn parse_system(text: &str) -> Result<SystemFile, ParseSystemError> {
    let mut name = None;
    let mut state: Option<usize> = None;
    let mut fields: Vec<(usize, usize, Polynomial)> = Vec::new();
    let mut init = None;
    let mut domain = None;
    let mut unsafe_set = None;
    let mut controller = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| ParseSystemError::new(lineno, "expected `key: value`"))?;
        let (key, value) = (key.trim(), value.trim());
        match key {
            "system" => name = Some(value.to_string()),
            "state" => {
                state = Some(
                    value
                        .parse()
                        .map_err(|_| ParseSystemError::new(lineno, "state must be an integer"))?,
                )
            }
            k if k.starts_with('f') => {
                let i: usize = k[1..]
                    .parse()
                    .map_err(|_| ParseSystemError::new(lineno, "field keys look like f0, f1, …"))?;
                let p = value
                    .parse::<Polynomial>()
                    .map_err(|e| ParseSystemError::new(lineno, e.to_string()))?;
                fields.push((lineno, i, p));
            }
            "init" => init = Some(parse_set(value, state, lineno)?),
            "domain" => domain = Some(parse_set(value, state, lineno)?),
            "unsafe" => unsafe_set = Some(parse_set(value, state, lineno)?),
            "controller" => {
                controller = Some(if let Some(law) = value.strip_prefix("train ") {
                    ControllerSpec::Train(
                        law.trim()
                            .parse()
                            .map_err(|e: snbc_poly::ParsePolynomialError| {
                                ParseSystemError::new(lineno, e.to_string())
                            })?,
                    )
                } else {
                    ControllerSpec::Polynomial(value.parse().map_err(
                        |e: snbc_poly::ParsePolynomialError| {
                            ParseSystemError::new(lineno, e.to_string())
                        },
                    )?)
                });
            }
            other => {
                return Err(ParseSystemError::new(lineno, format!("unknown key `{other}`")))
            }
        }
    }

    let missing = |what: &str| ParseSystemError::new(0, format!("missing `{what}`"));
    let name = name.ok_or_else(|| missing("system"))?;
    let n = state.ok_or_else(|| missing("state"))?;
    let init = init.ok_or_else(|| missing("init"))?;
    let domain = domain.ok_or_else(|| missing("domain"))?;
    let unsafe_set = unsafe_set.ok_or_else(|| missing("unsafe"))?;
    let controller = controller.ok_or_else(|| missing("controller"))?;

    let mut field = vec![None; n];
    for (lineno, i, p) in fields {
        if i >= n {
            return Err(ParseSystemError::new(lineno, format!("f{i} outside state dimension {n}")));
        }
        if field[i].replace(p).is_some() {
            return Err(ParseSystemError::new(lineno, format!("duplicate f{i}")));
        }
    }
    let field: Vec<Polynomial> = field
        .into_iter()
        .enumerate()
        .map(|(i, p)| p.ok_or_else(|| missing(&format!("f{i}"))))
        .collect::<Result<_, _>>()?;

    let system = Ccds::new(name.clone(), field, init, domain, unsafe_set);
    Ok(SystemFile {
        name,
        system,
        controller,
    })
}

fn parse_set(
    value: &str,
    state: Option<usize>,
    lineno: usize,
) -> Result<SemiAlgebraicSet, ParseSystemError> {
    let n = state.ok_or_else(|| {
        ParseSystemError::new(lineno, "declare `state:` before any set definition")
    })?;
    let mut parts = value.split_whitespace();
    let kind = parts
        .next()
        .ok_or_else(|| ParseSystemError::new(lineno, "empty set definition"))?;
    let nums: Vec<f64> = parts
        .map(|t| {
            t.parse()
                .map_err(|_| ParseSystemError::new(lineno, format!("bad number `{t}`")))
        })
        .collect::<Result<_, _>>()?;
    match kind {
        "box" => {
            if nums.len() != 2 * n {
                return Err(ParseSystemError::new(
                    lineno,
                    format!("box needs {} numbers (lo hi per dimension), got {}", 2 * n, nums.len()),
                ));
            }
            let bounds: Vec<(f64, f64)> = nums.chunks(2).map(|c| (c[0], c[1])).collect();
            if bounds.iter().any(|&(lo, hi)| lo >= hi) {
                return Err(ParseSystemError::new(lineno, "box bounds must satisfy lo < hi"));
            }
            Ok(SemiAlgebraicSet::box_set(&bounds))
        }
        "ball" => {
            if nums.len() != n + 1 {
                return Err(ParseSystemError::new(
                    lineno,
                    format!("ball needs {} numbers (center… radius), got {}", n + 1, nums.len()),
                ));
            }
            let (center, radius) = nums.split_at(n);
            if radius[0] <= 0.0 {
                return Err(ParseSystemError::new(lineno, "ball radius must be positive"));
            }
            Ok(SemiAlgebraicSet::ball(center, radius[0]))
        }
        other => Err(ParseSystemError::new(lineno, format!("unknown set kind `{other}`"))),
    }
}

/// A ready-to-use description of benchmark C3 in the file format (used by
/// tests and `snbc example`).
pub const EXAMPLE_SYSTEM: &str = "\
system: c3-demo
state: 2
f0: x1
f1: -x0 - x1 + 0.5*x0^2 + x2
init:   box -0.3 0.3  -0.3 0.3
domain: box -2 2  -2 2
unsafe: box 1.4 1.9  1.4 1.9
controller: train -0.5*x0
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_example() {
        let sf = parse_system(EXAMPLE_SYSTEM).unwrap();
        assert_eq!(sf.name, "c3-demo");
        assert_eq!(sf.system.nvars(), 2);
        assert!(matches!(sf.controller, ControllerSpec::Train(_)));
        assert!(sf.system.init().contains(&[0.0, 0.0]));
        assert!(sf.system.unsafe_set().contains(&[1.5, 1.5]));
    }

    #[test]
    fn polynomial_controller_variant() {
        let text = EXAMPLE_SYSTEM.replace("controller: train -0.5*x0", "controller: -0.5*x0");
        let sf = parse_system(&text).unwrap();
        match sf.controller {
            ControllerSpec::Polynomial(p) => assert_eq!(p, "-0.5*x0".parse().unwrap()),
            other => panic!("expected polynomial controller, got {other:?}"),
        }
    }

    #[test]
    fn ball_sets_parse() {
        let text = "\
system: b
state: 2
f0: x2
f1: -x1
init: ball 0 0 0.3
domain: ball 0 0 2
unsafe: ball 1.5 0 0.25
controller: -1*x0
";
        let sf = parse_system(text).unwrap();
        assert!(sf.system.init().contains(&[0.1, 0.1]));
        assert!(!sf.system.init().contains(&[0.3, 0.3]));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "system: x\nstate: two\n";
        let e = parse_system(bad).unwrap_err();
        assert_eq!(e.to_string(), "line 2: state must be an integer");

        let missing = "system: x\nstate: 1\n";
        assert!(parse_system(missing).unwrap_err().to_string().contains("missing"));

        let dup = "system: x\nstate: 1\nf0: x1\nf0: x1\ninit: box -1 1\ndomain: box -2 2\nunsafe: box 1 2\ncontroller: 0";
        assert!(parse_system(dup).unwrap_err().to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_malformed_sets() {
        let base = "system: x\nstate: 2\nf0: x2\nf1: x2\ncontroller: 0\ndomain: box -1 1 -1 1\nunsafe: box 0.5 1 0.5 1\n";
        for bad in [
            "init: box -1 1",              // wrong arity
            "init: box 1 -1 -1 1",         // inverted
            "init: ball 0 0 -1",           // bad radius
            "init: cylinder 0 0 1",        // unknown kind
            "init: box a b c d",           // bad numbers
        ] {
            let text = format!("{base}{bad}\n");
            assert!(parse_system(&text).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = format!("# header\n\n{EXAMPLE_SYSTEM}\n# trailer\n");
        assert!(parse_system(&text).is_ok());
    }
}
