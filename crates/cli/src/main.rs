//! The `snbc` command-line tool.
//!
//! ```text
//! snbc synth <system-file> [--out <certificate-file>] [--timeout <secs>] [--report <json-file>] [--trace <json-file>]
//! snbc check <system-file> <certificate-file> [--deep]
//! snbc batch <jobs-file> [--cache-dir <dir>] [--report <json-file>] [--require-all-hits]
//!            [--progress <path|->] [--canonical] [--metrics-out <prom-file>]
//!            [--metrics-json <json-file>] [--trace <json-file>]
//! snbc falsify <system-file>
//! snbc example
//! ```
//!
//! `synth` always prints a per-round CEGIS telemetry table (learner epochs,
//! final loss, LMI margins, counterexample count/radius, phase timings);
//! `--report` additionally writes the full `snbc-run-report/1` JSON document
//! described in `docs/TELEMETRY.md`, and `--trace` writes a Chrome
//! trace-event JSON (`snbc-trace/1`, loadable in Perfetto / `about:tracing`)
//! with per-iteration solver events on per-worker tracks plus a self-time
//! profile on stderr — see `docs/TRACING.md`.
//!
//! `batch` streams live `snbc-progress/1` NDJSON to `--progress` (use `-`
//! for stdout; `--canonical` strips wall-clock fields so the stream is
//! byte-identical across thread counts and cache temperature) and writes the
//! run-level `snbc-metrics/1` registry as Prometheus text exposition
//! (`--metrics-out`) or canonical JSON (`--metrics-json`) — see
//! `docs/OBSERVABILITY.md`. All human-facing progress goes to **stderr** so
//! stdout stays clean for `--progress -` and certificate text.

use std::io::Write;
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::Duration;

use snbc::certificate::SafetyCertificate;
use snbc::falsify::{falsify, FalsifyConfig};
use snbc::{Snbc, SnbcConfig};
use snbc_cli::{parse_system, ControllerSpec, SystemFile, EXAMPLE_SYSTEM};
use snbc_dynamics::benchmarks::{Benchmark, LambdaSpec};
use snbc_metrics::{EventSink, Metrics, Progress, ProgressEvent, Scope};
use snbc_nn::{train_controller, ControllerTraining, Mlp};
use snbc_portfolio::{run_batch, BatchOptions, BatchSpec};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("synth") => {
            let path = it.next().ok_or("synth needs a system file")?;
            let mut out = None;
            let mut report = None;
            let mut trace_out = None;
            let mut timeout = 600u64;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--out" => out = Some(it.next().ok_or("--out needs a path")?.clone()),
                    "--report" => {
                        report = Some(it.next().ok_or("--report needs a path")?.clone())
                    }
                    "--trace" => {
                        trace_out = Some(it.next().ok_or("--trace needs a path")?.clone())
                    }
                    "--timeout" => {
                        timeout = it
                            .next()
                            .ok_or("--timeout needs seconds")?
                            .parse()
                            .map_err(|_| "bad --timeout value".to_string())?
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            synth(
                path,
                out.as_deref(),
                timeout,
                report.as_deref(),
                trace_out.as_deref(),
            )
        }
        Some("check") => {
            let sys_path = it.next().ok_or("check needs a system file")?;
            let cert_path = it.next().ok_or("check needs a certificate file")?;
            let deep = it.next().map(String::as_str) == Some("--deep");
            check(sys_path, cert_path, deep)
        }
        Some("batch") => {
            let path = it.next().ok_or("batch needs a jobs file")?;
            let mut opts = BatchCliOptions::default();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--cache-dir" => {
                        opts.cache_dir =
                            Some(it.next().ok_or("--cache-dir needs a path")?.clone())
                    }
                    "--report" => {
                        opts.report = Some(it.next().ok_or("--report needs a path")?.clone())
                    }
                    "--progress" => {
                        opts.progress =
                            Some(it.next().ok_or("--progress needs a path or -")?.clone())
                    }
                    "--canonical" => opts.canonical = true,
                    "--metrics-out" => {
                        opts.metrics_out =
                            Some(it.next().ok_or("--metrics-out needs a path")?.clone())
                    }
                    "--metrics-json" => {
                        opts.metrics_json =
                            Some(it.next().ok_or("--metrics-json needs a path")?.clone())
                    }
                    "--trace" => {
                        opts.trace = Some(it.next().ok_or("--trace needs a path")?.clone())
                    }
                    "--require-all-hits" => opts.require_all_hits = true,
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            batch(path, &opts)
        }
        Some("falsify") => {
            let path = it.next().ok_or("falsify needs a system file")?;
            falsify_cmd(path)
        }
        Some("example") => {
            print!("{EXAMPLE_SYSTEM}");
            Ok(())
        }
        _ => Err(
            "usage: snbc synth <file> [--out <path>] [--timeout <secs>] [--report <json>] \
             [--trace <json>] | \
             snbc check <file> <cert> [--deep] | \
             snbc batch <jobs> [--cache-dir <dir>] [--report <json>] [--require-all-hits] \
             [--progress <path|->] [--canonical] [--metrics-out <prom>] \
             [--metrics-json <json>] [--trace <json>] | \
             snbc falsify <file> | snbc example"
                .into(),
        ),
    }
}

fn load(path: &str) -> Result<SystemFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_system(&text).map_err(|e| format!("{path}: {e}"))
}

/// Wraps a parsed description as a [`Benchmark`] so the standard pipeline
/// applies (default network shapes; the controller comes from the file).
fn as_benchmark(sf: &SystemFile) -> (Benchmark, Mlp) {
    let n = sf.system.nvars();
    let controller = match &sf.controller {
        ControllerSpec::Train(law) => {
            let law = law.clone();
            train_controller(
                sf.system.domain().bounding_box(),
                move |x| law.eval(x),
                &ControllerTraining::default(),
            )
        }
        ControllerSpec::Polynomial(p) => {
            // Fit a tiny MLP to the polynomial so the standard pipeline
            // (which abstracts an NN controller) applies unchanged; the
            // Chebyshev fit will recover the polynomial almost exactly.
            let p = p.clone();
            train_controller(
                sf.system.domain().bounding_box(),
                move |x| p.eval(x),
                &ControllerTraining {
                    epochs: 800,
                    ..Default::default()
                },
            )
        }
    };
    let bench = Benchmark {
        name: "cli",
        index: 0,
        system: sf.system.clone(),
        target_law: |_| 0.0, // unused: the controller is supplied directly
        nn_b_hidden: vec![(4 * n).clamp(5, 20)],
        lambda_spec: LambdaSpec::Linear(vec![5]),
        citation: "user-supplied system description",
        d_f: sf.system.field_degree(),
    };
    (bench, controller)
}

fn synth(
    path: &str,
    out: Option<&str>,
    timeout: u64,
    report: Option<&str>,
    trace_out: Option<&str>,
) -> Result<(), String> {
    let sf = load(path)?;
    let (bench, controller) = as_benchmark(&sf);
    let cfg = SnbcConfig {
        time_limit: Duration::from_secs(timeout),
        ..Default::default()
    };
    let mut telemetry = snbc_telemetry::Telemetry::recording();
    if trace_out.is_some() {
        telemetry = telemetry.with_trace(snbc_trace::Trace::recording());
    }
    let outcome = Snbc::new(cfg)
        .with_telemetry(telemetry.clone())
        .synthesize(&bench, &controller);
    // The per-round table and the JSON report are emitted even when synthesis
    // fails — a timeout trace is exactly when the telemetry matters.
    // Human-facing progress goes to stderr (docs/OBSERVABILITY.md): stdout
    // carries only the certificate and result summary, so it pipes clean.
    if let Some(rep) = telemetry.report() {
        eprintln!("{}", snbc_telemetry::render_round_table(&rep));
        if let Some(rp) = report {
            std::fs::write(rp, rep.to_json_string())
                .map_err(|e| format!("cannot write {rp}: {e}"))?;
            eprintln!("run report written to {rp}");
        }
    }
    if let Some(tp) = trace_out {
        if let Some(dump) = telemetry.trace().dump() {
            std::fs::write(tp, dump.to_json_string())
                .map_err(|e| format!("cannot write {tp}: {e}"))?;
            eprintln!("{}", dump.profile_text());
            eprintln!(
                "trace written to {tp} ({} events; load in Perfetto / chrome://tracing)",
                dump.event_count()
            );
        }
    }
    let result = outcome.map_err(|e| e.to_string())?;
    println!("certified after {} iteration(s)", result.iterations);
    println!("B(x) = {}", result.barrier);
    println!("lambda(x) = {}", result.lambda);
    println!(
        "margins: init {:.4}, unsafe {:.4}, flow {:.4}; sigma* = {:.4}",
        result.verification.init.margin,
        result.verification.unsafe_.margin,
        result.verification.flow.margin,
        result.inclusion.sigma_star
    );
    let cert = SafetyCertificate::from_result(&sf.name, &result);
    match out {
        Some(path) => {
            std::fs::write(path, cert.to_string()).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("certificate written to {path}");
        }
        None => print!("\n{cert}"),
    }
    Ok(())
}

/// `snbc batch` flags, gathered by the argument loop.
#[derive(Default)]
struct BatchCliOptions {
    cache_dir: Option<String>,
    report: Option<String>,
    progress: Option<String>,
    canonical: bool,
    metrics_out: Option<String>,
    metrics_json: Option<String>,
    trace: Option<String>,
    require_all_hits: bool,
}

/// The human progress renderer: one stderr line per finished job, driven by
/// the same event stream the NDJSON writer consumes. Stdout stays clean for
/// `--progress -` and piped report/certificate text.
struct HumanSink {
    total: usize,
    /// Jobs whose (environmental, live-only) `cache-hit` marker was seen.
    hits: Mutex<std::collections::HashSet<u64>>,
}

impl EventSink for HumanSink {
    fn event(&self, scope: Scope, event: &ProgressEvent, replayed: bool) {
        // Replayed events re-enact a cached race; the human line reports
        // the job from its live `job-done` summary instead.
        if replayed {
            return;
        }
        fn hits(
            m: &Mutex<std::collections::HashSet<u64>>,
        ) -> std::sync::MutexGuard<'_, std::collections::HashSet<u64>> {
            match m.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
        match event {
            ProgressEvent::CacheHit => {
                if let Some(job) = scope.job {
                    hits(&self.hits).insert(job);
                }
            }
            ProgressEvent::JobDone {
                name,
                candidates,
                waves,
                winner_index,
                iterations,
                ..
            } => {
                let hit = scope.job.is_some_and(|j| hits(&self.hits).contains(&j));
                let source = if hit {
                    "cache hit".to_string()
                } else {
                    format!("raced {candidates} candidate(s), {waves} wave(s)")
                };
                let verdict = match winner_index {
                    Some(w) => format!(
                        "certified, winner #{w}, {} iteration(s)",
                        iterations.unwrap_or(0)
                    ),
                    None => "NOT certified".to_string(),
                };
                eprintln!(
                    "[{}/{}] {name}: {verdict} ({source})",
                    scope.job.map_or(0, |j| j + 1),
                    self.total
                );
            }
            _ => {}
        }
    }
}

/// Runs a `snbc-batch-jobs/1` file through the portfolio batch service:
/// each job races its configuration grid unless the content-addressed cache
/// (`--cache-dir`) already holds its certificate. `--require-all-hits`
/// turns any live race into an error — the CI warm-cache leg uses it to
/// prove the second run is pure lookups. `--progress` streams per-round
/// NDJSON, `--metrics-out`/`--metrics-json` export the run-level registry,
/// and `--trace` writes the merged Chrome trace with its self-time profile
/// on stderr.
fn batch(path: &str, cli: &BatchCliOptions) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let spec = BatchSpec::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let opts = BatchOptions {
        base: SnbcConfig::default(),
        cache_dir: cli.cache_dir.as_deref().map(std::path::PathBuf::from),
    };
    let resolve = |sys_path: &str| -> Result<(Benchmark, Mlp), String> {
        let sf = load(sys_path)?;
        Ok(as_benchmark(&sf))
    };
    let mut telemetry = snbc_telemetry::Telemetry::recording();
    if cli.trace.is_some() {
        telemetry = telemetry.with_trace(snbc_trace::Trace::recording());
    }
    let total = spec.jobs.len();

    let mut sinks = vec![Progress::custom(Box::new(HumanSink {
        total,
        hits: Mutex::new(std::collections::HashSet::new()),
    }))];
    if let Some(target) = cli.progress.as_deref() {
        let out: Box<dyn Write + Send> = if target == "-" {
            Box::new(std::io::stdout())
        } else {
            Box::new(
                std::fs::File::create(target)
                    .map_err(|e| format!("cannot create {target}: {e}"))?,
            )
        };
        sinks.push(Progress::writer(out, cli.canonical));
    }
    let progress = Progress::fanout(sinks);
    let metrics = Metrics::recording();

    let outcome =
        run_batch(&spec, &opts, &resolve, &telemetry, &progress, &metrics).map_err(|e| e.to_string())?;

    if let Some(rep) = telemetry.report() {
        eprintln!("{}", snbc_telemetry::render_round_table(&rep));
    }
    eprintln!(
        "batch done: {} job(s), {} cache hit(s), {} raced, {} certified",
        total,
        outcome.hits(),
        outcome.misses(),
        outcome.jobs.iter().filter(|j| j.result.certified).count()
    );
    if let Some(mp) = cli.metrics_out.as_deref() {
        let exposition = snbc_metrics::prom::to_prometheus(&metrics.snapshot(false));
        std::fs::write(mp, exposition).map_err(|e| format!("cannot write {mp}: {e}"))?;
        eprintln!("metrics exposition written to {mp}");
    }
    if let Some(mj) = cli.metrics_json.as_deref() {
        std::fs::write(mj, metrics.snapshot(true).to_json_string())
            .map_err(|e| format!("cannot write {mj}: {e}"))?;
        eprintln!("canonical metrics snapshot written to {mj}");
    }
    if let Some(tp) = cli.trace.as_deref() {
        if let Some(dump) = telemetry.trace().dump() {
            std::fs::write(tp, dump.to_json_string())
                .map_err(|e| format!("cannot write {tp}: {e}"))?;
            // The merged self-time profile across every job in the batch.
            eprintln!("{}", dump.profile_text());
            eprintln!(
                "trace written to {tp} ({} events; load in Perfetto / chrome://tracing)",
                dump.event_count()
            );
        }
    }
    if let Some(rp) = cli.report.as_deref() {
        std::fs::write(rp, outcome.report_json())
            .map_err(|e| format!("cannot write {rp}: {e}"))?;
        eprintln!("batch report written to {rp}");
    }
    if let Some(job) = outcome.jobs.iter().find(|j| !j.result.certified) {
        return Err(format!("job `{}` did not certify", job.name));
    }
    if cli.require_all_hits && outcome.misses() > 0 {
        return Err(format!(
            "--require-all-hits: {} job(s) missed the cache",
            outcome.misses()
        ));
    }
    Ok(())
}

fn check(sys_path: &str, cert_path: &str, deep: bool) -> Result<(), String> {
    let sf = load(sys_path)?;
    let text = std::fs::read_to_string(cert_path)
        .map_err(|e| format!("cannot read {cert_path}: {e}"))?;
    let cert: SafetyCertificate = text.parse().map_err(|e| format!("{cert_path}: {e}"))?;
    if cert.system != sf.name {
        return Err(format!(
            "certificate is for system `{}`, file describes `{}`",
            cert.system, sf.name
        ));
    }
    if cert.validate(&sf.system, deep) {
        println!(
            "certificate VALID for `{}`{}",
            sf.name,
            if deep { " (LMI + interval re-check)" } else { " (LMI re-check)" }
        );
        Ok(())
    } else {
        Err("certificate did NOT validate".into())
    }
}

fn falsify_cmd(path: &str) -> Result<(), String> {
    let sf = load(path)?;
    let (bench, controller) = as_benchmark(&sf);
    match falsify(&bench.system, |x| controller.forward(x), &FalsifyConfig::default()) {
        Some(cex) => {
            println!("UNSAFE: trajectory from {:?} enters the unsafe set", cex.initial);
            println!(
                "  reaches {:?} after {} steps",
                cex.trajectory.states[cex.entry_step], cex.entry_step
            );
            Err("system falsified; no barrier certificate can exist".into())
        }
        None => {
            println!("no unsafe trajectory found by simulation (evidence, not proof)");
            Ok(())
        }
    }
}
