//! The `snbc` command-line tool.
//!
//! ```text
//! snbc synth <system-file> [--out <certificate-file>] [--timeout <secs>] [--report <json-file>] [--trace <json-file>]
//! snbc check <system-file> <certificate-file> [--deep]
//! snbc batch <jobs-file> [--cache-dir <dir>] [--report <json-file>] [--require-all-hits]
//! snbc falsify <system-file>
//! snbc example
//! ```
//!
//! `synth` always prints a per-round CEGIS telemetry table (learner epochs,
//! final loss, LMI margins, counterexample count/radius, phase timings);
//! `--report` additionally writes the full `snbc-run-report/1` JSON document
//! described in `docs/TELEMETRY.md`, and `--trace` writes a Chrome
//! trace-event JSON (`snbc-trace/1`, loadable in Perfetto / `about:tracing`)
//! with per-iteration solver events on per-worker tracks plus a self-time
//! profile on stderr — see `docs/TRACING.md`.

use std::process::ExitCode;
use std::time::Duration;

use snbc::certificate::SafetyCertificate;
use snbc::falsify::{falsify, FalsifyConfig};
use snbc::{Snbc, SnbcConfig};
use snbc_cli::{parse_system, ControllerSpec, SystemFile, EXAMPLE_SYSTEM};
use snbc_dynamics::benchmarks::{Benchmark, LambdaSpec};
use snbc_nn::{train_controller, ControllerTraining, Mlp};
use snbc_portfolio::{run_batch, BatchOptions, BatchSpec};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("synth") => {
            let path = it.next().ok_or("synth needs a system file")?;
            let mut out = None;
            let mut report = None;
            let mut trace_out = None;
            let mut timeout = 600u64;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--out" => out = Some(it.next().ok_or("--out needs a path")?.clone()),
                    "--report" => {
                        report = Some(it.next().ok_or("--report needs a path")?.clone())
                    }
                    "--trace" => {
                        trace_out = Some(it.next().ok_or("--trace needs a path")?.clone())
                    }
                    "--timeout" => {
                        timeout = it
                            .next()
                            .ok_or("--timeout needs seconds")?
                            .parse()
                            .map_err(|_| "bad --timeout value".to_string())?
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            synth(
                path,
                out.as_deref(),
                timeout,
                report.as_deref(),
                trace_out.as_deref(),
            )
        }
        Some("check") => {
            let sys_path = it.next().ok_or("check needs a system file")?;
            let cert_path = it.next().ok_or("check needs a certificate file")?;
            let deep = it.next().map(String::as_str) == Some("--deep");
            check(sys_path, cert_path, deep)
        }
        Some("batch") => {
            let path = it.next().ok_or("batch needs a jobs file")?;
            let mut cache_dir = None;
            let mut report = None;
            let mut require_all_hits = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--cache-dir" => {
                        cache_dir = Some(it.next().ok_or("--cache-dir needs a path")?.clone())
                    }
                    "--report" => {
                        report = Some(it.next().ok_or("--report needs a path")?.clone())
                    }
                    "--require-all-hits" => require_all_hits = true,
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            batch(path, cache_dir.as_deref(), report.as_deref(), require_all_hits)
        }
        Some("falsify") => {
            let path = it.next().ok_or("falsify needs a system file")?;
            falsify_cmd(path)
        }
        Some("example") => {
            print!("{EXAMPLE_SYSTEM}");
            Ok(())
        }
        _ => Err(
            "usage: snbc synth <file> [--out <path>] [--timeout <secs>] [--report <json>] \
             [--trace <json>] | \
             snbc check <file> <cert> [--deep] | \
             snbc batch <jobs> [--cache-dir <dir>] [--report <json>] [--require-all-hits] | \
             snbc falsify <file> | snbc example"
                .into(),
        ),
    }
}

fn load(path: &str) -> Result<SystemFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_system(&text).map_err(|e| format!("{path}: {e}"))
}

/// Wraps a parsed description as a [`Benchmark`] so the standard pipeline
/// applies (default network shapes; the controller comes from the file).
fn as_benchmark(sf: &SystemFile) -> (Benchmark, Mlp) {
    let n = sf.system.nvars();
    let controller = match &sf.controller {
        ControllerSpec::Train(law) => {
            let law = law.clone();
            train_controller(
                sf.system.domain().bounding_box(),
                move |x| law.eval(x),
                &ControllerTraining::default(),
            )
        }
        ControllerSpec::Polynomial(p) => {
            // Fit a tiny MLP to the polynomial so the standard pipeline
            // (which abstracts an NN controller) applies unchanged; the
            // Chebyshev fit will recover the polynomial almost exactly.
            let p = p.clone();
            train_controller(
                sf.system.domain().bounding_box(),
                move |x| p.eval(x),
                &ControllerTraining {
                    epochs: 800,
                    ..Default::default()
                },
            )
        }
    };
    let bench = Benchmark {
        name: "cli",
        index: 0,
        system: sf.system.clone(),
        target_law: |_| 0.0, // unused: the controller is supplied directly
        nn_b_hidden: vec![(4 * n).clamp(5, 20)],
        lambda_spec: LambdaSpec::Linear(vec![5]),
        citation: "user-supplied system description",
        d_f: sf.system.field_degree(),
    };
    (bench, controller)
}

fn synth(
    path: &str,
    out: Option<&str>,
    timeout: u64,
    report: Option<&str>,
    trace_out: Option<&str>,
) -> Result<(), String> {
    let sf = load(path)?;
    let (bench, controller) = as_benchmark(&sf);
    let cfg = SnbcConfig {
        time_limit: Duration::from_secs(timeout),
        ..Default::default()
    };
    let mut telemetry = snbc_telemetry::Telemetry::recording();
    if trace_out.is_some() {
        telemetry = telemetry.with_trace(snbc_trace::Trace::recording());
    }
    let outcome = Snbc::new(cfg)
        .with_telemetry(telemetry.clone())
        .synthesize(&bench, &controller);
    // The per-round table and the JSON report are emitted even when synthesis
    // fails — a timeout trace is exactly when the telemetry matters.
    if let Some(rep) = telemetry.report() {
        println!("{}", snbc_telemetry::render_round_table(&rep));
        if let Some(rp) = report {
            std::fs::write(rp, rep.to_json_string())
                .map_err(|e| format!("cannot write {rp}: {e}"))?;
            println!("run report written to {rp}");
        }
    }
    if let Some(tp) = trace_out {
        if let Some(dump) = telemetry.trace().dump() {
            std::fs::write(tp, dump.to_json_string())
                .map_err(|e| format!("cannot write {tp}: {e}"))?;
            eprintln!("{}", dump.profile_text());
            println!(
                "trace written to {tp} ({} events; load in Perfetto / chrome://tracing)",
                dump.event_count()
            );
        }
    }
    let result = outcome.map_err(|e| e.to_string())?;
    println!("certified after {} iteration(s)", result.iterations);
    println!("B(x) = {}", result.barrier);
    println!("lambda(x) = {}", result.lambda);
    println!(
        "margins: init {:.4}, unsafe {:.4}, flow {:.4}; sigma* = {:.4}",
        result.verification.init.margin,
        result.verification.unsafe_.margin,
        result.verification.flow.margin,
        result.inclusion.sigma_star
    );
    let cert = SafetyCertificate::from_result(&sf.name, &result);
    match out {
        Some(path) => {
            std::fs::write(path, cert.to_string()).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("certificate written to {path}");
        }
        None => print!("\n{cert}"),
    }
    Ok(())
}

/// Runs a `snbc-batch-jobs/1` file through the portfolio batch service:
/// each job races its configuration grid unless the content-addressed cache
/// (`--cache-dir`) already holds its certificate. `--require-all-hits`
/// turns any live race into an error — the CI warm-cache leg uses it to
/// prove the second run is pure lookups.
fn batch(
    path: &str,
    cache_dir: Option<&str>,
    report: Option<&str>,
    require_all_hits: bool,
) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let spec = BatchSpec::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let opts = BatchOptions {
        base: SnbcConfig::default(),
        cache_dir: cache_dir.map(std::path::PathBuf::from),
    };
    let resolve = |sys_path: &str| -> Result<(Benchmark, Mlp), String> {
        let sf = load(sys_path)?;
        Ok(as_benchmark(&sf))
    };
    let telemetry = snbc_telemetry::Telemetry::recording();
    let total = spec.jobs.len();
    let outcome = run_batch(&spec, &opts, &resolve, &telemetry, |i, job| {
        let source = if job.cache_hit {
            "cache hit".to_string()
        } else {
            format!(
                "raced {} candidate(s), {} wave(s)",
                job.result.candidates, job.result.waves
            )
        };
        let verdict = match job.result.winner_index {
            Some(w) => format!(
                "certified, winner #{w}, {} iteration(s)",
                job.result.iterations.unwrap_or(0)
            ),
            None => "NOT certified".to_string(),
        };
        println!("[{}/{total}] {}: {verdict} ({source})", i + 1, job.name);
    })
    .map_err(|e| e.to_string())?;
    if let Some(rep) = telemetry.report() {
        println!("{}", snbc_telemetry::render_round_table(&rep));
    }
    println!(
        "batch done: {} job(s), {} cache hit(s), {} raced, {} certified",
        total,
        outcome.hits(),
        outcome.misses(),
        outcome.jobs.iter().filter(|j| j.result.certified).count()
    );
    if let Some(rp) = report {
        std::fs::write(rp, outcome.report_json())
            .map_err(|e| format!("cannot write {rp}: {e}"))?;
        println!("batch report written to {rp}");
    }
    if let Some(job) = outcome.jobs.iter().find(|j| !j.result.certified) {
        return Err(format!("job `{}` did not certify", job.name));
    }
    if require_all_hits && outcome.misses() > 0 {
        return Err(format!(
            "--require-all-hits: {} job(s) missed the cache",
            outcome.misses()
        ));
    }
    Ok(())
}

fn check(sys_path: &str, cert_path: &str, deep: bool) -> Result<(), String> {
    let sf = load(sys_path)?;
    let text = std::fs::read_to_string(cert_path)
        .map_err(|e| format!("cannot read {cert_path}: {e}"))?;
    let cert: SafetyCertificate = text.parse().map_err(|e| format!("{cert_path}: {e}"))?;
    if cert.system != sf.name {
        return Err(format!(
            "certificate is for system `{}`, file describes `{}`",
            cert.system, sf.name
        ));
    }
    if cert.validate(&sf.system, deep) {
        println!(
            "certificate VALID for `{}`{}",
            sf.name,
            if deep { " (LMI + interval re-check)" } else { " (LMI re-check)" }
        );
        Ok(())
    } else {
        Err("certificate did NOT validate".into())
    }
}

fn falsify_cmd(path: &str) -> Result<(), String> {
    let sf = load(path)?;
    let (bench, controller) = as_benchmark(&sf);
    match falsify(&bench.system, |x| controller.forward(x), &FalsifyConfig::default()) {
        Some(cex) => {
            println!("UNSAFE: trajectory from {:?} enters the unsafe set", cex.initial);
            println!(
                "  reaches {:?} after {} steps",
                cex.trajectory.states[cex.entry_step], cex.entry_step
            );
            Err("system falsified; no barrier certificate can exist".into())
        }
        None => {
            println!("no unsafe trajectory found by simulation (evidence, not proof)");
            Ok(())
        }
    }
}
