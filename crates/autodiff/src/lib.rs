//! Tape-based reverse-mode automatic differentiation with second-order support.
//!
//! The SNBC learner trains a *quadratic network* `B(x; θ)` whose loss (eq. (10)
//! of the paper) contains the Lie derivative `L_f B(x) = ∇ₓB(x)·f(x)` — a
//! gradient **with respect to the network input** — and then needs the gradient
//! of that loss **with respect to the parameters θ**. That is a
//! grad-of-grad: the backward pass itself must be differentiable.
//!
//! This crate implements the classic solution: a [`Tape`] of scalar operations
//! where [`Tape::grad`] replays the tape in reverse and *records the adjoint
//! computation as new tape nodes*. The returned gradients are ordinary
//! [`Var`]s, so calling [`Tape::grad`] on them differentiates through the
//! first backward pass.
//!
//! # Example
//!
//! ```
//! use snbc_autodiff::Tape;
//!
//! let mut t = Tape::new();
//! let x = t.input(0.5);
//! let y = t.mul(x, x);          // y = x²
//! let y = t.mul(y, x);          // y = x³
//! let g = t.grad(y, &[x]);      // dy/dx = 3x²
//! assert!((t.value(g[0]) - 0.75).abs() < 1e-12);
//! let h = t.grad(g[0], &[x]);   // d²y/dx² = 6x
//! assert!((t.value(h[0]) - 3.0).abs() < 1e-12);
//! ```

use std::fmt;

/// Handle to a scalar value recorded on a [`Tape`].
///
/// `Var`s are cheap copyable indices; all arithmetic goes through [`Tape`]
/// methods so the operation graph is recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// The raw node index on its tape.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Const,
    Input,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Neg(Var),
    Recip(Var),
    Tanh(Var),
    Exp(Var),
    Sin(Var),
    Cos(Var),
    /// LeakyReLU with the given negative-side slope.
    LeakyRelu(Var, f64),
    /// Integer power with exponent ≥ 1.
    Powi(Var, u32),
    Max(Var, Var),
    Min(Var, Var),
    /// Fused multiply-by-constant (one node instead of constant + mul).
    MulConst(Var, f64),
    /// Fused add-constant (the constant does not affect gradients, so only
    /// the operand is stored for the backward pass; the value is folded in at
    /// construction).
    AddConst(Var),
}

#[derive(Debug, Clone, Copy)]
struct Node {
    op: Op,
    value: f64,
}

/// A growable record of scalar operations supporting repeated reverse-mode
/// differentiation.
///
/// Values are computed eagerly as nodes are pushed; the graph exists so that
/// [`Tape::grad`] can emit adjoint nodes. See the [crate docs](crate) for an
/// example.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::new() }
    }

    /// Creates an empty tape with capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Tape {
            nodes: Vec::with_capacity(n),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, op: Op, value: f64) -> Var {
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// Records a constant (not differentiated against).
    pub fn constant(&mut self, v: f64) -> Var {
        self.push(Op::Const, v)
    }

    /// Records an input/leaf variable (differentiable).
    pub fn input(&mut self, v: f64) -> Var {
        self.push(Op::Input, v)
    }

    /// Current value of a variable.
    pub fn value(&self, v: Var) -> f64 {
        self.nodes[v.0].value
    }

    /// `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a) + self.value(b);
        self.push(Op::Add(a, b), v)
    }

    /// `a − b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a) - self.value(b);
        self.push(Op::Sub(a, b), v)
    }

    /// `a · b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a) * self.value(b);
        self.push(Op::Mul(a, b), v)
    }

    /// `−a`.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = -self.value(a);
        self.push(Op::Neg(a), v)
    }

    /// `1 / a`.
    pub fn recip(&mut self, a: Var) -> Var {
        let v = 1.0 / self.value(a);
        self.push(Op::Recip(a), v)
    }

    /// `a / b` (recorded as `a · (1/b)`).
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let r = self.recip(b);
        self.mul(a, r)
    }

    /// `tanh(a)`.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).tanh();
        self.push(Op::Tanh(a), v)
    }

    /// `exp(a)`.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).exp();
        self.push(Op::Exp(a), v)
    }

    /// `sin(a)`.
    pub fn sin(&mut self, a: Var) -> Var {
        let v = self.value(a).sin();
        self.push(Op::Sin(a), v)
    }

    /// `cos(a)`.
    pub fn cos(&mut self, a: Var) -> Var {
        let v = self.value(a).cos();
        self.push(Op::Cos(a), v)
    }

    /// LeakyReLU: `a` for `a > 0`, `slope · a` otherwise. The paper uses this
    /// as the smooth surrogate for `max{ε, ·}` in loss (10).
    pub fn leaky_relu(&mut self, a: Var, slope: f64) -> Var {
        let x = self.value(a);
        let v = if x > 0.0 { x } else { slope * x };
        self.push(Op::LeakyRelu(a, slope), v)
    }

    /// `aᵉ` for integer `e ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `e == 0` (record a constant instead).
    pub fn powi(&mut self, a: Var, e: u32) -> Var {
        assert!(e >= 1, "powi exponent must be >= 1");
        // powi exponents are tiny (poly degrees); the cast cannot truncate.
        let v = self.value(a).powi(e as i32); // audit:allow(lossy-cast)
        self.push(Op::Powi(a, e), v)
    }

    /// `max(a, b)` (subgradient flows to the larger argument).
    pub fn max(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).max(self.value(b));
        self.push(Op::Max(a, b), v)
    }

    /// `min(a, b)` (subgradient flows to the smaller argument).
    pub fn min(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).min(self.value(b));
        self.push(Op::Min(a, b), v)
    }

    /// `a + c` for a plain float `c` (fused single node).
    pub fn add_const(&mut self, a: Var, c: f64) -> Var {
        let v = self.value(a) + c;
        self.push(Op::AddConst(a), v)
    }

    /// `c · a` for a plain float `c` (fused single node).
    pub fn scale(&mut self, a: Var, c: f64) -> Var {
        let v = self.value(a) * c;
        self.push(Op::MulConst(a, c), v)
    }

    /// Sum of a slice of variables (`0` constant for the empty slice).
    pub fn sum(&mut self, vars: &[Var]) -> Var {
        match vars.split_first() {
            None => self.constant(0.0),
            Some((&first, rest)) => {
                let mut acc = first;
                for &v in rest {
                    acc = self.add(acc, v);
                }
                acc
            }
        }
    }

    /// Dot product `Σ aᵢ·bᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot(&mut self, a: &[Var], b: &[Var]) -> Var {
        assert_eq!(a.len(), b.len(), "dot length mismatch");
        let mut acc = self.constant(0.0);
        for (&x, &y) in a.iter().zip(b) {
            let p = self.mul(x, y);
            acc = self.add(acc, p);
        }
        acc
    }

    /// Reverse-mode gradient of `output` with respect to each variable in
    /// `wrt`, **recorded as new tape nodes** so the result is itself
    /// differentiable.
    ///
    /// Variables in `wrt` that `output` does not depend on receive a constant
    /// zero gradient.
    pub fn grad(&mut self, output: Var, wrt: &[Var]) -> Vec<Var> {
        // Two traversal strategies:
        // * few wrt variables (per-sample input gradients): sparse reverse
        //   traversal visiting only the ancestors of `output` — keeps the
        //   cost proportional to the subgraph, not the whole tape;
        // * many wrt variables (a whole parameter vector): dense sweep over
        //   the tape prefix, which avoids heap/hash overhead when the
        //   subgraph is most of the tape anyway.
        if wrt.len() >= 64 {
            return self.grad_dense(output, wrt);
        }
        use std::collections::{BinaryHeap, HashMap};
        let frontier = output.0 + 1;
        let mut adjoint: HashMap<usize, Var> = HashMap::new();
        let mut heap: BinaryHeap<usize> = BinaryHeap::new();
        let one = self.constant(1.0);
        adjoint.insert(output.0, one);
        heap.push(output.0);
        while let Some(i) = heap.pop() {
            while heap.peek() == Some(&i) {
                heap.pop();
            }
            let adj = adjoint[&i];
            let node = self.nodes[i];
            match node.op {
                Op::Const | Op::Input => {}
                Op::Add(a, b) => {
                    self.accumulate(&mut adjoint, &mut heap, frontier, a, adj);
                    self.accumulate(&mut adjoint, &mut heap, frontier, b, adj);
                }
                Op::Sub(a, b) => {
                    self.accumulate(&mut adjoint, &mut heap, frontier, a, adj);
                    let n = self.neg(adj);
                    self.accumulate(&mut adjoint, &mut heap, frontier, b, n);
                }
                Op::Mul(a, b) => {
                    let da = self.mul(adj, b);
                    self.accumulate(&mut adjoint, &mut heap, frontier, a, da);
                    let db = self.mul(adj, a);
                    self.accumulate(&mut adjoint, &mut heap, frontier, b, db);
                }
                Op::Neg(a) => {
                    let n = self.neg(adj);
                    self.accumulate(&mut adjoint, &mut heap, frontier, a, n);
                }
                Op::Recip(a) => {
                    // d(1/a)/da = −1/a² = −(1/a)².
                    let y = Var(i);
                    let y2 = self.mul(y, y);
                    let d = self.neg(y2);
                    let da = self.mul(adj, d);
                    self.accumulate(&mut adjoint, &mut heap, frontier, a, da);
                }
                Op::Tanh(a) => {
                    // d tanh / da = 1 − y².
                    let y = Var(i);
                    let y2 = self.mul(y, y);
                    let one = self.constant(1.0);
                    let d = self.sub(one, y2);
                    let da = self.mul(adj, d);
                    self.accumulate(&mut adjoint, &mut heap, frontier, a, da);
                }
                Op::Exp(a) => {
                    let y = Var(i);
                    let da = self.mul(adj, y);
                    self.accumulate(&mut adjoint, &mut heap, frontier, a, da);
                }
                Op::Sin(a) => {
                    let c = self.cos(a);
                    let da = self.mul(adj, c);
                    self.accumulate(&mut adjoint, &mut heap, frontier, a, da);
                }
                Op::Cos(a) => {
                    let s = self.sin(a);
                    let ns = self.neg(s);
                    let da = self.mul(adj, ns);
                    self.accumulate(&mut adjoint, &mut heap, frontier, a, da);
                }
                Op::LeakyRelu(a, slope) => {
                    // Piecewise-constant derivative selected by the current
                    // value; its second derivative is zero a.e.
                    let d = if self.value(a) > 0.0 { 1.0 } else { slope };
                    let da = self.scale(adj, d);
                    self.accumulate(&mut adjoint, &mut heap, frontier, a, da);
                }
                Op::Powi(a, e) => {
                    let d = if e == 1 {
                        self.constant(1.0)
                    } else {
                        let p = self.powi(a, e - 1);
                        self.scale(p, f64::from(e))
                    };
                    let da = self.mul(adj, d);
                    self.accumulate(&mut adjoint, &mut heap, frontier, a, da);
                }
                Op::Max(a, b) => {
                    if self.value(a) >= self.value(b) {
                        self.accumulate(&mut adjoint, &mut heap, frontier, a, adj);
                    } else {
                        self.accumulate(&mut adjoint, &mut heap, frontier, b, adj);
                    }
                }
                Op::Min(a, b) => {
                    if self.value(a) <= self.value(b) {
                        self.accumulate(&mut adjoint, &mut heap, frontier, a, adj);
                    } else {
                        self.accumulate(&mut adjoint, &mut heap, frontier, b, adj);
                    }
                }
                Op::MulConst(a, c) => {
                    let da = self.scale(adj, c);
                    self.accumulate(&mut adjoint, &mut heap, frontier, a, da);
                }
                Op::AddConst(a) => {
                    self.accumulate(&mut adjoint, &mut heap, frontier, a, adj);
                }
            }
        }
        wrt.iter()
            .map(|w| {
                adjoint
                    .get(&w.0)
                    .copied()
                    .unwrap_or_else(|| self.constant(0.0))
            })
            .collect()
    }

    /// Dense reverse sweep over the tape prefix `0..=output`; used when the
    /// gradient of (nearly) the whole tape is requested.
    fn grad_dense(&mut self, output: Var, wrt: &[Var]) -> Vec<Var> {
        let frontier = output.0 + 1;
        let mut adjoint: Vec<Option<Var>> = vec![None; frontier];
        let one = self.constant(1.0);
        adjoint[output.0] = Some(one);
        for i in (0..frontier).rev() {
            let Some(adj) = adjoint[i] else { continue };
            let node = self.nodes[i];
            match node.op {
                Op::Const | Op::Input => {}
                Op::Add(a, b) => {
                    self.acc_dense(&mut adjoint, a, adj);
                    self.acc_dense(&mut adjoint, b, adj);
                }
                Op::Sub(a, b) => {
                    self.acc_dense(&mut adjoint, a, adj);
                    let n = self.neg(adj);
                    self.acc_dense(&mut adjoint, b, n);
                }
                Op::Mul(a, b) => {
                    let da = self.mul(adj, b);
                    self.acc_dense(&mut adjoint, a, da);
                    let db = self.mul(adj, a);
                    self.acc_dense(&mut adjoint, b, db);
                }
                Op::Neg(a) => {
                    let n = self.neg(adj);
                    self.acc_dense(&mut adjoint, a, n);
                }
                Op::Recip(a) => {
                    let y = Var(i);
                    let y2 = self.mul(y, y);
                    let d = self.neg(y2);
                    let da = self.mul(adj, d);
                    self.acc_dense(&mut adjoint, a, da);
                }
                Op::Tanh(a) => {
                    let y = Var(i);
                    let y2 = self.mul(y, y);
                    let one = self.constant(1.0);
                    let d = self.sub(one, y2);
                    let da = self.mul(adj, d);
                    self.acc_dense(&mut adjoint, a, da);
                }
                Op::Exp(a) => {
                    let y = Var(i);
                    let da = self.mul(adj, y);
                    self.acc_dense(&mut adjoint, a, da);
                }
                Op::Sin(a) => {
                    let c = self.cos(a);
                    let da = self.mul(adj, c);
                    self.acc_dense(&mut adjoint, a, da);
                }
                Op::Cos(a) => {
                    let s = self.sin(a);
                    let ns = self.neg(s);
                    let da = self.mul(adj, ns);
                    self.acc_dense(&mut adjoint, a, da);
                }
                Op::LeakyRelu(a, slope) => {
                    let d = if self.value(a) > 0.0 { 1.0 } else { slope };
                    let da = self.scale(adj, d);
                    self.acc_dense(&mut adjoint, a, da);
                }
                Op::Powi(a, e) => {
                    let d = if e == 1 {
                        self.constant(1.0)
                    } else {
                        let p = self.powi(a, e - 1);
                        self.scale(p, f64::from(e))
                    };
                    let da = self.mul(adj, d);
                    self.acc_dense(&mut adjoint, a, da);
                }
                Op::Max(a, b) => {
                    if self.value(a) >= self.value(b) {
                        self.acc_dense(&mut adjoint, a, adj);
                    } else {
                        self.acc_dense(&mut adjoint, b, adj);
                    }
                }
                Op::Min(a, b) => {
                    if self.value(a) <= self.value(b) {
                        self.acc_dense(&mut adjoint, a, adj);
                    } else {
                        self.acc_dense(&mut adjoint, b, adj);
                    }
                }
                Op::MulConst(a, c) => {
                    let da = self.scale(adj, c);
                    self.acc_dense(&mut adjoint, a, da);
                }
                Op::AddConst(a) => {
                    self.acc_dense(&mut adjoint, a, adj);
                }
            }
        }
        wrt.iter()
            .map(|w| {
                adjoint
                    .get(w.0)
                    .copied()
                    .flatten()
                    .unwrap_or_else(|| self.constant(0.0))
            })
            .collect()
    }

    fn acc_dense(&mut self, adjoint: &mut [Option<Var>], target: Var, contribution: Var) {
        if target.0 >= adjoint.len() {
            return;
        }
        adjoint[target.0] = Some(match adjoint[target.0] {
            None => contribution,
            Some(existing) => self.add(existing, contribution),
        });
    }

    fn accumulate(
        &mut self,
        adjoint: &mut std::collections::HashMap<usize, Var>,
        heap: &mut std::collections::BinaryHeap<usize>,
        frontier: usize,
        target: Var,
        contribution: Var,
    ) {
        if target.0 >= frontier {
            // Node created during this backward pass; it cannot be an
            // ancestor of the output, so its adjoint is irrelevant.
            return;
        }
        match adjoint.entry(target.0) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(contribution);
                heap.push(target.0);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                let existing = *e.get();
                drop(e);
                let sum = self.add(existing, contribution);
                adjoint.insert(target.0, sum);
            }
        }
    }

    /// Clears all nodes, keeping the allocation.
    pub fn clear(&mut self) {
        self.nodes.clear();
    }
}

impl fmt::Display for Tape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tape with {} nodes", self.nodes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn polynomial_first_and_second_derivative() {
        // f(x) = x³ − 2x; f' = 3x² − 2; f'' = 6x.
        let mut t = Tape::new();
        let x = t.input(1.7);
        let x3 = t.powi(x, 3);
        let tx = t.scale(x, 2.0);
        let f = t.sub(x3, tx);
        let g = t.grad(f, &[x]);
        assert!((t.value(g[0]) - (3.0 * 1.7f64.powi(2) - 2.0)).abs() < 1e-12);
        let h = t.grad(g[0], &[x]);
        assert!((t.value(h[0]) - 6.0 * 1.7).abs() < 1e-12);
    }

    #[test]
    fn tanh_derivatives_match_finite_differences() {
        let x0 = 0.37;
        let mut t = Tape::new();
        let x = t.input(x0);
        let y = t.tanh(x);
        let g = t.grad(y, &[x]);
        assert!((t.value(g[0]) - finite_diff(f64::tanh, x0)).abs() < 1e-8);
        let h = t.grad(g[0], &[x]);
        let second = finite_diff(|v| 1.0 - v.tanh().powi(2), x0);
        assert!((t.value(h[0]) - second).abs() < 1e-7);
    }

    #[test]
    fn multivariate_partials() {
        // f(a, b) = a·b + sin(a); ∂f/∂a = b + cos(a), ∂f/∂b = a.
        let (a0, b0) = (0.8, -1.3);
        let mut t = Tape::new();
        let a = t.input(a0);
        let b = t.input(b0);
        let ab = t.mul(a, b);
        let sa = t.sin(a);
        let f = t.add(ab, sa);
        let g = t.grad(f, &[a, b]);
        assert!((t.value(g[0]) - (b0 + a0.cos())).abs() < 1e-12);
        assert!((t.value(g[1]) - a0).abs() < 1e-12);
    }

    #[test]
    fn grad_of_unrelated_input_is_zero() {
        let mut t = Tape::new();
        let a = t.input(1.0);
        let b = t.input(2.0);
        let f = t.mul(a, a);
        let g = t.grad(f, &[b]);
        assert_eq!(t.value(g[0]), 0.0);
    }

    #[test]
    fn fan_out_accumulates() {
        // f = x·x + x ⇒ f' = 2x + 1.
        let mut t = Tape::new();
        let x = t.input(3.0);
        let xx = t.mul(x, x);
        let f = t.add(xx, x);
        let g = t.grad(f, &[x]);
        assert!((t.value(g[0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn division_and_reciprocal() {
        let mut t = Tape::new();
        let a = t.input(3.0);
        let b = t.input(2.0);
        let q = t.div(a, b);
        let g = t.grad(q, &[a, b]);
        assert!((t.value(g[0]) - 0.5).abs() < 1e-12);
        assert!((t.value(g[1]) + 0.75).abs() < 1e-12);
    }

    #[test]
    fn leaky_relu_both_sides() {
        for (x0, want) in [(2.0, 1.0), (-2.0, 0.01)] {
            let mut t = Tape::new();
            let x = t.input(x0);
            let y = t.leaky_relu(x, 0.01);
            let g = t.grad(y, &[x]);
            assert!((t.value(g[0]) - want).abs() < 1e-15);
        }
    }

    #[test]
    fn max_min_route_gradient() {
        let mut t = Tape::new();
        let a = t.input(1.0);
        let b = t.input(5.0);
        let m = t.max(a, b);
        let g = t.grad(m, &[a, b]);
        assert_eq!(t.value(g[0]), 0.0);
        assert_eq!(t.value(g[1]), 1.0);
        let mn = t.min(a, b);
        let g2 = t.grad(mn, &[a, b]);
        assert_eq!(t.value(g2[0]), 1.0);
        assert_eq!(t.value(g2[1]), 0.0);
    }

    #[test]
    fn exp_second_derivative_is_exp() {
        let mut t = Tape::new();
        let x = t.input(0.4);
        let y = t.exp(x);
        let g = t.grad(y, &[x]);
        let h = t.grad(g[0], &[x]);
        assert!((t.value(h[0]) - 0.4f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn lie_derivative_style_double_backprop() {
        // B(x; w) = w·x², loss = (dB/dx)·f with f = 2 constant.
        // dB/dx = 2wx, loss = 4wx, dloss/dw = 4x.
        let mut t = Tape::new();
        let w = t.input(1.5);
        let x = t.input(0.7);
        let x2 = t.mul(x, x);
        let b = t.mul(w, x2);
        let dbdx = t.grad(b, &[x]);
        let loss = t.scale(dbdx[0], 2.0);
        let dloss = t.grad(loss, &[w]);
        assert!((t.value(dloss[0]) - 4.0 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn sum_and_dot_helpers() {
        let mut t = Tape::new();
        let a = t.input(1.0);
        let b = t.input(2.0);
        let c = t.input(3.0);
        let s = t.sum(&[a, b, c]);
        assert_eq!(t.value(s), 6.0);
        let d = t.dot(&[a, b], &[b, c]);
        assert_eq!(t.value(d), 8.0);
        let empty = t.sum(&[]);
        assert_eq!(t.value(empty), 0.0);
    }

    #[test]
    fn clear_reuses_allocation() {
        let mut t = Tape::new();
        let x = t.input(1.0);
        let _ = t.tanh(x);
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
    }
}
