use rand::Rng;
use rand::SeedableRng;
use snbc_autodiff::{Tape, Var};
use snbc_poly::Polynomial;

/// The classic *square network* the paper compares its quadratic network
/// against (§4.1): hidden layers apply `σ(x) = (Wx + b)²` element-wise.
///
/// At equal hidden width and depth it produces the same output degree as
/// [`crate::QuadraticNet`] with **half the parameters**, but every hidden
/// feature is constrained to be a perfect square — the restricted output
/// range the paper identifies as the fitting-capability gap. The ablation
/// bench (`cargo bench -p snbc-bench`) and the unit tests below quantify
/// exactly that claim.
///
/// # Example
///
/// ```
/// use snbc_nn::{QuadraticNet, SquareNet};
///
/// let sq = SquareNet::new(2, &[5], 1);
/// let qn = QuadraticNet::new(2, &[5], 1);
/// assert_eq!(sq.output_degree(), qn.output_degree());
/// assert!(sq.num_params() < qn.num_params());
/// ```
#[derive(Debug, Clone)]
pub struct SquareNet {
    input_dim: usize,
    hidden: Vec<usize>,
    /// Per hidden layer `W | b` (row-major), then the output layer `W | b`.
    params: Vec<f64>,
}

impl SquareNet {
    /// Creates a randomly initialized square network.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is empty or `input_dim == 0`.
    pub fn new(input_dim: usize, hidden: &[usize], seed: u64) -> Self {
        assert!(input_dim > 0, "input dimension must be positive");
        assert!(!hidden.is_empty(), "need at least one hidden layer");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut params = Vec::new();
        let mut fan_in = input_dim;
        for &h in hidden {
            let scale = (2.0 / (fan_in + h) as f64).sqrt();
            for _ in 0..fan_in * h + h {
                params.push(rng.gen_range(-scale..scale));
            }
            fan_in = h;
        }
        let scale = (2.0 / (fan_in + 1) as f64).sqrt();
        for _ in 0..fan_in {
            params.push(rng.gen_range(-scale..scale));
        }
        params.push(0.0);
        SquareNet {
            input_dim,
            hidden: hidden.to_vec(),
            params,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Degree of the output polynomial (`2^l`, same as the quadratic net).
    pub fn output_degree(&self) -> u32 {
        1u32 << self.hidden.len()
    }

    /// Flat parameter vector.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Overwrites the flat parameter vector.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.params.len(), "parameter length mismatch");
        self.params.copy_from_slice(params);
    }

    /// Number of parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Scalar forward pass.
    ///
    /// # Panics
    ///
    /// Panics on input-width mismatch.
    pub fn forward(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
        let mut act: Vec<f64> = x.to_vec();
        let mut offset = 0;
        for &h in &self.hidden {
            let fan_in = act.len();
            let w = offset;
            let b = w + fan_in * h;
            let mut next = vec![0.0; h];
            for (o, n) in next.iter_mut().enumerate() {
                let mut a = self.params[b + o];
                for (i, v) in act.iter().enumerate() {
                    a += self.params[w + o * fan_in + i] * v;
                }
                *n = a * a;
            }
            offset = b + h;
            act = next;
        }
        let w = offset;
        let b = w + act.len();
        let mut out = self.params[b];
        for (i, a) in act.iter().enumerate() {
            out += self.params[w + i] * a;
        }
        out
    }

    /// Forward pass on a tape.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn forward_tape(&self, tape: &mut Tape, params: &[Var], x: &[Var]) -> Var {
        assert_eq!(params.len(), self.num_params(), "parameter count mismatch");
        assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
        let mut act: Vec<Var> = x.to_vec();
        let mut offset = 0;
        for &h in &self.hidden {
            let fan_in = act.len();
            let w = offset;
            let b = w + fan_in * h;
            let mut next = Vec::with_capacity(h);
            for o in 0..h {
                let mut a = params[b + o];
                for (i, v) in act.iter().enumerate() {
                    let p = tape.mul(params[w + o * fan_in + i], *v);
                    a = tape.add(a, p);
                }
                next.push(tape.mul(a, a));
            }
            offset = b + h;
            act = next;
        }
        let w = offset;
        let b = w + act.len();
        let mut out = params[b];
        for (i, a) in act.iter().enumerate() {
            let p = tape.mul(params[w + i], *a);
            out = tape.add(out, p);
        }
        out
    }

    /// Extracts the output as an explicit polynomial.
    pub fn to_polynomial(&self) -> Polynomial {
        let mut act: Vec<Polynomial> = (0..self.input_dim).map(Polynomial::var).collect();
        let mut offset = 0;
        for &h in &self.hidden {
            let fan_in = act.len();
            let w = offset;
            let b = w + fan_in * h;
            let mut next = Vec::with_capacity(h);
            for o in 0..h {
                let mut a = Polynomial::constant(self.params[b + o]);
                for (i, v) in act.iter().enumerate() {
                    a += &v.scale(self.params[w + o * fan_in + i]);
                }
                next.push(&a * &a);
            }
            offset = b + h;
            act = next;
        }
        let w = offset;
        let b = w + act.len();
        let mut out = Polynomial::constant(self.params[b]);
        for (i, a) in act.iter().enumerate() {
            out += &a.scale(self.params[w + i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, QuadraticNet};

    #[test]
    fn polynomial_matches_forward() {
        let net = SquareNet::new(2, &[4], 9);
        let p = net.to_polynomial();
        for i in -2..=2 {
            for j in -2..=2 {
                let x = [i as f64 * 0.4, j as f64 * 0.3];
                assert!((net.forward(&x) - p.eval(&x)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn tape_matches_plain() {
        let net = SquareNet::new(3, &[3], 4);
        let x = [0.3, -0.2, 0.9];
        let mut tape = Tape::new();
        let pv: Vec<_> = net.params().iter().map(|&p| tape.input(p)).collect();
        let xv: Vec<_> = x.iter().map(|&v| tape.input(v)).collect();
        let y = net.forward_tape(&mut tape, &pv, &xv);
        assert!((tape.value(y) - net.forward(&x)).abs() < 1e-12);
    }

    #[test]
    fn half_the_parameters_of_quadratic() {
        let sq = SquareNet::new(4, &[8], 0);
        let qn = QuadraticNet::new(4, &[8], 0);
        // Hidden layer: (4·8+8) vs 2·(4·8+8); shared output layer (8+1).
        assert_eq!(qn.num_params() - sq.num_params(), 4 * 8 + 8);
    }

    /// The paper's fitting-capability claim, measured where it is provable:
    /// with a single hidden neuron, the square net can only express
    /// `w·(aᵀx + b)² + c` — a rank-1 quadratic — while the cross-product
    /// neuron expresses `(a₁ᵀx + b₁)(a₂ᵀx + b₂)`, a rank-2 (indefinite)
    /// form. The saddle `x·y` is exactly representable by the latter and
    /// provably not by the former.
    #[test]
    fn quadratic_net_fits_saddles_better() {
        let target = |x: &[f64]| x[0] * x[1] - 0.3 * x[0] + 0.1;
        let samples: Vec<(Vec<f64>, f64)> = (0..120)
            .map(|i| {
                let a = -1.0 + 2.0 * (i % 11) as f64 / 10.0;
                let b = -1.0 + 2.0 * (i / 11) as f64 / 10.0;
                (vec![a, b], target(&[a, b]))
            })
            .collect();

        let fit_quadratic = |seed: u64| -> f64 {
            let mut net = QuadraticNet::new(2, &[1], seed);
            let mut opt = Adam::new(net.num_params(), 0.05);
            let mut params = net.params().to_vec();
            for _ in 0..400 {
                let mut tape = Tape::new();
                let pv: Vec<_> = params.iter().map(|&p| tape.input(p)).collect();
                let mut loss = tape.constant(0.0);
                for (x, y) in &samples {
                    let xv: Vec<_> = x.iter().map(|&v| tape.constant(v)).collect();
                    net.set_params(&params);
                    let out = net.forward_tape(&mut tape, &pv, &xv);
                    let e = tape.add_const(out, -y);
                    let sq = tape.mul(e, e);
                    loss = tape.add(loss, sq);
                }
                let g = tape.grad(loss, &pv);
                let gv: Vec<f64> = g.iter().map(|&v| tape.value(v)).collect();
                opt.step(&mut params, &gv);
            }
            net.set_params(&params);
            samples
                .iter()
                .map(|(x, y)| (net.forward(x) - y).powi(2))
                .sum::<f64>()
                / samples.len() as f64
        };
        let fit_square = |seed: u64| -> f64 {
            let mut net = SquareNet::new(2, &[1], seed);
            let mut opt = Adam::new(net.num_params(), 0.05);
            let mut params = net.params().to_vec();
            for _ in 0..400 {
                let mut tape = Tape::new();
                let pv: Vec<_> = params.iter().map(|&p| tape.input(p)).collect();
                let mut loss = tape.constant(0.0);
                for (x, y) in &samples {
                    let xv: Vec<_> = x.iter().map(|&v| tape.constant(v)).collect();
                    net.set_params(&params);
                    let out = net.forward_tape(&mut tape, &pv, &xv);
                    let e = tape.add_const(out, -y);
                    let sq = tape.mul(e, e);
                    loss = tape.add(loss, sq);
                }
                let g = tape.grad(loss, &pv);
                let gv: Vec<f64> = g.iter().map(|&v| tape.value(v)).collect();
                opt.step(&mut params, &gv);
            }
            net.set_params(&params);
            samples
                .iter()
                .map(|(x, y)| (net.forward(x) - y).powi(2))
                .sum::<f64>()
                / samples.len() as f64
        };

        // Best of three seeds each, to dodge unlucky initializations.
        let q = (0..3).map(fit_quadratic).fold(f64::INFINITY, f64::min);
        let s = (0..3).map(fit_square).fold(f64::INFINITY, f64::min);
        assert!(
            q < 0.2 * s,
            "quadratic net (mse {q:.2e}) should decisively out-fit the square net (mse {s:.2e})"
        );
    }
}
