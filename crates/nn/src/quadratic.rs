use rand::Rng;
use rand::SeedableRng;
use snbc_autodiff::{Tape, Var};
use snbc_poly::Polynomial;

/// The paper's *quadratic network* (§4.1, Fig. 2): hidden layers apply the
/// cross-product (Hadamard) activation
///
/// ```text
///     x⁽ˡ⁾ = (W₁⁽ˡ⁾ x⁽ˡ⁻¹⁾ + b₁⁽ˡ⁾) ⊗ (W₂⁽ˡ⁾ x⁽ˡ⁻¹⁾ + b₂⁽ˡ⁾),
/// ```
///
/// so with `l` hidden layers the scalar output is *exactly* a polynomial of
/// degree `2^l` in the input — interpretable by the SOS verifier without any
/// abstraction step. Compared to the classic square network
/// `σ(x) = (Wx + b)²` it doubles the parameters at equal output degree,
/// which is precisely the fitting-capability argument of the paper.
///
/// # Example
///
/// ```
/// use snbc_nn::QuadraticNet;
///
/// // 2 inputs, one hidden layer of 5 ⇒ degree-2 polynomial output.
/// let net = QuadraticNet::new(2, &[5], 1);
/// assert!(net.to_polynomial().degree() <= 2);
/// ```
#[derive(Debug, Clone)]
pub struct QuadraticNet {
    input_dim: usize,
    hidden: Vec<usize>,
    /// Flat parameters: per hidden layer `W₁ | b₁ | W₂ | b₂` (row-major),
    /// then the linear output layer `W | b`.
    params: Vec<f64>,
}

impl QuadraticNet {
    /// Creates a randomly initialized quadratic network. `hidden` lists the
    /// hidden-layer widths (one entry per cross-product layer, so the output
    /// degree is `2^hidden.len()`).
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is empty or `input_dim == 0`.
    pub fn new(input_dim: usize, hidden: &[usize], seed: u64) -> Self {
        assert!(input_dim > 0, "input dimension must be positive");
        assert!(!hidden.is_empty(), "need at least one hidden layer");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut params = Vec::new();
        let mut fan_in = input_dim;
        for &h in hidden {
            let scale = (2.0 / (fan_in + h) as f64).sqrt();
            for _ in 0..2 * (fan_in * h + h) {
                params.push(rng.gen_range(-scale..scale));
            }
            fan_in = h;
        }
        // Output layer W (1 × fan_in) and bias.
        let scale = (2.0 / (fan_in + 1) as f64).sqrt();
        for _ in 0..fan_in {
            params.push(rng.gen_range(-scale..scale));
        }
        params.push(0.0);
        QuadraticNet {
            input_dim,
            hidden: hidden.to_vec(),
            params,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-layer widths.
    pub fn hidden_sizes(&self) -> &[usize] {
        &self.hidden
    }

    /// Degree of the output polynomial (`2^l` for `l` hidden layers).
    pub fn output_degree(&self) -> u32 {
        1u32 << self.hidden.len()
    }

    /// Flat parameter vector.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Overwrites the flat parameter vector.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.params.len(), "parameter length mismatch");
        self.params.copy_from_slice(params);
    }

    /// Number of parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Scalar forward pass.
    ///
    /// # Panics
    ///
    /// Panics on input-width mismatch.
    pub fn forward(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
        let mut act: Vec<f64> = x.to_vec();
        let mut offset = 0;
        for &h in &self.hidden {
            let fan_in = act.len();
            let mut next = vec![0.0; h];
            let w1 = offset;
            let b1 = w1 + fan_in * h;
            let w2 = b1 + h;
            let b2 = w2 + fan_in * h;
            for (o, n) in next.iter_mut().enumerate() {
                let mut a1 = self.params[b1 + o];
                let mut a2 = self.params[b2 + o];
                for (i, a) in act.iter().enumerate() {
                    a1 += self.params[w1 + o * fan_in + i] * a;
                    a2 += self.params[w2 + o * fan_in + i] * a;
                }
                *n = a1 * a2;
            }
            offset = b2 + h;
            act = next;
        }
        let w = offset;
        let b = w + act.len();
        let mut out = self.params[b];
        for (i, a) in act.iter().enumerate() {
            out += self.params[w + i] * a;
        }
        out
    }

    /// Forward pass on a tape with parameters and inputs as tape variables.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn forward_tape(&self, tape: &mut Tape, params: &[Var], x: &[Var]) -> Var {
        assert_eq!(params.len(), self.num_params(), "parameter count mismatch");
        assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
        let mut act: Vec<Var> = x.to_vec();
        let mut offset = 0;
        for &h in &self.hidden {
            let fan_in = act.len();
            let w1 = offset;
            let b1 = w1 + fan_in * h;
            let w2 = b1 + h;
            let b2 = w2 + fan_in * h;
            let mut next = Vec::with_capacity(h);
            for o in 0..h {
                let mut a1 = params[b1 + o];
                let mut a2 = params[b2 + o];
                for (i, a) in act.iter().enumerate() {
                    let p1 = tape.mul(params[w1 + o * fan_in + i], *a);
                    a1 = tape.add(a1, p1);
                    let p2 = tape.mul(params[w2 + o * fan_in + i], *a);
                    a2 = tape.add(a2, p2);
                }
                next.push(tape.mul(a1, a2));
            }
            offset = b2 + h;
            act = next;
        }
        let w = offset;
        let b = w + act.len();
        let mut out = params[b];
        for (i, a) in act.iter().enumerate() {
            let p = tape.mul(params[w + i], *a);
            out = tape.add(out, p);
        }
        out
    }

    /// Extracts the output as an explicit [`Polynomial`] by pushing symbolic
    /// coordinates through the layers — the step that hands the learned
    /// candidate `B(x)` to the SOS verifier.
    pub fn to_polynomial(&self) -> Polynomial {
        let mut act: Vec<Polynomial> = (0..self.input_dim).map(Polynomial::var).collect();
        let mut offset = 0;
        for &h in &self.hidden {
            let fan_in = act.len();
            let w1 = offset;
            let b1 = w1 + fan_in * h;
            let w2 = b1 + h;
            let b2 = w2 + fan_in * h;
            let mut next = Vec::with_capacity(h);
            for o in 0..h {
                let mut a1 = Polynomial::constant(self.params[b1 + o]);
                let mut a2 = Polynomial::constant(self.params[b2 + o]);
                for (i, a) in act.iter().enumerate() {
                    a1 += &a.scale(self.params[w1 + o * fan_in + i]);
                    a2 += &a.scale(self.params[w2 + o * fan_in + i]);
                }
                next.push(&a1 * &a2);
            }
            offset = b2 + h;
            act = next;
        }
        let w = offset;
        let b = w + act.len();
        let mut out = Polynomial::constant(self.params[b]);
        for (i, a) in act.iter().enumerate() {
            out += &a.scale(self.params[w + i]);
        }
        out
    }

    /// The analytic gradient `∇P(x)` from the chain rule (formula (9) of the
    /// paper), evaluated numerically. Exists primarily to cross-validate the
    /// autodiff path; training uses the tape.
    ///
    /// # Panics
    ///
    /// Panics on input-width mismatch.
    pub fn gradient(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
        // Forward pass storing per-layer pre-activations.
        let mut act: Vec<f64> = x.to_vec();
        // Jacobian of current activation w.r.t. input, row-major h × n.
        let n = self.input_dim;
        let mut jac: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut row = vec![0.0; n];
                row[i] = 1.0;
                row
            })
            .collect();
        let mut offset = 0;
        for &h in &self.hidden {
            let fan_in = act.len();
            let w1 = offset;
            let b1 = w1 + fan_in * h;
            let w2 = b1 + h;
            let b2 = w2 + fan_in * h;
            let mut next = vec![0.0; h];
            let mut next_jac: Vec<Vec<f64>> = vec![vec![0.0; n]; h];
            for o in 0..h {
                let mut a1 = self.params[b1 + o];
                let mut a2 = self.params[b2 + o];
                for (i, a) in act.iter().enumerate() {
                    a1 += self.params[w1 + o * fan_in + i] * a;
                    a2 += self.params[w2 + o * fan_in + i] * a;
                }
                next[o] = a1 * a2;
                // d(a1·a2)/dx = a2·W₁ⱼ·J + a1·W₂ⱼ·J (formula (9) layerwise).
                for d in 0..n {
                    let mut g1 = 0.0;
                    let mut g2 = 0.0;
                    for i in 0..fan_in {
                        g1 += self.params[w1 + o * fan_in + i] * jac[i][d];
                        g2 += self.params[w2 + o * fan_in + i] * jac[i][d];
                    }
                    next_jac[o][d] = a2 * g1 + a1 * g2;
                }
            }
            offset = b2 + h;
            act = next;
            jac = next_jac;
        }
        let w = offset;
        let mut grad = vec![0.0; n];
        for (o, row) in jac.iter().enumerate() {
            for (d, g) in grad.iter_mut().enumerate() {
                *g += self.params[w + o] * row[d];
            }
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_matches_forward_on_grid() {
        for layers in [vec![4usize], vec![3, 2]] {
            let net = QuadraticNet::new(2, &layers, 5);
            let p = net.to_polynomial();
            assert!(p.degree() <= net.output_degree());
            for i in -2..=2 {
                for j in -2..=2 {
                    let x = [i as f64 * 0.37, j as f64 * 0.59];
                    assert!(
                        (net.forward(&x) - p.eval(&x)).abs() < 1e-9,
                        "mismatch at {x:?} for layers {layers:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn tape_forward_matches_plain() {
        let net = QuadraticNet::new(3, &[4], 9);
        let x = [0.1, -0.5, 0.8];
        let mut tape = Tape::new();
        let pv: Vec<_> = net.params().iter().map(|&p| tape.input(p)).collect();
        let xv: Vec<_> = x.iter().map(|&v| tape.input(v)).collect();
        let y = net.forward_tape(&mut tape, &pv, &xv);
        assert!((tape.value(y) - net.forward(&x)).abs() < 1e-12);
    }

    #[test]
    fn formula_nine_gradient_matches_autodiff_and_polynomial() {
        let net = QuadraticNet::new(2, &[3], 13);
        let x = [0.6, -0.4];
        // (a) closed-form chain rule (the paper's formula (9)).
        let g_closed = net.gradient(&x);
        // (b) autodiff.
        let mut tape = Tape::new();
        let pv: Vec<_> = net.params().iter().map(|&p| tape.input(p)).collect();
        let xv: Vec<_> = x.iter().map(|&v| tape.input(v)).collect();
        let y = net.forward_tape(&mut tape, &pv, &xv);
        let g_ad = tape.grad(y, &xv);
        // (c) symbolic polynomial gradient.
        let p = net.to_polynomial();
        for d in 0..2 {
            let g_sym = p.partial(d).eval(&x);
            assert!((g_closed[d] - tape.value(g_ad[d])).abs() < 1e-10);
            assert!((g_closed[d] - g_sym).abs() < 1e-9);
        }
    }

    #[test]
    fn two_layer_network_has_degree_four() {
        let net = QuadraticNet::new(2, &[3, 2], 21);
        assert_eq!(net.output_degree(), 4);
        let p = net.to_polynomial();
        assert!(p.degree() <= 4);
        assert!(p.degree() >= 3, "random init should produce high-degree terms");
    }

    #[test]
    fn parameter_roundtrip() {
        let mut net = QuadraticNet::new(2, &[2], 1);
        let mut p = net.params().to_vec();
        p[0] = 42.0;
        net.set_params(&p);
        assert_eq!(net.params()[0], 42.0);
    }
}

impl QuadraticNet {
    /// Builds `(B(x), L_f B(x))` on a tape for a **single-hidden-layer**
    /// network using the closed-form gradient (formula (9) of the paper),
    /// with the sample `x` and field values `f(x)` as constants. This is the
    /// learner's fast path: it avoids recording a per-sample backward pass
    /// (the tape stays ~5× smaller and the loss gradient is one global
    /// backward sweep). Returns `None` for deeper networks, which fall back
    /// to the generic double-backprop path.
    ///
    /// # Panics
    ///
    /// Panics on parameter/input width mismatches.
    pub fn forward_and_lie_tape(
        &self,
        tape: &mut Tape,
        params: &[Var],
        x: &[f64],
        field: &[f64],
    ) -> Option<(Var, Var)> {
        self.forward_and_lie2_tape(tape, params, x, field, field)
            .map(|(b, lie, _)| (b, lie))
    }

    /// Like [`QuadraticNet::forward_and_lie_tape`] but evaluates the Lie
    /// derivative against two field samples in one pass (sharing the neuron
    /// activations) — the learner uses this for the `w = ±σ*` extremes.
    ///
    /// # Panics
    ///
    /// Panics on parameter/input width mismatches.
    pub fn forward_and_lie2_tape(
        &self,
        tape: &mut Tape,
        params: &[Var],
        x: &[f64],
        field_lo: &[f64],
        field_hi: &[f64],
    ) -> Option<(Var, Var, Var)> {
        if self.hidden.len() != 1 {
            return None;
        }
        assert_eq!(params.len(), self.num_params(), "parameter count mismatch");
        assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
        assert_eq!(field_lo.len(), self.input_dim, "field dimension mismatch");
        assert_eq!(field_hi.len(), self.input_dim, "field dimension mismatch");
        let n = self.input_dim;
        let h = self.hidden[0];
        let w1 = 0;
        let b1 = w1 + n * h;
        let w2 = b1 + h;
        let b2 = w2 + n * h;
        let wout = b2 + h;
        let bout = wout + h;

        let mut b_acc = params[bout];
        let mut lo_acc = tape.constant(0.0);
        let mut hi_acc = tape.constant(0.0);
        let same = field_lo == field_hi;
        for o in 0..h {
            // a1 = b1_o + Σ W1[o,i]·xᵢ and the field dots g = Σ W[o,i]·fᵢ
            // (xᵢ, fᵢ are constants: every term is a fused scale node).
            let mut a1 = params[b1 + o];
            let mut a2 = params[b2 + o];
            let mut g1_lo = tape.constant(0.0);
            let mut g2_lo = tape.constant(0.0);
            let mut g1_hi = g1_lo;
            let mut g2_hi = g2_lo;
            for i in 0..n {
                let p1 = params[w1 + o * n + i];
                let p2 = params[w2 + o * n + i];
                // Sparse tape construction: skip exactly-zero inputs.
                if x[i] != 0.0 { // audit:allow(float-eq)
                    let t1 = tape.scale(p1, x[i]);
                    a1 = tape.add(a1, t1);
                    let t2 = tape.scale(p2, x[i]);
                    a2 = tape.add(a2, t2);
                }
                if field_lo[i] != 0.0 { // audit:allow(float-eq)
                    let s1 = tape.scale(p1, field_lo[i]);
                    g1_lo = tape.add(g1_lo, s1);
                    let s2 = tape.scale(p2, field_lo[i]);
                    g2_lo = tape.add(g2_lo, s2);
                }
                if !same && field_hi[i] != 0.0 { // audit:allow(float-eq)
                    let s1 = tape.scale(p1, field_hi[i]);
                    g1_hi = tape.add(g1_hi, s1);
                    let s2 = tape.scale(p2, field_hi[i]);
                    g2_hi = tape.add(g2_hi, s2);
                }
            }
            // B-contribution: w_out[o]·a1·a2; Lie: w_out[o]·(a2·g1 + a1·g2).
            let prod = tape.mul(a1, a2);
            let bterm = tape.mul(params[wout + o], prod);
            b_acc = tape.add(b_acc, bterm);
            let t1 = tape.mul(a2, g1_lo);
            let t2 = tape.mul(a1, g2_lo);
            let grad_dot = tape.add(t1, t2);
            let lterm = tape.mul(params[wout + o], grad_dot);
            lo_acc = tape.add(lo_acc, lterm);
            if !same {
                let t1 = tape.mul(a2, g1_hi);
                let t2 = tape.mul(a1, g2_hi);
                let grad_dot = tape.add(t1, t2);
                let lterm = tape.mul(params[wout + o], grad_dot);
                hi_acc = tape.add(hi_acc, lterm);
            }
        }
        if same {
            hi_acc = lo_acc;
        }
        Some((b_acc, lo_acc, hi_acc))
    }
}

#[cfg(test)]
mod lie_tape_tests {
    use super::*;

    #[test]
    fn matches_generic_double_backprop() {
        let net = QuadraticNet::new(3, &[5], 77);
        let x = [0.4, -0.9, 0.2];
        let f = [1.3, -0.5, 0.8];
        // Fast path.
        let mut t1 = Tape::new();
        let pv1: Vec<_> = net.params().iter().map(|&p| t1.input(p)).collect();
        let (b_fast, lie_fast) = net
            .forward_and_lie_tape(&mut t1, &pv1, &x, &f)
            .expect("single hidden layer");
        // Generic path: forward + grad wrt inputs + dot with the field.
        let mut t2 = Tape::new();
        let pv2: Vec<_> = net.params().iter().map(|&p| t2.input(p)).collect();
        let xv: Vec<_> = x.iter().map(|&v| t2.input(v)).collect();
        let b_gen = net.forward_tape(&mut t2, &pv2, &xv);
        let g = t2.grad(b_gen, &xv);
        let mut lie_gen = t2.constant(0.0);
        for (gi, &fi) in g.iter().zip(&f) {
            let s = t2.scale(*gi, fi);
            lie_gen = t2.add(lie_gen, s);
        }
        assert!((t1.value(b_fast) - t2.value(b_gen)).abs() < 1e-12);
        assert!((t1.value(lie_fast) - t2.value(lie_gen)).abs() < 1e-10);
        // And the parameter gradients agree too.
        let gf = t1.grad(lie_fast, &pv1);
        let gg = t2.grad(lie_gen, &pv2);
        for (a, b) in gf.iter().zip(&gg) {
            assert!((t1.value(*a) - t2.value(*b)).abs() < 1e-9);
        }
    }

    #[test]
    fn returns_none_for_two_layers() {
        let net = QuadraticNet::new(2, &[3, 2], 1);
        let mut t = Tape::new();
        let pv: Vec<_> = net.params().iter().map(|&p| t.input(p)).collect();
        assert!(net
            .forward_and_lie_tape(&mut t, &pv, &[0.1, 0.2], &[1.0, 1.0])
            .is_none());
    }
}
