//! Neural networks for the SNBC reproduction.
//!
//! Three network families appear in the paper:
//!
//! * the **NN controller** `k(x)` (§2–3) — an ordinary tanh MLP, here
//!   [`Mlp`], pre-trained by supervised regression onto a stabilizing
//!   feedback law (our substitute for the paper's DDPG training; the synthesis
//!   pipeline only needs *some* fixed controller, however it was obtained);
//! * the **quadratic network** for the barrier candidate `B(x)` (§4.1,
//!   Fig. 2) — [`QuadraticNet`], whose cross-product (Hadamard) activation
//!   `x⁽ˡ⁾ = (W₁x + b₁) ⊗ (W₂x + b₂)` makes the output *exactly* a polynomial
//!   of degree `2^l`, extractable symbolically via
//!   [`QuadraticNet::to_polynomial`];
//! * the **multiplier network** for `λ(x)` — [`MultiplierNet`], a linear
//!   network (affine output) or a trainable constant, matching the
//!   `NN_λ(x)` column of Table 1.
//!
//! Training uses [`snbc_autodiff::Tape`] (including the grad-of-grad needed by
//! the Lie-derivative loss) and the [`Adam`] optimizer. Lipschitz constants
//! for Theorem 2 are bounded by the product of layer spectral norms
//! ([`Mlp::lipschitz_bound`]), the standard safe estimate in the spirit of
//! the paper's reference \[6\].
//!
//! # Example
//!
//! ```
//! use snbc_nn::QuadraticNet;
//!
//! let net = QuadraticNet::new(2, &[3], 7);
//! let p = net.to_polynomial();
//! // The symbolic polynomial agrees with the numeric forward pass.
//! let x = [0.3, -0.8];
//! assert!((net.forward(&x) - p.eval(&x)).abs() < 1e-10);
//! assert!(p.degree() <= 2);
//! ```

mod adam;
mod controller;
mod mlp;
mod multiplier;
mod quadratic;
mod square;

pub use adam::Adam;
pub use controller::{train_controller, ControllerTraining};
pub use mlp::{Activation, Mlp, VectorMlp};
pub use multiplier::MultiplierNet;
pub use quadratic::QuadraticNet;
pub use square::SquareNet;
