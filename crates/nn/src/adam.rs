/// The Adam first-order optimizer over a flat parameter vector.
///
/// Used by every training loop in the workspace: controller pre-training and
/// the joint `B(x)`/`λ(x)` learner of §4.1.
///
/// # Example
///
/// ```
/// use snbc_nn::Adam;
///
/// // Minimize (θ − 3)².
/// let mut theta = vec![0.0];
/// let mut opt = Adam::new(1, 0.1);
/// for _ in 0..500 {
///     let g = vec![2.0 * (theta[0] - 3.0)];
///     opt.step(&mut theta, &g);
/// }
/// assert!((theta[0] - 3.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub epsilon: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer for `dim` parameters with the given learning rate
    /// and standard moment decays (0.9, 0.999).
    pub fn new(dim: usize, learning_rate: f64) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            t: 0,
        }
    }

    /// Applies one update `θ ← θ − lr·m̂/(√v̂ + ε)`.
    ///
    /// # Panics
    ///
    /// Panics if `params` or `grads` length differs from the optimizer's
    /// dimension.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "parameter length mismatch");
        assert_eq!(grads.len(), self.m.len(), "gradient length mismatch");
        self.t += 1;
        // Step counts stay far below 2^31; the cast cannot truncate.
        let b1t = 1.0 - self.beta1.powi(self.t as i32); // audit:allow(lossy-cast)
        let b2t = 1.0 - self.beta2.powi(self.t as i32); // audit:allow(lossy-cast)
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.learning_rate * mhat / (vhat.sqrt() + self.epsilon);
        }
    }

    /// Resets the moment estimates (e.g. between CEGIS rounds).
    pub fn reset(&mut self) {
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let mut p = vec![5.0, -4.0];
        let mut opt = Adam::new(2, 0.05);
        for _ in 0..2000 {
            let g = vec![2.0 * p[0], 4.0 * p[1]];
            opt.step(&mut p, &g);
        }
        assert!(p[0].abs() < 1e-3 && p[1].abs() < 1e-3);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Adam::new(1, 0.1);
        let mut p = vec![1.0];
        opt.step(&mut p, &[1.0]);
        opt.reset();
        assert_eq!(opt.t, 0);
        assert_eq!(opt.m[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dimension_mismatch_panics() {
        let mut opt = Adam::new(2, 0.1);
        let mut p = vec![0.0];
        opt.step(&mut p, &[1.0]);
    }
}
