use rand::Rng;
use rand::SeedableRng;
use snbc_autodiff::{Tape, Var};
use snbc_poly::Polynomial;

/// The auxiliary multiplier network for `λ(x)` (Theorem 1 / §4.1).
///
/// The paper trains `λ(x)` with a *linear* NN — all activations identity — so
/// the end-to-end function is affine in `x` regardless of depth; Table 1's
/// `NN_λ(x)` column also allows a plain trainable constant (`c`). Both
/// variants are modeled here; the layered parameterization of the linear
/// variant is kept (rather than collapsing to `wᵀx + b`) to mirror the paper's
/// training dynamics.
///
/// # Example
///
/// ```
/// use snbc_nn::MultiplierNet;
///
/// let net = MultiplierNet::linear(3, &[5], 1);
/// let lambda = net.to_polynomial();
/// assert!(lambda.degree() <= 1); // linear NN ⇒ affine λ(x)
/// ```
#[derive(Debug, Clone)]
pub enum MultiplierNet {
    /// A trainable constant multiplier (the `c` entries of Table 1).
    Constant { value: Vec<f64> },
    /// A linear (identity-activation) network: affine output.
    Linear {
        input_dim: usize,
        layer_sizes: Vec<usize>,
        params: Vec<f64>,
    },
}

impl MultiplierNet {
    /// A trainable constant initialized to `init`.
    pub fn constant(init: f64) -> Self {
        MultiplierNet::Constant { value: vec![init] }
    }

    /// A linear network with the given hidden widths.
    pub fn linear(input_dim: usize, hidden: &[usize], seed: u64) -> Self {
        let mut sizes = vec![input_dim];
        sizes.extend_from_slice(hidden);
        sizes.push(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut params = Vec::new();
        for w in sizes.windows(2) {
            let scale = (2.0 / (w[0] + w[1]) as f64).sqrt();
            for _ in 0..w[0] * w[1] {
                params.push(rng.gen_range(-scale..scale));
            }
            for _ in 0..w[1] {
                params.push(0.0);
            }
        }
        MultiplierNet::Linear {
            input_dim,
            layer_sizes: sizes,
            params,
        }
    }

    /// Flat parameter vector.
    pub fn params(&self) -> &[f64] {
        match self {
            MultiplierNet::Constant { value } => value,
            MultiplierNet::Linear { params, .. } => params,
        }
    }

    /// Overwrites the flat parameter vector.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_params(&mut self, new: &[f64]) {
        match self {
            MultiplierNet::Constant { value } => {
                assert_eq!(new.len(), value.len(), "parameter length mismatch");
                value.copy_from_slice(new);
            }
            MultiplierNet::Linear { params, .. } => {
                assert_eq!(new.len(), params.len(), "parameter length mismatch");
                params.copy_from_slice(new);
            }
        }
    }

    /// Number of parameters.
    pub fn num_params(&self) -> usize {
        self.params().len()
    }

    /// Scalar forward pass.
    ///
    /// # Panics
    ///
    /// Panics on input-width mismatch for the linear variant.
    pub fn forward(&self, x: &[f64]) -> f64 {
        match self {
            MultiplierNet::Constant { value } => value[0],
            MultiplierNet::Linear {
                input_dim,
                layer_sizes,
                params,
            } => {
                assert_eq!(x.len(), *input_dim, "input dimension mismatch");
                let mut act: Vec<f64> = x.to_vec();
                let mut offset = 0;
                for w in layer_sizes.windows(2) {
                    let (fan_in, fan_out) = (w[0], w[1]);
                    let mut next = vec![0.0; fan_out];
                    for (o, n) in next.iter_mut().enumerate() {
                        let mut acc = params[offset + fan_in * fan_out + o];
                        for (i, a) in act.iter().enumerate() {
                            acc += params[offset + o * fan_in + i] * a;
                        }
                        *n = acc;
                    }
                    offset += fan_in * fan_out + fan_out;
                    act = next;
                }
                act[0]
            }
        }
    }

    /// Forward pass on a tape.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn forward_tape(&self, tape: &mut Tape, params: &[Var], x: &[Var]) -> Var {
        match self {
            MultiplierNet::Constant { .. } => {
                assert_eq!(params.len(), 1, "parameter count mismatch");
                params[0]
            }
            MultiplierNet::Linear {
                input_dim,
                layer_sizes,
                ..
            } => {
                assert_eq!(params.len(), self.num_params(), "parameter count mismatch");
                assert_eq!(x.len(), *input_dim, "input dimension mismatch");
                let mut act: Vec<Var> = x.to_vec();
                let mut offset = 0;
                for w in layer_sizes.windows(2) {
                    let (fan_in, fan_out) = (w[0], w[1]);
                    let mut next = Vec::with_capacity(fan_out);
                    for o in 0..fan_out {
                        let mut acc = params[offset + fan_in * fan_out + o];
                        for (i, a) in act.iter().enumerate() {
                            let p = tape.mul(params[offset + o * fan_in + i], *a);
                            acc = tape.add(acc, p);
                        }
                        next.push(acc);
                    }
                    offset += fan_in * fan_out + fan_out;
                    act = next;
                }
                act[0]
            }
        }
    }

    /// Extracts `λ(x)` as an explicit polynomial (degree ≤ 1).
    pub fn to_polynomial(&self) -> Polynomial {
        match self {
            MultiplierNet::Constant { value } => Polynomial::constant(value[0]),
            MultiplierNet::Linear { input_dim, .. } => {
                let mut p = Polynomial::constant(self.forward(&vec![0.0; *input_dim]));
                // Affine: recover slopes by probing unit vectors.
                let base = p.constant_term();
                for i in 0..*input_dim {
                    let mut e = vec![0.0; *input_dim];
                    e[i] = 1.0;
                    let slope = self.forward(&e) - base;
                    p.add_term(slope, snbc_poly::Monomial::var(i));
                }
                p
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_variant() {
        let mut net = MultiplierNet::constant(2.5);
        assert_eq!(net.forward(&[1.0, 2.0]), 2.5);
        net.set_params(&[-1.0]);
        assert_eq!(net.to_polynomial().constant_term(), -1.0);
    }

    #[test]
    fn linear_net_is_affine() {
        let net = MultiplierNet::linear(2, &[5, 3], 3);
        let p = net.to_polynomial();
        assert!(p.degree() <= 1);
        // Affine extraction agrees with the layered forward pass everywhere.
        for x in [[0.0, 0.0], [1.0, -2.0], [0.3, 0.7]] {
            assert!((net.forward(&x) - p.eval(&x)).abs() < 1e-10);
        }
    }

    #[test]
    fn tape_matches_forward() {
        let net = MultiplierNet::linear(2, &[4], 8);
        let x = [0.5, -1.5];
        let mut tape = Tape::new();
        let pv: Vec<_> = net.params().iter().map(|&p| tape.input(p)).collect();
        let xv: Vec<_> = x.iter().map(|&v| tape.input(v)).collect();
        let y = net.forward_tape(&mut tape, &pv, &xv);
        assert!((tape.value(y) - net.forward(&x)).abs() < 1e-12);
    }
}
