use rand::Rng;
use snbc_autodiff::{Tape, Var};
use snbc_linalg::Matrix;

/// Activation function of an [`Mlp`] hidden layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// Hyperbolic tangent (the paper's controller networks).
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with the given negative-side slope.
    LeakyRelu(f64),
    /// Identity (linear layer).
    Linear,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu(s) => {
                if x > 0.0 {
                    x
                } else {
                    s * x
                }
            }
            Activation::Linear => x,
        }
    }

    fn apply_tape(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Tanh => tape.tanh(x),
            Activation::Relu => tape.leaky_relu(x, 0.0),
            Activation::LeakyRelu(s) => tape.leaky_relu(x, s),
            Activation::Linear => x,
        }
    }

    /// A Lipschitz constant of the scalar activation.
    pub fn lipschitz(self) -> f64 {
        match self {
            Activation::Tanh | Activation::Relu | Activation::Linear => 1.0,
            Activation::LeakyRelu(s) => s.abs().max(1.0),
        }
    }
}

/// A dense feed-forward network with a single (scalar) output — the NN
/// controller `k(x)` of the paper.
///
/// Parameters are stored as a flat vector (row-major weights then biases per
/// layer) so optimizers and tapes can address them uniformly.
///
/// # Example
///
/// ```
/// use snbc_nn::{Activation, Mlp};
///
/// let net = Mlp::new(&[2, 8, 1], Activation::Tanh, 42);
/// let y = net.forward(&[0.1, -0.2]);
/// assert!(y.is_finite());
/// assert!(net.lipschitz_bound() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Layer widths, input first, output last.
    layer_sizes: Vec<usize>,
    activation: Activation,
    params: Vec<f64>,
}

impl Mlp {
    /// Creates a network with Xavier-style random initialization from the
    /// given seed.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two layer sizes are given or the output width is
    /// not 1.
    pub fn new(layer_sizes: &[usize], activation: Activation, seed: u64) -> Self {
        assert!(layer_sizes.len() >= 2, "need at least input and output layer");
        assert_eq!(
            *layer_sizes.last().expect("non-empty"),
            1,
            "only single-output controllers are modeled (cf. §3 of the paper)"
        );
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut params = Vec::new();
        for w in layer_sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let scale = (2.0 / (fan_in + fan_out) as f64).sqrt();
            for _ in 0..fan_in * fan_out {
                params.push(rng.gen_range(-scale..scale));
            }
            for _ in 0..fan_out {
                params.push(0.0);
            }
        }
        Mlp {
            layer_sizes: layer_sizes.to_vec(),
            activation,
            params,
        }
    }

    /// Layer widths.
    pub fn layer_sizes(&self) -> &[usize] {
        &self.layer_sizes
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layer_sizes[0]
    }

    /// Hidden-layer activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Flat parameter vector.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Overwrites the flat parameter vector.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.params.len(), "parameter length mismatch");
        self.params.copy_from_slice(params);
    }

    /// Number of parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Scalar forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input dimension.
    pub fn forward(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        let mut act: Vec<f64> = x.to_vec();
        let mut offset = 0;
        let last = self.layer_sizes.len() - 2;
        for (li, w) in self.layer_sizes.windows(2).enumerate() {
            let (fan_in, fan_out) = (w[0], w[1]);
            let mut next = vec![0.0; fan_out];
            for (o, n) in next.iter_mut().enumerate() {
                let mut acc = self.params[offset + fan_in * fan_out + o]; // bias
                for (i, a) in act.iter().enumerate() {
                    acc += self.params[offset + o * fan_in + i] * a;
                }
                *n = if li == last { acc } else { self.activation.apply(acc) };
            }
            offset += fan_in * fan_out + fan_out;
            act = next;
        }
        act[0]
    }

    /// Forward pass on a tape, with parameters supplied as tape variables
    /// (for training) and the input as tape variables.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.num_params()` or the input width is
    /// wrong.
    pub fn forward_tape(&self, tape: &mut Tape, params: &[Var], x: &[Var]) -> Var {
        assert_eq!(params.len(), self.num_params(), "parameter count mismatch");
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        let mut act: Vec<Var> = x.to_vec();
        let mut offset = 0;
        let last = self.layer_sizes.len() - 2;
        for (li, w) in self.layer_sizes.windows(2).enumerate() {
            let (fan_in, fan_out) = (w[0], w[1]);
            let mut next = Vec::with_capacity(fan_out);
            for o in 0..fan_out {
                let mut acc = params[offset + fan_in * fan_out + o];
                for (i, a) in act.iter().enumerate() {
                    let prod = tape.mul(params[offset + o * fan_in + i], *a);
                    acc = tape.add(acc, prod);
                }
                next.push(if li == last {
                    acc
                } else {
                    self.activation.apply_tape(tape, acc)
                });
            }
            offset += fan_in * fan_out + fan_out;
            act = next;
        }
        act[0]
    }

    /// Weight matrix of layer `li` as a dense matrix (`fan_out × fan_in`).
    pub fn weight_matrix(&self, li: usize) -> Matrix {
        let mut offset = 0;
        for w in self.layer_sizes.windows(2).take(li) {
            offset += w[0] * w[1] + w[1];
        }
        let (fan_in, fan_out) = (self.layer_sizes[li], self.layer_sizes[li + 1]);
        Matrix::from_fn(fan_out, fan_in, |o, i| self.params[offset + o * fan_in + i])
    }

    /// A Lipschitz bound: the product of layer spectral norms times the
    /// activation Lipschitz constants (the standard safe upper bound; the
    /// paper cites the tighter estimator of Fazlyab et al. \[6\], for which
    /// this is a sound over-approximation — a larger `L` only widens the
    /// verified error bound `σ* = σ̃ + ½sL` of Theorem 2, never unsoundly).
    pub fn lipschitz_bound(&self) -> f64 {
        let mut l = 1.0;
        for li in 0..self.layer_sizes.len() - 1 {
            let w = self.weight_matrix(li);
            l *= spectral_norm(&w);
            if li + 2 < self.layer_sizes.len() {
                l *= self.activation.lipschitz();
            }
        }
        l
    }
}

/// Spectral norm by power iteration on `WᵀW`.
pub(crate) fn spectral_norm(w: &Matrix) -> f64 {
    let n = w.ncols();
    if n == 0 || w.nrows() == 0 {
        return 0.0;
    }
    let mut v = vec![1.0 / (n as f64).sqrt(); n];
    let mut sigma = 0.0;
    for _ in 0..100 {
        let wv = w.matvec(&v);
        let wtwv = w.tr_matvec(&wv);
        let norm = snbc_linalg::vec_ops::norm2(&wtwv);
        if norm < 1e-300 {
            return 0.0;
        }
        let new_sigma = norm.sqrt();
        for (vi, u) in v.iter_mut().zip(&wtwv) {
            *vi = u / norm;
        }
        if (new_sigma - sigma).abs() < 1e-12 * new_sigma.max(1.0) {
            return new_sigma;
        }
        sigma = new_sigma;
    }
    sigma
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual_tiny_net() {
        // 1-1-1 tanh net with hand-set parameters: y = w2·tanh(w1·x + b1) + b2.
        let mut net = Mlp::new(&[1, 1, 1], Activation::Tanh, 0);
        net.set_params(&[2.0, 0.5, -1.5, 0.25]); // w1, b1, w2, b2
        let x = 0.3_f64;
        let want = -1.5 * (2.0 * x + 0.5).tanh() + 0.25;
        assert!((net.forward(&[x]) - want).abs() < 1e-12);
    }

    #[test]
    fn tape_forward_matches_plain_forward() {
        let net = Mlp::new(&[2, 4, 1], Activation::Tanh, 7);
        let x = [0.2, -0.9];
        let mut tape = Tape::new();
        let pvars: Vec<_> = net.params().iter().map(|&p| tape.input(p)).collect();
        let xvars: Vec<_> = x.iter().map(|&v| tape.input(v)).collect();
        let y = net.forward_tape(&mut tape, &pvars, &xvars);
        assert!((tape.value(y) - net.forward(&x)).abs() < 1e-12);
    }

    #[test]
    fn lipschitz_bound_dominates_sampled_slopes() {
        let net = Mlp::new(&[2, 6, 1], Activation::Tanh, 3);
        let l = net.lipschitz_bound();
        let mut worst: f64 = 0.0;
        for i in 0..20 {
            let a = [-1.0 + 0.1 * i as f64, 0.3];
            let b = [a[0] + 1e-4, a[1]];
            let slope = (net.forward(&b) - net.forward(&a)).abs() / 1e-4;
            worst = worst.max(slope);
        }
        assert!(l >= worst * 0.999, "bound {l} < sampled slope {worst}");
    }

    #[test]
    fn spectral_norm_of_diagonal() {
        let w = Matrix::from_diag(&[3.0, -5.0, 1.0]);
        assert!((spectral_norm(&w) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn gradient_through_tape_matches_finite_difference() {
        let net = Mlp::new(&[2, 3, 1], Activation::Tanh, 11);
        let x = [0.4, -0.1];
        let mut tape = Tape::new();
        let pvars: Vec<_> = net.params().iter().map(|&p| tape.input(p)).collect();
        let xvars: Vec<_> = x.iter().map(|&v| tape.input(v)).collect();
        let y = net.forward_tape(&mut tape, &pvars, &xvars);
        let grads = tape.grad(y, &pvars);
        // Check a few parameters against finite differences.
        for idx in [0, 3, net.num_params() - 1] {
            let h = 1e-6;
            let mut plus = net.clone();
            let mut pp = net.params().to_vec();
            pp[idx] += h;
            plus.set_params(&pp);
            let mut minus = net.clone();
            pp[idx] -= 2.0 * h;
            minus.set_params(&pp);
            let fd = (plus.forward(&x) - minus.forward(&x)) / (2.0 * h);
            assert!(
                (tape.value(grads[idx]) - fd).abs() < 1e-6,
                "param {idx}: ad {} vs fd {fd}",
                tape.value(grads[idx])
            );
        }
    }
}

/// Interval extensions of the MLP: range bounds of the output and of the
/// gradient over a box. These power the *verified* controller-abstraction
/// error bound (`snbc::approx`) — a branch-and-bound certification of
/// `|k(x) − h(x)| ≤ σ` that is far tighter in high dimension than the
/// Lipschitz-times-covering-radius estimate of Theorem 2.
impl Mlp {
    /// Conservative range of the network output over the box `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input dimension.
    pub fn forward_interval(&self, x: &[snbc_interval::Interval]) -> snbc_interval::Interval {
        use snbc_interval::Interval;
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        let mut act: Vec<Interval> = x.to_vec();
        let mut offset = 0;
        let last = self.layer_sizes.len() - 2;
        for (li, w) in self.layer_sizes.windows(2).enumerate() {
            let (fan_in, fan_out) = (w[0], w[1]);
            let mut next = Vec::with_capacity(fan_out);
            for o in 0..fan_out {
                let bias = self.params[offset + fan_in * fan_out + o];
                let mut acc = Interval::point(bias);
                for (i, a) in act.iter().enumerate() {
                    acc = acc + *a * self.params[offset + o * fan_in + i];
                }
                next.push(if li == last {
                    acc
                } else {
                    interval_activation(self.activation, acc)
                });
            }
            offset += fan_in * fan_out + fan_out;
            act = next;
        }
        act[0]
    }

    /// Conservative per-coordinate range of `∇k` over the box `x`, by
    /// interval forward pass + interval backward pass through the activation
    /// derivative ranges.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input dimension.
    pub fn gradient_interval(&self, x: &[snbc_interval::Interval]) -> Vec<snbc_interval::Interval> {
        use snbc_interval::Interval;
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        // Forward: collect pre-activation ranges per hidden layer.
        let mut act: Vec<Interval> = x.to_vec();
        let mut offset = 0;
        let last = self.layer_sizes.len() - 2;
        let mut offsets = Vec::new();
        let mut deriv_ranges: Vec<Vec<Interval>> = Vec::new();
        for (li, w) in self.layer_sizes.windows(2).enumerate() {
            let (fan_in, fan_out) = (w[0], w[1]);
            offsets.push(offset);
            let mut next = Vec::with_capacity(fan_out);
            let mut derivs = Vec::with_capacity(fan_out);
            for o in 0..fan_out {
                let bias = self.params[offset + fan_in * fan_out + o];
                let mut acc = Interval::point(bias);
                for (i, a) in act.iter().enumerate() {
                    acc = acc + *a * self.params[offset + o * fan_in + i];
                }
                if li == last {
                    derivs.push(Interval::point(1.0));
                    next.push(acc);
                } else {
                    derivs.push(interval_activation_derivative(self.activation, acc));
                    next.push(interval_activation(self.activation, acc));
                }
            }
            deriv_ranges.push(derivs);
            offset += fan_in * fan_out + fan_out;
            act = next;
        }
        // Backward: adjoint intervals from the scalar output to the inputs.
        let mut adj: Vec<Interval> = vec![Interval::point(1.0)];
        for li in (0..self.layer_sizes.len() - 1).rev() {
            let (fan_in, _fan_out) = (self.layer_sizes[li], self.layer_sizes[li + 1]);
            let off = offsets[li];
            // Through the activation derivative of this layer's outputs.
            let scaled: Vec<Interval> = adj
                .iter()
                .zip(&deriv_ranges[li])
                .map(|(a, d)| *a * *d)
                .collect();
            let mut prev = vec![Interval::point(0.0); fan_in];
            for (o, s) in scaled.iter().enumerate() {
                for (i, p) in prev.iter_mut().enumerate() {
                    *p = *p + *s * self.params[off + o * fan_in + i];
                }
            }
            adj = prev;
        }
        adj
    }
}

fn interval_activation(
    act: Activation,
    x: snbc_interval::Interval,
) -> snbc_interval::Interval {
    use snbc_interval::Interval;
    match act {
        // Monotone scalar functions: evaluate at the endpoints.
        Activation::Tanh => Interval::new(x.lo().tanh(), x.hi().tanh()),
        Activation::Relu => Interval::new(x.lo().max(0.0), x.hi().max(0.0)),
        Activation::LeakyRelu(s) => {
            let f = |v: f64| if v > 0.0 { v } else { s * v };
            let (a, b) = (f(x.lo()), f(x.hi()));
            Interval::new(a.min(b), a.max(b))
        }
        Activation::Linear => x,
    }
}

fn interval_activation_derivative(
    act: Activation,
    x: snbc_interval::Interval,
) -> snbc_interval::Interval {
    use snbc_interval::Interval;
    match act {
        Activation::Tanh => {
            // d tanh = 1 − tanh²: maximal at the point closest to 0.
            let d = |v: f64| 1.0 - v.tanh().powi(2);
            let hi = if x.contains(0.0) {
                1.0
            } else {
                d(x.lo()).max(d(x.hi()))
            };
            let lo = d(x.lo()).min(d(x.hi()));
            Interval::new(lo, hi)
        }
        Activation::Relu => {
            if x.lo() >= 0.0 {
                Interval::point(1.0)
            } else if x.hi() <= 0.0 {
                Interval::point(0.0)
            } else {
                Interval::new(0.0, 1.0)
            }
        }
        Activation::LeakyRelu(s) => {
            if x.lo() >= 0.0 {
                Interval::point(1.0)
            } else if x.hi() <= 0.0 {
                Interval::point(s)
            } else {
                Interval::new(s.min(1.0), s.max(1.0))
            }
        }
        Activation::Linear => Interval::point(1.0),
    }
}

#[cfg(test)]
mod interval_tests {
    use super::*;
    use snbc_interval::Interval;

    #[test]
    fn forward_interval_contains_samples() {
        let net = Mlp::new(&[2, 6, 1], Activation::Tanh, 17);
        let bx = [Interval::new(-0.5, 0.5), Interval::new(0.1, 0.9)];
        let range = net.forward_interval(&bx);
        for i in 0..=10 {
            for j in 0..=10 {
                let x = [
                    -0.5 + i as f64 * 0.1,
                    0.1 + j as f64 * 0.08,
                ];
                let v = net.forward(&x);
                assert!(range.contains(v), "{range} misses k({x:?}) = {v}");
            }
        }
    }

    #[test]
    fn gradient_interval_contains_sampled_gradients() {
        let net = Mlp::new(&[2, 5, 1], Activation::Tanh, 23);
        let bx = [Interval::new(-0.3, 0.3), Interval::new(-0.3, 0.3)];
        let g = net.gradient_interval(&bx);
        let h = 1e-6;
        for i in 0..=6 {
            for j in 0..=6 {
                let x = [-0.3 + i as f64 * 0.1, -0.3 + j as f64 * 0.1];
                for d in 0..2 {
                    let mut xp = x;
                    xp[d] += h;
                    let mut xm = x;
                    xm[d] -= h;
                    let fd = (net.forward(&xp) - net.forward(&xm)) / (2.0 * h);
                    assert!(
                        g[d].lo() - 1e-6 <= fd && fd <= g[d].hi() + 1e-6,
                        "grad[{d}] range {} misses {fd}",
                        g[d]
                    );
                }
            }
        }
    }

    #[test]
    fn point_box_matches_forward() {
        let net = Mlp::new(&[3, 4, 1], Activation::Tanh, 31);
        let x = [0.2, -0.7, 0.4];
        let bx: Vec<Interval> = x.iter().map(|&v| Interval::point(v)).collect();
        let r = net.forward_interval(&bx);
        assert!((r.lo() - net.forward(&x)).abs() < 1e-12);
        assert!(r.width() < 1e-12);
    }
}

/// Multi-output extension (§3 of the paper: "the multiple-output cases can be
/// handled in a similar manner"). A [`VectorMlp`] is an MLP whose output layer
/// has `m ≥ 1` units — one channel per control input of a multi-input system.
/// Each output channel is abstracted by its own polynomial inclusion.
#[derive(Debug, Clone)]
pub struct VectorMlp {
    inner: Mlp,
    outputs: usize,
}

impl VectorMlp {
    /// Creates a network with `layer_sizes.last()` output channels.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two layer sizes are given or the output width is
    /// zero.
    pub fn new(layer_sizes: &[usize], activation: Activation, seed: u64) -> Self {
        assert!(layer_sizes.len() >= 2, "need at least input and output layer");
        let outputs = *layer_sizes.last().expect("non-empty");
        assert!(outputs >= 1, "need at least one output");
        // Reuse Mlp's storage by constructing with the true widths; bypass
        // its single-output assert through the width-1 constructor plus a
        // manual parameter layout when m > 1.
        let inner = Mlp::new_unchecked(layer_sizes, activation, seed);
        VectorMlp { inner, outputs }
    }

    /// Number of output channels.
    pub fn output_dim(&self) -> usize {
        self.outputs
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.inner.input_dim()
    }

    /// Vector forward pass.
    ///
    /// # Panics
    ///
    /// Panics on input-width mismatch.
    pub fn forward_vec(&self, x: &[f64]) -> Vec<f64> {
        self.inner.forward_all(x)
    }

    /// Scalar view of one output channel (for the per-channel §3 abstraction).
    pub fn output_fn(&self, channel: usize) -> impl Fn(&[f64]) -> f64 + '_ {
        assert!(channel < self.outputs, "channel out of range");
        move |x: &[f64]| self.inner.forward_all(x)[channel]
    }

    /// A Lipschitz bound shared by every channel (product of spectral norms,
    /// as in [`Mlp::lipschitz_bound`]; the output-layer norm bounds all
    /// channels simultaneously).
    pub fn lipschitz_bound(&self) -> f64 {
        self.inner.lipschitz_bound()
    }
}

impl Mlp {
    /// Multi-output constructor used by [`VectorMlp`] (the public scalar API
    /// keeps its single-output contract).
    pub(crate) fn new_unchecked(layer_sizes: &[usize], activation: Activation, seed: u64) -> Self {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut params = Vec::new();
        for w in layer_sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let scale = (2.0 / (fan_in + fan_out) as f64).sqrt();
            for _ in 0..fan_in * fan_out {
                params.push(rng.gen_range(-scale..scale));
            }
            for _ in 0..fan_out {
                params.push(0.0);
            }
        }
        Mlp {
            layer_sizes: layer_sizes.to_vec(),
            activation,
            params,
        }
    }

    /// Forward pass returning the full output layer (length = last width).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input dimension.
    pub fn forward_all(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        let mut act: Vec<f64> = x.to_vec();
        let mut offset = 0;
        let last = self.layer_sizes.len() - 2;
        for (li, w) in self.layer_sizes.windows(2).enumerate() {
            let (fan_in, fan_out) = (w[0], w[1]);
            let mut next = vec![0.0; fan_out];
            for (o, n) in next.iter_mut().enumerate() {
                let mut acc = self.params[offset + fan_in * fan_out + o];
                for (i, a) in act.iter().enumerate() {
                    acc += self.params[offset + o * fan_in + i] * a;
                }
                *n = if li == last { acc } else { self.activation.apply(acc) };
            }
            offset += fan_in * fan_out + fan_out;
            act = next;
        }
        act
    }
}

#[cfg(test)]
mod vector_tests {
    use super::*;

    #[test]
    fn forward_vec_has_requested_width() {
        let net = VectorMlp::new(&[3, 6, 2], Activation::Tanh, 4);
        let y = net.forward_vec(&[0.1, -0.2, 0.3]);
        assert_eq!(y.len(), 2);
        assert_eq!(net.output_dim(), 2);
        assert_eq!(net.input_dim(), 3);
    }

    #[test]
    fn channel_views_agree_with_vector_pass() {
        let net = VectorMlp::new(&[2, 5, 3], Activation::Tanh, 8);
        let x = [0.4, -0.7];
        let y = net.forward_vec(&x);
        for c in 0..3 {
            assert!((net.output_fn(c)(&x) - y[c]).abs() < 1e-12);
        }
    }

    #[test]
    fn scalar_mlp_forward_all_matches_forward() {
        let net = Mlp::new(&[2, 4, 1], Activation::Tanh, 2);
        let x = [0.3, 0.9];
        assert!((net.forward_all(&x)[0] - net.forward(&x)).abs() < 1e-12);
    }
}
