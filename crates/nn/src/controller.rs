use rand::Rng;
use rand::SeedableRng;
use snbc_autodiff::Tape;

use crate::{Activation, Adam, Mlp};

/// Configuration for supervised controller pre-training.
///
/// The paper obtains its NN controllers with DDPG reinforcement learning; the
/// synthesis pipeline only consumes the resulting *fixed* network. Here
/// controllers are produced by regressing an MLP onto a hand-designed
/// stabilizing feedback law `u*(x)` over the system domain — the substitution
/// is documented in DESIGN.md and preserves everything the pipeline sees: a
/// fixed tanh network of the published shape.
#[derive(Debug, Clone)]
pub struct ControllerTraining {
    /// Hidden-layer widths of the controller MLP.
    pub hidden: Vec<usize>,
    /// Training epochs (full-batch Adam steps).
    pub epochs: usize,
    /// Points sampled uniformly from the domain box.
    pub samples: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// RNG seed (controller initialization and sample draw).
    pub seed: u64,
    /// L2 regularization on the weights. Keeps the tanh units in their
    /// near-linear regime, which both mirrors the smoothness of RL-trained
    /// policies and keeps the verified abstraction error of §3 small.
    pub weight_decay: f64,
}

impl Default for ControllerTraining {
    fn default() -> Self {
        ControllerTraining {
            hidden: vec![10],
            epochs: 400,
            samples: 256,
            learning_rate: 0.02,
            seed: 7,
            weight_decay: 2e-3,
        }
    }
}

/// Trains a tanh MLP controller to imitate the target feedback law `target`
/// over the box `domain = [(lo, hi); n]`, returning the fitted network.
///
/// # Panics
///
/// Panics if `domain` is empty or a bound pair is inverted.
///
/// # Example
///
/// ```
/// use snbc_nn::{train_controller, ControllerTraining};
///
/// // Imitate u*(x) = −2x on [−1, 1].
/// let cfg = ControllerTraining { epochs: 300, ..Default::default() };
/// let net = train_controller(&[(-1.0, 1.0)], |x| -2.0 * x[0], &cfg);
/// let err = (net.forward(&[0.5]) + 1.0).abs();
/// assert!(err < 0.2, "fit error {err}");
/// ```
pub fn train_controller(
    domain: &[(f64, f64)],
    target: impl Fn(&[f64]) -> f64,
    cfg: &ControllerTraining,
) -> Mlp {
    assert!(!domain.is_empty(), "empty domain");
    for &(lo, hi) in domain {
        assert!(lo <= hi, "inverted domain bound [{lo}, {hi}]");
    }
    let n = domain.len();
    let mut sizes = vec![n];
    sizes.extend_from_slice(&cfg.hidden);
    sizes.push(1);
    let mut net = Mlp::new(&sizes, Activation::Tanh, cfg.seed);

    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
    let xs: Vec<Vec<f64>> = (0..cfg.samples)
        .map(|_| {
            domain
                .iter()
                .map(|&(lo, hi)| rng.gen_range(lo..=hi))
                .collect()
        })
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| target(x)).collect();

    let mut opt = Adam::new(net.num_params(), cfg.learning_rate);
    let mut params = net.params().to_vec();
    for _ in 0..cfg.epochs {
        let mut tape = Tape::with_capacity(64 * cfg.samples);
        let pv: Vec<_> = params.iter().map(|&p| tape.input(p)).collect();
        let mut loss = tape.constant(0.0);
        for (x, &y) in xs.iter().zip(&ys) {
            let xv: Vec<_> = x.iter().map(|&v| tape.constant(v)).collect();
            net.set_params(&params);
            let pred = net.forward_tape(&mut tape, &pv, &xv);
            let err = tape.add_const(pred, -y);
            let sq = tape.mul(err, err);
            loss = tape.add(loss, sq);
        }
        let scale = 1.0 / cfg.samples as f64;
        let mut loss = tape.scale(loss, scale);
        if cfg.weight_decay > 0.0 {
            let mut reg = tape.constant(0.0);
            for &p in &pv {
                let sq = tape.mul(p, p);
                reg = tape.add(reg, sq);
            }
            let reg = tape.scale(reg, cfg.weight_decay);
            loss = tape.add(loss, reg);
        }
        let grads = tape.grad(loss, &pv);
        let g: Vec<f64> = grads.iter().map(|&v| tape.value(v)).collect();
        opt.step(&mut params, &g);
    }
    net.set_params(&params);
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_linear_law_in_two_dims() {
        let cfg = ControllerTraining {
            epochs: 500,
            samples: 128,
            ..Default::default()
        };
        let net = train_controller(&[(-1.0, 1.0), (-1.0, 1.0)], |x| -x[0] - 0.5 * x[1], &cfg);
        let mut worst: f64 = 0.0;
        for i in -2..=2 {
            for j in -2..=2 {
                let x = [i as f64 * 0.4, j as f64 * 0.4];
                let want = -x[0] - 0.5 * x[1];
                worst = worst.max((net.forward(&x) - want).abs());
            }
        }
        assert!(worst < 0.25, "worst fit error {worst}");
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn empty_domain_panics() {
        let _ = train_controller(&[], |_| 0.0, &ControllerTraining::default());
    }
}
