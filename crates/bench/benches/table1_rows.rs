//! End-to-end SNBC synthesis timing on representative Table 1 rows (the fast
//! low-dimensional ones; the full grid is the `table1` binary's job).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use snbc::{Snbc, SnbcConfig};
use snbc_bench::pretrain_controller;
use snbc_dynamics::benchmarks;

fn bench_row(c: &mut Criterion, id: usize) {
    let bench = benchmarks::benchmark(id);
    let controller = pretrain_controller(&bench);
    c.bench_function(&format!("snbc/{}", bench.name), |b| {
        b.iter(|| {
            let cfg = SnbcConfig {
                time_limit: Duration::from_secs(600),
                ..Default::default()
            };
            let r = Snbc::new(cfg)
                .synthesize(&bench, &controller)
                .expect("benchmark certifies");
            black_box(r.iterations)
        })
    });
}

fn rows(c: &mut Criterion) {
    for id in [1, 3, 5] {
        bench_row(c, id);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(30));
    targets = rows
}
criterion_main!(benches);
