//! Micro-benchmarks of the solver substrates: the Chebyshev LP (§3), the SDP
//! behind one LMI feasibility test (§4.2), SOS certification, and the
//! interval branch-and-bound used by the SMT-style baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use snbc_interval::{BranchAndBound, Interval};
use snbc_lp::{solve_inequality, LpOptions};
use snbc_poly::Polynomial;
use snbc_sdp::{BlockShape, SdpProblem, SdpSolver};
use snbc_sos::{SosExpr, SosProgram};

fn chebyshev_lp(c: &mut Criterion) {
    // Degree-3 fit of tanh on 200 mesh points: the §3 LP at realistic size.
    let xs: Vec<f64> = (0..200).map(|i| -1.0 + 2.0 * i as f64 / 199.0).collect();
    let mut rows = Vec::new();
    let mut rhs = Vec::new();
    for &x in &xs {
        let k = (2.0 * x).tanh();
        rows.push(vec![1.0, x, x * x, x * x * x, -1.0]);
        rhs.push(k);
        rows.push(vec![-1.0, -x, -x * x, -x * x * x, -1.0]);
        rhs.push(-k);
    }
    let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let g = snbc_linalg::Matrix::from_rows(&row_refs);
    let obj = [0.0, 0.0, 0.0, 0.0, 1.0];
    c.bench_function("lp/chebyshev_200pts_deg3", |b| {
        b.iter(|| {
            let sol = solve_inequality(&obj, &g, &rhs, &LpOptions::default()).unwrap();
            black_box(sol.objective)
        })
    });
}

fn sdp_feasibility(c: &mut Criterion) {
    // A representative block SDP: min tr over one 10×10 block + diag block.
    let build = || {
        let mut p = SdpProblem::new(vec![BlockShape::Dense(10), BlockShape::Diag(4)]);
        for i in 0..10 {
            p.set_cost(0, i, i, 1.0);
        }
        for i in 0..10 {
            let k = p.add_constraint(1.0 + 0.1 * i as f64);
            p.set_coefficient(k, 0, i, i, 1.0);
            p.set_coefficient(k, 1, i % 4, i % 4, 0.5);
        }
        for i in 0..9 {
            let k = p.add_constraint(0.2);
            p.set_coefficient(k, 0, i, i + 1, 1.0);
        }
        p
    };
    let p = build();
    c.bench_function("sdp/block10_19constraints", |b| {
        b.iter(|| {
            let sol = SdpSolver::default().solve(&p).unwrap();
            black_box(sol.primal_objective)
        })
    });
}

fn sos_certify(c: &mut Criterion) {
    // Certify a 3-variable degree-4 SOS polynomial (the size class of the
    // flow-condition certificates on 2-D benchmarks).
    let p: Polynomial = "(x0^2 + x1^2 + x2^2 - x0*x1 + 0.5*x1*x2)^2 + (x0 - x1 + 0.3*x2)^2 + 0.1"
        .parse()
        .unwrap();
    c.bench_function("sos/certify_3var_deg4", |b| {
        b.iter(|| {
            let mut prog = SosProgram::new(3);
            prog.require_sos(SosExpr::from_poly(p.clone()));
            let sol = prog.solve_default().unwrap();
            black_box(sol.margin())
        })
    });
}

fn interval_bb(c: &mut Criterion) {
    // The dReal-substitute on a tight 3-D positivity query.
    let p: Polynomial = "x0^2 + x1^2 + x2^2 - x0*x1 - x1*x2 + 0.05".parse().unwrap();
    let domain = vec![Interval::new(-1.0, 1.0); 3];
    c.bench_function("interval/bb_3var_tight", |b| {
        b.iter(|| {
            let rep = BranchAndBound::default().check_at_least(&p, &domain, &[], 0.0);
            black_box(rep.boxes_processed)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = chebyshev_lp, sdp_feasibility, sos_certify, interval_bb
}
criterion_main!(benches);
