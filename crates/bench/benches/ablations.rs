//! Ablations of the design choices DESIGN.md calls out:
//!
//! * **split vs joint LMI** — the paper's key verifier trick is solving
//!   (13)–(15) as three independent programs; the ablation times the same
//!   certificate checked via one joint SOS program;
//! * **multiplier degree** — scalar S-procedure multipliers vs degree-2 SOS
//!   multipliers in the flow condition;
//! * **counterexample ball vs single point** — §4.3 argues the γ-ball
//!   accelerates convergence; the ablation times full CEGIS runs with
//!   `ball_samples = 24` vs `= 1`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use snbc::{CexConfig, Snbc, SnbcConfig, Verifier, VerifierConfig};
use snbc_bench::{pretrain_controller, shared_inclusion};
use snbc_dynamics::benchmarks;
use snbc_poly::{lie_derivative, Polynomial};
use snbc_sos::{SosExpr, SosProgram};

/// A fixed certified barrier for C3 to make verification ablations
/// deterministic (obtained from a converged run).
fn fixed_barrier() -> Polynomial {
    "-0.58*x0^2 - 0.82*x0*x1 - 0.53*x1^2 - 1.4*x0 - 0.88*x1 + 4.34"
        .parse()
        .unwrap()
}

fn split_vs_joint(c: &mut Criterion) {
    let bench = benchmarks::benchmark(3);
    let controller = pretrain_controller(&bench);
    let inclusion = shared_inclusion(&bench, &controller);
    let b = fixed_barrier();

    c.bench_function("verify/split_three_lmi", |bch| {
        bch.iter(|| {
            let v = Verifier::new(&bench.system, &inclusion, VerifierConfig::default());
            let out = v.verify(&b);
            black_box(out.is_certified())
        })
    });

    c.bench_function("verify/joint_single_program", |bch| {
        bch.iter(|| {
            // One SosProgram holding all three constraints simultaneously:
            // the margin variable and every Gram block sit in a single SDP.
            let system = &bench.system;
            let n = system.nvars();
            let field = system.close_loop_with_error(&inclusion.h);
            let lie = lie_derivative(&b, &field);
            let mut prog = SosProgram::new(n + 1);
            // (13)
            let mut e13 = SosExpr::from_poly(b.clone());
            for theta in system.init().polys() {
                let s = prog.add_sos(2);
                e13 = e13.add_term(-theta, s);
            }
            prog.require_sos(e13);
            // (14)
            let mut e14 = SosExpr::from_poly(&(-&b) - &Polynomial::constant(1e-4));
            for xi in system.unsafe_set().polys() {
                let d = prog.add_sos(2);
                e14 = e14.add_term(-xi, d);
            }
            prog.require_sos(e14);
            // (15)
            let lambda = prog.add_free_restricted(1, n);
            let mut e15 =
                SosExpr::from_poly(&lie - &Polynomial::constant(1e-4)).add_term(-&b, lambda);
            for psi in system.domain().polys() {
                let f = prog.add_sos(2);
                e15 = e15.add_term(-psi, f);
            }
            let w = Polynomial::var(n);
            let sig = inclusion.sigma_star;
            let wball = &Polynomial::constant(sig * sig) - &(&w * &w);
            let fw = prog.add_sos(2);
            e15 = e15.add_term(-&wball, fw);
            prog.require_sos(e15);
            black_box(prog.solve_default().is_ok())
        })
    });
}

fn multiplier_degree(c: &mut Criterion) {
    let bench = benchmarks::benchmark(8); // 4-D, ball sets
    let controller = pretrain_controller(&bench);
    let inclusion = shared_inclusion(&bench, &controller);
    // A plausible quadratic candidate for the ablation: the ball-shaped
    // separator.
    let b: Polynomial = "1 - 0.5*x0^2 - 0.5*x1^2 - 0.5*x2^2 - 0.5*x3^2 - 0.4*x0"
        .parse()
        .unwrap();
    for deg in [0u32, 2] {
        c.bench_function(&format!("verify/multiplier_degree_{deg}"), |bch| {
            bch.iter(|| {
                let v = Verifier::new(
                    &bench.system,
                    &inclusion,
                    VerifierConfig {
                        multiplier_degree: deg,
                        ..Default::default()
                    },
                );
                black_box(v.verify(&b).is_certified())
            })
        });
    }
}

fn cex_ball_vs_point(c: &mut Criterion) {
    let bench = benchmarks::benchmark(1);
    let controller = pretrain_controller(&bench);
    for (label, samples) in [("ball24", 24usize), ("single", 1)] {
        c.bench_function(&format!("cegis/cex_{label}"), |bch| {
            bch.iter(|| {
                let cfg = SnbcConfig {
                    cex: CexConfig {
                        ball_samples: samples,
                        ..Default::default()
                    },
                    learner: snbc::LearnerConfig {
                        epochs: 60, // undertrained so counterexample rounds occur
                        ..Default::default()
                    },
                    time_limit: Duration::from_secs(600),
                    ..Default::default()
                };
                let r = Snbc::new(cfg).synthesize(&bench, &controller);
                black_box(r.map(|x| x.iterations).unwrap_or(usize::MAX))
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(20));
    targets = split_vs_joint, multiplier_degree, cex_ball_vs_point
}
criterion_main!(benches);
