//! Run-report regression gate: compares a freshly generated
//! `snbc-run-report/1` document against a committed baseline from
//! `bench-out/` and reports every difference that counts as a regression.
//!
//! Two comparison modes, selected automatically from the `threads` gauge the
//! reports recorded on their `cegis` span (see `docs/PARALLELISM.md`):
//!
//! * **strict** — both runs executed with one worker thread. The pipeline is
//!   bit-deterministic in that configuration (see `tests/par_determinism.rs`),
//!   so the span *tree shape* (names, order, round indices) and every exact
//!   **counter** (CEGIS rounds, learner epochs, IPM iterations, Cholesky
//!   factorizations, counterexample points, ascent steps, …) must match the
//!   baseline exactly. Gauges other than `certified` are *not* gated — they
//!   are `f64` measurements, and the committed baseline may have been
//!   produced by an earlier build whose last-significant bits legitimately
//!   moved.
//! * **loose** — at least one run was parallel, so counters that depend on
//!   chunk scheduling details (and wall-clock) may differ. Only the outcome
//!   (`certified`), the presence of the `cegis` span, and a generous
//!   wall-clock factor are gated.
//!
//! Wall-clock is *always* gated loosely (default [`DEFAULT_WALL_FACTOR`]×
//! the baseline) — CI machines differ from the machine that produced the
//! baseline, so the gate only catches order-of-magnitude blowups, not noise.

use snbc_telemetry::{Report, SpanNode};

/// Default allowed wall-clock blowup over the committed baseline.
pub const DEFAULT_WALL_FACTOR: f64 = 10.0;

/// Result of one baseline comparison.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Whether the strict (single-thread, structural) mode applied.
    pub strict: bool,
    /// Human-readable regressions; empty means the check passed.
    pub violations: Vec<String>,
}

impl CheckOutcome {
    /// True when no regression was found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The `threads` gauge recorded on the report's `cegis` span, if any.
pub fn report_threads(report: &Report) -> Option<u64> {
    report
        .root
        .find("cegis")
        .and_then(|c| c.gauge("threads"))
        .map(|t| t as u64)
}

/// The `certified` gauge on the `cegis` span (1.0 = synthesis succeeded).
fn certified(report: &Report) -> Option<f64> {
    report.root.find("cegis").and_then(|c| c.gauge("certified"))
}

/// Compares `fresh` against `baseline` and collects regressions.
///
/// `wall_factor` bounds `fresh` total wall-clock at `wall_factor ×` the
/// baseline's; pass [`DEFAULT_WALL_FACTOR`] unless the caller has a reason
/// to tighten or relax it.
pub fn check_reports(baseline: &Report, fresh: &Report, wall_factor: f64) -> CheckOutcome {
    let mut violations = Vec::new();

    // Outcome gate: a run that stopped certifying is always a regression.
    match (certified(baseline), certified(fresh)) {
        (Some(b), Some(f)) if b != f => violations.push(format!(
            "outcome changed: baseline certified={b}, fresh certified={f}"
        )),
        (Some(_), None) => violations.push("fresh report lost the `certified` gauge".to_string()),
        _ => {}
    }
    if fresh.root.find("cegis").is_none() {
        violations.push("fresh report has no `cegis` span".to_string());
    }

    // Wall-clock gate, always loose.
    let (bw, fw) = (baseline.root.elapsed_s, fresh.root.elapsed_s);
    if bw > 0.0 && fw > wall_factor * bw {
        violations.push(format!(
            "wall-clock regression: fresh {fw:.3}s > {wall_factor:.1}x baseline {bw:.3}s"
        ));
    }

    // Structural gate, only meaningful when both runs were single-threaded.
    let strict = report_threads(baseline) == Some(1) && report_threads(fresh) == Some(1);
    if strict {
        compare_structure("run", &baseline.root, &fresh.root, &mut violations);
    }
    CheckOutcome { strict, violations }
}

/// Recursive structural diff: span names, order, indices, and counters.
fn compare_structure(path: &str, base: &SpanNode, fresh: &SpanNode, out: &mut Vec<String>) {
    if base.name != fresh.name {
        out.push(format!(
            "{path}: span renamed `{}` -> `{}`",
            base.name, fresh.name
        ));
        return; // children comparison would be meaningless
    }
    if base.index != fresh.index {
        out.push(format!(
            "{path}: span index changed {:?} -> {:?}",
            base.index, fresh.index
        ));
    }
    for (name, bv) in &base.counters {
        match fresh.counter(name) {
            Some(fv) if fv == *bv => {}
            Some(fv) => out.push(format!("{path}: counter `{name}` changed {bv} -> {fv}")),
            None => out.push(format!("{path}: counter `{name}` disappeared (baseline {bv})")),
        }
    }
    for (name, fv) in &fresh.counters {
        if base.counter(name).is_none() {
            out.push(format!("{path}: new counter `{name}` = {fv} not in baseline"));
        }
    }
    if base.children.len() != fresh.children.len() {
        out.push(format!(
            "{path}: child span count changed {} -> {} (baseline: [{}], fresh: [{}])",
            base.children.len(),
            fresh.children.len(),
            base.children.iter().map(|c| c.name.as_str()).collect::<Vec<_>>().join(", "),
            fresh.children.iter().map(|c| c.name.as_str()).collect::<Vec<_>>().join(", "),
        ));
    }
    for (b, f) in base.children.iter().zip(&fresh.children) {
        let sub = match b.index {
            Some(i) => format!("{path}/{}[{i}]", b.name),
            None => format!("{path}/{}", b.name),
        };
        compare_structure(&sub, b, f, out);
    }
}

/// Renders the outcome as the multi-line gate report the CLI prints.
pub fn render_outcome(name: &str, outcome: &CheckOutcome) -> String {
    let mode = if outcome.strict { "strict" } else { "loose" };
    if outcome.passed() {
        format!("[snbc-bench] {name}: OK ({mode} compare, no regressions)\n")
    } else {
        let mut s = format!(
            "[snbc-bench] {name}: FAIL ({mode} compare, {} regression(s))\n",
            outcome.violations.len()
        );
        for v in &outcome.violations {
            s.push_str(&format!("  - {v}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature but shape-realistic single-thread run report.
    fn report(threads: f64) -> Report {
        let node = |name: &str, counters: Vec<(&str, u64)>, children: Vec<SpanNode>| SpanNode {
            name: name.to_string(),
            index: None,
            trace_id: None,
            elapsed_s: 0.1,
            counters: counters.into_iter().map(|(n, v)| (n.to_string(), v)).collect(),
            gauges: vec![],
            labels: vec![],
            children,
        };
        let sdp = node("sdp", vec![("iterations", 12), ("cholesky", 80)], vec![]);
        let init = node("init", vec![], vec![sdp]);
        let verify = node("verify", vec![], vec![init]);
        let learn = node("learn", vec![("epochs", 30)], vec![]);
        let mut round = node("round", vec![], vec![learn, verify]);
        round.index = Some(1);
        let mut cegis = node("cegis", vec![("iterations", 1)], vec![round]);
        cegis.gauges = vec![
            ("threads".to_string(), threads),
            ("certified".to_string(), 1.0),
        ];
        let mut root = node("run", vec![], vec![cegis]);
        root.elapsed_s = 1.0;
        Report { root }
    }

    #[test]
    fn identical_single_thread_reports_pass_strict() {
        let base = report(1.0);
        let outcome = check_reports(&base, &base.clone(), DEFAULT_WALL_FACTOR);
        assert!(outcome.strict);
        assert!(outcome.passed(), "{:?}", outcome.violations);
    }

    #[test]
    fn injected_counter_regression_fails_strict() {
        let base = report(1.0);
        let mut fresh = base.clone();
        // Inject a structural regression: the SDP suddenly needs more
        // iterations than the committed baseline recorded.
        let sdp = fresh
            .root
            .find("sdp")
            .expect("sdp span")
            .clone();
        assert_eq!(sdp.counter("iterations"), Some(12));
        fn bump(n: &mut SpanNode) {
            if n.name == "sdp" {
                for (name, v) in &mut n.counters {
                    if name == "iterations" {
                        *v = 25;
                    }
                }
            }
            for c in &mut n.children {
                bump(c);
            }
        }
        bump(&mut fresh.root);
        let outcome = check_reports(&base, &fresh, DEFAULT_WALL_FACTOR);
        assert!(outcome.strict);
        assert!(!outcome.passed());
        assert!(
            outcome.violations.iter().any(|v| v.contains("`iterations` changed 12 -> 25")),
            "{:?}",
            outcome.violations
        );
        assert!(render_outcome("quickstart", &outcome).contains("FAIL"));
    }

    #[test]
    fn dropped_span_fails_strict() {
        let base = report(1.0);
        let mut fresh = base.clone();
        // Drop the verify subtree from the round.
        fn drop_verify(n: &mut SpanNode) {
            n.children.retain(|c| c.name != "verify");
            for c in &mut n.children {
                drop_verify(c);
            }
        }
        drop_verify(&mut fresh.root);
        let outcome = check_reports(&base, &fresh, DEFAULT_WALL_FACTOR);
        assert!(!outcome.passed());
        assert!(
            outcome.violations.iter().any(|v| v.contains("child span count changed")),
            "{:?}",
            outcome.violations
        );
    }

    #[test]
    fn parallel_reports_compare_loosely() {
        let base = report(4.0);
        let mut fresh = report(4.0);
        // A counter difference is fine in loose mode (chunk scheduling), …
        fresh.root.children[0].counters[0].1 = 2;
        let outcome = check_reports(&base, &fresh, DEFAULT_WALL_FACTOR);
        assert!(!outcome.strict);
        assert!(outcome.passed(), "{:?}", outcome.violations);
        // … but a lost certification is not.
        for (g, v) in &mut fresh.root.children[0].gauges {
            if g == "certified" {
                *v = 0.0;
            }
        }
        let outcome = check_reports(&base, &fresh, DEFAULT_WALL_FACTOR);
        assert!(!outcome.passed());
        assert!(outcome.violations[0].contains("outcome changed"));
    }

    #[test]
    fn wall_clock_blowup_is_flagged() {
        let base = report(4.0);
        let mut fresh = report(4.0);
        fresh.root.elapsed_s = base.root.elapsed_s * 50.0;
        let outcome = check_reports(&base, &fresh, DEFAULT_WALL_FACTOR);
        assert!(!outcome.passed());
        assert!(outcome.violations[0].contains("wall-clock regression"));
    }

    #[test]
    fn mixed_thread_counts_fall_back_to_loose() {
        let base = report(1.0);
        let fresh = report(4.0);
        let outcome = check_reports(&base, &fresh, DEFAULT_WALL_FACTOR);
        assert!(!outcome.strict);
        assert!(outcome.passed(), "{:?}", outcome.violations);
    }

    #[test]
    fn committed_baselines_parse_and_self_compare() {
        // The committed quickstart baselines must stay parseable and must
        // pass the gate against themselves (identity is the cheapest sanity
        // property a regression gate can have).
        for name in [
            "BENCH_quickstart.json",
            "BENCH_quickstart_t1.json",
            "BENCH_interval.json",
            "BENCH_interval_t1.json",
        ] {
            let path = format!("{}/../../bench-out/{name}", env!("CARGO_MANIFEST_DIR"));
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!("cannot read committed baseline {path}: {e}")
            });
            let rep = snbc_telemetry::Report::parse(&text)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let outcome = check_reports(&rep, &rep, DEFAULT_WALL_FACTOR);
            assert!(outcome.passed(), "{name}: {:?}", outcome.violations);
        }
    }
}
