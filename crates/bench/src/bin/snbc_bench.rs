//! `snbc-bench` — the benchmark regression gate.
//!
//! ```text
//! snbc-bench check [--baseline-dir bench-out] [--wall-factor 10] [--trace <json-file>]
//! ```
//!
//! `check` re-runs the quickstart synthesis (benchmark C3, default
//! configuration — the exact run that produced the committed baselines, see
//! `EXPERIMENTS.md`) in-process with a recording telemetry sink, then
//! compares the fresh `snbc-run-report/1` document against the committed
//! baseline with [`snbc_bench::check::check_reports`]:
//!
//! * under `SNBC_THREADS=1` the baseline is `BENCH_quickstart_t1.json` and
//!   the comparison is **strict** — identical span tree and counters, since
//!   the single-thread pipeline is deterministic;
//! * otherwise the baseline is `BENCH_quickstart.json` and only the outcome
//!   and a loose wall-clock factor are gated.
//!
//! `--trace` additionally attaches an `snbc-trace` sink and writes the
//! Chrome trace-event JSON of the gate run (handy for inspecting what the
//! gate itself measured; see `docs/TRACING.md`).
//!
//! Exit codes: `0` pass, `1` regression found, `2` usage or I/O error.

use std::process::ExitCode;

use snbc::{Snbc, SnbcConfig};
use snbc_bench::check::{check_reports, render_outcome, report_threads, DEFAULT_WALL_FACTOR};
use snbc_dynamics::benchmarks;
use snbc_nn::{train_controller, ControllerTraining};
use snbc_telemetry::Telemetry;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {
            let mut baseline_dir = "bench-out".to_string();
            let mut wall_factor = DEFAULT_WALL_FACTOR;
            let mut trace_out: Option<String> = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--baseline-dir" => {
                        baseline_dir = it.next().ok_or("--baseline-dir needs a path")?.clone()
                    }
                    "--wall-factor" => {
                        wall_factor = it
                            .next()
                            .ok_or("--wall-factor needs a number")?
                            .parse()
                            .map_err(|_| "bad --wall-factor value".to_string())?
                    }
                    "--trace" => {
                        trace_out = Some(it.next().ok_or("--trace needs a path")?.clone())
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            check(&baseline_dir, wall_factor, trace_out.as_deref())
        }
        _ => Err(
            "usage: snbc-bench check [--baseline-dir <dir>] [--wall-factor <f>] [--trace <json>]"
                .into(),
        ),
    }
}

fn check(baseline_dir: &str, wall_factor: f64, trace_out: Option<&str>) -> Result<bool, String> {
    let threads = snbc_par::threads();
    let baseline_name = if threads == 1 {
        "BENCH_quickstart_t1.json"
    } else {
        "BENCH_quickstart.json"
    };
    let baseline_path = format!("{baseline_dir}/{baseline_name}");
    let text = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline = snbc_telemetry::Report::parse(&text)
        .map_err(|e| format!("{baseline_path}: {e}"))?;
    eprintln!(
        "[snbc-bench] baseline {baseline_path} (threads={}), fresh run with threads={threads}",
        report_threads(&baseline).map_or("?".to_string(), |t| t.to_string()),
    );

    // Reproduce the exact quickstart run (examples/quickstart.rs) in-process.
    let bench = benchmarks::benchmark(3);
    let controller = train_controller(
        bench.system.domain().bounding_box(),
        bench.target_law,
        &ControllerTraining::default(),
    );
    let mut telemetry = Telemetry::recording();
    if trace_out.is_some() {
        telemetry = telemetry.with_trace(snbc_trace::Trace::recording());
    }
    let result = Snbc::new(SnbcConfig::default())
        .with_telemetry(telemetry.clone())
        .synthesize(&bench, &controller);
    if let Err(e) = &result {
        eprintln!("[snbc-bench] fresh quickstart run FAILED: {e}");
    }
    if let (Some(tp), Some(dump)) = (trace_out, telemetry.trace().dump()) {
        std::fs::write(tp, dump.to_json_string())
            .map_err(|e| format!("cannot write {tp}: {e}"))?;
        eprintln!("[snbc-bench] trace ({} events) -> {tp}", dump.event_count());
    }
    let fresh = telemetry
        .report()
        .ok_or("fresh run produced no telemetry report")?;

    let outcome = check_reports(&baseline, &fresh, wall_factor);
    print!("{}", render_outcome("quickstart", &outcome));
    Ok(outcome.passed() && result.is_ok())
}
