//! `snbc-bench` — the benchmark regression gate.
//!
//! ```text
//! snbc-bench check  [--suite quickstart|interval|portfolio] [--baseline-dir bench-out]
//!                   [--wall-factor 10] [--trace <json-file>]
//! snbc-bench record [--suite quickstart|interval|portfolio] [--output <json-file>]
//! ```
//!
//! `check` re-runs a benchmark suite in-process with a recording telemetry
//! sink, then compares the fresh `snbc-run-report/1` document against the
//! committed baseline with [`snbc_bench::check::check_reports`]:
//!
//! * under `SNBC_THREADS=1` the baseline is `BENCH_<suite>_t1.json` and
//!   the comparison is **strict** — identical span tree and counters, since
//!   the single-thread pipeline is deterministic;
//! * otherwise the baseline is `BENCH_<suite>.json` and only the outcome
//!   and a loose wall-clock factor are gated.
//!
//! `record` runs the same suite and *writes* the fresh report — the
//! canonical way to regenerate the committed baselines after an intentional
//! perf or pipeline change (see `EXPERIMENTS.md`). Without `--output` the
//! report goes to `bench-out/BENCH_<suite>.json`, or `..._t1.json` when the
//! run resolves to one worker thread.
//!
//! Suites:
//!
//! * `quickstart` (default) — the quickstart synthesis (benchmark C3,
//!   default configuration — the exact run that produced the committed
//!   baselines, see `EXPERIMENTS.md`).
//! * `interval` — the quickstart synthesis **plus** the independent
//!   δ-complete interval re-check of the certificate
//!   ([`snbc::recheck_with_intervals_recorded`]), exercising the parallel
//!   branch-and-bound wave engine; the re-check must prove all three
//!   Theorem 1 conditions, and its `boxes` counters are part of the strict
//!   baseline.
//! * `portfolio` — two identical C3 racing jobs run through
//!   [`snbc_portfolio::run_batch`] twice against a scratch cache
//!   (`target/bench-portfolio-cache`, wiped first). The cold leg must race
//!   job 0 and serve job 1 from the just-stored entry; the warm leg must be
//!   all cache hits; both legs' `snbc-batch-report/1` documents must be
//!   byte-identical. The strict `_t1` baseline pins the deterministic
//!   `race_winner_index`, `candidates_launched`, `waves`, and
//!   `cache_hit`/`cache_miss` counters. Hit/miss, candidate, and wave
//!   accounting is gated from the per-leg `snbc-metrics/1` snapshot (the
//!   batch report deliberately carries none of it), and the canonical
//!   snapshots of the cold and warm legs must be byte-identical.
//!
//! `--trace` additionally attaches an `snbc-trace` sink and writes the
//! Chrome trace-event JSON of the gate run (handy for inspecting what the
//! gate itself measured; see `docs/TRACING.md`).
//!
//! Exit codes: `0` pass, `1` regression found, `2` usage or I/O error.

use std::process::ExitCode;

use snbc::{recheck_with_intervals_recorded, Snbc, SnbcConfig};
use snbc_bench::check::{check_reports, render_outcome, report_threads, DEFAULT_WALL_FACTOR};
use snbc_dynamics::benchmarks;
use snbc_interval::BranchAndBound;
use snbc_metrics::{Metrics, MetricsSnapshot, Progress};
use snbc_nn::{train_controller, ControllerTraining};
use snbc_portfolio::{run_batch, BatchOptions, BatchSpec};
use snbc_telemetry::Telemetry;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: snbc-bench check [--suite quickstart|interval|portfolio] \
                     [--baseline-dir <dir>] [--wall-factor <f>] [--trace <json>]\n   \
                     or: snbc-bench record [--suite quickstart|interval|portfolio] [--output <json>]";

fn parse_suite(name: &str) -> Result<String, String> {
    if name == "quickstart" || name == "interval" || name == "portfolio" {
        Ok(name.to_string())
    } else {
        Err(format!(
            "unknown suite `{name}` (expected quickstart, interval, or portfolio)"
        ))
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {
            let mut suite = "quickstart".to_string();
            let mut baseline_dir = "bench-out".to_string();
            let mut wall_factor = DEFAULT_WALL_FACTOR;
            let mut trace_out: Option<String> = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--suite" => suite = parse_suite(it.next().ok_or("--suite needs a name")?)?,
                    "--baseline-dir" => {
                        baseline_dir = it.next().ok_or("--baseline-dir needs a path")?.clone()
                    }
                    "--wall-factor" => {
                        wall_factor = it
                            .next()
                            .ok_or("--wall-factor needs a number")?
                            .parse()
                            .map_err(|_| "bad --wall-factor value".to_string())?
                    }
                    "--trace" => {
                        trace_out = Some(it.next().ok_or("--trace needs a path")?.clone())
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            check(&suite, &baseline_dir, wall_factor, trace_out.as_deref())
        }
        Some("record") => {
            let mut suite = "quickstart".to_string();
            let mut output: Option<String> = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--suite" => suite = parse_suite(it.next().ok_or("--suite needs a name")?)?,
                    "--output" => output = Some(it.next().ok_or("--output needs a path")?.clone()),
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            record(&suite, output.as_deref())
        }
        _ => Err(USAGE.into()),
    }
}

/// Runs the given suite and returns its recording telemetry sink plus a
/// success flag (`false` when the synthesis or, for the `interval` suite,
/// the δ-complete re-check failed). The sink is created *after* controller
/// training, matching `examples/quickstart.rs`, so the report's wall clock
/// covers the synthesis pipeline only.
fn run_suite(suite: &str, with_trace: bool) -> (Telemetry, bool) {
    if suite == "portfolio" {
        return run_portfolio_suite(with_trace);
    }
    // Reproduce the exact quickstart run (examples/quickstart.rs) in-process.
    let bench = benchmarks::benchmark(3);
    let controller = train_controller(
        bench.system.domain().bounding_box(),
        bench.target_law,
        &ControllerTraining::default(),
    );
    let mut telemetry = Telemetry::recording();
    if with_trace {
        telemetry = telemetry.with_trace(snbc_trace::Trace::recording());
    }
    let result = Snbc::new(SnbcConfig::default())
        .with_telemetry(telemetry.clone())
        .synthesize(&bench, &controller);
    let res = match &result {
        Ok(res) => res,
        Err(e) => {
            eprintln!("[snbc-bench] fresh {suite} run FAILED: {e}");
            return (telemetry, false);
        }
    };
    // The interval suite additionally re-proves the certificate with the
    // δ-complete branch-and-bound — the parallel verification tail this
    // gate exists to keep fast. Its spans/counters land in the same report.
    if suite == "interval" {
        let ok = recheck_with_intervals_recorded(
            &res.barrier,
            &res.lambda,
            &bench.system,
            &res.inclusion,
            &BranchAndBound::default(),
            &telemetry,
        );
        if !ok {
            eprintln!("[snbc-bench] interval re-check FAILED to prove the certificate");
            return (telemetry, false);
        }
        // The quickstart certificate holds with wide margins, so the
        // re-check above discharges in a handful of boxes and never reaches
        // the wave engine's parallel regime. This squared-circle enclosure
        // — maximal interval dependency, tens of thousands of boxes — keeps
        // the parallel branch-and-bound itself under the regression gate:
        // its deterministic `boxes` count is part of the strict baseline,
        // and its `bb-boxes` spans show the per-worker fan-out in `--trace`
        // output (the worked example in docs/PERFORMANCE.md).
        let stress: snbc_poly::Polynomial =
            "(x0^2 + x1^2 - 1)^2 + 0.0001".parse().expect("fixed stress polynomial");
        let dom = vec![
            snbc_interval::Interval::new(-1.0, 1.0),
            snbc_interval::Interval::new(-1.0, 1.0),
        ];
        let _s = telemetry.span("interval-stress");
        let bb = BranchAndBound {
            tightening: snbc_interval::RangeTightening::Bernstein,
            ..Default::default()
        };
        let rep = bb.check_at_least_traced(&stress, &dom, &[], 0.0, telemetry.trace());
        // The box count is gated through the `snbc-metrics/1` registry — the
        // snapshot is the source of truth the baseline value comes from, so
        // the registry's accumulate/merge path sits under this gate too.
        let metrics = Metrics::recording();
        metrics.add("boxes", rep.boxes_processed as u64);
        metrics.observe(
            "boxes_per_query",
            snbc_metrics::buckets::BOXES,
            rep.boxes_processed as f64,
        );
        let boxes = metrics.snapshot(true).counter("boxes");
        if boxes == 0 {
            eprintln!("[snbc-bench] interval stress check processed no boxes");
            return (telemetry, false);
        }
        telemetry.add("boxes", boxes);
        telemetry.add("max_depth", rep.max_depth as u64);
        let holds = rep.verdict == snbc_interval::Verdict::Holds;
        telemetry.flag("holds", holds);
        if !holds {
            eprintln!("[snbc-bench] interval stress check FAILED: {:?}", rep.verdict);
            return (telemetry, false);
        }
    }
    (telemetry, true)
}

/// Two identical C3 racing jobs, run through the batch service twice
/// against a freshly wiped scratch cache. The jobs differ only in name, so
/// they share one content-addressed key: the cold leg must race job 0 and
/// serve job 1 from the entry stored moments earlier (a repeated job never
/// re-enters CEGIS), the warm leg must be pure lookups, and the two
/// `snbc-batch-report/1` documents must be byte-identical.
const PORTFOLIO_JOBS: &str = r#"{
    "schema": "snbc-batch-jobs/1",
    "jobs": [
        {"name": "c3-a", "benchmark": 3, "grid": {"seeds": [1, 2]},
         "max_iterations": 12, "controller_epochs": 300},
        {"name": "c3-b", "benchmark": 3, "grid": {"seeds": [1, 2]},
         "max_iterations": 12, "controller_epochs": 300}
    ]
}"#;

fn run_portfolio_suite(with_trace: bool) -> (Telemetry, bool) {
    let mut telemetry = Telemetry::recording();
    if with_trace {
        telemetry = telemetry.with_trace(snbc_trace::Trace::recording());
    }
    let cache_dir = std::path::Path::new("target/bench-portfolio-cache");
    if cache_dir.exists() {
        if let Err(e) = std::fs::remove_dir_all(cache_dir) {
            eprintln!("[snbc-bench] cannot wipe {}: {e}", cache_dir.display());
            return (telemetry, false);
        }
    }
    let spec = BatchSpec::parse(PORTFOLIO_JOBS).expect("fixed jobs document parses");
    let opts = BatchOptions {
        base: SnbcConfig::default(),
        cache_dir: Some(cache_dir.to_path_buf()),
    };
    let resolve = |path: &str| -> Result<(benchmarks::Benchmark, snbc_nn::Mlp), String> {
        Err(format!("portfolio suite uses benchmark jobs only, got `{path}`"))
    };
    struct Leg {
        outcome: snbc_portfolio::BatchOutcome,
        canonical: MetricsSnapshot,
        full: MetricsSnapshot,
    }
    let run_leg = |leg: &str| -> Option<Leg> {
        let metrics = Metrics::recording();
        match run_batch(
            &spec,
            &opts,
            &resolve,
            &telemetry,
            &Progress::off(),
            &metrics,
        ) {
            Ok(outcome) => Some(Leg {
                outcome,
                canonical: metrics.snapshot(true),
                full: metrics.snapshot(false),
            }),
            Err(e) => {
                eprintln!("[snbc-bench] {leg} batch leg FAILED: {e}");
                None
            }
        }
    };
    let Some(cold) = run_leg("cold") else {
        return (telemetry, false);
    };
    let Some(warm) = run_leg("warm") else {
        return (telemetry, false);
    };
    let mut ok = true;
    if !cold.outcome.jobs.iter().all(|j| j.result.certified) {
        eprintln!("[snbc-bench] portfolio cold leg: not every job certified");
        ok = false;
    }
    // Hit/miss accounting is gated from the `snbc-metrics/1` snapshot, not
    // re-derived from the batch reports (the report schema carries neither).
    let hits = |leg: &Leg| (leg.full.counter("cache_hit"), leg.full.counter("cache_miss"));
    if hits(&cold) != (1, 1) {
        let (h, m) = hits(&cold);
        eprintln!(
            "[snbc-bench] portfolio cold leg: expected 1 hit (repeated job) + 1 miss, got {h} + {m}"
        );
        ok = false;
    }
    if hits(&warm) != (2, 0) {
        let (h, m) = hits(&warm);
        eprintln!(
            "[snbc-bench] portfolio warm leg: expected 2 pure cache hits, got {h} + {m}"
        );
        ok = false;
    }
    if cold.full.counter("candidates") != 4 || cold.full.counter("waves") < 4 {
        eprintln!(
            "[snbc-bench] portfolio cold leg: expected 2 candidates and >=2 waves per job, \
             got {} candidate(s) over {} wave(s)",
            cold.full.counter("candidates"),
            cold.full.counter("waves")
        );
        ok = false;
    }
    if cold.outcome.report_json() != warm.outcome.report_json() {
        eprintln!("[snbc-bench] portfolio batch reports differ between cold and warm legs");
        ok = false;
    }
    // The cold/warm determinism contract, metric-side: the canonical
    // (environment-free) snapshots must be byte-identical — a cache replay
    // merges back exactly what the live race recorded.
    if cold.canonical.to_json_string() != warm.canonical.to_json_string() {
        eprintln!(
            "[snbc-bench] portfolio canonical metrics snapshots differ between cold and warm legs"
        );
        ok = false;
    }
    (telemetry, ok)
}

fn check(
    suite: &str,
    baseline_dir: &str,
    wall_factor: f64,
    trace_out: Option<&str>,
) -> Result<bool, String> {
    let threads = snbc_par::threads();
    let baseline_name = if threads == 1 {
        format!("BENCH_{suite}_t1.json")
    } else {
        format!("BENCH_{suite}.json")
    };
    let baseline_path = format!("{baseline_dir}/{baseline_name}");
    let text = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline = snbc_telemetry::Report::parse(&text)
        .map_err(|e| format!("{baseline_path}: {e}"))?;
    eprintln!(
        "[snbc-bench] baseline {baseline_path} (threads={}), fresh run with threads={threads}",
        report_threads(&baseline).map_or("?".to_string(), |t| t.to_string()),
    );

    let (telemetry, ran_ok) = run_suite(suite, trace_out.is_some());
    if let (Some(tp), Some(dump)) = (trace_out, telemetry.trace().dump()) {
        std::fs::write(tp, dump.to_json_string())
            .map_err(|e| format!("cannot write {tp}: {e}"))?;
        eprintln!("[snbc-bench] trace ({} events) -> {tp}", dump.event_count());
        // The merged self-time tree — the first stop of the tuning workflow
        // in docs/PERFORMANCE.md — so a gate run doubles as a profile.
        eprintln!("{}", dump.profile_text());
    }
    let fresh = telemetry
        .report()
        .ok_or("fresh run produced no telemetry report")?;

    let outcome = check_reports(&baseline, &fresh, wall_factor);
    print!("{}", render_outcome(suite, &outcome));
    Ok(outcome.passed() && ran_ok)
}

fn record(suite: &str, output: Option<&str>) -> Result<bool, String> {
    let threads = snbc_par::threads();
    let default_name = if threads == 1 {
        format!("bench-out/BENCH_{suite}_t1.json")
    } else {
        format!("bench-out/BENCH_{suite}.json")
    };
    let path = output.unwrap_or(&default_name);
    let (telemetry, ran_ok) = run_suite(suite, false);
    if !ran_ok {
        return Ok(false);
    }
    let report = telemetry
        .report()
        .ok_or("run produced no telemetry report")?;
    std::fs::write(path, report.to_json_string())
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!(
        "[snbc-bench] recorded {suite} baseline (threads={threads}, wall {:.3}s) -> {path}",
        report.root.elapsed_s
    );
    Ok(true)
}
