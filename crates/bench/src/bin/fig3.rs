//! Regenerates **Fig. 3** of the paper: the phase portrait of the Academic 3D
//! example (Example 1).
//!
//! * Fig. 3(a): a *false* intermediate candidate and its worst
//!   counterexamples — captured here by running the CEGIS loop with an
//!   undertrained learner so the first verification fails, then recording the
//!   counterexample points the generator produces.
//! * Fig. 3(b): the zero level set of the final certificate `B(x)` separating
//!   `Ξ` from all trajectories out of `Θ`.
//!
//! Outputs CSV files under `bench-out/fig3/` (trajectories, level-set samples,
//! counterexamples, the certificate's coefficients) plus an ASCII projection
//! onto the x–z plane.

use std::fs;
use std::io::Write as _;
use std::time::Duration;

use snbc::{Snbc, SnbcConfig};
use snbc_dynamics::{benchmarks, simulate};
use snbc_nn::{train_controller, ControllerTraining};

fn main() {
    let out_dir = std::path::Path::new("bench-out/fig3");
    fs::create_dir_all(out_dir).expect("create bench-out/fig3");

    let bench = benchmarks::academic_3d();
    let controller = train_controller(
        bench.system.domain().bounding_box(),
        bench.target_law,
        &ControllerTraining::default(),
    );

    // --- Fig. 3(a): provoke a failing first candidate. -------------------
    let weak_cfg = SnbcConfig {
        learner: snbc::LearnerConfig {
            epochs: 12, // deliberately undertrained first round
            ..Default::default()
        },
        max_iterations: 25,
        time_limit: Duration::from_secs(1800),
        ..Default::default()
    };
    let weak = Snbc::new(weak_cfg).synthesize(&bench, &controller);
    // The run still converges after counterexample rounds; its iteration
    // count > 1 demonstrates the Fig. 3(a) scenario.
    match &weak {
        Ok(r) => println!(
            "undertrained run: certified after {} iterations (Fig. 3(a) scenario {})",
            r.iterations,
            if r.iterations > 1 { "exercised" } else { "skipped: first candidate already valid" }
        ),
        Err(e) => println!("undertrained run failed: {e}"),
    }

    // --- Full-strength run for Fig. 3(b). --------------------------------
    let result = Snbc::new(SnbcConfig {
        time_limit: Duration::from_secs(1800),
        ..Default::default()
    })
    .synthesize(&bench, &controller)
    .expect("Academic 3D must certify (Example 1)");
    println!("\nB(x) = {}", result.barrier);
    println!("lambda(x) = {}", result.lambda);
    println!(
        "iterations = {}, T_l = {:.3}s, T_c = {:.3}s, T_v = {:.3}s, T_e = {:.3}s",
        result.iterations,
        result.t_learn.as_secs_f64(),
        result.t_cex.as_secs_f64(),
        result.t_verify.as_secs_f64(),
        result.t_total.as_secs_f64()
    );

    // Trajectories from the 8 corners + center of Θ.
    let mut traj_csv = String::from("traj,step,x,y,z,B\n");
    let mut trajectories = Vec::new();
    let corners: Vec<Vec<f64>> = (0..8)
        .map(|i| {
            vec![
                if i & 1 == 0 { -0.4 } else { 0.4 },
                if i & 2 == 0 { -0.4 } else { 0.4 },
                if i & 4 == 0 { -0.4 } else { 0.4 },
            ]
        })
        .chain(std::iter::once(vec![0.0, 0.0, 0.0]))
        .collect();
    for (ti, x0) in corners.iter().enumerate() {
        let traj = simulate(&bench.system, |x| controller.forward(x), x0, 0.01, 1500);
        for (si, x) in traj.states.iter().enumerate().step_by(5) {
            traj_csv.push_str(&format!(
                "{ti},{si},{:.6},{:.6},{:.6},{:.6}\n",
                x[0],
                x[1],
                x[2],
                result.barrier.eval(x)
            ));
        }
        assert!(
            !traj.enters(bench.system.unsafe_set()),
            "a certified system must have safe trajectories"
        );
        trajectories.push(traj);
    }
    fs::write(out_dir.join("trajectories.csv"), traj_csv).expect("write trajectories");

    // Zero level set of B: sample the domain grid and export the sign.
    let mut level_csv = String::from("x,y,z,B\n");
    let steps = 24;
    for i in 0..=steps {
        for j in 0..=steps {
            for k in 0..=steps {
                let p = [
                    -2.2 + 4.4 * i as f64 / steps as f64,
                    -2.2 + 4.4 * j as f64 / steps as f64,
                    -2.2 + 4.4 * k as f64 / steps as f64,
                ];
                level_csv.push_str(&format!(
                    "{:.4},{:.4},{:.4},{:.6}\n",
                    p[0],
                    p[1],
                    p[2],
                    result.barrier.eval(&p)
                ));
            }
        }
    }
    fs::write(out_dir.join("level_set.csv"), level_csv).expect("write level set");

    let mut cert = fs::File::create(out_dir.join("certificate.txt")).expect("certificate file");
    writeln!(cert, "B(x) = {}", result.barrier).expect("write");
    writeln!(cert, "lambda(x) = {}", result.lambda).expect("write");
    writeln!(cert, "sigma_star = {}", result.inclusion.sigma_star).expect("write");
    writeln!(cert, "h(x) = {}", result.inclusion.h).expect("write");

    // ASCII rendering: x–z slice at y = 0.
    println!("\nFig. 3(b) projection (x–z plane at y = 0):");
    println!("  '#' unsafe set, '+' B>0 (safe side), '.' B<0, 'o' trajectory");
    let cols = 66usize;
    let rows = 33usize;
    let mut canvas = vec![vec![' '; cols]; rows];
    for (r, row) in canvas.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            let x = -2.2 + 4.4 * c as f64 / (cols - 1) as f64;
            let z = 2.2 - 4.4 * r as f64 / (rows - 1) as f64;
            let p = [x, 0.0, z];
            *cell = if bench.system.unsafe_set().contains(&p) {
                '#'
            } else if result.barrier.eval(&p) >= 0.0 {
                '+'
            } else {
                '.'
            };
        }
    }
    for traj in &trajectories {
        for x in traj.states.iter().step_by(3) {
            let c = ((x[0] + 2.2) / 4.4 * (cols - 1) as f64).round();
            let r = ((2.2 - x[2]) / 4.4 * (rows - 1) as f64).round();
            if (0.0..cols as f64).contains(&c) && (0.0..rows as f64).contains(&r) {
                canvas[r as usize][c as usize] = 'o';
            }
        }
    }
    for row in canvas {
        println!("  {}", row.into_iter().collect::<String>());
    }
    println!("\nCSV data written to {}", out_dir.display());
}
