//! Reproduces the **Theorem 2 / Remark 1** convergence behaviour: as the mesh
//! spacing `s` shrinks, the sampled Chebyshev optimum `σ̃` approaches the true
//! uniform error `σ` from below while the sound bound `σ* = σ̃ + ½sL·√n`
//! tightens from above.
//!
//! Run: `cargo run -p snbc-bench --release --bin theorem2_gap`

use snbc::{approximate_controller, ApproxOptions};
use snbc_bench::pretrain_controller;
use snbc_dynamics::benchmarks;

fn main() {
    let bench = benchmarks::benchmark(1);
    let controller = pretrain_controller(&bench);
    let domain = bench.system.domain().bounding_box();
    let lipschitz = controller.lipschitz_bound();
    println!(
        "Controller: tanh MLP {:?} on C1, Lipschitz bound L = {lipschitz:.4}\n",
        controller.layer_sizes()
    );
    println!("| mesh spacing s | mesh points | sigma_tilde | sigma* | probed sup error |");
    println!("|---|---|---|---|---|");

    let mut first_star = None;
    let mut last_star = f64::INFINITY;
    for &s in &[0.4, 0.2, 0.1, 0.05, 0.025] {
        let opts = ApproxOptions {
            degree: 2,
            mesh_spacing: s,
            max_mesh_points: 2_000_000,
            ..Default::default()
        };
        let inc = approximate_controller(&|x| controller.forward(x), lipschitz, domain, &opts)
            .expect("Chebyshev LP");
        // Dense probe of the true uniform error (ground truth estimate).
        let probes = snbc_dynamics::sample_box_halton(domain, 40_000);
        let mut sup: f64 = 0.0;
        for p in &probes {
            sup = sup.max((controller.forward(p) - inc.h.eval(p)).abs());
        }
        println!(
            "| {s} | {} | {:.6} | {:.6} | {:.6} |",
            inc.mesh_points, inc.sigma_tilde, inc.sigma_star, sup
        );
        // Remark 1 invariants. Meshes at different spacings are not nested,
        // so σ̃ is only monotone in expectation; the hard guarantees are the
        // sandwich σ̃ ≤ sup|k−h| ≤ σ* at every spacing, and that refining the
        // mesh ultimately tightens σ*.
        assert!(inc.sigma_tilde <= sup + 1e-9, "sigma_tilde lower-bounds the sup");
        assert!(sup <= inc.sigma_star + 1e-9, "sigma* upper-bounds the sup");
        first_star.get_or_insert(inc.sigma_star);
        last_star = inc.sigma_star;
    }
    assert!(
        last_star <= first_star.expect("at least one spacing") + 1e-9,
        "refining the mesh from s = 0.4 to s = 0.025 must tighten sigma*"
    );
    println!("\nAll Theorem 2 sandwich inequalities verified: sigma_tilde <= sup|k-h| <= sigma*.");
}
