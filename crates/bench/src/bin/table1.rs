//! Regenerates **Table 1** of the paper: performance of SNBC vs FOSSIL,
//! NNCChecker and SOSTOOLS on C1–C14.
//!
//! ```text
//! cargo run -p snbc-bench --release --bin table1 -- \
//!     [--benchmarks 1,2,3] [--tools snbc,fossil,nnc,sostools] \
//!     [--timeout 7200] [--csv bench-out/table1.csv] [--report bench-out] \
//!     [--trace-dir bench-out]
//! ```
//!
//! With `--report <dir>`, each SNBC run additionally writes its full
//! `snbc-run-report/1` telemetry document (see `docs/TELEMETRY.md`) to
//! `<dir>/BENCH_<name>.json` and prints the per-round table to stderr. With
//! `--trace-dir <dir>`, each SNBC run also writes a Chrome trace-event JSON
//! (`snbc-trace/1`, Perfetto-loadable; see `docs/TRACING.md`) to
//! `<dir>/TRACE_<name>.json`.
//!
//! Absolute numbers differ from the paper (different hardware, from-scratch
//! solvers); the claims under reproduction are the *shape*: SNBC solves all
//! rows, the SMT-based tools fall over as `n_x` grows, SOSTOOLS wins only in
//! low dimension, and SNBC's verification time stays small because it solves
//! three convex LMIs instead of SMT queries or one monolithic program.

use std::io::Write as _;
use std::time::Duration;

use snbc_bench::{pretrain_controller, row_cells, run_tool_recorded, summarize, Tool};
use snbc_dynamics::benchmarks;
use snbc_telemetry::Telemetry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bench_ids: Vec<usize> = (1..=14).collect();
    let mut tools: Vec<Tool> = Tool::all().to_vec();
    let mut timeout = Duration::from_secs(7200);
    let mut csv_path = Some("bench-out/table1.csv".to_string());
    let mut report_dir: Option<String> = None;
    let mut trace_dir: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--benchmarks" => {
                let v = it.next().expect("--benchmarks needs a list");
                bench_ids = v.split(',').map(|s| s.parse().expect("benchmark id")).collect();
            }
            "--tools" => {
                let v = it.next().expect("--tools needs a list");
                tools = v
                    .split(',')
                    .map(|s| Tool::parse(s).unwrap_or_else(|| panic!("unknown tool {s}")))
                    .collect();
            }
            "--timeout" => {
                let v = it.next().expect("--timeout needs seconds");
                timeout = Duration::from_secs(v.parse().expect("seconds"));
            }
            "--csv" => {
                csv_path = Some(it.next().expect("--csv needs a path").clone());
            }
            "--no-csv" => csv_path = None,
            "--report" => {
                report_dir = Some(it.next().expect("--report needs a directory").clone());
            }
            "--trace-dir" => {
                trace_dir = Some(it.next().expect("--trace-dir needs a directory").clone());
            }
            other => panic!("unknown argument {other}"),
        }
    }

    println!("# Table 1 reproduction — time in seconds, timeout {} s\n", timeout.as_secs());
    let mut header = String::from("| Ex. | n_x | d_f |");
    let mut rule = String::from("|---|---|---|");
    for t in &tools {
        header.push_str(&format!(" {} (d_B I T_l T_c T_v T_e) |", t.name()));
        rule.push_str("---|");
    }
    println!("{header}\n{rule}");

    let mut grid = Vec::new();
    let mut csv_rows = vec![format!(
        "benchmark,n_x,d_f,{}",
        tools
            .iter()
            .map(|t| {
                let n = t.name();
                format!("{n}_success,{n}_dB,{n}_iters,{n}_tl,{n}_tc,{n}_tv,{n}_te")
            })
            .collect::<Vec<_>>()
            .join(",")
    )];

    for &id in &bench_ids {
        let bench = if id == 0 {
            benchmarks::academic_3d()
        } else {
            benchmarks::benchmark(id)
        };
        eprintln!("[table1] {} (n_x={}, d_f={})", bench.name, bench.system.nvars(), bench.d_f);
        let controller = pretrain_controller(&bench);
        let mut row = Vec::new();
        let mut line = format!(
            "| {} | {} | {} |",
            bench.name,
            bench.system.nvars(),
            bench.d_f
        );
        let mut csv = format!("{},{},{}", bench.name, bench.system.nvars(), bench.d_f);
        for &tool in &tools {
            // Only SNBC runs are instrumented; baselines get a no-op sink.
            let telemetry = match (tool, &report_dir, &trace_dir) {
                (Tool::Snbc, Some(_), None) => Telemetry::recording(),
                (Tool::Snbc, _, Some(_)) => {
                    Telemetry::recording().with_trace(snbc_trace::Trace::recording())
                }
                _ => Telemetry::off(),
            };
            let r = run_tool_recorded(tool, &bench, &controller, timeout, telemetry.clone());
            if let (Some(dir), Some(rep)) = (&report_dir, telemetry.report()) {
                std::fs::create_dir_all(dir).expect("create report dir");
                let path = format!("{dir}/BENCH_{}.json", bench.name);
                std::fs::write(&path, rep.to_json_string()).expect("write run report");
                eprintln!("[table1]   run report -> {path}");
                eprintln!("[table1]   {}", snbc_bench::phase_wall_summary(&rep));
                eprint!("{}", snbc_telemetry::render_round_table(&rep));
            }
            if let (Some(dir), Some(dump)) = (&trace_dir, telemetry.trace().dump()) {
                std::fs::create_dir_all(dir).expect("create trace dir");
                let path = format!("{dir}/TRACE_{}.json", bench.name);
                std::fs::write(&path, dump.to_json_string()).expect("write trace");
                eprintln!("[table1]   trace ({} events) -> {path}", dump.event_count());
            }
            eprintln!(
                "[table1]   {} -> {}",
                tool.name(),
                if r.success { "ok" } else { r.failure.as_deref().unwrap_or("fail") }
            );
            line.push_str(&format!(" {} |", row_cells(&r)));
            csv.push_str(&format!(
                ",{},{},{},{:.3},{:.3},{:.3},{:.3}",
                r.success,
                r.barrier_degree.map_or(-1i64, i64::from),
                r.iterations,
                r.t_learn.as_secs_f64(),
                r.t_cex.as_secs_f64(),
                r.t_verify.as_secs_f64(),
                r.t_total.as_secs_f64()
            ));
            row.push(r);
        }
        println!("{line}");
        csv_rows.push(csv);
        grid.push(row);
    }

    // Summary statistics (§5 prose).
    let s = summarize(&grid);
    println!("\n## Summary");
    for (name, n) in &s.successes {
        println!("- {name}: {n}/{} solved", bench_ids.len());
    }
    println!("- Average total time on the subset solved by all tools:");
    for (name, a) in &s.avg_common {
        println!("    {name}: {a:.3} s");
    }
    println!("- Speed-up of {} over the others on that subset:", tools[0].name());
    for (name, f) in s.speedups.iter().skip(1) {
        println!("    vs {name}: {f:.2}x");
    }

    if let Some(path) = csv_path {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
        let mut f = std::fs::File::create(&path).expect("create csv");
        for r in csv_rows {
            writeln!(f, "{r}").expect("write csv");
        }
        println!("\nCSV written to {path}");
    }
}
