//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Binaries:
//!
//! * `table1` — runs {SNBC, FOSSIL, NNCChecker, SOSTOOLS} over C1–C14 and
//!   prints Table 1 (columns `d_B, I, T_l, T_c, T_v, T_e` per tool) plus the
//!   paper's summary statistics (success counts, average speed-ups, the
//!   `n_x ≤ 3` vs `n_x ≥ 4` crossover against SOSTOOLS);
//! * `fig3` — reproduces Fig. 3 on the Academic 3D example: trajectories,
//!   counterexamples of a failing intermediate candidate, and the zero level
//!   set of the final certificate, written as CSV plus an ASCII rendering;
//! * `theorem2_gap` — the Remark 1 convergence study `σ̃ → σ` as the mesh
//!   spacing shrinks;
//! * `snbc-bench` — the CI regression gate: `snbc-bench check` re-runs the
//!   quickstart synthesis in-process and compares its run report against the
//!   committed `bench-out/BENCH_quickstart*.json` baseline (see [`check`]).
//!
//! The [`run_tool`] / [`Tool`] API is also used by the criterion benches.

pub mod check;

use std::time::Duration;

use snbc::{Snbc, SnbcConfig, SnbcError};
use snbc_baselines::{
    Fossil, FossilConfig, NncChecker, NncCheckerConfig, SosTools, SosToolsConfig, SynthesisReport,
};
use snbc_dynamics::benchmarks::Benchmark;
use snbc_nn::{train_controller, ControllerTraining, Mlp};

/// The four synthesizers of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tool {
    /// The paper's contribution.
    Snbc,
    /// FOSSIL-style neural learner + SMT-style verifier.
    Fossil,
    /// NNCChecker-style polynomial fit + SMT-style verifier.
    NncChecker,
    /// SOSTOOLS-style direct SOS synthesis.
    SosTools,
}

impl Tool {
    /// All tools in Table 1 column order.
    pub fn all() -> [Tool; 4] {
        [Tool::Snbc, Tool::Fossil, Tool::NncChecker, Tool::SosTools]
    }

    /// Parses a tool name (`snbc|fossil|nnc|sostools`).
    pub fn parse(s: &str) -> Option<Tool> {
        match s.to_ascii_lowercase().as_str() {
            "snbc" => Some(Tool::Snbc),
            "fossil" => Some(Tool::Fossil),
            "nnc" | "nncchecker" => Some(Tool::NncChecker),
            "sostools" | "sos" => Some(Tool::SosTools),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Tool::Snbc => "SNBC",
            Tool::Fossil => "FOSSIL",
            Tool::NncChecker => "NNCChecker",
            Tool::SosTools => "SOSTOOLS",
        }
    }
}

/// Pre-trains the benchmark's NN controller (the DDPG substitute; see
/// DESIGN.md).
pub fn pretrain_controller(bench: &Benchmark) -> Mlp {
    train_controller(
        bench.system.domain().bounding_box(),
        bench.target_law,
        &ControllerTraining::default(),
    )
}

/// The SNBC configuration used for a benchmark in the Table 1 runs.
pub fn snbc_config_for(bench: &Benchmark, time_limit: Duration) -> SnbcConfig {
    let n = bench.system.nvars();
    let mut cfg = SnbcConfig {
        max_iterations: 25,
        time_limit,
        ..Default::default()
    };
    if n >= 5 {
        // Full rectangular meshes are exponential in n; the capped Halton set
        // plus interval-certified error bound keeps σ* tight (see
        // snbc::approximate_mlp). A degree-1 abstraction h keeps the closed
        // loop at the field degree — a quadratic h would push the flow
        // certificate one degree class up (105 → 2380 constraint rows at
        // n = 12).
        cfg.approx.max_mesh_points = 3000;
        cfg.approx.degree = 1;
    }
    cfg
}

/// Runs one tool on one benchmark with a shared wall-clock budget, returning
/// the uniform report.
pub fn run_tool(tool: Tool, bench: &Benchmark, controller: &Mlp, time_limit: Duration) -> SynthesisReport {
    run_tool_recorded(tool, bench, controller, time_limit, snbc_telemetry::Telemetry::off())
}

/// Same as [`run_tool`], but attaches a telemetry sink to the SNBC run so the
/// caller can extract the `snbc-run-report` span tree afterwards (used by the
/// `table1` binary's `--report` option). The baseline tools are not
/// instrumented; the sink is ignored for them.
pub fn run_tool_recorded(
    tool: Tool,
    bench: &Benchmark,
    controller: &Mlp,
    time_limit: Duration,
    telemetry: snbc_telemetry::Telemetry,
) -> SynthesisReport {
    match tool {
        Tool::Snbc => {
            let cfg = snbc_config_for(bench, time_limit);
            match Snbc::new(cfg).with_telemetry(telemetry).synthesize(bench, controller) {
                Ok(r) => SynthesisReport {
                    tool: "SNBC",
                    benchmark: bench.name.to_string(),
                    success: true,
                    barrier_degree: Some(r.barrier.degree()),
                    iterations: r.iterations,
                    t_learn: r.t_learn,
                    t_cex: r.t_cex,
                    t_verify: r.t_verify,
                    t_total: r.t_total,
                    barrier: Some(r.barrier),
                    failure: None,
                },
                Err(SnbcError::Timeout { elapsed }) => SynthesisReport::failed(
                    "SNBC",
                    bench.name,
                    0,
                    Duration::from_secs_f64(elapsed),
                    "OT",
                ),
                Err(e) => SynthesisReport::failed("SNBC", bench.name, 0, time_limit, e.to_string()),
            }
        }
        Tool::Fossil => {
            let inclusion = shared_inclusion(bench, controller);
            let cfg = FossilConfig {
                time_limit,
                ..Default::default()
            };
            Fossil::new(cfg).synthesize(bench, &inclusion)
        }
        Tool::NncChecker => {
            let inclusion = shared_inclusion(bench, controller);
            let cfg = NncCheckerConfig {
                time_limit,
                ..Default::default()
            };
            NncChecker::new(cfg).synthesize(bench, &inclusion)
        }
        Tool::SosTools => {
            let inclusion = shared_inclusion(bench, controller);
            let cfg = SosToolsConfig {
                time_limit,
                ..Default::default()
            };
            SosTools::new(cfg).synthesize(bench, &inclusion)
        }
    }
}

/// The controller abstraction shared by the baselines (SNBC recomputes its
/// own inside `synthesize`, timing it as part of `T_e` exactly like the
/// paper's end-to-end figures).
pub fn shared_inclusion(bench: &Benchmark, controller: &Mlp) -> snbc::PolynomialInclusion {
    let n = bench.system.nvars();
    let mut approx = snbc::ApproxOptions::default();
    if n >= 5 {
        approx.max_mesh_points = 3000;
        approx.degree = 1;
    }
    snbc::approximate_mlp(controller, bench.system.domain().bounding_box(), &approx)
        .expect("controller abstraction")
}

/// One line of per-phase wall-clock totals for a recorded SNBC run, plus the
/// worker-thread count the run recorded (the `threads` gauge on the `cegis`
/// span; see docs/PARALLELISM.md). Used by the `table1` binary's `--report`
/// output so committed run reports state the parallelism they ran with.
pub fn phase_wall_summary(report: &snbc_telemetry::Report) -> String {
    use snbc_telemetry::SpanNode;
    fn walk(n: &SpanNode, learn: &mut f64, verify: &mut f64, cex: &mut f64, threads: &mut Option<f64>) {
        match n.name.as_str() {
            "learn" => *learn += n.elapsed_s,
            "verify" => *verify += n.elapsed_s,
            s if s.starts_with("search-") => *cex += n.elapsed_s,
            "cegis" => {
                if let Some((_, t)) = n.gauges.iter().find(|(g, _)| g == "threads") {
                    *threads = Some(*t);
                }
            }
            _ => {}
        }
        // `verify` children (`init`/`unsafe`/`flow` → `sdp`) nest inside the
        // per-phase totals already counted above, so recurse unconditionally
        // but only match the phase span names.
        for c in &n.children {
            walk(c, learn, verify, cex, threads);
        }
    }
    let (mut learn, mut verify, mut cex, mut threads) = (0.0, 0.0, 0.0, None);
    walk(&report.root, &mut learn, &mut verify, &mut cex, &mut threads);
    format!(
        "threads={} wall: learn {:.3}s, verify {:.3}s, cex {:.3}s",
        threads.map_or("?".to_string(), |t| format!("{}", t as u64)),
        learn,
        verify,
        cex
    )
}

/// Formats a duration like the paper's seconds columns.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats one Table 1 cell group for a report.
pub fn row_cells(r: &SynthesisReport) -> String {
    if r.success {
        format!(
            "{} {} {} {} {} {}",
            r.barrier_degree.map_or("-".into(), |d| d.to_string()),
            r.iterations,
            secs(r.t_learn),
            secs(r.t_cex),
            secs(r.t_verify),
            secs(r.t_total),
        )
    } else {
        let mark = r.failure.as_deref().unwrap_or("×");
        let mark = if mark == "OT" { "OT" } else { "×" };
        format!("{mark} - - - - {}", secs(r.t_total))
    }
}

/// Summary statistics mirroring §5's prose claims.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Successes per tool.
    pub successes: Vec<(String, usize)>,
    /// Average total seconds per tool over the *common* solved subset.
    pub avg_common: Vec<(String, f64)>,
    /// Speed-up of the first tool (SNBC) over each other tool on the common
    /// subset.
    pub speedups: Vec<(String, f64)>,
}

/// Computes the summary over a full result grid `results[bench][tool]`.
pub fn summarize(results: &[Vec<SynthesisReport>]) -> Summary {
    if results.is_empty() {
        return Summary::default();
    }
    let ntools = results[0].len();
    let mut successes = vec![0usize; ntools];
    for row in results {
        for (t, r) in row.iter().enumerate() {
            if r.success {
                successes[t] += 1;
            }
        }
    }
    // Common subset: benchmarks solved by every tool.
    let common: Vec<&Vec<SynthesisReport>> = results
        .iter()
        .filter(|row| row.iter().all(|r| r.success))
        .collect();
    let mut avg = vec![0.0; ntools];
    for row in &common {
        for (t, r) in row.iter().enumerate() {
            avg[t] += r.t_total.as_secs_f64();
        }
    }
    let denom = common.len().max(1) as f64;
    for a in &mut avg {
        *a /= denom;
    }
    let names: Vec<String> = results[0].iter().map(|r| r.tool.to_string()).collect();
    Summary {
        successes: names.iter().cloned().zip(successes).collect(),
        avg_common: names.iter().cloned().zip(avg.iter().copied()).collect(),
        speedups: names
            .iter()
            .cloned()
            .zip(avg.iter().map(|&a| if avg[0] > 0.0 { a / avg[0] } else { f64::NAN }))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tool_parsing() {
        assert_eq!(Tool::parse("snbc"), Some(Tool::Snbc));
        assert_eq!(Tool::parse("FOSSIL"), Some(Tool::Fossil));
        assert_eq!(Tool::parse("nnc"), Some(Tool::NncChecker));
        assert_eq!(Tool::parse("sostools"), Some(Tool::SosTools));
        assert_eq!(Tool::parse("z3"), None);
    }

    #[test]
    fn summary_common_subset() {
        use std::time::Duration;
        let ok = |tool: &'static str, secs: f64| SynthesisReport {
            tool,
            benchmark: "B".into(),
            success: true,
            barrier_degree: Some(2),
            iterations: 1,
            t_learn: Duration::ZERO,
            t_cex: Duration::ZERO,
            t_verify: Duration::ZERO,
            t_total: Duration::from_secs_f64(secs),
            barrier: None,
            failure: None,
        };
        let fail = |tool: &'static str| SynthesisReport::failed(tool, "B", 0, Duration::ZERO, "OT");
        let grid = vec![
            vec![ok("SNBC", 1.0), ok("FOSSIL", 10.0)],
            vec![ok("SNBC", 2.0), fail("FOSSIL")],
        ];
        let s = summarize(&grid);
        assert_eq!(s.successes, vec![("SNBC".into(), 2), ("FOSSIL".into(), 1)]);
        // Common subset = first row only.
        assert_eq!(s.avg_common[0].1, 1.0);
        assert_eq!(s.avg_common[1].1, 10.0);
        assert!((s.speedups[1].1 - 10.0).abs() < 1e-12);
    }
}
