//! Hand-rolled JSON value type, writer, and parser.
//!
//! The implementation lives in [`snbc_trace::json`] (the bottom-most
//! observability crate, shared by trace files and run reports) and is
//! re-exported here so existing `snbc_telemetry::json` users keep working.
//! Objects preserve insertion order, counters stay exact `u64`s, floats use
//! shortest round-trip formatting, and non-finite floats serialize as
//! `null` — see the source module for details.

pub use snbc_trace::json::*;
