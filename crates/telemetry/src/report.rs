//! The run report: a snapshot of the span tree, its JSON schema, and the
//! human-readable per-round progress table.
//!
//! The JSON layout (schema [`SCHEMA`] = `"snbc-run-report/1"`) is documented
//! field-by-field in `docs/TELEMETRY.md`; in short:
//!
//! ```json
//! {
//!   "schema": "snbc-run-report/1",
//!   "run": {
//!     "name": "run", "elapsed_s": 1.25,
//!     "counters": {"epochs": 120}, "gauges": {"final_loss": 2.5e-3},
//!     "labels": {"benchmark": "C3"},
//!     "children": [ ...same shape, with optional "index"... ]
//!   }
//! }
//! ```
//!
//! Empty sections are omitted; counters are exact `u64` integers; gauges are
//! `f64` and serialize as `null` when non-finite (solver breakdown).

use crate::json::{self, ParseError, Value};

/// Version tag stamped into every serialized report.
pub const SCHEMA: &str = "snbc-run-report/1";

/// A snapshot of one span: timing plus the metrics recorded on it.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Static span name (`"cegis"`, `"round"`, `"learn"`, `"sdp"`, …).
    pub name: String,
    /// Optional index, used by `"round"` spans for the CEGIS iteration.
    pub index: Option<u64>,
    /// Id of the matching span-begin/end pair in the `snbc-trace` event
    /// stream (`args.span_id` in the Chrome export); present only when a
    /// trace sink was attached to the run (see `docs/TRACING.md`).
    pub trace_id: Option<u64>,
    /// Wall-clock seconds from a monotonic timer (time-so-far if the span
    /// was still open when the snapshot was taken).
    pub elapsed_s: f64,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub labels: Vec<(String, String)>,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Value of counter `name` on this span.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Value of gauge `name` on this span.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Value of label `name` on this span.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First direct child with the given name.
    pub fn child(&self, name: &str) -> Option<&SpanNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All direct children with the given name, in recording order.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanNode> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Depth-first search for the first span named `name` (self included).
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Sum of a counter over this span and all descendants.
    pub fn counter_deep(&self, name: &str) -> u64 {
        self.counter(name).unwrap_or(0)
            + self
                .children
                .iter()
                .map(|c| c.counter_deep(name))
                .sum::<u64>()
    }

    fn to_json(&self) -> Value {
        let mut pairs = vec![("name".to_string(), Value::Str(self.name.clone()))];
        if let Some(i) = self.index {
            pairs.push(("index".to_string(), Value::Int(i)));
        }
        if let Some(t) = self.trace_id {
            pairs.push(("trace_id".to_string(), Value::Int(t)));
        }
        pairs.push(("elapsed_s".to_string(), Value::Num(self.elapsed_s)));
        if !self.counters.is_empty() {
            pairs.push((
                "counters".to_string(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Value::Int(*v)))
                        .collect(),
                ),
            ));
        }
        if !self.gauges.is_empty() {
            pairs.push((
                "gauges".to_string(),
                Value::Obj(
                    self.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), Value::Num(*v)))
                        .collect(),
                ),
            ));
        }
        if !self.labels.is_empty() {
            pairs.push((
                "labels".to_string(),
                Value::Obj(
                    self.labels
                        .iter()
                        .map(|(n, v)| (n.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ));
        }
        if !self.children.is_empty() {
            pairs.push((
                "children".to_string(),
                Value::Arr(self.children.iter().map(SpanNode::to_json).collect()),
            ));
        }
        Value::Obj(pairs)
    }

    fn from_json(v: &Value) -> Result<SpanNode, String> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("span missing `name`")?
            .to_string();
        let index = v.get("index").and_then(Value::as_u64);
        let trace_id = v.get("trace_id").and_then(Value::as_u64);
        // A null elapsed_s cannot occur for finite timers, but tolerate it.
        let elapsed_s = v
            .get("elapsed_s")
            .and_then(Value::as_f64)
            .ok_or("span missing `elapsed_s`")?;
        let mut counters = Vec::new();
        if let Some(obj) = v.get("counters").and_then(Value::as_object) {
            for (n, c) in obj {
                counters.push((
                    n.clone(),
                    c.as_u64().ok_or_else(|| format!("counter `{n}` not a u64"))?,
                ));
            }
        }
        let mut gauges = Vec::new();
        if let Some(obj) = v.get("gauges").and_then(Value::as_object) {
            for (n, gv) in obj {
                // `null` marks a non-finite measurement (see docs/TELEMETRY.md).
                let x = match gv {
                    Value::Null => f64::NAN,
                    other => other
                        .as_f64()
                        .ok_or_else(|| format!("gauge `{n}` not a number"))?,
                };
                gauges.push((n.clone(), x));
            }
        }
        let mut labels = Vec::new();
        if let Some(obj) = v.get("labels").and_then(Value::as_object) {
            for (n, s) in obj {
                labels.push((
                    n.clone(),
                    s.as_str()
                        .ok_or_else(|| format!("label `{n}` not a string"))?
                        .to_string(),
                ));
            }
        }
        let mut children = Vec::new();
        if let Some(arr) = v.get("children").and_then(Value::as_array) {
            for c in arr {
                children.push(SpanNode::from_json(c)?);
            }
        }
        Ok(SpanNode {
            name,
            index,
            trace_id,
            elapsed_s,
            counters,
            gauges,
            labels,
            children,
        })
    }
}

/// A complete run report: the root span tree plus the schema version.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    pub root: SpanNode,
}

impl Report {
    /// All `"job"` spans in the tree (the portfolio batch service records
    /// one per batch job), in recording order.
    pub fn jobs(&self) -> Vec<&SpanNode> {
        fn walk<'a>(n: &'a SpanNode, out: &mut Vec<&'a SpanNode>) {
            if n.name == "job" {
                out.push(n);
            }
            for c in &n.children {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }

    /// All `"round"` spans in the tree, in recording order.
    pub fn rounds(&self) -> Vec<&SpanNode> {
        fn walk<'a>(n: &'a SpanNode, out: &mut Vec<&'a SpanNode>) {
            if n.name == "round" {
                out.push(n);
            }
            for c in &n.children {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }

    /// Serializes to the schema-versioned JSON tree.
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(SCHEMA.to_string())),
            ("run".to_string(), self.root.to_json()),
        ])
    }

    /// Serializes to pretty-printed JSON text (ends with a newline).
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().to_pretty_string();
        s.push('\n');
        s
    }

    /// Rebuilds a report from a parsed JSON tree.
    pub fn from_json(v: &Value) -> Result<Report, String> {
        match v.get("schema").and_then(Value::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(format!("unsupported report schema `{other}`")),
            None => return Err("missing `schema` field".to_string()),
        }
        let run = v.get("run").ok_or("missing `run` field")?;
        Ok(Report {
            root: SpanNode::from_json(run)?,
        })
    }

    /// Parses JSON text into a report.
    pub fn parse(text: &str) -> Result<Report, String> {
        let v = json::parse(text).map_err(|e: ParseError| e.to_string())?;
        Report::from_json(&v)
    }
}

/// Renders the per-round progress table the CLI prints: one row per CEGIS
/// round with learner, verifier, and counterexample metrics.
///
/// Missing metrics render as `-` (e.g. no `cex` phase on the certifying
/// round). Margins are the verifier's per-LMI optimal values t* for
/// problems (13)–(15); γ is the largest violation-ball radius the
/// counterexample search certified this round (Lemma 2).
pub fn render_round_table(report: &Report) -> String {
    let mut out = String::new();
    out.push_str(
        "round   epochs  final_loss     m_init   m_unsafe     m_flow    cex    gamma   t_learn  t_verify     t_cex\n",
    );
    for (i, round) in report.rounds().iter().enumerate() {
        let idx = round.index.unwrap_or(i as u64);
        let learn = round.child("learn");
        let verify = round.child("verify");
        let cex = round.child("cex");
        let margin = |phase: &str| -> String {
            verify
                .and_then(|v| v.child(phase))
                .and_then(|p| p.gauge("margin"))
                .map_or_else(|| "-".to_string(), |m| format!("{m:+.3e}"))
        };
        let row = format!(
            "{:>5}  {:>7}  {:>10}  {:>9}  {:>9}  {:>9}  {:>5}  {:>7}  {:>8}  {:>8}  {:>8}\n",
            idx,
            learn
                .and_then(|l| l.counter("epochs"))
                .map_or_else(|| "-".to_string(), |e| e.to_string()),
            learn
                .and_then(|l| l.gauge("final_loss"))
                .map_or_else(|| "-".to_string(), |l| format!("{l:.3e}")),
            margin("init"),
            margin("unsafe"),
            margin("flow"),
            cex.map(|c| c.counter_deep("points"))
                .map_or_else(|| "-".to_string(), |p| p.to_string()),
            cex.and_then(max_gamma)
                .map_or_else(|| "-".to_string(), |g| format!("{g:.2e}")),
            learn.map_or_else(|| "-".to_string(), |l| format!("{:.2}s", l.elapsed_s)),
            verify.map_or_else(|| "-".to_string(), |v| format!("{:.2}s", v.elapsed_s)),
            cex.map_or_else(|| "-".to_string(), |c| format!("{:.2}s", c.elapsed_s)),
        );
        out.push_str(&row);
    }
    let jobs = report.jobs();
    if !jobs.is_empty() {
        out.push('\n');
        out.push_str(&render_job_table(&jobs));
    }
    out
}

/// Renders the per-job batch table (one row per `job` span recorded by the
/// portfolio batch service): cache disposition, candidates raced, the
/// deterministic winner index, and wave count. Cache hits race nothing, so
/// their racing columns render as `-`.
fn render_job_table(jobs: &[&SpanNode]) -> String {
    let mut out = String::new();
    out.push_str("  job  name                  cache  cands  winner  waves\n");
    for (i, job) in jobs.iter().enumerate() {
        let race = job.child("race");
        let race_counter = |name: &str| -> String {
            race.and_then(|r| r.counter(name))
                .map_or_else(|| "-".to_string(), |v| v.to_string())
        };
        let cache = if job.counter("cache_hit").is_some() {
            "hit"
        } else if job.counter("cache_miss").is_some() {
            "miss"
        } else {
            "-"
        };
        let row = format!(
            "{:>5}  {:<20}  {:>5}  {:>5}  {:>6}  {:>5}\n",
            job.index.unwrap_or(i as u64),
            job.label("name").unwrap_or("-"),
            cache,
            race_counter("candidates_launched"),
            race_counter("race_winner_index"),
            race_counter("waves"),
        );
        out.push_str(&row);
    }
    out
}

/// Largest `gamma` gauge over a cex span's search children.
fn max_gamma(cex: &SpanNode) -> Option<f64> {
    let mut best: Option<f64> = None;
    for c in &cex.children {
        if let Some(g) = c.gauge("gamma") {
            best = Some(best.map_or(g, |b| b.max(g)));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let learn = SpanNode {
            name: "learn".to_string(),
            index: None,
            trace_id: None,
            elapsed_s: 0.52,
            counters: vec![("epochs".to_string(), 200), ("adam_steps".to_string(), 199)],
            gauges: vec![("final_loss".to_string(), 1.5e-3)],
            labels: vec![],
            children: vec![],
        };
        let sdp = SpanNode {
            name: "sdp".to_string(),
            index: None,
            trace_id: None,
            elapsed_s: 0.11,
            counters: vec![("iterations".to_string(), 17), ("cholesky".to_string(), 64)],
            gauges: vec![("duality_mu".to_string(), 3.4e-10)],
            labels: vec![],
            children: vec![],
        };
        let init = SpanNode {
            name: "init".to_string(),
            index: None,
            trace_id: None,
            elapsed_s: 0.12,
            counters: vec![],
            gauges: vec![("margin".to_string(), 0.015), ("feasible".to_string(), 1.0)],
            labels: vec![],
            children: vec![sdp],
        };
        let verify = SpanNode {
            name: "verify".to_string(),
            index: None,
            trace_id: None,
            elapsed_s: 0.4,
            counters: vec![],
            gauges: vec![],
            labels: vec![],
            children: vec![init],
        };
        let search = SpanNode {
            name: "search-flow".to_string(),
            index: None,
            trace_id: None,
            elapsed_s: 0.05,
            counters: vec![("points".to_string(), 32)],
            gauges: vec![("gamma".to_string(), 0.21), ("violation".to_string(), 0.02)],
            labels: vec![],
            children: vec![],
        };
        let cex = SpanNode {
            name: "cex".to_string(),
            index: None,
            trace_id: None,
            elapsed_s: 0.07,
            counters: vec![],
            gauges: vec![],
            labels: vec![],
            children: vec![search],
        };
        let round = SpanNode {
            name: "round".to_string(),
            index: Some(0),
            trace_id: None,
            elapsed_s: 1.0,
            counters: vec![],
            gauges: vec![],
            labels: vec![],
            children: vec![learn, verify, cex],
        };
        let cegis = SpanNode {
            name: "cegis".to_string(),
            index: None,
            trace_id: None,
            elapsed_s: 1.2,
            counters: vec![("iterations".to_string(), 1)],
            gauges: vec![("sigma_star".to_string(), 0.08)],
            labels: vec![("benchmark".to_string(), "C3".to_string())],
            children: vec![round],
        };
        Report {
            root: SpanNode {
                name: "run".to_string(),
                index: None,
                trace_id: None,
                elapsed_s: 1.3,
                counters: vec![],
                gauges: vec![],
                labels: vec![],
                children: vec![cegis],
            },
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let rep = sample_report();
        let text = rep.to_json_string();
        assert!(text.contains("snbc-run-report/1"));
        let back = Report::parse(&text).unwrap();
        assert_eq!(back, rep);
        // And the re-serialization is byte-identical (ordered objects).
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = sample_report()
            .to_json_string()
            .replace(SCHEMA, "snbc-run-report/999");
        let err = Report::parse(&text).unwrap_err();
        assert!(err.contains("unsupported report schema"), "{err}");
        assert!(Report::parse("{}").is_err());
        assert!(Report::parse("not json").is_err());
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let rep = sample_report();
        let rounds = rep.rounds();
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].index, Some(0));
        let cegis = rep.root.child("cegis").unwrap();
        assert_eq!(cegis.label("benchmark"), Some("C3"));
        assert_eq!(rep.root.find("sdp").unwrap().counter("cholesky"), Some(64));
        assert_eq!(rounds[0].counter_deep("points"), 32);
        assert_eq!(
            cegis.children_named("round").count(),
            1
        );
    }

    #[test]
    fn non_finite_gauge_survives_as_null() {
        let mut rep = sample_report();
        rep.root.gauges.push(("bad".to_string(), f64::NEG_INFINITY));
        let text = rep.to_json_string();
        assert!(text.contains("\"bad\": null"));
        let back = Report::parse(&text).unwrap();
        assert!(back.root.gauge("bad").unwrap().is_nan());
    }

    #[test]
    fn round_table_renders_all_columns() {
        let table = render_round_table(&sample_report());
        let mut lines = table.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("m_init") && header.contains("gamma"));
        let row = lines.next().unwrap();
        assert!(row.contains("200"), "{row}");
        assert!(row.contains("1.500e-3"), "{row}");
        assert!(row.contains("+1.500e-2"), "{row}");
        assert!(row.contains("32"), "{row}");
        assert!(row.contains("2.10e-1"), "{row}");
        // No batch jobs in this report — no job table.
        assert!(!table.contains("cands"), "{table}");
    }

    #[test]
    fn round_table_appends_the_batch_job_table() {
        let raced = SpanNode {
            name: "job".to_string(),
            index: Some(0),
            trace_id: None,
            elapsed_s: 2.0,
            counters: vec![("cache_miss".to_string(), 1)],
            gauges: vec![],
            labels: vec![("name".to_string(), "c3-a".to_string())],
            children: vec![SpanNode {
                name: "race".to_string(),
                index: None,
                trace_id: None,
                elapsed_s: 1.9,
                counters: vec![
                    ("candidates_launched".to_string(), 2),
                    ("waves".to_string(), 3),
                    ("race_winner_index".to_string(), 1),
                ],
                gauges: vec![],
                labels: vec![],
                children: vec![],
            }],
        };
        let hit = SpanNode {
            name: "job".to_string(),
            index: Some(1),
            trace_id: None,
            elapsed_s: 0.01,
            counters: vec![("cache_hit".to_string(), 1)],
            gauges: vec![],
            labels: vec![("name".to_string(), "c3-b".to_string())],
            children: vec![],
        };
        let mut rep = sample_report();
        rep.root.children.push(SpanNode {
            name: "batch".to_string(),
            index: None,
            trace_id: None,
            elapsed_s: 2.1,
            counters: vec![],
            gauges: vec![],
            labels: vec![],
            children: vec![raced, hit],
        });
        assert_eq!(rep.jobs().len(), 2);
        let table = render_round_table(&rep);
        let job_rows: Vec<&str> = table
            .lines()
            .skip_while(|l| !l.contains("cands"))
            .collect();
        assert_eq!(job_rows.len(), 3, "{table}");
        assert!(job_rows[1].contains("c3-a"), "{table}");
        assert!(job_rows[1].contains("miss"), "{table}");
        let cols: Vec<&str> = job_rows[1].split_whitespace().collect();
        assert_eq!(cols, ["0", "c3-a", "miss", "2", "1", "3"], "{table}");
        assert_eq!(
            job_rows[2].split_whitespace().collect::<Vec<_>>(),
            ["1", "c3-b", "hit", "-", "-", "-"],
            "{table}"
        );
    }
}
