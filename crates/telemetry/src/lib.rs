//! Structured telemetry for the SNBC CEGIS pipeline.
//!
//! The paper's synthesis loop (Algorithm 1: learner → LMI verifier →
//! counterexample generator) is an iterative numeric pipeline whose
//! convergence behaviour — epochs per round, interior-point iterations per
//! LMI (13)–(15), duality measures, counterexample radii γ — is what every
//! performance experiment measures. This crate is the shared, std-only,
//! zero-dependency substrate that records it:
//!
//! - [`Telemetry`] is a cheap cloneable handle, either **off** (the default:
//!   a `None` inside; every call is a branch on a null pointer and returns
//!   immediately, no allocation, no clock read) or **recording** (an
//!   `Arc`-shared recorder behind a mutex).
//! - [`Telemetry::span`] opens a named, monotonically-timed region and
//!   returns an RAII [`SpanGuard`]; spans nest, forming the
//!   `run → cegis → round[i] → learn/verify/cex` hierarchy documented in
//!   `docs/TELEMETRY.md`.
//! - [`Telemetry::add`] accumulates a `u64` counter and [`Telemetry::gauge`]
//!   records an `f64` measurement on the innermost open span.
//! - [`Telemetry::report`] snapshots the whole tree into a [`Report`], which
//!   serializes to a schema-versioned JSON run report
//!   ([`report::SCHEMA`] = `"snbc-run-report/1"`) via the hand-rolled,
//!   std-only writer/parser in [`json`].
//!
//! # Example
//!
//! ```
//! use snbc_telemetry::Telemetry;
//!
//! let t = Telemetry::recording();
//! {
//!     let _round = t.span_indexed("round", 1);
//!     {
//!         let _learn = t.span("learn");
//!         t.add("epochs", 120);
//!         t.gauge("final_loss", 3.5e-3);
//!     }
//! }
//! let report = t.report().unwrap();
//! let round = report.root.child("round").unwrap();
//! assert_eq!(round.child("learn").unwrap().counter("epochs"), Some(120));
//! let json = report.to_json_string();
//! assert_eq!(snbc_telemetry::Report::parse(&json).unwrap(), report);
//! ```

pub mod json;
pub mod report;

pub use report::{render_round_table, Report, SpanNode, SCHEMA};
// Re-exported so downstream crates can reach the trace layer through their
// existing telemetry dependency (e.g. `telemetry.trace().ipm_iter(...)`).
pub use snbc_trace::{IpmSample, Trace};

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One recorded span while the run is live.
#[derive(Debug)]
struct SpanSlot {
    name: &'static str,
    index: Option<u64>,
    started: Instant,
    /// `Some` once the span has been closed.
    elapsed: Option<Duration>,
    /// Id of the mirrored `snbc-trace` span event pair (0 = no trace
    /// attached); surfaced as the report's `trace_id` field.
    trace_id: u64,
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    labels: Vec<(&'static str, String)>,
    children: Vec<usize>,
    /// Finished subtrees adopted from forked recorders (see
    /// [`Telemetry::fork`]); rendered after the locally recorded children.
    grafted: Vec<SpanNode>,
}

impl SpanSlot {
    fn new(name: &'static str, index: Option<u64>, trace_id: u64) -> Self {
        SpanSlot {
            name,
            index,
            started: Instant::now(),
            elapsed: None,
            trace_id,
            counters: Vec::new(),
            gauges: Vec::new(),
            labels: Vec::new(),
            children: Vec::new(),
            grafted: Vec::new(),
        }
    }
}

#[derive(Debug)]
struct Inner {
    /// Arena of spans; index 0 is the implicit root span `"run"`.
    spans: Vec<SpanSlot>,
    /// Stack of open span ids; the root stays open for the recorder's life.
    stack: Vec<usize>,
}

/// Shared recording state behind a [`Telemetry`] handle.
#[derive(Debug)]
struct Recorder {
    inner: Mutex<Inner>,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            inner: Mutex::new(Inner {
                spans: vec![SpanSlot::new("run", None, 0)],
                stack: vec![0],
            }),
        }
    }

    fn open(&self, name: &'static str, index: Option<u64>, trace_id: u64) -> usize {
        let Ok(mut g) = self.inner.lock() else { return 0 };
        let id = g.spans.len();
        let parent = g.stack.last().copied().unwrap_or(0);
        g.spans.push(SpanSlot::new(name, index, trace_id));
        g.spans[parent].children.push(id);
        g.stack.push(id);
        id
    }

    fn close(&self, id: usize) {
        let Ok(mut g) = self.inner.lock() else { return };
        // Root (id 0) is closed only by `report`; a stale guard is a no-op.
        if id == 0 || !g.stack.contains(&id) {
            return;
        }
        // Close `id` and any children left open by early returns above it.
        while let Some(top) = g.stack.pop() {
            let now = Instant::now();
            let s = &mut g.spans[top];
            if s.elapsed.is_none() {
                s.elapsed = Some(now.duration_since(s.started));
            }
            if top == id {
                break;
            }
        }
    }

    fn add(&self, name: &'static str, delta: u64) {
        let Ok(mut g) = self.inner.lock() else { return };
        let top = g.stack.last().copied().unwrap_or(0);
        let slot = &mut g.spans[top];
        match slot.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = v.saturating_add(delta),
            None => slot.counters.push((name, delta)),
        }
    }

    fn gauge(&self, name: &'static str, value: f64) {
        let Ok(mut g) = self.inner.lock() else { return };
        let top = g.stack.last().copied().unwrap_or(0);
        let slot = &mut g.spans[top];
        match slot.gauges.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value,
            None => slot.gauges.push((name, value)),
        }
    }

    fn label(&self, name: &'static str, value: &str) {
        let Ok(mut g) = self.inner.lock() else { return };
        let top = g.stack.last().copied().unwrap_or(0);
        let slot = &mut g.spans[top];
        match slot.labels.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value.to_string(),
            None => slot.labels.push((name, value.to_string())),
        }
    }

    fn graft(&self, subtrees: Vec<SpanNode>) {
        let Ok(mut g) = self.inner.lock() else { return };
        let top = g.stack.last().copied().unwrap_or(0);
        g.spans[top].grafted.extend(subtrees);
    }

    fn snapshot(&self) -> Option<Report> {
        let g = self.inner.lock().ok()?;
        let now = Instant::now();
        fn build(g: &Inner, id: usize, now: Instant) -> SpanNode {
            let s = &g.spans[id];
            let elapsed = s
                .elapsed
                .unwrap_or_else(|| now.duration_since(s.started));
            let mut children: Vec<SpanNode> =
                s.children.iter().map(|&c| build(g, c, now)).collect();
            children.extend(s.grafted.iter().cloned());
            SpanNode {
                name: s.name.to_string(),
                index: s.index,
                trace_id: (s.trace_id != 0).then_some(s.trace_id),
                elapsed_s: elapsed.as_secs_f64(),
                counters: s.counters.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
                gauges: s.gauges.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
                labels: s
                    .labels
                    .iter()
                    .map(|(n, v)| (n.to_string(), v.clone()))
                    .collect(),
                children,
            }
        }
        Some(Report {
            root: build(&g, 0, now),
        })
    }
}

/// Handle to a telemetry sink, threaded through solver and CEGIS configs.
///
/// `Telemetry::default()` (equivalently [`Telemetry::off`]) is the no-op
/// sink: it holds no recorder, so every method is an inlineable null check —
/// no allocation, no mutex, no clock read on solver hot paths. Clones of a
/// [`Telemetry::recording`] handle share one recorder, so a single handle can
/// be fanned out across the learner, verifier, and solver configs and all
/// events land in one tree.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    rec: Option<Arc<Recorder>>,
    trace: Trace,
}

impl Telemetry {
    /// The no-op sink (same as `Telemetry::default()`).
    #[inline]
    pub fn off() -> Self {
        Telemetry {
            rec: None,
            trace: Trace::off(),
        }
    }

    /// A fresh recording sink with an implicit open root span `"run"`.
    pub fn recording() -> Self {
        Telemetry {
            rec: Some(Arc::new(Recorder::new())),
            trace: Trace::off(),
        }
    }

    /// Attaches an `snbc-trace` event sink: every span opened through this
    /// handle (and its [`Telemetry::fork`]s) additionally emits a trace
    /// span-begin/end pair, and the span's trace id is stored in the run
    /// report (`trace_id`), so the report tree and the trace timeline
    /// cross-reference each other.
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// The attached trace handle (the disabled sink when none was attached).
    /// Hot loops use this for iteration-level events the span tree
    /// deliberately aggregates away (IPM iterations, learner epochs,
    /// ascent restarts).
    #[inline]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }

    /// Opens a timed span; it closes when the returned guard drops.
    #[inline]
    #[must_use = "the span closes when the returned guard is dropped"]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_inner(name, None)
    }

    /// Opens a timed span carrying an index (e.g. the CEGIS round number).
    #[inline]
    #[must_use = "the span closes when the returned guard is dropped"]
    pub fn span_indexed(&self, name: &'static str, index: u64) -> SpanGuard {
        self.span_inner(name, Some(index))
    }

    fn span_inner(&self, name: &'static str, index: Option<u64>) -> SpanGuard {
        match &self.rec {
            None => SpanGuard {
                rec: None,
                id: 0,
                trace: Trace::off(),
                name,
                trace_id: 0,
            },
            Some(r) => {
                let trace_id = self.trace.begin_span(name, index);
                SpanGuard {
                    id: r.open(name, index, trace_id),
                    rec: Some(Arc::clone(r)),
                    trace: self.trace.clone(),
                    name,
                    trace_id,
                }
            }
        }
    }

    /// Adds `delta` to counter `name` on the innermost open span.
    #[inline]
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(r) = &self.rec {
            r.add(name, delta);
        }
    }

    /// Sets gauge `name` on the innermost open span (last write wins).
    #[inline]
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(r) = &self.rec {
            r.gauge(name, value);
        }
    }

    /// Sets a boolean gauge (recorded as 1.0 / 0.0).
    #[inline]
    pub fn flag(&self, name: &'static str, value: bool) {
        if let Some(r) = &self.rec {
            r.gauge(name, if value { 1.0 } else { 0.0 });
        }
    }

    /// Attaches a string label (e.g. benchmark name) to the innermost span.
    #[inline]
    pub fn label(&self, name: &'static str, value: &str) {
        if let Some(r) = &self.rec {
            r.label(name, value);
        }
    }

    /// A branch sink for structured parallelism: recording handles fork a
    /// **fresh, independent** recorder (off handles fork off).
    ///
    /// The recorder behind a handle keeps a single innermost-open-span
    /// stack, so concurrent `span()` calls from several threads would
    /// interleave into a nonsense tree. Parallel regions instead give each
    /// branch its own fork, record into it, and [`Telemetry::adopt`] the
    /// forks back **in a fixed order** once the branches have joined — the
    /// resulting tree is then identical at any thread count. Fork/adopt is
    /// used even on the serial path so one- and many-threaded runs produce
    /// byte-identical reports.
    pub fn fork(&self) -> Telemetry {
        if self.rec.is_some() {
            // The trace sink is shared, not forked: it is per-thread-laned
            // and therefore safe (and meaningful) to write from any branch.
            Telemetry::recording().with_trace(self.trace.clone())
        } else {
            Telemetry::off()
        }
    }

    /// Adopts a fork's finished spans as children of the innermost open
    /// span. Metrics recorded on the fork's root (outside any span) are
    /// dropped; branches should open a span first.
    pub fn adopt(&self, fork: &Telemetry) {
        if let (Some(r), Some(rep)) = (self.rec.as_ref(), fork.report()) {
            r.graft(rep.root.children);
        }
    }

    /// Snapshots the recorded tree. `None` for the no-op sink.
    ///
    /// Spans still open at snapshot time (including the root) report their
    /// elapsed time so far; the recorder keeps running, so later snapshots
    /// are supersets with larger timings.
    pub fn report(&self) -> Option<Report> {
        self.rec.as_ref().and_then(|r| r.snapshot())
    }
}

/// RAII guard returned by [`Telemetry::span`]; closes the span on drop,
/// emitting the matching trace span-end event when a trace is attached.
#[derive(Debug)]
pub struct SpanGuard {
    rec: Option<Arc<Recorder>>,
    id: usize,
    trace: Trace,
    name: &'static str,
    trace_id: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(r) = &self.rec {
            r.close(self.id);
        }
        if self.trace_id != 0 {
            self.trace.end_span(self.name, self.trace_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_does_nothing() {
        let t = Telemetry::off();
        assert!(!t.is_recording());
        let _s = t.span("learn");
        t.add("epochs", 5);
        t.gauge("loss", 1.0);
        t.flag("ok", true);
        t.label("bench", "C3");
        assert!(t.report().is_none());
    }

    #[test]
    fn spans_nest_into_a_tree() {
        let t = Telemetry::recording();
        {
            let _round = t.span_indexed("round", 0);
            {
                let _learn = t.span("learn");
                t.add("epochs", 100);
                t.add("epochs", 20);
                t.gauge("final_loss", 0.25);
            }
            {
                let _verify = t.span("verify");
                t.flag("certified", false);
            }
        }
        {
            let _round = t.span_indexed("round", 1);
        }
        let rep = t.report().unwrap();
        assert_eq!(rep.root.name, "run");
        assert_eq!(rep.root.children.len(), 2);
        let r0 = &rep.root.children[0];
        assert_eq!((r0.name.as_str(), r0.index), ("round", Some(0)));
        assert_eq!(r0.children[0].counter("epochs"), Some(120));
        assert_eq!(r0.children[0].gauge("final_loss"), Some(0.25));
        assert_eq!(r0.children[1].gauge("certified"), Some(0.0));
        assert_eq!(rep.root.children[1].index, Some(1));
    }

    #[test]
    fn timers_are_monotone_and_nested() {
        let t = Telemetry::recording();
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("inner");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        let rep = t.report().unwrap();
        let outer = rep.root.child("outer").unwrap();
        let inner = outer.child("inner").unwrap();
        assert!(inner.elapsed_s >= 0.004, "inner = {}", inner.elapsed_s);
        assert!(
            outer.elapsed_s >= inner.elapsed_s,
            "outer {} < inner {}",
            outer.elapsed_s,
            inner.elapsed_s
        );
        // The root is still open: successive snapshots never run backwards.
        let again = t.report().unwrap();
        assert!(again.root.elapsed_s >= rep.root.elapsed_s);
        // Closed spans are frozen.
        let outer2 = again.root.child("outer").unwrap();
        assert!((outer2.elapsed_s - outer.elapsed_s).abs() < 1e-12);
    }

    #[test]
    fn early_return_closes_abandoned_children() {
        let t = Telemetry::recording();
        let outer = t.span("outer");
        let _inner = t.span("inner"); // deliberately leaked past `outer`
        drop(outer);
        // `inner`'s guard is still alive, but the span was force-closed when
        // its parent closed; metrics now land on the root.
        t.add("stray", 1);
        let rep = t.report().unwrap();
        assert_eq!(rep.root.counter("stray"), Some(1));
        let outer = rep.root.child("outer").unwrap();
        assert!(outer.child("inner").unwrap().elapsed_s <= outer.elapsed_s);
    }

    #[test]
    fn fork_adopt_grafts_finished_subtrees_in_adopt_order() {
        let t = Telemetry::recording();
        let verify = t.span("verify");
        let (fi, fu) = (t.fork(), t.fork());
        {
            let _s = fi.span("init");
            fi.gauge("margin", 0.5);
            let _sdp = fi.span("sdp");
            fi.add("iterations", 11);
        }
        {
            let _s = fu.span("unsafe");
            fu.gauge("margin", 0.25);
        }
        // Adopt in fixed order regardless of branch completion order.
        t.adopt(&fi);
        t.adopt(&fu);
        drop(verify);
        let rep = t.report().unwrap();
        let v = rep.root.child("verify").unwrap();
        assert_eq!(v.children.len(), 2);
        assert_eq!(v.children[0].name, "init");
        assert_eq!(v.children[1].name, "unsafe");
        assert_eq!(v.children[0].child("sdp").unwrap().counter("iterations"), Some(11));
        // Grafted trees survive the JSON round-trip like native spans.
        let json = rep.to_json_string();
        assert_eq!(Report::parse(&json).unwrap(), rep);
        // Off sinks fork off sinks; adopt is a no-op everywhere.
        let off = Telemetry::off();
        assert!(!off.fork().is_recording());
        off.adopt(&t);
    }

    #[test]
    fn attached_trace_mirrors_spans_with_shared_ids() {
        let trace = Trace::recording();
        let t = Telemetry::recording().with_trace(trace.clone());
        {
            let _round = t.span_indexed("round", 2);
            let _learn = t.span("learn");
        }
        let rep = t.report().unwrap();
        let round = rep.root.child("round").unwrap();
        let learn = round.child("learn").unwrap();
        let (rid, lid) = (round.trace_id.unwrap(), learn.trace_id.unwrap());
        assert_ne!(rid, lid);
        // The run report serializes the shared ids.
        let json = rep.to_json_string();
        assert!(json.contains(&format!("\"trace_id\": {rid}")), "{json}");
        assert_eq!(Report::parse(&json).unwrap(), rep);
        // The trace holds the matching begin/end pairs on one track.
        let dump = trace.dump().unwrap();
        assert_eq!(dump.event_count(), 4);
        let keys = dump.ordering_keys();
        assert!(keys.contains(&"B:round:Some(2)".to_string()), "{keys:?}");
        assert!(keys.contains(&"E:learn".to_string()), "{keys:?}");
        // Forks share the same trace sink; adopted spans keep their ids.
        let f = t.fork();
        assert!(f.trace().is_enabled());
        {
            let _s = f.span("init");
        }
        t.adopt(&f);
        let rep2 = t.report().unwrap();
        assert!(rep2.root.child("init").unwrap().trace_id.is_some());
        assert_eq!(trace.dump().unwrap().event_count(), 6);
        // Without a trace attached, reports carry no trace ids.
        let plain = Telemetry::recording();
        {
            let _s = plain.span("learn");
        }
        let prep = plain.report().unwrap();
        assert_eq!(prep.root.child("learn").unwrap().trace_id, None);
        assert!(!prep.to_json_string().contains("trace_id"));
    }

    #[test]
    fn clones_share_one_recorder() {
        let t = Telemetry::recording();
        let u = t.clone();
        let _s = t.span("learn");
        u.add("epochs", 7);
        let rep = t.report().unwrap();
        assert_eq!(rep.root.child("learn").unwrap().counter("epochs"), Some(7));
    }
}
