//! Simulation-based falsification: a cheap pre-check that runs *before* any
//! synthesis effort.
//!
//! If some trajectory from `Θ` reaches `Ξ`, no barrier certificate exists and
//! the CEGIS loop would burn its entire budget discovering that the hard way.
//! This module samples initial states, integrates the closed loop, and
//! reports a concrete unsafe trajectory when it finds one — standard practice
//! in safety tooling and the natural complement to certificate synthesis.

use rand::SeedableRng;
use snbc_dynamics::{simulate, Ccds, Trajectory};

/// Options of the falsifier.
#[derive(Debug, Clone)]
pub struct FalsifyConfig {
    /// Initial states sampled from `Θ`.
    pub samples: usize,
    /// Integration step.
    pub dt: f64,
    /// Steps per trajectory (horizon = `dt · steps`).
    pub steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FalsifyConfig {
    fn default() -> Self {
        FalsifyConfig {
            samples: 64,
            dt: 0.01,
            steps: 2000,
            seed: 29,
        }
    }
}

/// A concrete safety violation found by simulation.
#[derive(Debug, Clone)]
pub struct CounterexampleTrajectory {
    /// The initial state in `Θ`.
    pub initial: Vec<f64>,
    /// The simulated trajectory (enters `Ξ`).
    pub trajectory: Trajectory,
    /// Index of the first sampled state inside `Ξ`.
    pub entry_step: usize,
}

/// Searches for a trajectory from `Θ` into `Ξ` under the given controller.
///
/// Returns `None` when no sampled trajectory is unsafe (which is *evidence*,
/// not proof, of safety — the certificate provides the proof). Trajectories
/// are only followed while they remain in the domain `Ψ`; the barrier
/// conditions say nothing about states outside it.
///
/// # Example
///
/// ```
/// use snbc::falsify::{falsify, FalsifyConfig};
/// use snbc_dynamics::benchmarks;
///
/// let bench = benchmarks::benchmark(3);
/// // The stabilizing target law is safe: no counterexample trajectory.
/// let cex = falsify(&bench.system, bench.target_law, &FalsifyConfig::default());
/// assert!(cex.is_none());
/// ```
pub fn falsify(
    system: &Ccds,
    controller: impl Fn(&[f64]) -> f64,
    cfg: &FalsifyConfig,
) -> Option<CounterexampleTrajectory> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    for initial in system.init().sample(cfg.samples, &mut rng) {
        let trajectory = simulate(system, &controller, &initial, cfg.dt, cfg.steps);
        let mut inside = true;
        for (step, x) in trajectory.states.iter().enumerate() {
            if !system.domain().contains(x) {
                inside = false;
            }
            if inside && system.unsafe_set().contains(x) {
                return Some(CounterexampleTrajectory {
                    initial,
                    trajectory,
                    entry_step: step,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use snbc_dynamics::SemiAlgebraicSet;

    /// A rigged system that drifts straight into the unsafe set.
    fn unsafe_system() -> Ccds {
        Ccds::new(
            "drift",
            vec!["1 + 0*x1".parse().unwrap()], // ẋ = 1 regardless of u
            SemiAlgebraicSet::box_set(&[(-0.1, 0.1)]),
            SemiAlgebraicSet::box_set(&[(-2.0, 2.0)]),
            SemiAlgebraicSet::box_set(&[(1.0, 1.5)]),
        )
    }

    #[test]
    fn detects_unsafe_drift() {
        let sys = unsafe_system();
        let cex = falsify(&sys, |_| 0.0, &FalsifyConfig::default()).expect("drift is unsafe");
        assert!(sys.unsafe_set().contains(&cex.trajectory.states[cex.entry_step]));
        assert!(sys.init().contains(&cex.initial));
        assert!(cex.entry_step > 0);
    }

    #[test]
    fn stable_benchmark_has_no_counterexample() {
        let bench = snbc_dynamics::benchmarks::benchmark(1);
        let cex = falsify(&bench.system, bench.target_law, &FalsifyConfig::default());
        assert!(cex.is_none());
    }

    #[test]
    fn excursions_outside_domain_do_not_count() {
        // System flies out of Ψ before the unsafe set's x-range: barrier
        // semantics only constrain behaviour inside Ψ.
        let sys = Ccds::new(
            "escape",
            vec!["10 + 0*x1".parse().unwrap()],
            SemiAlgebraicSet::box_set(&[(-0.1, 0.1)]),
            SemiAlgebraicSet::box_set(&[(-0.5, 0.5)]),
            SemiAlgebraicSet::box_set(&[(1.0, 1.5)]),
        );
        let cex = falsify(&sys, |_| 0.0, &FalsifyConfig::default());
        assert!(cex.is_none(), "exit through the domain boundary is not a violation");
    }
}
