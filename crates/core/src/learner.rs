//! The Learner of §4.1: joint training of the quadratic network `B(x)` and
//! the multiplier network `λ(x)` with the LeakyReLU surrogate of loss (10).

use rand::SeedableRng;
use snbc_autodiff::Tape;
use snbc_dynamics::Ccds;
use snbc_nn::{Adam, MultiplierNet, QuadraticNet};
use snbc_poly::Polynomial;

/// The three sample sets `S_I`, `S_U`, `S_D` (from `Θ`, `Ξ`, `Ψ`), grown by
/// counterexample feedback.
#[derive(Debug, Clone, Default)]
pub struct TrainingSets {
    /// Samples from the initial set `Θ`.
    pub init: Vec<Vec<f64>>,
    /// Samples from the unsafe region `Ξ`.
    pub unsafe_: Vec<Vec<f64>>,
    /// Samples from the domain `Ψ`.
    pub domain: Vec<Vec<f64>>,
}

impl TrainingSets {
    /// Draws `batch` fresh samples from each of the system's three sets (the
    /// paper starts with equally sized sets, `|S_I| = |S_U| = |S_D|`).
    pub fn sample(system: &Ccds, batch: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        TrainingSets {
            init: system.init().sample(batch, &mut rng),
            unsafe_: system.unsafe_set().sample(batch, &mut rng),
            domain: system.domain().sample(batch, &mut rng),
        }
    }

    /// Total number of stored samples.
    pub fn len(&self) -> usize {
        self.init.len() + self.unsafe_.len() + self.domain.len()
    }

    /// `true` when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which sample set a chunk job draws from (scales index into the
/// `(η₁, η₂, η₃)` weights by this discriminant).
#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Domain,
    Init,
    Unsafe,
}

/// Deterministic index-ordered reduction of one epoch's per-job
/// `(loss_sum, hinge_sum, gradient)` results into the per-kind loss sums,
/// the hinge mass, and the reused gradient buffer `g` (zeroed here, not
/// reallocated — this runs every epoch). Job order is fixed by the chunk
/// grid, so the fold never depends on the thread count.
// audit:hot
fn reduce_epoch(
    jobs: &[(Kind, usize, usize)],
    results: &[(f64, f64, Vec<f64>)],
    scales: [f64; 3],
    kind_sums: &mut [f64; 3],
    g: &mut [f64],
) -> f64 {
    let mut hinge = 0.0f64;
    *kind_sums = [0.0; 3];
    g.fill(0.0);
    for (ji, (loss_sum, hinge_sum, grad)) in results.iter().enumerate() {
        let (kind, _, _) = jobs[ji];
        kind_sums[kind as usize] += loss_sum; // audit:allow(unordered-reduce) — serial index-ascending fold
        hinge += hinge_sum; // audit:allow(unordered-reduce) — same fold, fixed order
        let scale = scales[kind as usize];
        for (acc, gv) in g.iter_mut().zip(grad) {
            *acc += scale * gv; // audit:allow(unordered-reduce) — same fold, fixed order
        }
    }
    hinge
}

/// Hyper-parameters of the Learner (loss (10)).
#[derive(Debug, Clone)]
pub struct LearnerConfig {
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Epochs per CEGIS round.
    pub epochs: usize,
    /// Strictness offset `ε` in the loss.
    pub epsilon: f64,
    /// LeakyReLU negative-side slope for the `max{ε, ·}` surrogate.
    pub leaky_slope: f64,
    /// Loss weights `(η₁, η₂, η₃)` for the domain/init/unsafe terms.
    pub weights: (f64, f64, f64),
    /// Early-stop when the loss falls below this value.
    pub loss_target: f64,
    /// L2 regularization on the network parameters. Necessary because the
    /// LeakyReLU surrogate of `max{ε, ·}` is unbounded below: without decay
    /// the optimizer can "improve" the loss forever by inflating the scale
    /// of `B` instead of fixing violations.
    pub weight_decay: f64,
    /// Telemetry sink. When recording, [`Learner::train`] emits a `"learn"`
    /// span with epoch/Adam-step counters and the final loss (10).
    pub telemetry: snbc_telemetry::Telemetry,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        LearnerConfig {
            learning_rate: 0.02,
            epochs: 300,
            epsilon: 0.05,
            leaky_slope: 0.01,
            weights: (1.0, 1.0, 1.0),
            loss_target: 1e-4,
            weight_decay: 1e-3,
            telemetry: snbc_telemetry::Telemetry::off(),
        }
    }
}

/// Joint trainer for the neural barrier candidate and multiplier (§4.1).
///
/// # Example
///
/// ```no_run
/// use snbc::{Learner, LearnerConfig, TrainingSets};
/// use snbc_dynamics::benchmarks;
/// use snbc_nn::{MultiplierNet, QuadraticNet};
///
/// let bench = benchmarks::benchmark(3);
/// let closed = bench.system.close_loop(&"-0.5*x0".parse().unwrap());
/// let mut learner = Learner::new(
///     QuadraticNet::new(2, &[5], 1),
///     MultiplierNet::linear(2, &[5], 2),
///     LearnerConfig::default(),
/// );
/// let mut sets = TrainingSets::sample(&bench.system, 200, 3);
/// let loss = learner.train(&closed, 0.0, &sets);
/// assert!(loss.is_finite());
/// # let _ = &mut sets;
/// ```
#[derive(Debug)]
pub struct Learner {
    b_net: QuadraticNet,
    lambda_net: MultiplierNet,
    cfg: LearnerConfig,
    optimizer: Adam,
}

impl Learner {
    /// Creates a learner over the given networks.
    pub fn new(b_net: QuadraticNet, lambda_net: MultiplierNet, cfg: LearnerConfig) -> Self {
        let dim = b_net.num_params() + lambda_net.num_params();
        let optimizer = Adam::new(dim, cfg.learning_rate);
        Learner {
            b_net,
            lambda_net,
            cfg,
            optimizer,
        }
    }

    /// The barrier candidate network.
    pub fn b_net(&self) -> &QuadraticNet {
        &self.b_net
    }

    /// The multiplier network.
    pub fn lambda_net(&self) -> &MultiplierNet {
        &self.lambda_net
    }

    /// Extracts the current candidate `B̃(x)` as a polynomial.
    pub fn barrier_polynomial(&self) -> Polynomial {
        self.b_net.to_polynomial()
    }

    /// Extracts the current multiplier `λ̃(x)` as a polynomial.
    pub fn lambda_polynomial(&self) -> Polynomial {
        self.lambda_net.to_polynomial()
    }

    /// Pre-trains the barrier network toward a target polynomial by plain
    /// MSE regression (Adam, fresh optimizer state afterwards). Used by the
    /// CEGIS driver to seed high-dimensional runs with a Lyapunov-shaped
    /// candidate `1 − ‖x − c_Θ‖²/ρ²`, which lies in the certifiable basin of
    /// the S-procedure verifier; the barrier loss then fine-tunes margins.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn warm_start(&mut self, target: &Polynomial, samples: &[Vec<f64>], epochs: usize) {
        assert!(!samples.is_empty(), "cannot warm-start without samples");
        let nb = self.b_net.num_params();
        let mut params: Vec<f64> = self.b_net.params().to_vec();
        let mut opt = Adam::new(nb, 0.05);
        let ys: Vec<f64> = samples.iter().map(|x| target.eval(x)).collect();
        for _ in 0..epochs {
            let mut tape = Tape::with_capacity(1 << 14);
            let pv: Vec<_> = params.iter().map(|&p| tape.input(p)).collect();
            let mut loss = tape.constant(0.0);
            for (x, &y) in samples.iter().zip(&ys) {
                let xv: Vec<_> = x.iter().map(|&v| tape.constant(v)).collect();
                let out = self.b_net.forward_tape(&mut tape, &pv, &xv);
                let e = tape.add_const(out, -y);
                let sq = tape.mul(e, e);
                loss = tape.add(loss, sq);
            }
            let g = tape.grad(loss, &pv);
            let gv: Vec<f64> = g.iter().map(|&v| tape.value(v)).collect();
            opt.step(&mut params, &gv);
        }
        self.b_net.set_params(&params);
        self.optimizer.reset();
    }

    /// Runs up to `cfg.epochs` Adam steps of loss (10) on the given closed
    /// loop field. `closed_field` may reference the controller-error variable
    /// `w` in slot `n` (from [`snbc_dynamics::Ccds::close_loop_with_error`]);
    /// the Lie-derivative penalty is then taken against the *worst* of
    /// `w = ±σ*`, so the learner optimizes the robust condition the verifier
    /// will check. Returns the final loss.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is empty or sample dimensions mismatch the field.
    pub fn train(&mut self, closed_field: &[Polynomial], sigma_star: f64, sets: &TrainingSets) -> f64 {
        assert!(!sets.is_empty(), "cannot train on empty sample sets");
        let _span = self.cfg.telemetry.span("learn");
        if self.cfg.telemetry.is_recording() {
            self.cfg
                .telemetry
                .label("workers", &snbc_par::threads().to_string());
        }
        let mut epochs_run: u64 = 0;
        let mut adam_steps: u64 = 0;
        let n = closed_field.len();
        let nb = self.b_net.num_params();
        let nl = self.lambda_net.num_params();
        let np = nb + nl;
        let mut params: Vec<f64> = self
            .b_net
            .params()
            .iter()
            .chain(self.lambda_net.params())
            .copied()
            .collect();

        // Precompute field values at the domain samples for the two extreme
        // controller errors w = ±σ* (the field is affine in w, so these
        // bracket the Lie derivative; with σ* = 0 both coincide). The field
        // itself is fixed during training; only B and λ are differentiated.
        let eval_at = |x: &[f64], w: f64| -> Vec<f64> {
            let mut xw = x[..n].to_vec();
            xw.push(w);
            closed_field.iter().map(|f| f.eval(&xw)).collect()
        };
        let field_lo: Vec<Vec<f64>> =
            snbc_par::par_map_collect(sets.domain.len(), |i| eval_at(&sets.domain[i], -sigma_star));
        let field_hi: Vec<Vec<f64>> =
            snbc_par::par_map_collect(sets.domain.len(), |i| eval_at(&sets.domain[i], sigma_star));

        // The epoch's batch is split into fixed-size chunk jobs — the grid
        // depends only on the sample counts, never on the worker count. Each
        // job builds its own small tape over its samples and returns the
        // unscaled penalty sum, the hinge mass, and the parameter gradient of
        // its partial loss; the per-kind sums and the gradient are then
        // reduced serially in job order, so every epoch is bitwise identical
        // at any thread count.
        const CHUNK: usize = 32;
        let mut jobs: Vec<(Kind, usize, usize)> = Vec::new();
        for (kind, len) in [
            (Kind::Domain, sets.domain.len()),
            (Kind::Init, sets.init.len()),
            (Kind::Unsafe, sets.unsafe_.len()),
        ] {
            let mut lo = 0;
            while lo < len {
                let hi = (lo + CHUNK).min(len);
                jobs.push((kind, lo, hi));
                lo = hi;
            }
        }

        let b_net = &self.b_net;
        let lambda_net = &self.lambda_net;
        let epsilon = self.cfg.epsilon;
        let leaky_slope = self.cfg.leaky_slope;
        let (eta1, eta2, eta3) = self.cfg.weights;
        let scale_of = |kind: Kind| match kind {
            Kind::Domain => eta1 / sets.domain.len().max(1) as f64,
            Kind::Init => eta2 / sets.init.len().max(1) as f64,
            Kind::Unsafe => eta3 / sets.unsafe_.len().max(1) as f64,
        };

        let mut last_loss = f64::INFINITY;
        let mut last_grad_norm = f64::NAN;
        let trace = self.cfg.telemetry.trace().clone();
        // Epoch-loop buffers, allocated once: `reduce_epoch` is `audit:hot`
        // and must stay allocation-free per epoch.
        let scales = [
            scale_of(Kind::Domain),
            scale_of(Kind::Init),
            scale_of(Kind::Unsafe),
        ];
        let mut kind_sums = [0.0f64; 3];
        let mut g = vec![0.0f64; np];
        for epoch in 0..self.cfg.epochs {
            let params_ref = &params;
            let run_job = |ji: usize| -> (f64, f64, Vec<f64>) {
                let (kind, lo, hi) = jobs[ji];
                let mut tape = Tape::with_capacity(1 << 13);
                let pvars: Vec<_> = params_ref.iter().map(|&p| tape.input(p)).collect();
                let (bp, lp) = pvars.split_at(nb);
                let mut hinge = 0.0f64;
                let mut loss = tape.constant(0.0);
                for s in lo..hi {
                    let arg = match kind {
                        Kind::Domain => {
                            let (x, flo, fhi) = (&sets.domain[s], &field_lo[s], &field_hi[s]);
                            // L_f B = Σ ∂B/∂xᵢ · fᵢ(x, w) at both error
                            // extremes; the robust condition uses the worse
                            // one. Single-hidden-layer networks take the
                            // analytic formula-(9) fast path (no per-sample
                            // backward pass on the tape).
                            let (b, lie) = match b_net
                                .forward_and_lie2_tape(&mut tape, bp, &x[..n], flo, fhi)
                            {
                                Some((b, lie_lo, lie_hi)) => (b, tape.min(lie_lo, lie_hi)),
                                None => {
                                    let xv: Vec<_> =
                                        x[..n].iter().map(|&v| tape.input(v)).collect();
                                    let b = b_net.forward_tape(&mut tape, bp, &xv);
                                    let grad_b = tape.grad(b, &xv);
                                    let mut lie_lo = tape.constant(0.0);
                                    let mut lie_hi = tape.constant(0.0);
                                    for ((g, &fl), &fh) in grad_b.iter().zip(flo).zip(fhi) {
                                        let tl = tape.scale(*g, fl);
                                        lie_lo = tape.add(lie_lo, tl);
                                        let th = tape.scale(*g, fh);
                                        lie_hi = tape.add(lie_hi, th);
                                    }
                                    (b, tape.min(lie_lo, lie_hi))
                                }
                            };
                            let xv_const: Vec<_> =
                                x[..n].iter().map(|&v| tape.constant(v)).collect();
                            let lam = lambda_net.forward_tape(&mut tape, lp, &xv_const);
                            let lam_b = tape.mul(lam, b);
                            // Condition (iii): L_f B − λB > 0; penalize
                            // ε − (L_f B − λB).
                            let margin = tape.sub(lie, lam_b);
                            let neg = tape.neg(margin);
                            tape.add_const(neg, epsilon)
                        }
                        Kind::Init => {
                            let x = &sets.init[s];
                            let xv: Vec<_> = x[..n].iter().map(|&v| tape.constant(v)).collect();
                            let b = b_net.forward_tape(&mut tape, bp, &xv);
                            // Condition (i): B ≥ 0 on Θ; penalize ε − B.
                            let neg = tape.neg(b);
                            tape.add_const(neg, epsilon)
                        }
                        Kind::Unsafe => {
                            let x = &sets.unsafe_[s];
                            let xv: Vec<_> = x[..n].iter().map(|&v| tape.constant(v)).collect();
                            let b = b_net.forward_tape(&mut tape, bp, &xv);
                            // Condition (ii): B < 0 on Ξ; penalize ε + B.
                            tape.add_const(b, epsilon)
                        }
                    };
                    hinge += tape.value(arg).max(0.0);
                    let pen = {
                        // max{ε, ·} saturates once the condition holds with
                        // margin; clamp the LeakyReLU reward accordingly so
                        // the optimizer cannot "win" by inflating the scale
                        // of B.
                        let leaky = tape.leaky_relu(arg, leaky_slope);
                        let floor = tape.constant(-epsilon);
                        tape.max(leaky, floor)
                    };
                    loss = tape.add(loss, pen);
                }
                let grads = tape.grad(loss, &pvars);
                let g: Vec<f64> = grads.iter().map(|&v| tape.value(v)).collect();
                (tape.value(loss), hinge, g)
            };
            let results = snbc_par::par_map_collect(jobs.len(), run_job);
            let hinge = reduce_epoch(&jobs, &results, scales, &mut kind_sums, &mut g);
            let mut loss = kind_sums[Kind::Domain as usize] * scales[Kind::Domain as usize]
                + kind_sums[Kind::Init as usize] * scales[Kind::Init as usize]
                + kind_sums[Kind::Unsafe as usize] * scales[Kind::Unsafe as usize];
            if self.cfg.weight_decay > 0.0 {
                let mut reg = 0.0f64;
                for (gi, &p) in g.iter_mut().zip(params.iter()) {
                    reg += p * p;
                    // d/dp of wd·Σp² — folded analytically into the reduced
                    // gradient.
                    *gi += self.cfg.weight_decay * (p + p);
                }
                loss += self.cfg.weight_decay * reg;
            }
            #[cfg(feature = "sanitize")]
            snbc_linalg::sanitize::check_finite("learner reduced gradient", &g);
            last_loss = loss;
            last_grad_norm = g.iter().map(|v| v * v).sum::<f64>().sqrt();
            trace.epoch(epoch as u64, loss, last_grad_norm);
            epochs_run += 1;
            // Early stop on the *per-sample* hinge mass (the LeakyReLU
            // surrogate can go negative once all conditions hold with margin,
            // which says nothing about remaining violations).
            if hinge / (sets.len().max(1) as f64) < self.cfg.loss_target {
                break;
            }
            self.optimizer.step(&mut params, &g);
            adam_steps += 1;
        }
        self.b_net.set_params(&params[..nb]);
        self.lambda_net.set_params(&params[nb..nb + nl]);
        if self.cfg.telemetry.is_recording() {
            self.cfg.telemetry.add("epochs", epochs_run);
            self.cfg.telemetry.add("adam_steps", adam_steps);
            self.cfg.telemetry.gauge("final_loss", last_loss);
            self.cfg.telemetry.gauge("grad_norm", last_grad_norm);
        }
        last_loss
    }

    /// Empirical violation counts of the three barrier conditions on the
    /// sample sets (robust Lie condition at `w = ±σ*`) — a cheap health check
    /// before invoking the verifier.
    pub fn violations(
        &self,
        closed_field: &[Polynomial],
        sigma_star: f64,
        sets: &TrainingSets,
    ) -> (usize, usize, usize) {
        let n = closed_field.len();
        let b = self.barrier_polynomial();
        let lam = self.lambda_polynomial();
        let lie = snbc_poly::lie_derivative(&b, closed_field);
        let vi = sets.init.iter().filter(|x| b.eval(x) < 0.0).count();
        let vu = sets.unsafe_.iter().filter(|x| b.eval(x) >= 0.0).count();
        let lie_at = |x: &[f64], w: f64| {
            let mut xw = x[..n].to_vec();
            xw.push(w);
            lie.eval(&xw)
        };
        let vd = sets
            .domain
            .iter()
            .filter(|x| {
                let worst = lie_at(x, -sigma_star).min(lie_at(x, sigma_star));
                worst - lam.eval(x) * b.eval(x) <= 0.0
            })
            .count();
        (vi, vu, vd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snbc_dynamics::benchmarks;

    #[test]
    fn training_reduces_loss_on_simple_system() {
        let bench = benchmarks::benchmark(3);
        let closed = bench.system.close_loop(&"-0.5*x0".parse().unwrap());
        let mut learner = Learner::new(
            QuadraticNet::new(2, &[5], 1),
            MultiplierNet::linear(2, &[5], 2),
            LearnerConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        let sets = TrainingSets::sample(&bench.system, 100, 3);
        let first = learner.train(&closed, 0.0, &sets);
        let mut learner2 = Learner::new(
            QuadraticNet::new(2, &[5], 1),
            MultiplierNet::linear(2, &[5], 2),
            LearnerConfig {
                epochs: 200,
                ..Default::default()
            },
        );
        let second = learner2.train(&closed, 0.0, &sets);
        assert!(
            second < first || second < 1e-3,
            "200 epochs ({second}) should beat 5 epochs ({first})"
        );
    }

    #[test]
    fn trained_candidate_separates_sets_empirically() {
        let bench = benchmarks::benchmark(3);
        let closed = bench.system.close_loop(&"-0.5*x0".parse().unwrap());
        let mut learner = Learner::new(
            QuadraticNet::new(2, &[5], 1),
            MultiplierNet::linear(2, &[5], 2),
            LearnerConfig {
                epochs: 400,
                ..Default::default()
            },
        );
        let sets = TrainingSets::sample(&bench.system, 150, 5);
        learner.train(&closed, 0.0, &sets);
        let (vi, vu, _vd) = learner.violations(&closed, 0.0, &sets);
        assert!(
            vi + vu <= 15,
            "too many sign violations after training: init {vi}, unsafe {vu}"
        );
    }

    #[test]
    fn sample_sets_have_requested_sizes() {
        let bench = benchmarks::benchmark(1);
        let sets = TrainingSets::sample(&bench.system, 32, 1);
        assert_eq!(sets.init.len(), 32);
        assert_eq!(sets.unsafe_.len(), 32);
        assert_eq!(sets.domain.len(), 32);
        assert_eq!(sets.len(), 96);
    }

    #[test]
    #[should_panic(expected = "empty sample sets")]
    fn empty_sets_panic() {
        let bench = benchmarks::benchmark(1);
        let closed = bench.system.close_loop(&Polynomial::zero());
        let mut learner = Learner::new(
            QuadraticNet::new(2, &[5], 1),
            MultiplierNet::constant(0.0),
            LearnerConfig::default(),
        );
        learner.train(&closed, 0.0, &TrainingSets::default());
    }
}
