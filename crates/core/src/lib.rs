//! **SNBC** — counterexample-guided synthesis of neural barrier certificates
//! for NN-controlled continuous systems, with SOS/LMI verification.
//!
//! This crate is a from-scratch Rust reproduction of the DAC'24 paper
//! *"Neural Barrier Certificates Synthesis of NN-Controlled Continuous
//! Systems via Counterexample-Guided Learning"* (Zhao et al.). The pipeline
//! (Fig. 1 of the paper, Algorithm 1):
//!
//! 1. **Polynomial inclusion of the controller** ([`approx`], §3): the NN
//!    controller `k(x)` is abstracted as `h(x) + w`, `w ∈ [−σ*, σ*]`, where
//!    `h` solves a Chebyshev-approximation LP over a mesh and
//!    `σ* = σ̃ + ½·s·L` is sound by the Lipschitz argument of Theorem 2.
//! 2. **Learner** ([`learner`], §4.1): a quadratic (cross-product) network
//!    `B(x)` and a multiplier network `λ(x)` are trained jointly on samples
//!    from `Θ`, `Ξ`, `Ψ` with the LeakyReLU loss (10), using double
//!    backprop for the Lie-derivative term.
//! 3. **Verifier** ([`verifier`], §4.2): because `B` is known after
//!    learning, the barrier conditions become the **three convex LMI
//!    feasibility problems** (13)–(15), solved independently by the SOS
//!    layer — no SMT solver and no bilinear matrix inequality.
//! 4. **Counterexamples** ([`cex`], §4.3): on verification failure, the
//!    worst violating point `x*` is found by multi-start projected gradient
//!    ascent (the Lagrangian treatment of (16)), a violation ball of radius
//!    `γ` is grown around it (17), and its samples are fed back to the
//!    Learner.
//!
//! The [`Snbc`] driver ties these into the CEGIS loop and records the same
//! per-phase timings Table 1 reports (`T_l`, `T_c`, `T_v`, `T_e`).
//!
//! # Telemetry
//!
//! Every stage of the pipeline is instrumented with the zero-dependency
//! [`snbc_telemetry`] layer: attach a recording sink with
//! [`Snbc::with_telemetry`] and a run produces a span tree
//! (`cegis → approx / round → learn / verify / cex → lp / sdp / search-*`)
//! carrying learner epochs and final loss, interior-point iteration counts
//! and duality measures per LMI (13)–(15), Cholesky factorization counts,
//! counterexample counts and ball radii `γ`, and the inclusion error `σ*`.
//! The serialized `snbc-run-report/1` JSON schema is documented in
//! `docs/TELEMETRY.md`; with the default [`snbc_telemetry::Telemetry::off`]
//! sink every instrumentation point reduces to a null check.
//!
//! # Quickstart
//!
//! ```no_run
//! use snbc::{Snbc, SnbcConfig};
//! use snbc_dynamics::benchmarks;
//! use snbc_nn::{train_controller, ControllerTraining};
//! use snbc_telemetry::Telemetry;
//!
//! # fn main() -> Result<(), snbc::SnbcError> {
//! let bench = benchmarks::benchmark(3);
//! let controller = train_controller(
//!     bench.system.domain().bounding_box(),
//!     bench.target_law,
//!     &ControllerTraining::default(),
//! );
//! let telemetry = Telemetry::recording();
//! let result = Snbc::new(SnbcConfig::default())
//!     .with_telemetry(telemetry.clone())
//!     .synthesize(&bench, &controller)?;
//! println!("B(x) = {}", result.barrier);
//! let report = telemetry.report().expect("recording sink");
//! println!("{}", snbc_telemetry::render_round_table(&report));
//! # Ok(())
//! # }
//! ```

pub mod approx;
pub mod certificate;
pub mod cex;
pub mod falsify;
pub mod learner;
pub mod verifier;

mod cegis;
mod error;

pub use approx::{approximate_controller, approximate_mlp, ApproxOptions, PolynomialInclusion};
pub use cegis::{CegisEngine, CegisStatus, Snbc, SnbcConfig, SnbcResult};
pub use certificate::SafetyCertificate;
pub use falsify::{falsify, CounterexampleTrajectory, FalsifyConfig};
pub use cex::{CexConfig, Counterexample, ViolatedCondition};
pub use error::SnbcError;
pub use learner::{Learner, LearnerConfig, TrainingSets};
pub use verifier::{
    recheck_with_intervals, recheck_with_intervals_recorded, verify_multi, SubproblemResult,
    VerificationOutcome, Verifier,
    VerifierConfig,
};
