//! The CEGIS driver (Algorithm 1): Learner ⇄ Verifier with counterexample
//! feedback, plus the per-phase timing bookkeeping of Table 1.
//!
//! The loop is exposed at two granularities:
//!
//! * [`Snbc::synthesize`] — run Algorithm 1 to completion (the original
//!   one-shot API);
//! * [`CegisEngine`] — the same loop as a **resumable step-function**: each
//!   [`CegisEngine::step`] call executes exactly one CEGIS round (learn →
//!   verify → counterexamples) and reports a [`CegisStatus`]. This is the
//!   unit the `snbc-portfolio` racing driver interleaves: K candidate
//!   engines advance round-by-round in deterministic waves, and the first
//!   certifying candidate (lowest grid index on ties) wins. A paused engine
//!   holds no open resources beyond its telemetry span, so engines can be
//!   stepped from `snbc-par` workers (the engine is `Send`).

use std::time::Duration;

use snbc_trace::Stopwatch;

use snbc_dynamics::benchmarks::{Benchmark, LambdaSpec};
use snbc_nn::{Mlp, MultiplierNet, QuadraticNet};
use snbc_poly::{lie_derivative, Polynomial};

use crate::cex::{find_counterexample, CexConfig, ViolatedCondition};
use crate::{
    ApproxOptions, Learner, LearnerConfig, PolynomialInclusion,
    SnbcError, TrainingSets, VerificationOutcome, Verifier, VerifierConfig,
};

/// Configuration of the full SNBC pipeline.
#[derive(Debug, Clone)]
pub struct SnbcConfig {
    /// Controller-abstraction options (§3).
    pub approx: ApproxOptions,
    /// Learner options (§4.1).
    pub learner: LearnerConfig,
    /// Verifier options (§4.2).
    pub verifier: VerifierConfig,
    /// Counterexample options (§4.3).
    pub cex: CexConfig,
    /// Initial per-set sample count (`|S_I| = |S_U| = |S_D|`).
    pub batch: usize,
    /// Maximum CEGIS iterations (`Iter` in Algorithm 1).
    pub max_iterations: usize,
    /// Wall-clock budget; exceeded ⇒ [`SnbcError::Timeout`] (the paper's OT
    /// at 7200 s).
    pub time_limit: Duration,
    /// After this many consecutive rounds in which verification failed but no
    /// counterexample existed (an SOS relaxation gap rather than a real
    /// violation), the networks are re-initialized with a fresh seed: the
    /// sample-feasible region contains many candidates and re-seeding moves
    /// the learner to a different — often certifiable — basin.
    pub reseed_after_plateau: usize,
    /// RNG seed for sampling and network initialization.
    pub seed: u64,
}

impl Default for SnbcConfig {
    fn default() -> Self {
        SnbcConfig {
            approx: ApproxOptions::default(),
            learner: LearnerConfig::default(),
            verifier: VerifierConfig::default(),
            cex: CexConfig::default(),
            batch: 300,
            max_iterations: 30,
            time_limit: Duration::from_secs(7200),
            reseed_after_plateau: 2,
            seed: 1,
        }
    }
}

/// Outcome of a successful synthesis run, including the Table 1 timing
/// columns.
#[derive(Debug, Clone)]
pub struct SnbcResult {
    /// The verified barrier certificate `B(x)`.
    pub barrier: Polynomial,
    /// The multiplier `λ(x)` solved by the flow LMI (15).
    pub lambda: Polynomial,
    /// The controller abstraction used (§3).
    pub inclusion: PolynomialInclusion,
    /// Final (successful) verification outcome with margins.
    pub verification: VerificationOutcome,
    /// CEGIS iterations used (`I_s`).
    pub iterations: usize,
    /// Learning time (`T_l`).
    pub t_learn: Duration,
    /// Counterexample-generation time (`T_c`).
    pub t_cex: Duration,
    /// Verification time (`T_v`).
    pub t_verify: Duration,
    /// End-to-end time (`T_e`), including the controller abstraction.
    pub t_total: Duration,
}

/// Result of one [`CegisEngine::step`].
///
/// Terminal states ([`Certified`](CegisStatus::Certified),
/// [`Exhausted`](CegisStatus::Exhausted),
/// [`TimedOut`](CegisStatus::TimedOut)) are sticky: further `step` calls
/// return the same status again without doing any work, so a racing driver
/// may keep a finished engine in its wave without special-casing it.
#[derive(Debug, Clone)]
pub enum CegisStatus {
    /// The round finished without a certificate; call `step` again.
    InProgress,
    /// A verified certificate was found this round.
    Certified(Box<SnbcResult>),
    /// The iteration budget (`Iter` in Algorithm 1) ran out.
    Exhausted {
        /// Rounds executed (`= max_iterations`).
        iterations: usize,
        /// Best worst-case LMI margin seen over all failed rounds.
        best_margin: f64,
    },
    /// The wall-clock budget tripped (the paper's OT).
    ///
    /// This status is inherently machine- and load-dependent: whether an
    /// engine trips it near `time_limit` depends on how fast the host is.
    /// The portfolio racer therefore neutralizes `time_limit` and budgets
    /// candidates by round count alone, so race outcomes stay bitwise
    /// deterministic; `TimedOut` is a solo-run (one-shot `synthesize`)
    /// contract.
    TimedOut {
        /// Elapsed seconds at the trip point.
        elapsed: f64,
    },
}

impl CegisStatus {
    /// Whether the status is terminal (anything but `InProgress`).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, CegisStatus::InProgress)
    }

    /// Whether the status carries a verified certificate.
    pub fn is_certified(&self) -> bool {
        matches!(self, CegisStatus::Certified(_))
    }
}

/// The SNBC synthesizer (Algorithm 1).
///
/// See the [crate docs](crate) for a quickstart.
#[derive(Debug, Clone)]
pub struct Snbc {
    cfg: SnbcConfig,
    telemetry: snbc_telemetry::Telemetry,
    progress: snbc_metrics::Progress,
    metrics: snbc_metrics::Metrics,
}

impl Snbc {
    /// Creates a synthesizer with the given configuration.
    pub fn new(cfg: SnbcConfig) -> Self {
        Snbc {
            cfg,
            telemetry: snbc_telemetry::Telemetry::off(),
            progress: snbc_metrics::Progress::off(),
            metrics: snbc_metrics::Metrics::off(),
        }
    }

    /// Attaches a telemetry sink and threads it through every pipeline stage
    /// (abstraction LP, learner, SDP verifier, counterexample search), so a
    /// recording run produces the full `snbc-run-report` span tree:
    /// `cegis → round → learn / verify {init,unsafe,flow → sdp} / cex {search-*}, approx → lp`.
    ///
    /// ```
    /// use snbc::{Snbc, SnbcConfig};
    /// use snbc_telemetry::Telemetry;
    ///
    /// let telemetry = Telemetry::recording();
    /// let _snbc = Snbc::new(SnbcConfig::default()).with_telemetry(telemetry.clone());
    /// // after `synthesize(..)`: telemetry.report() holds the span tree.
    /// ```
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: snbc_telemetry::Telemetry) -> Self {
        self.cfg.approx.telemetry = telemetry.clone();
        self.cfg.approx.lp.telemetry = telemetry.clone();
        self.cfg.learner.telemetry = telemetry.clone();
        self.cfg.verifier.solver.telemetry = telemetry.clone();
        self.cfg.cex.telemetry = telemetry.clone();
        self.telemetry = telemetry;
        self
    }

    /// Attaches a live progress sink: each [`CegisEngine::step`] emits
    /// `learn-epoch`, `verify-rung` (×3), `cex`, and `round` events under
    /// the handle's scope. See `snbc_metrics::progress` for the event
    /// vocabulary and the determinism contract.
    #[must_use]
    pub fn with_progress(mut self, progress: snbc_metrics::Progress) -> Self {
        self.progress = progress;
        self
    }

    /// Attaches a metric registry: each round records `rounds`,
    /// `cex_points`, `verify_rung_{feasible,infeasible}`, `boxes` (the
    /// δ-complete fallback oracle's boxes processed), `reseeds`, and the
    /// `learn_loss` / `cex_points_per_round` histograms.
    #[must_use]
    pub fn with_metrics(mut self, metrics: snbc_metrics::Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &SnbcConfig {
        &self.cfg
    }

    /// Builds a resumable [`CegisEngine`] for a benchmark with its
    /// pre-trained NN controller. The engine performs the §3 controller
    /// abstraction and network/sample initialization eagerly; each
    /// [`CegisEngine::step`] then runs one CEGIS round.
    ///
    /// # Errors
    ///
    /// * [`SnbcError::Approximation`] — the §3 LP failed.
    pub fn engine(&self, bench: &Benchmark, controller: &Mlp) -> Result<CegisEngine, SnbcError> {
        CegisEngine::new(
            self.cfg.clone(),
            self.telemetry.clone(),
            self.progress.clone(),
            self.metrics.clone(),
            bench,
            controller,
        )
    }

    /// Runs Algorithm 1 on a benchmark with its pre-trained NN controller.
    ///
    /// # Errors
    ///
    /// * [`SnbcError::Approximation`] — the §3 LP failed;
    /// * [`SnbcError::IterationsExhausted`] — no certificate within the
    ///   iteration budget;
    /// * [`SnbcError::Timeout`] — the wall-clock budget tripped (`OT`).
    pub fn synthesize(&self, bench: &Benchmark, controller: &Mlp) -> Result<SnbcResult, SnbcError> {
        let mut engine = self.engine(bench, controller)?;
        loop {
            match engine.step() {
                CegisStatus::InProgress => {}
                CegisStatus::Certified(result) => return Ok(*result),
                CegisStatus::Exhausted {
                    iterations,
                    best_margin,
                } => {
                    return Err(SnbcError::IterationsExhausted {
                        iterations,
                        best_margin,
                    })
                }
                CegisStatus::TimedOut { elapsed } => return Err(SnbcError::Timeout { elapsed }),
            }
        }
    }
}

/// Algorithm 1 as a resumable step-function.
///
/// Construction ([`Snbc::engine`]) performs everything Algorithm 1 does
/// before its loop: the §3 polynomial inclusion of the controller, network
/// initialization from the configured seed, initial sampling of the training
/// sets, and the high-dimensional Lyapunov warm start. Each
/// [`step`](CegisEngine::step) then
/// executes exactly one round — learner, LMI verifier, counterexample
/// feedback — and returns the resulting [`CegisStatus`].
///
/// The engine owns all of its state (no borrows of the benchmark), so many
/// engines can be driven concurrently from `snbc-par` workers; one engine's
/// round sequence is bitwise identical to the equivalent
/// [`Snbc::synthesize`] run at any thread count.
#[derive(Debug)]
pub struct CegisEngine {
    cfg: SnbcConfig,
    telemetry: snbc_telemetry::Telemetry,
    progress: snbc_metrics::Progress,
    metrics: snbc_metrics::Metrics,
    /// The open `cegis` span; dropped (closed) at the first terminal status.
    run_span: Option<snbc_telemetry::SpanGuard>,
    t0: Stopwatch,
    system: snbc_dynamics::Ccds,
    nn_b_hidden: Vec<usize>,
    lambda_spec: LambdaSpec,
    inclusion: PolynomialInclusion,
    closed_nominal: Vec<Polynomial>,
    closed_robust: Vec<Polynomial>,
    learner: Learner,
    sets: TrainingSets,
    /// Per-round sample count (dimension-scaled; see `new`).
    batch: usize,
    t_learn: Duration,
    t_cex: Duration,
    t_verify: Duration,
    best_margin: f64,
    plateau: usize,
    rounds: usize,
    terminal: Option<CegisStatus>,
}

impl CegisEngine {
    fn new(
        cfg: SnbcConfig,
        telemetry: snbc_telemetry::Telemetry,
        progress: snbc_metrics::Progress,
        metrics: snbc_metrics::Metrics,
        bench: &Benchmark,
        controller: &Mlp,
    ) -> Result<Self, SnbcError> {
        let t0 = Stopwatch::start();
        let tele = telemetry;
        let run_span = tele.span("cegis");
        if tele.is_recording() {
            tele.label("benchmark", bench.name);
            tele.gauge("threads", snbc_par::threads() as f64);
        }
        let system = &bench.system;
        let n = system.nvars();

        // Step 1 (§3): polynomial inclusion of the controller, with the
        // interval-certified error bound (tighter than the raw Theorem 2
        // Lipschitz gap, especially in high dimension).
        let inclusion =
            crate::approximate_mlp(controller, system.domain().bounding_box(), &cfg.approx)?;
        if tele.is_recording() {
            tele.gauge("sigma_star", inclusion.sigma_star);
        }

        // Step 2: initialize networks per the benchmark's Table 1 shapes.
        let b_net = QuadraticNet::new(n, &bench.nn_b_hidden, cfg.seed);
        let lambda_net = match &bench.lambda_spec {
            LambdaSpec::Constant => MultiplierNet::constant(-0.5),
            LambdaSpec::Linear(hidden) => MultiplierNet::linear(n, hidden, cfg.seed + 1),
        };
        let mut learner = Learner::new(b_net, lambda_net, cfg.learner.clone());
        // Sample counts scale with the dimension: the violating region of a
        // failing condition occupies an ever-smaller solid angle as n grows.
        let batch = cfg.batch + 50 * n;
        let sets = TrainingSets::sample(system, batch, cfg.seed + 2);
        let closed_nominal = system.close_loop(&inclusion.h);
        if n >= 6 {
            warm_start_lyapunov(&mut learner, system, &closed_nominal, &sets);
        }

        // Training and counterexample search both use the robust closed loop
        // with the error variable `w` in slot `n` (w = ±σ* extremes).
        let closed_robust = system.close_loop_with_error(&inclusion.h);

        Ok(CegisEngine {
            cfg,
            telemetry: tele,
            progress,
            metrics,
            run_span: Some(run_span),
            t0,
            system: system.clone(),
            nn_b_hidden: bench.nn_b_hidden.clone(),
            lambda_spec: bench.lambda_spec.clone(),
            inclusion,
            closed_nominal,
            closed_robust,
            learner,
            sets,
            batch,
            t_learn: Duration::ZERO,
            t_cex: Duration::ZERO,
            t_verify: Duration::ZERO,
            best_margin: f64::NEG_INFINITY,
            plateau: 0,
            rounds: 0,
            terminal: None,
        })
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SnbcConfig {
        &self.cfg
    }

    /// The §3 controller abstraction this engine verifies against.
    pub fn inclusion(&self) -> &PolynomialInclusion {
        &self.inclusion
    }

    /// Whether a terminal status has been reached.
    pub fn is_finished(&self) -> bool {
        self.terminal.is_some()
    }

    /// Closes the run (telemetry span included) and pins the terminal status.
    fn finish(&mut self, status: CegisStatus) -> CegisStatus {
        self.run_span = None;
        self.terminal = Some(status.clone());
        status
    }

    /// Executes one CEGIS round (steps 3–9 of Algorithm 1) and returns the
    /// resulting status. Terminal statuses are sticky — calling `step` on a
    /// finished engine returns the same status again without doing work.
    pub fn step(&mut self) -> CegisStatus {
        if let Some(t) = &self.terminal {
            return t.clone();
        }
        let tele = self.telemetry.clone();
        let iter = self.rounds + 1;
        if iter > self.cfg.max_iterations {
            if tele.is_recording() {
                tele.add("iterations", self.cfg.max_iterations as u64);
                tele.flag("certified", false);
            }
            if self.progress.is_on() {
                self.progress.emit(snbc_metrics::ProgressEvent::Round {
                    round: self.rounds as u64,
                    status: "exhausted".to_string(),
                });
            }
            return self.finish(CegisStatus::Exhausted {
                iterations: self.cfg.max_iterations,
                best_margin: self.best_margin,
            });
        }
        if self.t0.elapsed() > self.cfg.time_limit {
            if tele.is_recording() {
                tele.add("iterations", (iter - 1) as u64);
                tele.flag("certified", false);
            }
            if self.progress.is_on() {
                // Wall-clock trips are environment-dependent by nature, so
                // this event only ever appears in solo (one-shot) streams:
                // the portfolio racer neutralizes `time_limit` entirely.
                self.progress.emit(snbc_metrics::ProgressEvent::Round {
                    round: self.rounds as u64,
                    status: "timed-out".to_string(),
                });
            }
            let elapsed = self.t0.elapsed().as_secs_f64();
            return self.finish(CegisStatus::TimedOut { elapsed });
        }
        let round_span = tele.span_indexed("round", iter as u64);

        // Learner (step 3 / step 9).
        let tl = Stopwatch::start();
        let loss = self
            .learner
            .train(&self.closed_robust, self.inclusion.sigma_star, &self.sets);
        self.t_learn += tl.elapsed();
        self.metrics.add("rounds", 1);
        self.metrics.gauge("learn_loss", loss);
        self.metrics
            .observe("learn_loss_per_round", snbc_metrics::buckets::LOSS, loss);
        if self.progress.is_on() {
            self.progress.emit(snbc_metrics::ProgressEvent::LearnEpoch {
                round: iter as u64,
                loss,
            });
        }
        let b = self.learner.barrier_polynomial().prune(1e-9);

        // Verifier (step 5). The multiplier degree follows the
        // benchmark's NN_λ(x) specification (Table 1): a constant
        // multiplier shrinks the flow certificate's basis — for the
        // high-dimensional rows this is the difference between a
        // 105-row and a 2380-row SDP.
        let mut vcfg = self.cfg.verifier.clone();
        if matches!(self.lambda_spec, LambdaSpec::Constant) {
            vcfg.lambda_degree = vcfg.lambda_degree.min(0);
        }
        let outcome = Verifier::new(&self.system, &self.inclusion, vcfg).verify(&b);
        self.t_verify += outcome.total_time();
        for (rung, cond) in [
            ("init", &outcome.init),
            ("unsafe", &outcome.unsafe_),
            ("flow", &outcome.flow),
        ] {
            self.metrics.add(
                if cond.feasible {
                    "verify_rung_feasible"
                } else {
                    "verify_rung_infeasible"
                },
                1,
            );
            if self.progress.is_on() {
                self.progress.emit(snbc_metrics::ProgressEvent::VerifyRung {
                    round: iter as u64,
                    rung: rung.to_string(),
                    feasible: cond.feasible,
                    margin: cond.margin,
                });
            }
        }

        if outcome.is_certified() {
            let lambda = outcome
                .flow
                .lambda
                .clone()
                .expect("feasible flow problem returns lambda");
            drop(round_span);
            if tele.is_recording() {
                tele.add("iterations", iter as u64);
                tele.flag("certified", true);
            }
            if self.progress.is_on() {
                self.progress.emit(snbc_metrics::ProgressEvent::Round {
                    round: iter as u64,
                    status: "certified".to_string(),
                });
            }
            self.rounds = iter;
            let result = SnbcResult {
                barrier: b,
                lambda,
                inclusion: self.inclusion.clone(),
                verification: outcome,
                iterations: iter,
                t_learn: self.t_learn,
                t_cex: self.t_cex,
                t_verify: self.t_verify,
                t_total: self.t0.elapsed(),
            };
            return self.finish(CegisStatus::Certified(Box::new(result)));
        }
        self.best_margin = self.best_margin.max(
            outcome
                .init
                .margin
                .min(outcome.unsafe_.margin)
                .min(outcome.flow.margin),
        );

        // Counterexamples (steps 7–8).
        let tc = Stopwatch::start();
        let cex_span = tele.span("cex");
        let mut added = self.feed_counterexamples(&outcome, &b, iter);
        let mut interval_fallback = false;
        if added == 0 {
            // Gradient ascent found no violating sample although SOS
            // verification failed: fall back to the δ-complete interval
            // oracle, which finds true violations (or certifies there are
            // none, in which case the failure is a relaxation gap and
            // fresh samples sharpen the candidate's margins).
            interval_fallback = true;
            added = self.interval_counterexamples(&outcome, &b);
        }
        if tele.is_recording() {
            tele.add("points", added as u64);
            tele.flag("interval_fallback", interval_fallback);
        }
        self.metrics.gauge("best_margin", self.best_margin);
        self.metrics.add("cex_points", added as u64);
        self.metrics.observe(
            "cex_points_per_round",
            snbc_metrics::buckets::POINTS,
            added as f64,
        );
        if interval_fallback {
            self.metrics.add("interval_fallbacks", 1);
        }
        if self.progress.is_on() {
            self.progress.emit(snbc_metrics::ProgressEvent::Cex {
                round: iter as u64,
                points: added as u64,
                interval_fallback,
            });
        }
        drop(cex_span);
        self.t_cex += tc.elapsed();
        if added == 0 {
            self.plateau += 1;
            if self.plateau >= self.cfg.reseed_after_plateau {
                // Relaxation-gap plateau: restart the learner in a fresh
                // basin (new initialization + fresh samples).
                self.plateau = 0;
                tele.add("reseeds", 1);
                self.metrics.add("reseeds", 1);
                let n = self.system.nvars();
                let reseed = self.cfg.seed + 1000 * iter as u64;
                let b_net = QuadraticNet::new(n, &self.nn_b_hidden, reseed);
                let lambda_net = match &self.lambda_spec {
                    LambdaSpec::Constant => MultiplierNet::constant(-0.5),
                    LambdaSpec::Linear(hidden) => MultiplierNet::linear(n, hidden, reseed + 1),
                };
                self.learner = Learner::new(b_net, lambda_net, self.cfg.learner.clone());
                self.sets = TrainingSets::sample(&self.system, self.batch, reseed + 2);
                if n >= 6 {
                    warm_start_lyapunov(
                        &mut self.learner,
                        &self.system,
                        &self.closed_nominal,
                        &self.sets,
                    );
                }
            } else {
                let extra = TrainingSets::sample(
                    &self.system,
                    self.cfg.batch / 4,
                    self.cfg.seed + 100 + iter as u64,
                );
                self.sets.init.extend(extra.init);
                self.sets.unsafe_.extend(extra.unsafe_);
                self.sets.domain.extend(extra.domain);
            }
        } else {
            self.plateau = 0;
        }
        self.rounds = iter;
        if self.progress.is_on() {
            self.progress.emit(snbc_metrics::ProgressEvent::Round {
                round: iter as u64,
                status: "in-progress".to_string(),
            });
        }
        CegisStatus::InProgress
    }

    /// Generates counterexamples for every failed condition and pushes them
    /// into the training sets; returns the number of points added.
    fn feed_counterexamples(
        &mut self,
        outcome: &VerificationOutcome,
        b: &Polynomial,
        iter: usize,
    ) -> usize {
        let mut cfg = self.cfg.cex.clone();
        cfg.seed = self.cfg.cex.seed + iter as u64;
        let system = &self.system;
        let mut added = 0;
        if !outcome.init.feasible {
            // Violation of (i): v = −B on Θ.
            let v = -b;
            if let Some(cex) = find_counterexample(&v, system.init(), ViolatedCondition::Init, &cfg)
            {
                added += cex.points.len();
                self.sets.init.extend(cex.points);
            }
        }
        if !outcome.unsafe_.feasible {
            // Violation of (ii): v = B on Ξ.
            if let Some(cex) =
                find_counterexample(b, system.unsafe_set(), ViolatedCondition::Unsafe, &cfg)
            {
                added += cex.points.len();
                self.sets.unsafe_.extend(cex.points);
            }
        }
        if !outcome.flow.feasible {
            // Violation of (iii): v = −(L_f B − λ̃B) over Ψ × [−σ*, σ*] with
            // the learned λ̃ — the search includes the error coordinate `w`,
            // which is dropped before feeding the point back to `S_D`.
            let v = flow_violation(b, &self.learner.lambda_polynomial(), &self.closed_robust);
            let ext = extended_domain(system, self.inclusion.sigma_star);
            if let Some(cex) = find_counterexample(&v, &ext, ViolatedCondition::Flow, &cfg) {
                let n = system.nvars();
                added += cex.points.len();
                self.sets
                    .domain
                    .extend(cex.points.into_iter().map(|mut p| {
                        p.truncate(n);
                        p
                    }));
            }
        }
        added
    }

    /// δ-complete fallback oracle: asks the interval verifier for concrete
    /// violations of each failed condition. Returns points added.
    fn interval_counterexamples(&mut self, outcome: &VerificationOutcome, b: &Polynomial) -> usize {
        use snbc_interval::{BranchAndBound, Interval, Verdict};
        let bb = BranchAndBound {
            delta: 1e-3,
            max_boxes: 200_000,
            ..Default::default()
        };
        let boxed = |set: &snbc_dynamics::SemiAlgebraicSet| -> Vec<Interval> {
            set.bounding_box()
                .iter()
                .map(|&(lo, hi)| Interval::new(lo, hi))
                .collect()
        };
        let system = &self.system;
        let mut added = 0;
        if !outcome.init.feasible {
            let r = bb.check_at_least(b, &boxed(system.init()), system.init().polys(), 0.0);
            self.metrics.add("boxes", r.boxes_processed as u64);
            self.metrics
                .observe("boxes_per_query", snbc_metrics::buckets::BOXES, r.boxes_processed as f64);
            if let Verdict::Violated { witness, .. } = r.verdict {
                self.sets.init.push(witness);
                added += 1;
            }
        }
        if !outcome.unsafe_.feasible {
            let neg_b = -b;
            let r = bb.check_at_least(
                &neg_b,
                &boxed(system.unsafe_set()),
                system.unsafe_set().polys(),
                1e-12,
            );
            self.metrics.add("boxes", r.boxes_processed as u64);
            self.metrics
                .observe("boxes_per_query", snbc_metrics::buckets::BOXES, r.boxes_processed as f64);
            if let Verdict::Violated { witness, .. } = r.verdict {
                self.sets.unsafe_.push(witness);
                added += 1;
            }
        }
        if !outcome.flow.feasible {
            let lie = lie_derivative(b, &self.closed_robust);
            let lambda = self.learner.lambda_polynomial();
            let expr = &lie - &(&lambda * b);
            let mut dom = boxed(system.domain());
            let sigma = self.inclusion.sigma_star.max(1e-9);
            dom.push(Interval::new(-sigma, sigma));
            let r = bb.check_at_least(&expr, &dom, system.domain().polys(), 0.0);
            self.metrics.add("boxes", r.boxes_processed as u64);
            self.metrics
                .observe("boxes_per_query", snbc_metrics::buckets::BOXES, r.boxes_processed as f64);
            if let Verdict::Violated { mut witness, .. } = r.verdict {
                witness.truncate(system.nvars());
                self.sets.domain.push(witness);
                added += 1;
            }
        }
        added
    }
}

/// Seeds the learner with a Lyapunov-shaped candidate `β − xᵀPx`, where `P`
/// solves `AᵀP + PA = −I` for the linearized closed loop `A` — the canonical
/// member of the S-procedure-certifiable basin for contractive systems (the
/// high-dimensional Table 1 rows). Falls back to a sphere when the
/// linearization is not Hurwitz.
fn warm_start_lyapunov(
    learner: &mut Learner,
    system: &snbc_dynamics::Ccds,
    closed_nominal: &[Polynomial],
    sets: &TrainingSets,
) {
    let n = system.nvars();
    let quad: Polynomial = match lyapunov_quadratic(closed_nominal, n) {
        Some(p_mat) => {
            let mut q = Polynomial::zero();
            for i in 0..n {
                for j in 0..n {
                    // Sparse skip: exact zero means the entry is absent.
                    if p_mat[(i, j)] != 0.0 { // audit:allow(float-eq)
                        let m = snbc_poly::Monomial::var(i).mul(&snbc_poly::Monomial::var(j));
                        q.add_term(p_mat[(i, j)], m);
                    }
                }
            }
            q
        }
        None => {
            let mut q = Polynomial::zero();
            for i in 0..n {
                q.add_term(1.0, snbc_poly::Monomial::var(i).mul(&snbc_poly::Monomial::var(i)));
            }
            q
        }
    };
    // Level β: safely below the quadratic's value on Ξ, above it on Θ.
    let min_xi = sets
        .unsafe_
        .iter()
        .map(|x| quad.eval(x))
        .fold(f64::INFINITY, f64::min);
    let max_theta = sets
        .init
        .iter()
        .map(|x| quad.eval(x))
        .fold(0.0f64, f64::max);
    let beta = if min_xi > max_theta {
        0.5 * (min_xi + max_theta)
    } else {
        0.7 * min_xi
    };
    if !(beta > 0.0) {
        return; // degenerate geometry; leave the random initialization
    }
    // Normalize so B(0-ish) ≈ 1: target = 1 − quad/β.
    let target = &Polynomial::constant(1.0) - &quad.scale(1.0 / beta);
    let samples: Vec<Vec<f64>> = sets
        .domain
        .iter()
        .chain(&sets.init)
        .chain(&sets.unsafe_)
        .cloned()
        .collect();
    learner.warm_start(&target, &samples, 80);
}

/// Solves the Lyapunov equation `AᵀP + PA = −I` for the linear part `A` of
/// the closed-loop field (evaluated at the origin, `w = 0`), via the
/// Kronecker-vectorized `n² × n²` linear system. Returns `None` when the
/// system is singular (non-Hurwitz linearization).
fn lyapunov_quadratic(closed_nominal: &[Polynomial], n: usize) -> Option<snbc_linalg::Matrix> {
    use snbc_linalg::Matrix;
    // A[i][j] = coefficient of x_j in f_i (linear part only).
    let a = Matrix::from_fn(n, n, |i, j| {
        closed_nominal[i].coeff(&snbc_poly::Monomial::var(j))
    });
    // (Iⁿ ⊗ Aᵀ + Aᵀ ⊗ Iⁿ)·vec(P) = −vec(I), with vec column-major:
    // vec index (i, j) ↦ j·n + i.
    let dim = n * n;
    let mut big = Matrix::zeros(dim, dim);
    for i in 0..n {
        for j in 0..n {
            let row = j * n + i;
            // (AᵀP)_{ij} = Σ_k A_{ki} P_{kj}.
            for k in 0..n {
                big[(row, j * n + k)] += a[(k, i)];
                // (PA)_{ij} = Σ_k P_{ik} A_{kj}.
                big[(row, k * n + i)] += a[(k, j)];
            }
        }
    }
    let mut rhs = vec![0.0; dim];
    for i in 0..n {
        rhs[i * n + i] = -1.0;
    }
    let sol = big.solve(&rhs).ok()?;
    let mut p = Matrix::from_fn(n, n, |i, j| sol[j * n + i]);
    p.symmetrize();
    // Sanity: P must be positive definite for a Hurwitz A.
    if p.min_eigenvalue().ok()? <= 0.0 {
        return None;
    }
    Some(p)
}

/// The flow-violation polynomial `−(L_f B − λB)` over `(x, w)`.
fn flow_violation(b: &Polynomial, lambda: &Polynomial, closed_robust: &[Polynomial]) -> Polynomial {
    let lie = lie_derivative(b, closed_robust);
    -&(&lie - &(lambda * b))
}

/// The domain `Ψ` extended with the error coordinate `w ∈ [−σ*, σ*]`.
fn extended_domain(
    system: &snbc_dynamics::Ccds,
    sigma_star: f64,
) -> snbc_dynamics::SemiAlgebraicSet {
    let sigma = sigma_star.max(1e-9);
    let mut bounds = system.domain().bounding_box().to_vec();
    bounds.push((-sigma, sigma));
    snbc_dynamics::SemiAlgebraicSet::from_polys(system.domain().polys().to_vec(), &bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snbc_dynamics::benchmarks;
    use snbc_nn::{train_controller, ControllerTraining};

    /// End-to-end on the easiest 2-D benchmark; this is the crate's core
    /// acceptance test.
    #[test]
    fn synthesizes_certificate_for_c3() {
        let bench = benchmarks::benchmark(3);
        let controller = train_controller(
            bench.system.domain().bounding_box(),
            bench.target_law,
            &ControllerTraining {
                epochs: 300,
                ..Default::default()
            },
        );
        let cfg = SnbcConfig {
            max_iterations: 12,
            ..Default::default()
        };
        let result = Snbc::new(cfg).synthesize(&bench, &controller).expect("certificate");
        assert!(result.verification.is_certified());
        assert_eq!(result.barrier.nvars() <= 2, true);
        // The certificate separates: positive somewhere on Θ samples,
        // negative on Ξ samples.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for x in bench.system.init().sample(20, &mut rng) {
            assert!(result.barrier.eval(&x) >= -1e-6, "B < 0 on Θ at {x:?}");
        }
        for x in bench.system.unsafe_set().sample(20, &mut rng) {
            assert!(result.barrier.eval(&x) < 0.0, "B ≥ 0 on Ξ at {x:?}");
        }
    }

    /// The step-function exposes the same run round-by-round: stepping an
    /// engine to completion must produce the same certificate as the
    /// one-shot driver, and terminal statuses must be sticky.
    #[test]
    fn engine_steps_match_one_shot_synthesis() {
        let bench = benchmarks::benchmark(3);
        let controller = train_controller(
            bench.system.domain().bounding_box(),
            bench.target_law,
            &ControllerTraining {
                epochs: 300,
                ..Default::default()
            },
        );
        let cfg = SnbcConfig {
            max_iterations: 12,
            ..Default::default()
        };
        let one_shot = Snbc::new(cfg.clone())
            .synthesize(&bench, &controller)
            .expect("certificate");
        let mut engine = Snbc::new(cfg).engine(&bench, &controller).expect("engine");
        let stepped = loop {
            match engine.step() {
                CegisStatus::InProgress => {}
                CegisStatus::Certified(result) => break *result,
                other => panic!("expected certification, got {other:?}"),
            }
        };
        assert!(engine.is_finished());
        assert_eq!(stepped.iterations, one_shot.iterations);
        assert_eq!(engine.rounds(), stepped.iterations);
        assert_eq!(stepped.barrier, one_shot.barrier);
        assert_eq!(stepped.lambda, one_shot.lambda);
        // Sticky terminal: stepping again returns Certified without work.
        assert!(engine.step().is_certified());
    }
}
