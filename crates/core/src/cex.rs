//! Counterexample generation (§4.3): worst violating point + violation ball.
//!
//! When a candidate fails a barrier condition, the corresponding violation
//! function is maximized over its set by **multi-start projected gradient
//! ascent** (the practical realization of the Lagrangian treatment of (16)),
//! the worst point `x*` is kept, a maximal radius `γ` with
//! `‖x − x*‖₂ ≤ γ ⇒ still violating` is estimated per (17), and points
//! sampled from that ball are handed back to the Learner.

use rand::Rng;
use rand::SeedableRng;
use snbc_dynamics::SemiAlgebraicSet;
use snbc_poly::Polynomial;

/// Which of the three barrier conditions a counterexample violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolatedCondition {
    /// `B(x) ≥ 0` on `Θ` failed (point goes to `S_I`).
    Init,
    /// `B(x) < 0` on `Ξ` failed (point goes to `S_U`).
    Unsafe,
    /// `L_f B − λB > 0` on `Ψ` failed (point goes to `S_D`).
    Flow,
}

/// A counterexample ball: the worst point, its violation value, the radius
/// `γ` of (17), and the samples drawn from the ball.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Condition violated.
    pub condition: ViolatedCondition,
    /// The worst violating point `x*` of (16).
    pub worst: Vec<f64>,
    /// Violation magnitude at `x*` (positive = violating).
    pub violation: f64,
    /// Ball radius `γ` of (17).
    pub gamma: f64,
    /// Points from `{x : ‖x − x*‖ ≤ γ} ∩ set` fed back to the Learner
    /// (includes `x*` itself).
    pub points: Vec<Vec<f64>>,
}

/// Options of the counterexample generator.
#[derive(Debug, Clone)]
pub struct CexConfig {
    /// Gradient-ascent restarts.
    pub restarts: usize,
    /// Ascent steps per restart.
    pub steps: usize,
    /// Initial step size (backtracked on failure).
    pub step_size: f64,
    /// Samples drawn from the violation ball.
    pub ball_samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Telemetry sink. When recording, [`find_counterexample`] emits a
    /// `"search-init"`/`"search-unsafe"`/`"search-flow"` span (per violated
    /// condition) with the ball radius `γ`, the violation magnitude, and the
    /// number of points handed back to the Learner.
    pub telemetry: snbc_telemetry::Telemetry,
}

impl Default for CexConfig {
    fn default() -> Self {
        CexConfig {
            restarts: 12,
            steps: 120,
            step_size: 0.1,
            ball_samples: 24,
            seed: 17,
            telemetry: snbc_telemetry::Telemetry::off(),
        }
    }
}

/// Maximizes the violation polynomial `v` over `set` and, if the maximum is
/// positive, builds the counterexample ball of (16)–(17).
///
/// `v(x) > 0` must mean "condition violated at `x`" (callers negate/shift
/// their condition accordingly; see [`crate::Snbc`]).
///
/// # Example
///
/// ```
/// use snbc::cex::{find_counterexample, CexConfig, ViolatedCondition};
/// use snbc_dynamics::SemiAlgebraicSet;
///
/// // Violation v(x) = x² − 0.25 on [−1, 1]: worst at x = ±1, γ reaches the
/// // violating band |x| ≥ 0.5.
/// let set = SemiAlgebraicSet::box_set(&[(-1.0, 1.0)]);
/// let v = "x0^2 - 0.25".parse().unwrap();
/// let cex = find_counterexample(&v, &set, ViolatedCondition::Flow, &CexConfig::default())
///     .expect("violation exists");
/// assert!(cex.worst[0].abs() > 0.9);
/// assert!(cex.points.iter().all(|p| v.eval(p) > 0.0));
/// ```
pub fn find_counterexample(
    v: &Polynomial,
    set: &SemiAlgebraicSet,
    condition: ViolatedCondition,
    cfg: &CexConfig,
) -> Option<Counterexample> {
    let span_name = match condition {
        ViolatedCondition::Init => "search-init",
        ViolatedCondition::Unsafe => "search-unsafe",
        ViolatedCondition::Flow => "search-flow",
    };
    let _span = cfg.telemetry.span(span_name);
    if cfg.telemetry.is_recording() {
        cfg.telemetry
            .label("workers", &snbc_par::threads().to_string());
    }
    let bounds = set.bounding_box().to_vec();
    let n = bounds.len();

    // Multi-start projected gradient ascent on v over the set. Each restart
    // owns an RNG seeded from `(cfg.seed, r)` so the restarts are mutually
    // independent and the result never depends on execution order; the best
    // point is then picked by a serial restart-index scan with a strict `>`
    // comparison (ties break toward the lowest restart index), which keeps
    // the output bitwise identical at any thread count.
    //
    // The gradient polynomials and the box center are built once out here:
    // `ascend` is allocation-free per step (`audit:hot` enforces that
    // transitively).
    let restart_rng = |r: usize| {
        rand::rngs::StdRng::seed_from_u64(
            cfg.seed ^ (r as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    };
    let grads = v.gradient(n);
    let center = set.box_center();
    let trace = cfg.telemetry.trace();
    let starts = snbc_par::par_map_collect(cfg.restarts, |r| {
        let mut rng = restart_rng(r);
        let mut x: Vec<f64> = if r == 0 {
            center.clone()
        } else {
            bounds.iter().map(|&(lo, hi)| rng.gen_range(lo..=hi)).collect()
        };
        let mut g = vec![0.0f64; n];
        let mut cand = vec![0.0f64; n];
        project(&mut x, set, &center);
        let (fx, steps_taken) = ascend(v, &grads, set, &center, cfg, &mut x, &mut g, &mut cand);
        // Emitted from the worker that ran this restart, so the Chrome
        // export shows each ascent trajectory on its worker's track.
        trace.ascent(r as u64, steps_taken, fx);
        (x, fx, steps_taken)
    });
    let mut best: Option<(Vec<f64>, f64)> = None;
    let mut total_steps: u64 = 0;
    for (x, fx, steps_taken) in starts {
        // Serial index-ascending fold over the already-ordered
        // par_map_collect output; u64 sum, order-free.
        // audit:allow(unordered-reduce)
        total_steps += steps_taken;
        if set.contains(&x) && best.as_ref().is_none_or(|(_, b)| fx > *b) {
            best = Some((x, fx));
        }
    }
    if cfg.telemetry.is_recording() {
        cfg.telemetry.add("restarts", cfg.restarts as u64);
        cfg.telemetry.add("ascent_steps", total_steps);
    }
    let (worst, violation) = best?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    if violation <= 0.0 {
        return None;
    }

    // Radius γ of (17): largest tested radius where sampled ball points
    // (intersected with the set) all still violate.
    let mut gamma: f64 = 0.0;
    let diag: f64 = bounds
        .iter()
        .map(|&(lo, hi)| (hi - lo) * (hi - lo))
        .sum::<f64>()
        .sqrt();
    let mut radius = diag / 64.0;
    while radius <= diag / 2.0 {
        let mut all_violate = true;
        let mut tested = 0;
        for _ in 0..4 * cfg.ball_samples {
            let p = sample_ball(&worst, radius, &mut rng, n);
            if !set.contains(&p) {
                continue;
            }
            tested += 1;
            if v.eval(&p) <= 0.0 {
                all_violate = false;
                break;
            }
            if tested >= cfg.ball_samples {
                break;
            }
        }
        if !all_violate {
            break;
        }
        gamma = radius;
        radius *= 2.0;
    }

    // Samples for the Learner: x* plus ball ∩ set points.
    let mut points = vec![worst.clone()];
    if gamma > 0.0 {
        let mut attempts = 0;
        while points.len() < cfg.ball_samples && attempts < 50 * cfg.ball_samples {
            attempts += 1;
            let p = sample_ball(&worst, gamma, &mut rng, n);
            if set.contains(&p) && v.eval(&p) > 0.0 {
                points.push(p);
            }
        }
    }

    if cfg.telemetry.is_recording() {
        cfg.telemetry.add("points", points.len() as u64);
        cfg.telemetry.gauge("gamma", gamma);
        cfg.telemetry.gauge("violation", violation);
    }
    Some(Counterexample {
        condition,
        worst,
        violation,
        gamma,
        points,
    })
}

/// One projected-gradient ascent trajectory, in place: `x` enters as the
/// start point and leaves as the best point found; `g`/`cand` are caller
/// scratch (gradient buffer, candidate point). `grads` are the precomputed
/// gradient polynomials of `v` (built once per search, not per step) and
/// `center` the precomputed box center for the projection retreat. Returns
/// the best violation value and the number of ascent steps taken.
// audit:hot
fn ascend(
    v: &Polynomial,
    grads: &[Polynomial],
    set: &SemiAlgebraicSet,
    center: &[f64],
    cfg: &CexConfig,
    x: &mut Vec<f64>,
    g: &mut [f64],
    cand: &mut Vec<f64>,
) -> (f64, u64) {
    let mut step = cfg.step_size;
    let mut fx = v.eval(x);
    let mut steps_taken: u64 = 0;
    for _ in 0..cfg.steps {
        Polynomial::eval_gradient_into(grads, x, g);
        let gnorm = g.iter().map(|a| a * a).sum::<f64>().sqrt();
        if gnorm < 1e-12 {
            break;
        }
        steps_taken += 1;
        cand.clear();
        cand.extend(x.iter().zip(g.iter()).map(|(xi, gi)| xi + step * gi / gnorm));
        project(cand, set, center);
        let fc = v.eval(cand);
        if fc > fx {
            std::mem::swap(x, cand);
            fx = fc;
            step = (step * 1.3).min(1.0);
        } else {
            step *= 0.5;
            if step < 1e-9 {
                break;
            }
        }
    }
    (fx, steps_taken)
}

/// Clamps to the bounding box; if the semialgebraic constraints still fail,
/// retreats toward the precomputed box `center` (a cheap projection heuristic
/// adequate for the box/ball sets of the benchmark suite).
// audit:hot
fn project(x: &mut [f64], set: &SemiAlgebraicSet, center: &[f64]) {
    for (xi, &(lo, hi)) in x.iter_mut().zip(set.bounding_box()) {
        *xi = xi.clamp(lo, hi);
    }
    if set.contains(x) {
        return;
    }
    for _ in 0..40 {
        for (xi, c) in x.iter_mut().zip(center) {
            *xi = 0.9 * *xi + 0.1 * c;
        }
        if set.contains(x) {
            return;
        }
    }
}

fn sample_ball(center: &[f64], radius: f64, rng: &mut impl Rng, n: usize) -> Vec<f64> {
    // Uniform direction, radius^u^(1/n) magnitude.
    let dir: Vec<f64> = (0..n)
        .map(|_| {
            // Box–Muller for a normal sample.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            (-2.0 * u1.ln()).sqrt() * u2.cos()
        })
        .collect();
    let norm = dir.iter().map(|d| d * d).sum::<f64>().sqrt().max(1e-12);
    let r = radius * rng.gen_range(0.0_f64..1.0).powf(1.0 / n as f64);
    center
        .iter()
        .zip(&dir)
        .map(|(c, d)| c + r * d / norm)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_global_max_of_concave_violation() {
        // v = 1 − (x−0.5)²: max at 0.5 with value 1.
        let set = SemiAlgebraicSet::box_set(&[(-1.0, 1.0)]);
        let v: Polynomial = "1 - (x0 - 0.5)^2".parse().unwrap();
        let cex =
            find_counterexample(&v, &set, ViolatedCondition::Init, &CexConfig::default()).unwrap();
        assert!((cex.worst[0] - 0.5).abs() < 1e-3, "worst {:?}", cex.worst);
        assert!((cex.violation - 1.0).abs() < 1e-5);
        assert!(cex.gamma > 0.0);
    }

    #[test]
    fn no_counterexample_when_condition_holds() {
        let set = SemiAlgebraicSet::box_set(&[(-1.0, 1.0)]);
        let v: Polynomial = "-1 - x0^2".parse().unwrap(); // always negative
        assert!(
            find_counterexample(&v, &set, ViolatedCondition::Flow, &CexConfig::default())
                .is_none()
        );
    }

    #[test]
    fn ball_points_stay_in_set_and_violate() {
        let set = SemiAlgebraicSet::ball(&[0.0, 0.0], 1.0);
        let v: Polynomial = "x0 - 0.2".parse().unwrap();
        let cex =
            find_counterexample(&v, &set, ViolatedCondition::Unsafe, &CexConfig::default())
                .unwrap();
        assert!(cex.violation > 0.5, "should approach the boundary max 0.8");
        for p in &cex.points {
            assert!(set.contains(p));
            assert!(v.eval(p) > 0.0);
        }
    }

    #[test]
    fn multimodal_violation_finds_a_peak() {
        // Two peaks at ±1; either is acceptable but the value must be near 1.
        let set = SemiAlgebraicSet::box_set(&[(-1.5, 1.5)]);
        let v: Polynomial = "x0^2*(2 - x0^2) - 0.5".parse().unwrap();
        let cex =
            find_counterexample(&v, &set, ViolatedCondition::Flow, &CexConfig::default()).unwrap();
        assert!((cex.violation - 0.5).abs() < 1e-3, "violation {}", cex.violation);
    }
}
