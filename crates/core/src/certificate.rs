//! Portable safety certificates: a self-contained, re-checkable record of a
//! successful synthesis run.
//!
//! A [`SafetyCertificate`] bundles everything a third party needs to validate
//! the safety claim without trusting the synthesis pipeline: the barrier
//! `B(x)`, the multiplier `λ(x)`, the controller abstraction `h(x)` with its
//! error bound `σ*`, and the system description it refers to. It serializes
//! to a line-oriented text format readable by this crate's own polynomial
//! parser (no serialization dependencies), and [`SafetyCertificate::validate`]
//! re-runs both soundness paths — the SOS/LMI feasibility tests and the
//! δ-complete interval check.

use std::fmt;
use std::str::FromStr;

use snbc_dynamics::benchmarks::Benchmark;
use snbc_dynamics::Ccds;
use snbc_interval::BranchAndBound;
use snbc_poly::Polynomial;

use crate::{
    recheck_with_intervals, PolynomialInclusion, SnbcResult, Verifier, VerifierConfig,
};

/// A portable record of a verified barrier certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct SafetyCertificate {
    /// Name of the system the certificate refers to.
    pub system: String,
    /// The barrier certificate `B(x)`.
    pub barrier: Polynomial,
    /// The multiplier `λ(x)` witnessing the flow condition.
    pub lambda: Polynomial,
    /// The polynomial controller abstraction `h(x)`.
    pub controller: Polynomial,
    /// The verified abstraction error bound `σ*`.
    pub sigma_star: f64,
}

impl SafetyCertificate {
    /// Extracts the certificate from a successful synthesis result.
    pub fn from_result(system_name: impl Into<String>, result: &SnbcResult) -> Self {
        SafetyCertificate {
            system: system_name.into(),
            barrier: result.barrier.clone(),
            lambda: result.lambda.clone(),
            controller: result.inclusion.h.clone(),
            sigma_star: result.inclusion.sigma_star,
        }
    }

    /// Re-validates the certificate against a system from scratch: the three
    /// LMI feasibility tests and (optionally, `deep = true`) the independent
    /// interval re-check.
    ///
    /// Returns `true` only when every check passes.
    pub fn validate(&self, system: &Ccds, deep: bool) -> bool {
        let inclusion = PolynomialInclusion {
            h: self.controller.clone(),
            sigma_tilde: self.sigma_star,
            sigma_star: self.sigma_star,
            lipschitz: 0.0,
            covering_radius: 0.0,
            mesh_points: 0,
        };
        let verifier = Verifier::new(system, &inclusion, VerifierConfig::default());
        let outcome = verifier.verify(&self.barrier);
        if !outcome.is_certified() {
            return false;
        }
        if deep {
            let lambda = outcome.flow.lambda.as_ref().unwrap_or(&self.lambda);
            if !recheck_with_intervals(
                &self.barrier,
                lambda,
                system,
                &inclusion,
                &BranchAndBound::default(),
            ) {
                return false;
            }
        }
        true
    }

    /// Convenience: validate against the benchmark the certificate names.
    pub fn validate_against(&self, bench: &Benchmark, deep: bool) -> bool {
        self.system == bench.name && self.validate(&bench.system, deep)
    }
}

/// The line-oriented text format: `key: value` pairs, polynomials in the
/// crate's own syntax.
impl fmt::Display for SafetyCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "snbc-certificate v1")?;
        writeln!(f, "system: {}", self.system)?;
        writeln!(f, "barrier: {}", self.barrier)?;
        writeln!(f, "lambda: {}", self.lambda)?;
        writeln!(f, "controller: {}", self.controller)?;
        writeln!(f, "sigma_star: {}", self.sigma_star)
    }
}

/// Error parsing a serialized certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseCertificateError {
    message: String,
}

impl fmt::Display for ParseCertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid certificate: {}", self.message)
    }
}

impl std::error::Error for ParseCertificateError {}

impl FromStr for SafetyCertificate {
    type Err = ParseCertificateError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |m: &str| ParseCertificateError {
            message: m.to_string(),
        };
        let mut lines = s.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or_else(|| err("empty input"))?;
        if header.trim() != "snbc-certificate v1" {
            return Err(err("missing `snbc-certificate v1` header"));
        }
        let mut system = None;
        let mut barrier = None;
        let mut lambda = None;
        let mut controller = None;
        let mut sigma_star = None;
        for line in lines {
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| err("expected `key: value`"))?;
            let value = value.trim();
            match key.trim() {
                "system" => system = Some(value.to_string()),
                "barrier" => {
                    barrier =
                        Some(value.parse::<Polynomial>().map_err(|e| err(&e.to_string()))?)
                }
                "lambda" => {
                    lambda = Some(value.parse::<Polynomial>().map_err(|e| err(&e.to_string()))?)
                }
                "controller" => {
                    controller =
                        Some(value.parse::<Polynomial>().map_err(|e| err(&e.to_string()))?)
                }
                "sigma_star" => {
                    sigma_star = Some(value.parse::<f64>().map_err(|_| err("bad sigma_star"))?)
                }
                other => return Err(err(&format!("unknown key `{other}`"))),
            }
        }
        Ok(SafetyCertificate {
            system: system.ok_or_else(|| err("missing system"))?,
            barrier: barrier.ok_or_else(|| err("missing barrier"))?,
            lambda: lambda.ok_or_else(|| err("missing lambda"))?,
            controller: controller.ok_or_else(|| err("missing controller"))?,
            sigma_star: sigma_star.ok_or_else(|| err("missing sigma_star"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snbc_dynamics::SemiAlgebraicSet;

    fn toy_certificate() -> (Ccds, SafetyCertificate) {
        let sys = Ccds::new(
            "toy",
            vec!["-x0 + x1".parse().unwrap()],
            SemiAlgebraicSet::box_set(&[(-0.5, 0.5)]),
            SemiAlgebraicSet::box_set(&[(-2.0, 2.0)]),
            SemiAlgebraicSet::box_set(&[(1.5, 2.0)]),
        );
        let cert = SafetyCertificate {
            system: "toy".into(),
            barrier: "1 - x0^2".parse().unwrap(),
            lambda: Polynomial::zero(),
            controller: Polynomial::zero(),
            sigma_star: 0.0,
        };
        (sys, cert)
    }

    #[test]
    fn round_trips_through_text() {
        let (_, cert) = toy_certificate();
        let text = cert.to_string();
        let back: SafetyCertificate = text.parse().unwrap();
        assert_eq!(cert, back);
    }

    #[test]
    fn validates_genuine_certificate() {
        let (sys, cert) = toy_certificate();
        assert!(cert.validate(&sys, true));
    }

    #[test]
    fn rejects_tampered_certificate() {
        let (sys, mut cert) = toy_certificate();
        cert.barrier = "x0".parse().unwrap(); // not a barrier
        assert!(!cert.validate(&sys, false));
    }

    #[test]
    fn parse_errors_are_informative() {
        assert!("".parse::<SafetyCertificate>().is_err());
        assert!("wrong header".parse::<SafetyCertificate>().is_err());
        let missing = "snbc-certificate v1\nsystem: x\n";
        let e = missing.parse::<SafetyCertificate>().unwrap_err();
        assert!(e.to_string().contains("missing barrier"));
        let unknown = "snbc-certificate v1\nfoo: bar\n";
        assert!(unknown.parse::<SafetyCertificate>().is_err());
    }
}
