use std::error::Error;
use std::fmt;

use snbc_lp::LpError;
use snbc_sos::SosError;

/// Errors produced by the SNBC pipeline.
#[derive(Debug)]
pub enum SnbcError {
    /// The Chebyshev-approximation LP of §3 failed.
    Approximation(LpError),
    /// The CEGIS loop exhausted its iteration budget without a verified
    /// barrier certificate.
    IterationsExhausted {
        /// Iterations performed.
        iterations: usize,
        /// Margin of the closest failed verification attempt.
        best_margin: f64,
    },
    /// The wall-clock budget was exceeded (the paper's `OT`).
    Timeout {
        /// Seconds elapsed when the budget tripped.
        elapsed: f64,
    },
    /// An unrecoverable SOS/SDP failure (not mere infeasibility, which is
    /// handled by counterexample generation).
    Verifier(SosError),
    /// Configuration problem.
    Config(String),
}

impl fmt::Display for SnbcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnbcError::Approximation(e) => write!(f, "controller approximation failed: {e}"),
            SnbcError::IterationsExhausted {
                iterations,
                best_margin,
            } => write!(
                f,
                "no barrier certificate after {iterations} CEGIS iterations (best margin {best_margin:.3e})"
            ),
            SnbcError::Timeout { elapsed } => {
                write!(f, "time budget exceeded after {elapsed:.1} s (OT)")
            }
            SnbcError::Verifier(e) => write!(f, "verifier failure: {e}"),
            SnbcError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl Error for SnbcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnbcError::Approximation(e) => Some(e),
            SnbcError::Verifier(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for SnbcError {
    fn from(e: LpError) -> Self {
        SnbcError::Approximation(e)
    }
}
