//! The Verifier of §4.2: three convex LMI feasibility problems.
//!
//! With the candidate `B(x)` *known* from the Learner, the barrier conditions
//! of Theorem 1 become the three independent SOS feasibility problems
//! (13)–(15) — convex LMIs instead of the non-convex BMI that direct
//! synthesis faces. This module builds each problem over the system's
//! semialgebraic sets and the controller inclusion `u = h(x) + w`,
//! `w ∈ [−σ*, σ*]`, and solves them with [`snbc_sos`].

use std::time::Duration;

use snbc_trace::Stopwatch;

use snbc_dynamics::Ccds;
use snbc_interval::{BranchAndBound, Interval, Verdict};
use snbc_poly::{lie_derivative, Polynomial};
use snbc_sdp::SdpSolver;
use snbc_sos::{SosError, SosExpr, SosProgram};

use crate::PolynomialInclusion;

/// Options of the LMI verifier.
#[derive(Debug, Clone)]
pub struct VerifierConfig {
    /// Degree of the SOS multipliers `σᵢ, δᵢ, φᵢ` (even; `0` = scalar
    /// S-procedure multipliers, sufficient for quadratic `B` over ball sets
    /// and much cheaper in high dimension).
    pub multiplier_degree: u32,
    /// Degree of the free multiplier `λ(x)` in (15).
    pub lambda_degree: u32,
    /// Strictness constant `ε₁` of (14).
    pub epsilon1: f64,
    /// Strictness constant `ε₂` of (15).
    pub epsilon2: f64,
    /// The interior-point solver used for the compiled SDPs.
    pub solver: SdpSolver,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            multiplier_degree: 2,
            lambda_degree: 1,
            epsilon1: 1e-4,
            epsilon2: 1e-4,
            solver: SdpSolver::default(),
        }
    }
}

/// Result of one of the three sub-problems (13)–(15).
#[derive(Debug, Clone)]
pub struct SubproblemResult {
    /// Whether a strictly feasible certificate was found.
    pub feasible: bool,
    /// Achieved Gram margin (`> 0` ⇔ feasible).
    pub margin: f64,
    /// Wall-clock time of this sub-problem.
    pub time: Duration,
    /// The solved multiplier `λ(x)` (flow condition only).
    pub lambda: Option<Polynomial>,
}

/// Outcome of a full verification pass.
#[derive(Debug, Clone)]
pub struct VerificationOutcome {
    /// Condition (i): `B ≥ 0` on `Θ` — problem (13).
    pub init: SubproblemResult,
    /// Condition (ii): `B < 0` on `Ξ` — problem (14).
    pub unsafe_: SubproblemResult,
    /// Condition (iii): `L_f B − λB > 0` on `Ψ` — problem (15).
    pub flow: SubproblemResult,
}

impl VerificationOutcome {
    /// `true` when all three LMI sub-problems are strictly feasible, i.e.
    /// `B` is a real barrier certificate.
    pub fn is_certified(&self) -> bool {
        self.init.feasible && self.unsafe_.feasible && self.flow.feasible
    }

    /// Total verification time (`T_v` of Table 1).
    pub fn total_time(&self) -> Duration {
        self.init.time + self.unsafe_.time + self.flow.time
    }

    /// Names of the conditions that failed (empty when certified).
    pub fn failed_conditions(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if !self.init.feasible {
            out.push("init");
        }
        if !self.unsafe_.feasible {
            out.push("unsafe");
        }
        if !self.flow.feasible {
            out.push("flow");
        }
        out
    }
}

/// The SOS/LMI verifier bound to one system and controller inclusion.
#[derive(Debug, Clone)]
pub struct Verifier<'a> {
    system: &'a Ccds,
    inclusion: &'a PolynomialInclusion,
    cfg: VerifierConfig,
}

impl<'a> Verifier<'a> {
    /// Creates a verifier for the system under `u = h(x) + w`.
    pub fn new(system: &'a Ccds, inclusion: &'a PolynomialInclusion, cfg: VerifierConfig) -> Self {
        Verifier {
            system,
            inclusion,
            cfg,
        }
    }

    /// Runs the three LMI feasibility tests for the candidate `B`.
    ///
    /// Infeasibility of a sub-problem is *not* an error (it triggers
    /// counterexample generation in the CEGIS loop); solver breakdowns are
    /// reported as infeasible with margin `−∞` so the loop can continue with
    /// more counterexamples.
    pub fn verify(&self, b: &Polynomial) -> VerificationOutcome {
        // The SDP solver's telemetry doubles as the verifier's sink: the
        // "init"/"unsafe"/"flow" spans enclose the nested "sdp" spans the
        // instrumented solver emits for each ladder rung. The three LMIs
        // decouple (§4.2), so each condition gets a forked branch sink and
        // its own solve; the forks are adopted back in fixed order after the
        // join, making the span tree identical at any thread count.
        let t = &self.cfg.solver.telemetry;
        let _span = t.span("verify");
        if t.is_recording() {
            t.label("workers", &snbc_par::threads().min(3).to_string());
        }
        let (ti, tu, tf) = (t.fork(), t.fork(), t.fork());
        let (vi, vu, vf) = (self.with_sink(&ti), self.with_sink(&tu), self.with_sink(&tf));
        let (init, unsafe_, flow) = snbc_par::join3(
            || {
                let _s = ti.span("init");
                let r = vi.check_init(b);
                record_subproblem(&ti, &r);
                r
            },
            || {
                let _s = tu.span("unsafe");
                let r = vu.check_unsafe(b);
                record_subproblem(&tu, &r);
                r
            },
            || {
                let _s = tf.span("flow");
                let r = vf.check_flow(b);
                record_subproblem(&tf, &r);
                r
            },
        );
        t.adopt(&ti);
        t.adopt(&tu);
        t.adopt(&tf);
        VerificationOutcome {
            init,
            unsafe_,
            flow,
        }
    }

    /// A clone of this verifier whose solver records into `sink` (the
    /// branch-local fork used by the parallel [`Verifier::verify`]).
    fn with_sink(&self, sink: &snbc_telemetry::Telemetry) -> Verifier<'a> {
        let mut v = self.clone();
        v.cfg.solver.telemetry = sink.clone();
        v
    }

    /// The multiplier-degree escalation ladder: scalar S-procedure
    /// multipliers first (often sufficient and orders of magnitude cheaper in
    /// high dimension), then the configured degree.
    fn degree_ladder(&self) -> Vec<u32> {
        if self.cfg.multiplier_degree == 0 {
            vec![0]
        } else {
            vec![0, self.cfg.multiplier_degree]
        }
    }

    /// Problem (13): `B − Σ σᵢθᵢ ∈ Σ[x]`.
    fn check_init(&self, b: &Polynomial) -> SubproblemResult {
        let start = Stopwatch::start();
        let n = self.system.nvars();
        let mut last = None;
        for deg in self.degree_ladder() {
            let mut prog = SosProgram::new(n);
            let mut expr = SosExpr::from_poly(b.clone());
            for theta in self.system.init().polys() {
                let sigma = prog.add_sos(deg);
                expr = expr.add_term(-theta, sigma);
            }
            prog.require_sos(expr);
            let result = prog.solve(&self.cfg.solver);
            let done = result.is_ok();
            last = Some(result);
            if done {
                break;
            }
        }
        finish(last.expect("ladder is non-empty"), start, None)
    }

    /// Problem (14): `−B − Σ δᵢξᵢ − ε₁ ∈ Σ[x]`.
    fn check_unsafe(&self, b: &Polynomial) -> SubproblemResult {
        let start = Stopwatch::start();
        let n = self.system.nvars();
        let mut last = None;
        for deg in self.degree_ladder() {
            let mut prog = SosProgram::new(n);
            let neg_b_eps = &(-b) - &Polynomial::constant(self.cfg.epsilon1);
            let mut expr = SosExpr::from_poly(neg_b_eps);
            for xi in self.system.unsafe_set().polys() {
                let delta = prog.add_sos(deg);
                expr = expr.add_term(-xi, delta);
            }
            prog.require_sos(expr);
            let result = prog.solve(&self.cfg.solver);
            let done = result.is_ok();
            last = Some(result);
            if done {
                break;
            }
        }
        finish(last.expect("ladder is non-empty"), start, None)
    }

    /// Problem (15): `L_f B − λB − Σ φᵢψᵢ − Σ φ_wⱼ(σⱼ*² − wⱼ²) − ε₂ ∈
    /// Σ[x, w]`, with `λ` a free polynomial in `x` only. One error variable
    /// per control channel carries the §3 abstraction error (the scalar case
    /// is the one-channel instance).
    fn check_flow(&self, b: &Polynomial) -> SubproblemResult {
        check_flow_channels(
            self.system,
            std::slice::from_ref(self.inclusion),
            b,
            &self.cfg,
            &self.degree_ladder(),
        )
    }
}

/// Emits a sub-problem's Gram margin and feasibility flag on the current span.
fn record_subproblem(t: &snbc_telemetry::Telemetry, r: &SubproblemResult) {
    if !t.is_recording() {
        return;
    }
    t.gauge("margin", r.margin);
    t.flag("feasible", r.feasible);
}

fn finish(
    result: Result<snbc_sos::SosSolution, SosError>,
    start: Stopwatch,
    lambda: Option<snbc_sos::UnknownId>,
) -> SubproblemResult {
    let time = start.elapsed();
    match result {
        Ok(sol) => SubproblemResult {
            feasible: true,
            margin: sol.margin(),
            lambda: lambda.map(|id| sol.poly(id).clone()),
            time,
        },
        Err(SosError::Infeasible { margin }) => SubproblemResult {
            feasible: false,
            margin,
            lambda: None,
            time,
        },
        Err(_) => SubproblemResult {
            feasible: false,
            margin: f64::NEG_INFINITY,
            lambda: None,
            time,
        },
    }
}

/// Independent δ-complete re-check of a certified barrier with interval
/// branch-and-bound (the second soundness path, using the dReal-substitute).
///
/// Returns `true` when all three conditions of Theorem 1 are *proven* over
/// the sets' bounding boxes intersected with their constraints. `Unknown`
/// verdicts (precision δ) count as failure — this check is strictly harsher
/// than the SOS margin test.
pub fn recheck_with_intervals(
    b: &Polynomial,
    lambda: &Polynomial,
    system: &Ccds,
    inclusion: &PolynomialInclusion,
    bb: &BranchAndBound,
) -> bool {
    recheck_with_intervals_recorded(
        b,
        lambda,
        system,
        inclusion,
        bb,
        &snbc_telemetry::Telemetry::off(),
    )
}

/// [`recheck_with_intervals`] with telemetry: wraps the three Theorem 1
/// conditions in `interval-init` / `interval-unsafe` / `interval-flow`
/// spans under an `interval-recheck` parent, records `boxes` / `max_depth`
/// counters and a `holds` flag per condition, and attaches the telemetry's
/// trace sink so the branch-and-bound wave engine emits per-worker
/// `bb-boxes` spans (see docs/TRACING.md).
pub fn recheck_with_intervals_recorded(
    b: &Polynomial,
    lambda: &Polynomial,
    system: &Ccds,
    inclusion: &PolynomialInclusion,
    bb: &BranchAndBound,
    telemetry: &snbc_telemetry::Telemetry,
) -> bool {
    let _span = telemetry.span("interval-recheck");
    let trace = telemetry.trace();
    // (i) B ≥ 0 on Θ.
    let init_box: Vec<Interval> = system
        .init()
        .bounding_box()
        .iter()
        .map(|&(lo, hi)| Interval::new(lo, hi))
        .collect();
    let r1 = {
        let _s = telemetry.span("interval-init");
        let r = bb.check_at_least_traced(b, &init_box, system.init().polys(), 0.0, trace);
        telemetry.add("boxes", r.boxes_processed as u64);
        telemetry.add("max_depth", r.max_depth as u64);
        telemetry.flag("holds", r.verdict == Verdict::Holds);
        r
    };
    if r1.verdict != Verdict::Holds {
        return false;
    }
    // (ii) B < 0 on Ξ ⇔ −B > 0.
    let unsafe_box: Vec<Interval> = system
        .unsafe_set()
        .bounding_box()
        .iter()
        .map(|&(lo, hi)| Interval::new(lo, hi))
        .collect();
    let neg_b = -b;
    let r2 = {
        let _s = telemetry.span("interval-unsafe");
        let r = bb.check_at_least_traced(
            &neg_b,
            &unsafe_box,
            system.unsafe_set().polys(),
            1e-9,
            trace,
        );
        telemetry.add("boxes", r.boxes_processed as u64);
        telemetry.add("max_depth", r.max_depth as u64);
        telemetry.flag("holds", r.verdict == Verdict::Holds);
        r
    };
    if r2.verdict != Verdict::Holds {
        return false;
    }
    // (iii) L_f B − λB > 0 on Ψ × [−σ*, σ*].
    let sigma = inclusion.sigma_star.max(1e-12);
    let field = system.close_loop_with_error(&inclusion.h);
    let lie = lie_derivative(b, &field);
    let expr = &lie - &(lambda * b);
    let mut domain_box: Vec<Interval> = system
        .domain()
        .bounding_box()
        .iter()
        .map(|&(lo, hi)| Interval::new(lo, hi))
        .collect();
    domain_box.push(Interval::new(-sigma, sigma));
    let r3 = {
        let _s = telemetry.span("interval-flow");
        let r = bb.check_at_least_traced(&expr, &domain_box, system.domain().polys(), 1e-9, trace);
        telemetry.add("boxes", r.boxes_processed as u64);
        telemetry.add("max_depth", r.max_depth as u64);
        telemetry.flag("holds", r.verdict == Verdict::Holds);
        r
    };
    r3.verdict == Verdict::Holds
}

#[cfg(test)]
mod tests {
    use super::*;
    use snbc_dynamics::SemiAlgebraicSet;

    /// A hand-built system where B = 1 − x² is a barrier:
    /// ẋ = −x + u with u = 0 exactly; Θ = [−0.5, 0.5], Ψ = [−2, 2],
    /// Ξ = [1.5, 2].
    fn toy() -> (Ccds, PolynomialInclusion) {
        let sys = Ccds::new(
            "toy",
            vec!["-x0 + x1".parse().unwrap()],
            SemiAlgebraicSet::box_set(&[(-0.5, 0.5)]),
            SemiAlgebraicSet::box_set(&[(-2.0, 2.0)]),
            SemiAlgebraicSet::box_set(&[(1.5, 2.0)]),
        );
        let inclusion = PolynomialInclusion {
            h: Polynomial::zero(),
            sigma_tilde: 0.0,
            sigma_star: 0.0,
            lipschitz: 0.0,
            covering_radius: 0.0,
            mesh_points: 0,
        };
        (sys, inclusion)
    }

    #[test]
    fn certifies_textbook_barrier() {
        let (sys, inc) = toy();
        let b: Polynomial = "1 - x0^2".parse().unwrap();
        let verifier = Verifier::new(&sys, &inc, VerifierConfig::default());
        let out = verifier.verify(&b);
        assert!(out.init.feasible, "init margin {}", out.init.margin);
        assert!(out.unsafe_.feasible, "unsafe margin {}", out.unsafe_.margin);
        assert!(out.flow.feasible, "flow margin {}", out.flow.margin);
        assert!(out.is_certified());
        assert!(out.failed_conditions().is_empty());
        // λ was solved as part of (15).
        assert!(out.flow.lambda.is_some());
    }

    #[test]
    fn rejects_non_barrier() {
        let (sys, inc) = toy();
        // B = x is positive on only half of Θ: (13) must fail.
        let b: Polynomial = "x0".parse().unwrap();
        let verifier = Verifier::new(&sys, &inc, VerifierConfig::default());
        let out = verifier.verify(&b);
        assert!(!out.init.feasible);
        assert!(!out.is_certified());
        assert!(out.failed_conditions().contains(&"init"));
    }

    #[test]
    fn robust_flow_with_error_band() {
        let (sys, mut inc) = toy();
        // With |w| ≤ 0.1 the flow condition still holds for B = 1 − x².
        inc.sigma_star = 0.1;
        let b: Polynomial = "1 - x0^2".parse().unwrap();
        let verifier = Verifier::new(&sys, &inc, VerifierConfig::default());
        let out = verifier.verify(&b);
        assert!(out.flow.feasible, "flow margin {}", out.flow.margin);
    }

    #[test]
    fn huge_error_band_breaks_flow() {
        let (sys, mut inc) = toy();
        // |w| ≤ 10 swamps −x: no certificate.
        inc.sigma_star = 10.0;
        let b: Polynomial = "1 - x0^2".parse().unwrap();
        let verifier = Verifier::new(&sys, &inc, VerifierConfig::default());
        let out = verifier.verify(&b);
        assert!(!out.flow.feasible);
    }

    #[test]
    fn interval_recheck_agrees_on_certified_barrier() {
        let (sys, inc) = toy();
        let b: Polynomial = "1 - x0^2".parse().unwrap();
        let verifier = Verifier::new(&sys, &inc, VerifierConfig::default());
        let out = verifier.verify(&b);
        assert!(out.is_certified());
        let lambda = out.flow.lambda.expect("lambda solved");
        let ok = recheck_with_intervals(&b, &lambda, &sys, &inc, &BranchAndBound::default());
        assert!(ok, "interval path must confirm the SOS certificate");
    }

    #[test]
    fn interval_recheck_rejects_bogus_barrier() {
        let (sys, inc) = toy();
        let b: Polynomial = "x0".parse().unwrap();
        let lambda = Polynomial::zero();
        let ok = recheck_with_intervals(&b, &lambda, &sys, &inc, &BranchAndBound::default());
        assert!(!ok);
    }
}

/// Multi-input verification (§3's "multiple-output cases"): checks the three
/// barrier conditions for a system with `m` control channels, each abstracted
/// as `uⱼ = hⱼ(x) + wⱼ`, `wⱼ ∈ [−σⱼ*, σⱼ*]`. The flow condition (15) gains
/// one error variable and one band multiplier per channel.
///
/// # Panics
///
/// Panics if `inclusions.len() != system.num_inputs()`.
pub fn verify_multi(
    system: &Ccds,
    inclusions: &[PolynomialInclusion],
    b: &Polynomial,
    cfg: &VerifierConfig,
) -> VerificationOutcome {
    assert_eq!(
        inclusions.len(),
        system.num_inputs(),
        "one inclusion per control channel"
    );
    let t = cfg.solver.telemetry.clone();
    let _span = t.span("verify");
    if t.is_recording() {
        t.label("workers", &snbc_par::threads().min(3).to_string());
    }
    // Conditions (13) and (14) are channel-independent: reuse the scalar
    // verifier with a dummy inclusion. As in the scalar path, each condition
    // solves on a forked branch sink and the forks are adopted back in fixed
    // order after the join.
    let cfg_with = |sink: &snbc_telemetry::Telemetry| {
        let mut c = cfg.clone();
        c.solver.telemetry = sink.clone();
        c
    };
    let (ti, tu, tf) = (t.fork(), t.fork(), t.fork());
    let scalar_i = Verifier::new(system, &inclusions[0], cfg_with(&ti));
    let scalar_u = Verifier::new(system, &inclusions[0], cfg_with(&tu));
    let cfg_f = cfg_with(&tf);
    let ladder = scalar_i.degree_ladder();
    let (init, unsafe_, flow) = snbc_par::join3(
        || {
            let _s = ti.span("init");
            let r = scalar_i.check_init(b);
            record_subproblem(&ti, &r);
            r
        },
        || {
            let _s = tu.span("unsafe");
            let r = scalar_u.check_unsafe(b);
            record_subproblem(&tu, &r);
            r
        },
        // Flow (15) over (x, w₁ … w_m) — shared with the scalar path.
        || {
            let _s = tf.span("flow");
            let r = check_flow_channels(system, inclusions, b, &cfg_f, &ladder);
            record_subproblem(&tf, &r);
            r
        },
    );
    t.adopt(&ti);
    t.adopt(&tu);
    t.adopt(&tf);
    VerificationOutcome { init, unsafe_, flow }
}

/// Shared implementation of the flow LMI (15) for any number of control
/// channels. Channels with a negligible error band are substituted exactly
/// (no `w` variable); robust channels get consecutive error variables after
/// the state block, each with its own band multiplier.
fn check_flow_channels(
    system: &Ccds,
    inclusions: &[PolynomialInclusion],
    b: &Polynomial,
    cfg: &VerifierConfig,
    ladder: &[u32],
) -> SubproblemResult {
    let start = Stopwatch::start();
    let n = system.nvars();


    // Close the loop channel by channel. Robust channels keep a fresh error
    // variable; exact channels substitute h directly. Error variables are
    // renumbered consecutively so the ambient dimension stays minimal.
    let mut field: Vec<Polynomial> = system.field().to_vec();
    let mut sigmas = Vec::new(); // σ* per robust channel, in w order
    for (j, inc) in inclusions.iter().enumerate() {
        let robust = inc.sigma_star > 1e-12;
        let sub = if robust {
            let w_index = n + sigmas.len();
            sigmas.push(inc.sigma_star);
            &inc.h + &Polynomial::var(w_index)
        } else {
            inc.h.clone()
        };
        for f in &mut field {
            *f = f.substitute(n + j, &sub);
        }
    }
    // NB: the substitution above maps channel j's input slot n+j to a
    // polynomial mentioning w-variables at indices ≥ n; because w indices are
    // assigned in increasing channel order and input slots are consumed in
    // the same order, no captured variable is re-substituted.
    let lie = lie_derivative(b, &field);
    let nvars = n + sigmas.len();

    let mut last = None;
    let mut last_lambda = None;
    for &deg in ladder {
        let mut prog = SosProgram::new(nvars.max(b.nvars()));
        let lambda = prog.add_free_restricted(cfg.lambda_degree, n);
        let lie_eps = &lie - &Polynomial::constant(cfg.epsilon2);
        let mut expr = SosExpr::from_poly(lie_eps).add_term(-b, lambda);
        for psi in system.domain().polys() {
            let phi = prog.add_sos(deg);
            expr = expr.add_term(-psi, phi);
        }
        for (w_idx, &sigma) in sigmas.iter().enumerate() {
            // wⱼ ∈ [−σⱼ*, σⱼ*] ⇔ σⱼ*² − wⱼ² ≥ 0.
            let w = Polynomial::var(n + w_idx);
            let wball = &Polynomial::constant(sigma * sigma) - &(&w * &w);
            let phi_w = prog.add_sos(deg);
            expr = expr.add_term(-&wball, phi_w);
        }
        prog.require_sos(expr);
        let result = prog.solve(&cfg.solver);
        let done = result.is_ok();
        last = Some(result);
        last_lambda = Some(lambda);
        if done {
            break;
        }
    }
    finish(last.expect("ladder is non-empty"), start, last_lambda)
}

#[cfg(test)]
mod multi_tests {
    use super::*;
    use snbc_dynamics::SemiAlgebraicSet;

    #[test]
    fn two_channel_double_integrator_certifies() {
        // ẋ₀ = u₁, ẋ₁ = u₂ with u₁ ≈ −x₀, u₂ ≈ −x₁ and small error bands.
        let sys = Ccds::new_multi(
            "double-int",
            vec!["x2".parse().unwrap(), "x3".parse().unwrap()],
            2,
            SemiAlgebraicSet::box_set(&[(-0.3, 0.3), (-0.3, 0.3)]),
            SemiAlgebraicSet::box_set(&[(-2.0, 2.0), (-2.0, 2.0)]),
            SemiAlgebraicSet::box_set(&[(1.5, 2.0), (1.5, 2.0)]),
        );
        let mk = |h: &str, sigma: f64| PolynomialInclusion {
            h: h.parse().unwrap(),
            sigma_tilde: sigma,
            sigma_star: sigma,
            lipschitz: 0.0,
            covering_radius: 0.0,
            mesh_points: 0,
        };
        let inclusions = [mk("-1*x0", 0.05), mk("-1*x1", 0.05)];
        let b: Polynomial = "1 - 0.5*x0^2 - 0.5*x1^2".parse().unwrap();
        let out = verify_multi(&sys, &inclusions, &b, &VerifierConfig::default());
        assert!(out.init.feasible, "init margin {}", out.init.margin);
        assert!(out.unsafe_.feasible, "unsafe margin {}", out.unsafe_.margin);
        assert!(out.flow.feasible, "flow margin {}", out.flow.margin);
    }

    #[test]
    fn huge_band_on_one_channel_breaks_it() {
        let sys = Ccds::new_multi(
            "double-int",
            vec!["x2".parse().unwrap(), "x3".parse().unwrap()],
            2,
            SemiAlgebraicSet::box_set(&[(-0.3, 0.3), (-0.3, 0.3)]),
            SemiAlgebraicSet::box_set(&[(-2.0, 2.0), (-2.0, 2.0)]),
            SemiAlgebraicSet::box_set(&[(1.5, 2.0), (1.5, 2.0)]),
        );
        let mk = |h: &str, sigma: f64| PolynomialInclusion {
            h: h.parse().unwrap(),
            sigma_tilde: sigma,
            sigma_star: sigma,
            lipschitz: 0.0,
            covering_radius: 0.0,
            mesh_points: 0,
        };
        let inclusions = [mk("-1*x0", 10.0), mk("-1*x1", 0.05)];
        let b: Polynomial = "1 - 0.5*x0^2 - 0.5*x1^2".parse().unwrap();
        let out = verify_multi(&sys, &inclusions, &b, &VerifierConfig::default());
        assert!(!out.flow.feasible);
    }

    #[test]
    #[should_panic(expected = "one inclusion per control channel")]
    fn channel_count_mismatch_panics() {
        let sys = Ccds::new_multi(
            "double-int",
            vec!["x2".parse().unwrap(), "x3".parse().unwrap()],
            2,
            SemiAlgebraicSet::box_set(&[(-0.3, 0.3), (-0.3, 0.3)]),
            SemiAlgebraicSet::box_set(&[(-2.0, 2.0), (-2.0, 2.0)]),
            SemiAlgebraicSet::box_set(&[(1.5, 2.0), (1.5, 2.0)]),
        );
        let inc = PolynomialInclusion {
            h: Polynomial::zero(),
            sigma_tilde: 0.0,
            sigma_star: 0.0,
            lipschitz: 0.0,
            covering_radius: 0.0,
            mesh_points: 0,
        };
        let b = Polynomial::constant(1.0);
        let _ = verify_multi(&sys, &[inc], &b, &VerifierConfig::default());
    }
}
