//! Polynomial inclusion of NN controllers (§3 of the paper).
//!
//! Given a controller `k(x)` over the domain box, computes a polynomial
//! `h(x)` of preassigned degree minimizing the sampled uniform error
//! (the Chebyshev approximation problem (4), relaxed to the LP (5)), and the
//! sound error bound `σ* = σ̃ + ½·s·L` of Theorem 2, so that
//! `k(x) ∈ h(x) + [−σ*, σ*]` for all `x` in the box.

use snbc_linalg::Matrix;
use snbc_lp::{solve_inequality, LpOptions};
use snbc_poly::{monomial_basis, Polynomial};

use crate::SnbcError;

/// Options for [`approximate_controller`].
#[derive(Debug, Clone)]
pub struct ApproxOptions {
    /// Degree `d` of the approximating polynomial `h`.
    pub degree: u32,
    /// Rectangular mesh spacing `s` (the paper suggests `s = 0.05` in 2-D;
    /// the effective spacing grows when the point cap binds).
    pub mesh_spacing: f64,
    /// Cap on mesh points. A full rectangular mesh is used while it fits
    /// under the cap; beyond that a deterministic Halton set of exactly
    /// `max_mesh_points` points stands in and the covering radius is
    /// estimated by probing (documented substitution — Theorem 2 only needs
    /// *a* covering radius of the sample set).
    pub max_mesh_points: usize,
    /// LP solver options.
    pub lp: LpOptions,
    /// Telemetry sink. When recording, the abstraction emits an `"approx"`
    /// span with the Theorem 2 quantities (σ̃, σ*, L, r_cov, mesh size) and
    /// forwards itself to the Chebyshev LP if `lp.telemetry` is off.
    pub telemetry: snbc_telemetry::Telemetry,
}

impl Default for ApproxOptions {
    fn default() -> Self {
        ApproxOptions {
            degree: 2,
            mesh_spacing: 0.1,
            max_mesh_points: 20_000,
            lp: LpOptions::default(),
            telemetry: snbc_telemetry::Telemetry::off(),
        }
    }
}

/// The verified abstraction `k(x) ∈ h(x) + [−σ*, σ*]` produced by §3.
#[derive(Debug, Clone)]
pub struct PolynomialInclusion {
    /// The approximating polynomial `h(x, h̃)`.
    pub h: Polynomial,
    /// Sampled Chebyshev error `σ̃` (LP optimum).
    pub sigma_tilde: f64,
    /// Sound uniform bound `σ* = σ̃ + r_cov·L` (Theorem 2; `r_cov` is the
    /// covering radius of the mesh, `½·s·√n` for the rectangular mesh).
    pub sigma_star: f64,
    /// Lipschitz constant used for the gap term.
    pub lipschitz: f64,
    /// Covering radius of the sample set.
    pub covering_radius: f64,
    /// Number of mesh points used.
    pub mesh_points: usize,
}

/// Computes the polynomial inclusion of a controller over a box (Theorem 2).
///
/// `controller` is any scalar function (typically [`snbc_nn::Mlp::forward`]);
/// `lipschitz` must be a valid Lipschitz constant of it on the box w.r.t.
/// the Euclidean norm (use [`snbc_nn::Mlp::lipschitz_bound`]).
///
/// # Errors
///
/// Returns [`SnbcError::Approximation`] if the Chebyshev LP cannot be solved
/// and [`SnbcError::Config`] for degenerate inputs.
///
/// # Example
///
/// ```
/// use snbc::{approximate_controller, ApproxOptions};
///
/// // A controller that is already a polynomial is reproduced exactly.
/// let k = |x: &[f64]| -2.0 * x[0] + 0.5 * x[0] * x[0];
/// let inc = approximate_controller(&k, 2.5, &[(-1.0, 1.0)], &ApproxOptions::default())?;
/// assert!(inc.sigma_tilde < 1e-6);
/// assert!((inc.h.eval(&[0.5]) - (-0.875)).abs() < 1e-5);
/// # Ok::<(), snbc::SnbcError>(())
/// ```
pub fn approximate_controller(
    controller: &(dyn Fn(&[f64]) -> f64 + Sync),
    lipschitz: f64,
    domain: &[(f64, f64)],
    opts: &ApproxOptions,
) -> Result<PolynomialInclusion, SnbcError> {
    if domain.is_empty() {
        return Err(SnbcError::Config("empty domain".into()));
    }
    if !(lipschitz >= 0.0) {
        return Err(SnbcError::Config("Lipschitz constant must be nonnegative".into()));
    }
    let n = domain.len();
    let _span = opts.telemetry.span("approx");

    // Build the mesh.
    let (points, covering_radius) = build_mesh(domain, opts);
    let m = points.len();

    // Basis and LP: variables z = (h ∈ ℝᵛ, t); constraints
    //   φ(yᵢ)ᵀh − t ≤ k(yᵢ) and −φ(yᵢ)ᵀh − t ≤ −k(yᵢ).
    //
    // Mesh points are independent, so the expensive part — the controller
    // forward passes and monomial evaluations — runs as fixed chunks through
    // `par_map_collect`; the G/rhs rows are then assembled serially in chunk
    // order, so every matrix entry lands exactly where the serial loop put
    // it. Below MIN_PARALLEL_MESH points a single chunk keeps the whole
    // thing inline (one worker ⇒ snbc-par never spawns).
    let basis = monomial_basis(n, opts.degree);
    let v = basis.len();
    let chunk = if m < MIN_PARALLEL_MESH { m.max(1) } else { MESH_CHUNK };
    let trace = opts.telemetry.trace();
    let points_ref = &points;
    let basis_ref = &basis;
    let chunks: Vec<(Vec<f64>, Vec<f64>)> =
        snbc_par::par_map_collect(m.div_ceil(chunk).max(1), |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(m);
            let span = trace.begin_span("mesh-chunk", Some(c as u64));
            let mut ks = Vec::with_capacity(hi - lo);
            let mut phis = Vec::with_capacity((hi - lo) * v);
            for y in &points_ref[lo..hi] {
                ks.push(controller(y));
                for mono in basis_ref {
                    phis.push(mono.eval(y));
                }
            }
            trace.end_span("mesh-chunk", span);
            (ks, phis)
        });
    let mut g = Matrix::zeros(2 * m, v + 1);
    let mut rhs = vec![0.0; 2 * m];
    for (c, (ks, phis)) in chunks.iter().enumerate() {
        for (r, &k) in ks.iter().enumerate() {
            let i = c * chunk + r;
            for j in 0..v {
                let phi = phis[r * v + j];
                g[(2 * i, j)] = phi;
                g[(2 * i + 1, j)] = -phi;
            }
            g[(2 * i, v)] = -1.0;
            g[(2 * i + 1, v)] = -1.0;
            rhs[2 * i] = k;
            rhs[2 * i + 1] = -k;
        }
    }
    let mut c = vec![0.0; v + 1];
    c[v] = 1.0; // min t
    let lp_opts = if opts.telemetry.is_recording() && !opts.lp.telemetry.is_recording() {
        let mut fwd = opts.lp.clone();
        fwd.telemetry = opts.telemetry.clone();
        fwd
    } else {
        opts.lp.clone()
    };
    let sol = solve_inequality(&c, &g, &rhs, &lp_opts)?;
    let sigma_tilde = sol.objective.max(0.0);
    let h = Polynomial::from_coeffs(&sol.z[..v], &basis);

    let inc = PolynomialInclusion {
        sigma_star: sigma_tilde + covering_radius * lipschitz,
        h,
        sigma_tilde,
        lipschitz,
        covering_radius,
        mesh_points: m,
    };
    record_inclusion(&opts.telemetry, &inc);
    Ok(inc)
}

/// Mesh points per parallel evaluation chunk. The chunk grid is a pure
/// function of the mesh size, so the assembled LP is bitwise identical at
/// any thread count.
const MESH_CHUNK: usize = 64;

/// Meshes smaller than this are evaluated as a single inline chunk: the
/// spawn cost dwarfs the per-point work (see docs/PERFORMANCE.md for the
/// measured crossover on the quickstart problem).
const MIN_PARALLEL_MESH: usize = 256;

/// Emits the Theorem 2 quantities of a finished inclusion on the current span.
fn record_inclusion(t: &snbc_telemetry::Telemetry, inc: &PolynomialInclusion) {
    if !t.is_recording() {
        return;
    }
    t.add("mesh_points", inc.mesh_points as u64);
    t.gauge("sigma_tilde", inc.sigma_tilde);
    t.gauge("sigma_star", inc.sigma_star);
    t.gauge("lipschitz", inc.lipschitz);
    t.gauge("covering_radius", inc.covering_radius);
}

/// Builds the sample set and its covering radius.
fn build_mesh(domain: &[(f64, f64)], opts: &ApproxOptions) -> (Vec<Vec<f64>>, f64) {
    let n = domain.len();
    // Points per dimension at the requested spacing.
    let counts: Vec<usize> = domain
        .iter()
        .map(|&(lo, hi)| ((hi - lo) / opts.mesh_spacing).ceil().max(1.0) as usize + 1)
        .collect();
    let total: f64 = counts.iter().map(|&c| c as f64).product();
    if total <= opts.max_mesh_points as f64 {
        // Full rectangular mesh; covering radius ½·s·√n with the effective
        // per-dimension spacing.
        let mut pts = vec![vec![]];
        let mut radius2 = 0.0;
        for (d, &(lo, hi)) in domain.iter().enumerate() {
            let k = counts[d];
            let step = if k > 1 { (hi - lo) / (k - 1) as f64 } else { 0.0 };
            radius2 += (step / 2.0) * (step / 2.0);
            let mut next = Vec::with_capacity(pts.len() * k);
            for p in &pts {
                for i in 0..k {
                    let mut q = p.clone();
                    q.push(lo + step * i as f64);
                    next.push(q);
                }
            }
            pts = next;
        }
        (pts, radius2.sqrt())
    } else {
        // Halton fallback. The covering radius is *estimated* by probing and
        // then inflated by a safety factor — probing lower-bounds the true
        // radius, so the raw estimate would make the Theorem 2 bound
        // optimistic. Callers needing a fully verified band should prefer
        // [`approximate_mlp`], whose branch-and-bound certification of
        // |k − h| ≤ σ* does not depend on this estimate at all.
        const COVERING_SAFETY: f64 = 1.5;
        let pts = snbc_dynamics::sample_box_halton(domain, opts.max_mesh_points);
        let probes = snbc_dynamics::sample_box_halton(
            domain,
            2_048.min(4 * opts.max_mesh_points),
        );
        let mut rcov: f64 = 0.0;
        for probe in probes.iter().skip(opts.max_mesh_points.min(probes.len())) {
            let d2 = pts
                .iter()
                .map(|p| {
                    p.iter()
                        .zip(probe)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                })
                .fold(f64::INFINITY, f64::min);
            rcov = rcov.max(d2.sqrt());
        }
        // Volume-based lower bound on any covering radius of N points: the
        // probed estimate must at least reach it.
        let vol: f64 = domain.iter().map(|&(lo, hi)| hi - lo).product();
        let vol_bound = (vol / opts.max_mesh_points as f64).powf(1.0 / n as f64) * 0.5;
        (pts, (rcov * COVERING_SAFETY).max(vol_bound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_polynomial_controllers() {
        let k = |x: &[f64]| 1.0 - x[0] + 0.25 * x[0] * x[1];
        let opts = ApproxOptions {
            degree: 2,
            mesh_spacing: 0.25,
            ..Default::default()
        };
        let inc =
            approximate_controller(&k, 2.0, &[(-1.0, 1.0), (-1.0, 1.0)], &opts).unwrap();
        assert!(inc.sigma_tilde < 1e-6, "sigma_tilde = {}", inc.sigma_tilde);
        assert!((inc.h.eval(&[0.3, -0.7]) - k(&[0.3, -0.7])).abs() < 1e-5);
    }

    #[test]
    fn sigma_star_bounds_true_error_tanh() {
        // k(x) = tanh(2x): degree-3 fit; σ* must dominate the true sup error.
        let k = |x: &[f64]| (2.0 * x[0]).tanh();
        let lipschitz = 2.0;
        let opts = ApproxOptions {
            degree: 3,
            mesh_spacing: 0.05,
            ..Default::default()
        };
        let inc = approximate_controller(&k, lipschitz, &[(-1.0, 1.0)], &opts).unwrap();
        let mut true_sup: f64 = 0.0;
        for i in 0..=1000 {
            let x = -1.0 + 2.0 * i as f64 / 1000.0;
            true_sup = true_sup.max((k(&[x]) - inc.h.eval(&[x])).abs());
        }
        assert!(
            inc.sigma_star >= true_sup - 1e-9,
            "sigma* {} < true sup {true_sup}",
            inc.sigma_star
        );
        // And the fit should be decent.
        assert!(inc.sigma_tilde < 0.1, "sigma_tilde = {}", inc.sigma_tilde);
    }

    #[test]
    fn finer_mesh_tightens_sigma_tilde() {
        // Remark 1: σ̃ grows toward σ as s shrinks (monotone in the sampled
        // max), so a finer mesh gives σ̃ closer to the true sup from below
        // while σ* shrinks because the Lipschitz gap dominates.
        let k = |x: &[f64]| x[0].sin();
        let mk = |s: f64| {
            let opts = ApproxOptions {
                degree: 3,
                mesh_spacing: s,
                ..Default::default()
            };
            approximate_controller(&k, 1.0, &[(-2.0, 2.0)], &opts).unwrap()
        };
        let coarse = mk(0.5);
        let fine = mk(0.05);
        assert!(fine.sigma_star < coarse.sigma_star);
        assert!(fine.sigma_tilde >= coarse.sigma_tilde - 1e-9);
    }

    #[test]
    fn halton_fallback_engages_in_high_dim() {
        let k = |x: &[f64]| x.iter().sum::<f64>();
        let opts = ApproxOptions {
            degree: 1,
            mesh_spacing: 0.05,
            max_mesh_points: 500,
            ..Default::default()
        };
        let domain = vec![(-1.0, 1.0); 6];
        let inc = approximate_controller(&k, 3.0, &domain, &opts).unwrap();
        assert_eq!(inc.mesh_points, 500);
        assert!(inc.covering_radius > 0.0);
        assert!(inc.sigma_tilde < 1e-4); // linear target, representable up to LP tolerance
    }

    #[test]
    fn rejects_bad_config() {
        let k = |_: &[f64]| 0.0;
        assert!(matches!(
            approximate_controller(&k, 1.0, &[], &ApproxOptions::default()),
            Err(SnbcError::Config(_))
        ));
        assert!(matches!(
            approximate_controller(&k, f64::NAN, &[(-1.0, 1.0)], &ApproxOptions::default()),
            Err(SnbcError::Config(_))
        ));
    }
}

/// Computes the polynomial inclusion of an MLP controller with a **verified**
/// error bound certified by interval branch-and-bound (mean-value form),
/// falling back to the Theorem 2 Lipschitz bound when certification does not
/// tighten it.
///
/// In high dimension the rectangular mesh is replaced by a capped Halton set
/// whose covering radius — and hence the `½sL` gap term — grows quickly; the
/// direct certification of `|k(x) − h(x)| ≤ σ` over the box sidesteps that
/// conservatism entirely while remaining sound (interval arithmetic
/// over-approximates both the network and the polynomial).
///
/// # Errors
///
/// Same as [`approximate_controller`].
///
/// # Example
///
/// ```no_run
/// use snbc::{approximate_mlp, ApproxOptions};
/// use snbc_nn::{Activation, Mlp};
///
/// let net = Mlp::new(&[2, 8, 1], Activation::Tanh, 1);
/// let inc = approximate_mlp(&net, &[(-1.0, 1.0), (-1.0, 1.0)], &ApproxOptions::default())?;
/// assert!(inc.sigma_star >= inc.sigma_tilde);
/// # Ok::<(), snbc::SnbcError>(())
/// ```
pub fn approximate_mlp(
    mlp: &snbc_nn::Mlp,
    domain: &[(f64, f64)],
    opts: &ApproxOptions,
) -> Result<PolynomialInclusion, SnbcError> {
    // This wrapper owns the "approx" span so σ* is reported *after* the
    // branch-and-bound tightening below; the inner call runs with its own
    // telemetry off (the LP still reports into the shared recorder). The
    // trace sink is still forwarded so the inner mesh evaluation emits its
    // per-chunk `mesh-chunk` worker spans.
    let telemetry = opts.telemetry.clone();
    let _span = telemetry.span("approx");
    let mut inner = opts.clone();
    inner.telemetry = snbc_telemetry::Telemetry::off().with_trace(telemetry.trace().clone());
    if telemetry.is_recording() && !inner.lp.telemetry.is_recording() {
        inner.lp.telemetry = telemetry.clone();
    }
    let mut base = approximate_controller(
        &|x| mlp.forward(x),
        mlp.lipschitz_bound(),
        domain,
        &inner,
    )?;
    // Escalating σ levels between the sampled optimum and the Lipschitz
    // fallback; accept the first level branch-and-bound can certify. A cheap
    // dense probe seeds the first level (a level below the probed sup can
    // never certify), and the box budget grows with the dimension, where
    // each bound-tightening split costs more.
    let n = domain.len();
    let probes = snbc_dynamics::sample_box_halton(domain, 4000);
    // max is exact under reordering, so a fixed-grid map-reduce keeps the
    // probed seed bitwise identical at any thread count.
    let probes_ref = &probes;
    let h_ref = &base.h;
    let probed = snbc_par::par_map_reduce(
        probes.len(),
        512,
        |r| {
            let mut worst: f64 = 0.0;
            for p in &probes_ref[r] {
                worst = worst.max((mlp.forward(p) - h_ref.eval(p)).abs());
            }
            worst
        },
        f64::max,
    )
    .unwrap_or(0.0);
    let budget = 60_000usize.saturating_mul(1 + n / 4);
    let mut sigma = (probed * 1.2 + 1e-4).max(base.sigma_tilde);
    while sigma < base.sigma_star {
        if certify_inclusion_error(mlp, &base.h, domain, sigma, budget, telemetry.trace()) {
            base.sigma_star = sigma;
            break;
        }
        sigma *= 1.5;
    }
    record_inclusion(&telemetry, &base);
    Ok(base)
}

/// Branch-and-bound proof of `|k(x) − h(x)| ≤ σ` over the box, combining
/// three sound per-box bounds and taking the tightest:
///
/// * the direct interval extension,
/// * the mean-value form `d(x) ∈ d(mid) + ∇d(box)·(box − mid)`,
/// * a CROWN-style *chord relaxation* of single-hidden-layer tanh networks:
///   each neuron's activation is enclosed between two parallel lines with
///   the chord slope, giving `k(x) ∈ aᵀx + b + [e_lo, e_hi]` with an exact
///   affine part — the envelope collapses for near-linear controllers and is
///   what keeps 9–12-dimensional certification tractable.
///
/// Box evaluations run through the deterministic parallel wave engine
/// ([`snbc_interval::wave_search`]); when `trace` records, per-chunk
/// `bb-boxes` spans show the fan-out per worker in the Perfetto timeline.
fn certify_inclusion_error(
    mlp: &snbc_nn::Mlp,
    h: &Polynomial,
    domain: &[(f64, f64)],
    sigma: f64,
    max_boxes: usize,
    trace: &snbc_trace::Trace,
) -> bool {
    use snbc_interval::{eval_range, wave_search, widest_axis, BoxEval, Interval};
    let n = domain.len();
    let h_grad: Vec<Polynomial> = (0..n).map(|i| h.partial(i)).collect();
    let root: Vec<Interval> = domain.iter().map(|&(lo, hi)| Interval::new(lo, hi)).collect();
    let outcome = wave_search(root, max_boxes, trace, |bx| {
        let mid: Vec<f64> = bx.iter().map(|iv| iv.mid()).collect();
        let d_mid = mlp.forward(&mid) - h.eval(&mid);
        if d_mid.abs() > sigma {
            // Concrete violation of this σ level: abort the whole search.
            return BoxEval::Refuted { witness: mid, value: d_mid };
        }
        // Direct form.
        let k_range = mlp.forward_interval(bx);
        let h_range = eval_range(h, bx);
        let direct = (k_range - h_range).hi().abs().max((k_range - h_range).lo().abs());
        // Mean-value form.
        let kg = mlp.gradient_interval(bx);
        let mut mv = d_mid.abs();
        for (i, iv) in bx.iter().enumerate() {
            let hg = eval_range(&h_grad[i], bx);
            let gmax = (kg[i] - hg).hi().abs().max((kg[i] - hg).lo().abs());
            mv += gmax * iv.width() * 0.5;
        }
        // Chord relaxation.
        let chord = chord_bound(mlp, h, bx).unwrap_or(f64::INFINITY);
        if direct.min(mv).min(chord) <= sigma {
            return BoxEval::Discharged;
        }
        match widest_axis(bx) {
            Some((_, width)) if width >= 1e-6 => BoxEval::Split,
            // Cannot prove at this precision: give up on this σ level.
            _ => BoxEval::Refuted { witness: mid, value: d_mid },
        }
    });
    outcome.refuted.is_none() && outcome.exhausted.is_none()
}

/// CROWN-style bound of `max |k(x) − h(x)|` over the box for
/// single-hidden-layer tanh MLPs; `None` for other shapes.
fn chord_bound(
    mlp: &snbc_nn::Mlp,
    h: &Polynomial,
    bx: &[snbc_interval::Interval],
) -> Option<f64> {
    use snbc_interval::{eval_range, Interval};
    if mlp.layer_sizes().len() != 3 || mlp.activation() != snbc_nn::Activation::Tanh {
        return None;
    }
    let n = mlp.input_dim();
    let hidden = mlp.layer_sizes()[1];
    let w1 = mlp.weight_matrix(0);
    let w2 = mlp.weight_matrix(1);
    let params = mlp.params();
    let b1_off = n * hidden;
    let b2_off = b1_off + hidden + hidden;
    let out_bias = params[b2_off];

    // Affine enclosure of the network: k(x) ∈ aᵀx + b0 + [e_lo, e_hi].
    let mut a = vec![0.0; n];
    let mut b0 = out_bias;
    let mut env = Interval::point(0.0);
    for j in 0..hidden {
        // Pre-activation range (exact for the affine map).
        let mut z = Interval::point(params[b1_off + j]);
        for (i, iv) in bx.iter().enumerate() {
            z = z + *iv * w1[(j, i)];
        }
        let (l, u) = (z.lo(), z.hi());
        let (slope, dev) = tanh_chord_envelope(l, u);
        let v = w2[(0, j)];
        for (i, ai) in a.iter_mut().enumerate() {
            *ai += v * slope * w1[(j, i)];
        }
        b0 += v * slope * params[b1_off + j];
        env = env + dev * v;
    }
    // Range of (aᵀx + b0 − h(x)) over the box, plus the envelope.
    let mut affine = Polynomial::constant(b0);
    for (i, &ai) in a.iter().enumerate() {
        affine.add_term(ai, snbc_poly::Monomial::var(i));
    }
    let poly_part = &affine - h;
    let r = eval_range(&poly_part, bx) + env;
    Some(r.hi().abs().max(r.lo().abs()))
}

/// Parallel-chord envelope of `tanh` on `[l, u]`: returns `(s, dev)` with
/// `tanh(z) ∈ s·z + dev` for all `z ∈ [l, u]`.
fn tanh_chord_envelope(l: f64, u: f64) -> (f64, snbc_interval::Interval) {
    use snbc_interval::Interval;
    let width = u - l;
    let s = if width < 1e-12 {
        1.0 - l.tanh().powi(2)
    } else {
        (u.tanh() - l.tanh()) / width
    };
    // g(z) = tanh(z) − s·z is extremal at the endpoints or where
    // tanh'(z) = s ⇔ tanh(z) = ±√(1−s).
    let g = |z: f64| z.tanh() - s * z;
    let mut lo = g(l).min(g(u));
    let mut hi = g(l).max(g(u));
    if (0.0..=1.0).contains(&s) {
        let t = (1.0 - s).sqrt();
        for root in [t.atanh(), (-t).atanh()] {
            if root.is_finite() && root > l && root < u {
                lo = lo.min(g(root));
                hi = hi.max(g(root));
            }
        }
    }
    (s, Interval::new(lo, hi))
}

#[cfg(test)]
mod chord_tests {
    use super::*;
    use snbc_interval::Interval;
    use snbc_nn::{Activation, Mlp};

    #[test]
    fn tanh_envelope_is_sound() {
        for (l, u) in [(-3.0, 2.0), (-0.5, 0.5), (0.1, 4.0), (-4.0, -1.0)] {
            let (s, dev) = tanh_chord_envelope(l, u);
            for i in 0..=100 {
                let z = l + (u - l) * i as f64 / 100.0;
                let g = z.tanh() - s * z;
                assert!(
                    dev.lo() - 1e-12 <= g && g <= dev.hi() + 1e-12,
                    "envelope {dev} misses g({z}) = {g} on [{l}, {u}]"
                );
            }
        }
    }

    #[test]
    fn chord_bound_is_sound_and_tighter_when_near_linear() {
        let net = Mlp::new(&[3, 8, 1], Activation::Tanh, 9);
        let h: Polynomial = "0.1*x0 - 0.2*x1".parse().unwrap();
        let bx = vec![Interval::new(-0.8, 0.8); 3];
        let bound = chord_bound(&net, &h, &bx).expect("single hidden layer");
        // Probe the true sup.
        let mut sup: f64 = 0.0;
        for p in snbc_dynamics::sample_box_halton(&[(-0.8, 0.8); 3], 4000) {
            sup = sup.max((net.forward(&p) - h.eval(&p)).abs());
        }
        assert!(bound >= sup - 1e-9, "chord bound {bound} < probed sup {sup}");
    }

    #[test]
    fn chord_bound_none_for_deep_networks() {
        let net = Mlp::new(&[2, 4, 4, 1], Activation::Tanh, 1);
        let bx = vec![Interval::new(-1.0, 1.0); 2];
        assert!(chord_bound(&net, &Polynomial::zero(), &bx).is_none());
    }
}

#[cfg(test)]
mod mlp_inclusion_tests {
    use super::*;
    use snbc_nn::{Activation, Mlp};

    #[test]
    fn certified_bound_is_sound_and_tighter() {
        let net = Mlp::new(&[2, 8, 1], Activation::Tanh, 3);
        let domain = [(-1.5, 1.5), (-1.5, 1.5)];
        let opts = ApproxOptions::default();
        let lip = approximate_controller(&|x| net.forward(x), net.lipschitz_bound(), &domain, &opts)
            .unwrap();
        let cert = approximate_mlp(&net, &domain, &opts).unwrap();
        assert!(cert.sigma_star <= lip.sigma_star + 1e-12);
        // Soundness against dense probing.
        let mut sup: f64 = 0.0;
        for p in snbc_dynamics::sample_box_halton(&domain, 20_000) {
            sup = sup.max((net.forward(&p) - cert.h.eval(&p)).abs());
        }
        assert!(sup <= cert.sigma_star + 1e-9, "probed {sup} > certified {}", cert.sigma_star);
    }

    #[test]
    fn high_dimension_certification_beats_lipschitz_gap() {
        // 6-D: the Halton covering radius makes the Lipschitz bound useless;
        // the interval certification stays near the sampled error.
        let net = Mlp::new(&[6, 8, 1], Activation::Tanh, 5);
        let domain = vec![(-2.0, 2.0); 6];
        let opts = ApproxOptions {
            max_mesh_points: 2000,
            ..Default::default()
        };
        let cert = approximate_mlp(&net, &domain, &opts).unwrap();
        let lip_gap = net.lipschitz_bound() * cert.covering_radius;
        assert!(
            cert.sigma_star < 0.5 * (cert.sigma_tilde + lip_gap),
            "certified {} not tighter than Lipschitz {}",
            cert.sigma_star,
            cert.sigma_tilde + lip_gap
        );
    }
}
