//! Self-time profile tree: the textual "where did the time go" view of a
//! trace dump.
//!
//! Span begin/end pairs from every track are folded into one tree keyed by
//! span-name path (repeated spans under the same parent merge, so the two
//! `round` spans of a 2-round CEGIS run show as one node with `count = 2`).
//! Each node reports:
//!
//! - `total` — wall-clock between begin and end, summed over instances;
//! - `self` — `total` minus the time covered by child spans (the span's own
//!   work, e.g. Schur assembly inside `sdp` not attributed to a sub-span);
//! - `count` — span instances merged into the node;
//! - `events` — iteration records (IPM iterations, epochs, ascent restarts)
//!   that fired while the span was innermost.
//!
//! Spans still open when the dump was taken are closed at their track's
//! last timestamp, so a mid-run profile still adds up.

use crate::chrome::ChromeTrace;
use crate::EventKind;

#[derive(Debug, Default)]
struct Node {
    count: u64,
    total_us: u64,
    self_us: u64,
    events: u64,
    children: Vec<(String, Node)>,
}

impl Node {
    fn child(&mut self, name: &str) -> &mut Node {
        if let Some(i) = self.children.iter().position(|(n, _)| n == name) {
            return &mut self.children[i].1;
        }
        self.children.push((name.to_string(), Node::default()));
        let last = self.children.len() - 1;
        &mut self.children[last].1
    }
}

/// Renders the merged self-time tree of `trace` as aligned text, children
/// sorted by total time (descending; ties by name).
pub fn profile_text(trace: &ChromeTrace) -> String {
    let mut root = Node::default();
    for track in &trace.tracks {
        fold_track(&mut root, track);
    }
    let mut out = String::from(
        "  total(ms)    self(ms)  count  events  span\n",
    );
    render(&root, 0, &mut out);
    if trace.dropped > 0 {
        out.push_str(&format!("  ({} event(s) dropped at capacity)\n", trace.dropped));
    }
    out
}

/// One open span while folding: its path within the track plus bookkeeping
/// to compute self time.
struct Open {
    path: Vec<String>,
    span_id: u64,
    started_us: u64,
    child_us: u64,
    events: u64,
}

fn fold_track(root: &mut Node, track: &crate::Track) {
    let last_ts = track.events.last().map_or(0, |e| e.ts_us);
    let mut stack: Vec<Open> = Vec::new();
    for e in &track.events {
        match &e.kind {
            EventKind::SpanBegin { name, span_id, .. } => {
                let mut path = stack.last().map_or_else(Vec::new, |o| o.path.clone());
                path.push(name.clone());
                stack.push(Open {
                    path,
                    span_id: *span_id,
                    started_us: e.ts_us,
                    child_us: 0,
                    events: 0,
                });
            }
            EventKind::SpanEnd { span_id, .. } => {
                // Pop until (and including) the matching begin; intervening
                // spans (force-closed out of LIFO order) close here too.
                while let Some(open) = stack.pop() {
                    let matched = open.span_id == *span_id;
                    close(root, open, e.ts_us, &mut stack);
                    if matched {
                        break;
                    }
                }
            }
            _ => {
                if let Some(open) = stack.last_mut() {
                    open.events += 1;
                } else {
                    root.events += 1;
                }
            }
        }
    }
    // Spans still open at snapshot time: close them at the last timestamp.
    while let Some(open) = stack.pop() {
        close(root, open, last_ts, &mut stack);
    }
}

fn close(root: &mut Node, open: Open, end_us: u64, stack: &mut Vec<Open>) {
    let dur = end_us.saturating_sub(open.started_us);
    let node = open.path.iter().fold(&mut *root, |n, name| n.child(name));
    node.count += 1;
    node.total_us += dur;
    node.self_us += dur.saturating_sub(open.child_us);
    node.events += open.events;
    if let Some(parent) = stack.last_mut() {
        parent.child_us += dur;
    }
}

fn render(node: &Node, depth: usize, out: &mut String) {
    let mut order: Vec<&(String, Node)> = node.children.iter().collect();
    order.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(&b.0)));
    for (name, child) in order {
        let ms = |us: u64| us as f64 / 1000.0;
        out.push_str(&format!(
            "{:>11.3} {:>11.3} {:>6} {:>7}  {}{}\n",
            ms(child.total_us),
            ms(child.self_us),
            child.count,
            child.events,
            "  ".repeat(depth),
            name
        ));
        render(child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChromeTrace, Event, Track};

    fn ev(ts_us: u64, kind: EventKind) -> Event {
        Event { ts_us, kind }
    }

    fn begin(name: &str, span_id: u64) -> EventKind {
        EventKind::SpanBegin {
            name: name.to_string(),
            index: None,
            span_id,
        }
    }

    fn end(name: &str, span_id: u64) -> EventKind {
        EventKind::SpanEnd {
            name: name.to_string(),
            span_id,
        }
    }

    #[test]
    fn self_time_subtracts_children_and_merges_instances() {
        let events = vec![
            ev(0, begin("cegis", 1)),
            ev(100, begin("round", 2)),
            ev(100, begin("learn", 3)),
            ev(1_100, end("learn", 3)),
            ev(2_000, end("round", 2)),
            ev(2_000, begin("round", 4)),
            ev(2_500, EventKind::Epoch {
                epoch: 0,
                loss: 1.0,
                grad_norm: 0.5,
            }),
            ev(3_000, end("round", 4)),
            ev(4_000, end("cegis", 1)),
        ];
        let trace = ChromeTrace {
            tracks: vec![Track {
                tid: 1,
                label: "main".to_string(),
                events,
            }],
            dropped: 0,
        };
        let text = profile_text(&trace);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("total(ms)"));
        // cegis: total 4ms, self 4 - (1.9 + 1.0) = 1.1ms.
        assert!(lines[1].contains("cegis"), "{text}");
        assert!(lines[1].contains("4.000") && lines[1].contains("1.100"), "{text}");
        // round: two instances merged, total 2.9ms, self 2.9 - 1.0 = 1.9ms,
        // one epoch event.
        assert!(lines[2].contains("round") && lines[2].contains("2.900"), "{text}");
        assert!(lines[2].contains("  2 "), "{text}");
        assert!(lines[3].contains("learn") && lines[3].contains("1.000"), "{text}");
    }

    #[test]
    fn open_spans_and_multiple_tracks_still_account() {
        let trace = ChromeTrace {
            tracks: vec![
                Track {
                    tid: 1,
                    label: "main".to_string(),
                    events: vec![ev(0, begin("cegis", 1)), ev(5_000, EventKind::Epoch {
                        epoch: 0,
                        loss: 0.0,
                        grad_norm: 0.0,
                    })],
                },
                Track {
                    tid: 2,
                    label: "w1".to_string(),
                    events: vec![
                        ev(1_000, begin("sdp", 2)),
                        ev(3_000, end("sdp", 2)),
                    ],
                },
            ],
            dropped: 2,
        };
        let text = profile_text(&trace);
        // cegis closed at its track's last timestamp (5ms), one event inside.
        assert!(text.contains("cegis"));
        assert!(text.contains("5.000"), "{text}");
        // Worker-track span appears as its own top-level node.
        assert!(text.contains("sdp"));
        assert!(text.contains("2.000"), "{text}");
        assert!(text.contains("2 event(s) dropped"), "{text}");
    }
}
