//! Iteration-level event tracing for the SNBC CEGIS pipeline.
//!
//! `snbc-telemetry` records one *aggregate* metric set per solve (epochs,
//! final loss, IPM iteration counts); when the loop stalls that is not
//! enough to see *why* — which interior-point iteration of LMI (13)–(15)
//! plateaued (paper §4.2), how the learner loss (10) moved across epochs
//! (§4.1), or how far each counterexample gradient-ascent restart climbed
//! (§4.3). This crate is the std-only, zero-dependency event stream that
//! captures exactly those trajectories, cheap enough to leave compiled in:
//!
//! - [`Trace`] is a cheap cloneable handle. **Off** (the default) it holds
//!   no sink, so every emit is a single branch on a null pointer — no clock
//!   read, no allocation. **Recording**, each thread appends to its own
//!   ring-buffered lane behind an uncontended per-lane mutex (one
//!   uncontested atomic exchange on the fast path; the lane is only ever
//!   locked from another thread during [`Trace::dump`]).
//! - Timestamps are integer microseconds from one process-wide monotonic
//!   epoch ([`now_us`]), so events from different threads order globally
//!   and serialize byte-stably.
//! - [`Stopwatch`] is the sanctioned wall-clock primitive for the rest of
//!   the workspace: the `snbc-audit` rule `raw-instant` flags any direct
//!   `Instant::now()` outside `crates/{trace,telemetry,par}`.
//! - Worker identity: `snbc-par` labels every spawned worker thread via
//!   [`enter_worker`], and [`Trace::dump`] groups lanes by that label, so
//!   the Chrome trace-event export ([`chrome`]) shows one track per worker
//!   (`main`, `w1`, `w2.1`, …) — load the file in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`.
//! - [`profile`] renders the same dump as a self-time profile tree in
//!   plain text.
//!
//! Span events carry the same ids the `snbc-run-report/1` span tree stores
//! in its `trace_id` fields (see `snbc-telemetry`), so a report span can be
//! located on the timeline and vice versa. See `docs/TRACING.md` for the
//! full schema, clock semantics, and overhead numbers.
//!
//! # Example
//!
//! ```
//! use snbc_trace::{IpmSample, Trace};
//!
//! let trace = Trace::recording();
//! let span = trace.begin_span("sdp", None);
//! trace.ipm_iter("sdp", IpmSample { iter: 0, mu: 1.5e-3, ..Default::default() });
//! trace.end_span("sdp", span);
//! let dump = trace.dump().unwrap();
//! assert_eq!(dump.event_count(), 3);
//! let json = dump.to_json_string();
//! let back = snbc_trace::ChromeTrace::parse(&json).unwrap();
//! assert_eq!(back.to_json_string(), json); // byte-identical round-trip
//! ```

pub mod chrome;
pub mod json;
pub mod profile;

pub use chrome::{ChromeTrace, Track, SCHEMA};

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Trace clock

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds elapsed since the process-wide trace epoch.
///
/// The epoch is pinned by the first clock use in the process (creating a
/// recording [`Trace`] pins it eagerly), so all threads share one monotonic
/// time base and every recorded timestamp fits an exact integer — which is
/// what makes the Chrome export byte-stable under re-encoding.
pub fn now_us() -> u64 {
    let us = EPOCH.get_or_init(Instant::now).elapsed().as_micros();
    u64::try_from(us).unwrap_or(u64::MAX)
}

/// A monotonic stopwatch over the trace clock.
///
/// This is the sanctioned replacement for raw `std::time::Instant::now()`
/// in solver and pipeline code: the `snbc-audit` `raw-instant` rule keeps
/// ad-hoc clock reads out of the hot paths so all timing flows through one
/// primitive that the tracer can reason about.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch at the current instant.
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Wall-clock time elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed seconds as `f64` (convenience for report gauges).
    #[inline]
    pub fn elapsed_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

// ---------------------------------------------------------------------------
// Events

/// One recorded event: an integer-microsecond timestamp plus a payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the trace epoch (see [`now_us`]).
    pub ts_us: u64,
    /// The typed payload.
    pub kind: EventKind,
}

/// The typed event payloads the pipeline emits.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A telemetry span opened (`name`/`index` mirror the run-report span;
    /// `span_id` is the shared id stored in the report's `trace_id` field).
    SpanBegin {
        /// Static span name (`"cegis"`, `"round"`, `"sdp"`, …).
        name: String,
        /// Optional span index (the CEGIS round number).
        index: Option<u64>,
        /// Globally unique span id shared with the run report.
        span_id: u64,
    },
    /// The matching span close.
    SpanEnd {
        /// Name of the span being closed (repeated so Chrome `E` events are
        /// self-contained).
        name: String,
        /// Id from the matching [`EventKind::SpanBegin`].
        span_id: u64,
    },
    /// One interior-point iteration of the LP (§3) or SDP (§4.2) solver.
    IpmIter {
        /// `"sdp"` or `"lp"`.
        solver: String,
        /// The per-iteration quantities.
        sample: IpmSample,
    },
    /// One learner epoch of loss (10) minimization (§4.1).
    Epoch {
        /// Epoch number within the current `learn` span, from 0.
        epoch: u64,
        /// Loss value after the epoch.
        loss: f64,
        /// Euclidean norm of the reduced gradient driving the Adam step.
        grad_norm: f64,
    },
    /// One finished counterexample gradient-ascent restart (§4.3).
    Ascent {
        /// Restart index within the current `search-*` span, from 0.
        restart: u64,
        /// Ascent steps the restart actually took before converging.
        steps: u64,
        /// Best violation value the restart reached.
        best: f64,
    },
}

/// Per-iteration quantities of a primal–dual interior-point solver: the
/// duality measure, relative residuals, step lengths, and the Cholesky
/// factorizations the iteration spent (line searches included).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IpmSample {
    /// Iteration number within the solve, from 0.
    pub iter: u64,
    /// Duality measure μ = ⟨x, z⟩ / n.
    pub mu: f64,
    /// Relative primal residual.
    pub rp_rel: f64,
    /// Relative dual residual.
    pub rd_rel: f64,
    /// Relative duality gap.
    pub gap_rel: f64,
    /// Primal step length α_p taken this iteration.
    pub alpha_p: f64,
    /// Dual step length α_d taken this iteration.
    pub alpha_d: f64,
    /// Cholesky factorizations performed this iteration.
    pub cholesky: u64,
}

// ---------------------------------------------------------------------------
// Worker labels (thread-local)

thread_local! {
    /// Current worker label plus a generation counter bumped on every label
    /// change (the lane cache keys on the generation, not the string).
    static WORKER: RefCell<(String, u64)> = const { RefCell::new((String::new(), 0)) };
    /// Cached lane for the current thread: avoids the sink registry lock on
    /// every emit.
    static LANE: RefCell<Option<LaneCache>> = const { RefCell::new(None) };
}

struct LaneCache {
    sink: usize,
    generation: u64,
    lane: Arc<Lane>,
}

/// The current thread's worker label (`"main"` when no worker scope is
/// active — i.e. on the caller thread of every `snbc-par` scope).
pub fn current_worker() -> String {
    WORKER.with(|w| {
        let b = w.borrow();
        if b.0.is_empty() {
            "main".to_string()
        } else {
            b.0.clone()
        }
    })
}

/// Track label for worker `wid` spawned from a worker labelled `parent`:
/// `main → w1`, nested scopes append a dot segment (`w1 → w1.2`).
pub fn child_worker_label(parent: &str, wid: usize) -> String {
    if parent == "main" {
        format!("w{wid}")
    } else {
        format!("{parent}.{wid}")
    }
}

/// RAII guard installed by `snbc-par` on spawned worker threads; restores
/// the previous label (and invalidates the lane cache) on drop.
#[derive(Debug)]
#[must_use = "the worker label is removed when the guard is dropped"]
pub struct WorkerGuard {
    prev: String,
}

/// Labels the current thread as worker `label` until the guard drops.
/// Subsequent events emitted from this thread land on the track named
/// `label` in the Chrome export.
pub fn enter_worker(label: String) -> WorkerGuard {
    WORKER.with(|w| {
        let mut b = w.borrow_mut();
        let prev = std::mem::replace(&mut b.0, label);
        b.1 += 1;
        WorkerGuard { prev }
    })
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        WORKER.with(|w| {
            let mut b = w.borrow_mut();
            b.0 = std::mem::take(&mut self.prev);
            b.1 += 1;
        });
    }
}

// ---------------------------------------------------------------------------
// Sink

/// Default per-lane event capacity (events beyond it are counted as dropped,
/// not silently lost: the count lands in the export's `otherData.dropped`).
pub const DEFAULT_LANE_CAPACITY: usize = 1 << 20;

#[derive(Debug)]
struct Lane {
    label: String,
    /// Registration order; tie-break when merging same-label lanes.
    seq: usize,
    events: Mutex<Vec<Event>>,
}

#[derive(Debug)]
struct Sink {
    capacity: usize,
    lanes: Mutex<Vec<Arc<Lane>>>,
    next_span_id: AtomicU64,
    dropped: AtomicU64,
}

impl Sink {
    fn register_lane(&self, label: String) -> Arc<Lane> {
        let mut lanes = match self.lanes.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        let lane = Arc::new(Lane {
            label,
            seq: lanes.len(),
            events: Mutex::new(Vec::new()),
        });
        lanes.push(Arc::clone(&lane));
        lane
    }

    fn push(&self, lane: &Lane, ev: Event) {
        let mut g = match lane.events.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        if g.len() < self.capacity {
            g.push(ev);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn lane_for_current_thread(sink: &Arc<Sink>) -> Arc<Lane> {
    let sink_ptr = Arc::as_ptr(sink) as usize;
    let generation = WORKER.with(|w| w.borrow().1);
    let cached = LANE.with(|c| {
        c.borrow().as_ref().and_then(|cache| {
            (cache.sink == sink_ptr && cache.generation == generation)
                .then(|| Arc::clone(&cache.lane))
        })
    });
    if let Some(lane) = cached {
        return lane;
    }
    let lane = sink.register_lane(current_worker());
    LANE.with(|c| {
        *c.borrow_mut() = Some(LaneCache {
            sink: sink_ptr,
            generation,
            lane: Arc::clone(&lane),
        });
    });
    lane
}

// ---------------------------------------------------------------------------
// Handle

/// Handle to a trace sink, threaded through solver and CEGIS configs
/// alongside `snbc_telemetry::Telemetry`.
///
/// `Trace::default()` (equivalently [`Trace::off`]) is the disabled sink:
/// every emit method is an inlineable null-pointer branch. Clones of a
/// [`Trace::recording`] handle share one sink; each emitting thread gets
/// its own event lane, so recording is safe (and cheap) from any number of
/// `snbc-par` workers concurrently.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    sink: Option<Arc<Sink>>,
}

impl Trace {
    /// The disabled sink (same as `Trace::default()`).
    #[inline]
    pub fn off() -> Trace {
        Trace { sink: None }
    }

    /// A fresh recording sink with the default per-lane capacity.
    pub fn recording() -> Trace {
        Trace::recording_with_capacity(DEFAULT_LANE_CAPACITY)
    }

    /// A fresh recording sink holding at most `capacity` events per lane;
    /// events past the cap increment the dropped-event counter instead of
    /// growing memory without bound.
    pub fn recording_with_capacity(capacity: usize) -> Trace {
        now_us(); // pin the shared epoch before the first event
        Trace {
            sink: Some(Arc::new(Sink {
                capacity,
                lanes: Mutex::new(Vec::new()),
                next_span_id: AtomicU64::new(1),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    fn emit(&self, kind: EventKind) {
        if let Some(sink) = &self.sink {
            let ts_us = now_us();
            let lane = lane_for_current_thread(sink);
            sink.push(&lane, Event { ts_us, kind });
        }
    }

    /// Records a span-begin event and returns its globally unique span id
    /// (0 when disabled). `snbc-telemetry` stores the id in the run report
    /// (`trace_id`), so report spans and trace spans are cross-referencable.
    pub fn begin_span(&self, name: &str, index: Option<u64>) -> u64 {
        match &self.sink {
            None => 0,
            Some(sink) => {
                let span_id = sink.next_span_id.fetch_add(1, Ordering::Relaxed);
                self.emit(EventKind::SpanBegin {
                    name: name.to_string(),
                    index,
                    span_id,
                });
                span_id
            }
        }
    }

    /// Records the span-end event matching an earlier [`Trace::begin_span`].
    pub fn end_span(&self, name: &str, span_id: u64) {
        if self.sink.is_some() {
            self.emit(EventKind::SpanEnd {
                name: name.to_string(),
                span_id,
            });
        }
    }

    /// Records one IPM iteration of `solver` (`"sdp"` or `"lp"`).
    #[inline]
    pub fn ipm_iter(&self, solver: &str, sample: IpmSample) {
        if self.sink.is_some() {
            self.emit(EventKind::IpmIter {
                solver: solver.to_string(),
                sample,
            });
        }
    }

    /// Records one learner epoch (loss (10) value and gradient norm).
    #[inline]
    pub fn epoch(&self, epoch: u64, loss: f64, grad_norm: f64) {
        if self.sink.is_some() {
            self.emit(EventKind::Epoch {
                epoch,
                loss,
                grad_norm,
            });
        }
    }

    /// Records one finished counterexample gradient-ascent restart.
    #[inline]
    pub fn ascent(&self, restart: u64, steps: u64, best: f64) {
        if self.sink.is_some() {
            self.emit(EventKind::Ascent {
                restart,
                steps,
                best,
            });
        }
    }

    /// Snapshots all lanes into a [`ChromeTrace`]: same-label lanes are
    /// merged (timestamp-ordered) into one track, tracks are sorted by
    /// label, and tids are assigned 1..=n in that order. `None` when
    /// disabled.
    ///
    /// With the `sanitize` feature, asserts per-lane invariants first:
    /// monotone non-decreasing timestamps and no span-end without a
    /// matching span-begin on the same lane.
    pub fn dump(&self) -> Option<ChromeTrace> {
        let sink = self.sink.as_ref()?;
        let lanes: Vec<Arc<Lane>> = {
            let g = match sink.lanes.lock() {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
            g.clone()
        };
        // (label, seq, events) snapshots, stable under concurrent emits.
        let mut snaps: Vec<(String, usize, Vec<Event>)> = lanes
            .iter()
            .map(|lane| {
                let events = match lane.events.lock() {
                    Ok(g) => g.clone(),
                    Err(e) => e.into_inner().clone(),
                };
                (lane.label.clone(), lane.seq, events)
            })
            .collect();
        #[cfg(feature = "sanitize")]
        for (label, _, events) in &snaps {
            sanitize_lane(label, events);
        }
        snaps.sort_by(|a, b| (a.0.as_str(), a.1).cmp(&(b.0.as_str(), b.1)));
        let mut tracks: Vec<Track> = Vec::new();
        for (label, seq, events) in snaps {
            match tracks.last_mut() {
                Some(t) if t.label == label => {
                    // Merge same-label lanes by timestamp; ties keep the
                    // earlier-registered lane's events first.
                    let mut merged = Vec::with_capacity(t.events.len() + events.len());
                    let mut tagged: Vec<(u64, usize, usize, Event)> = Vec::new();
                    for (i, e) in t.events.drain(..).enumerate() {
                        tagged.push((e.ts_us, 0, i, e));
                    }
                    for (i, e) in events.into_iter().enumerate() {
                        tagged.push((e.ts_us, seq, i, e));
                    }
                    tagged.sort_by_key(|(ts, s, i, _)| (*ts, *s, *i));
                    merged.extend(tagged.into_iter().map(|(_, _, _, e)| e));
                    t.events = merged;
                }
                _ => tracks.push(Track {
                    tid: 0,
                    label,
                    events,
                }),
            }
        }
        for (i, t) in tracks.iter_mut().enumerate() {
            t.tid = i as u64 + 1;
        }
        Some(ChromeTrace {
            tracks,
            dropped: sink.dropped.load(Ordering::Relaxed),
        })
    }

    /// The Chrome trace-event JSON document ([`ChromeTrace::to_json_string`]);
    /// `None` when disabled.
    pub fn chrome_json(&self) -> Option<String> {
        self.dump().map(|d| d.to_json_string())
    }

    /// The self-time profile tree rendered as text
    /// ([`profile::profile_text`]); `None` when disabled.
    pub fn profile_text(&self) -> Option<String> {
        self.dump().map(|d| profile::profile_text(&d))
    }
}

/// Sanitize checks for one lane: timestamps never run backwards and every
/// span end matches an earlier begin (spans still open at snapshot time are
/// fine — the dump may be taken mid-run).
#[cfg(feature = "sanitize")]
fn sanitize_lane(label: &str, events: &[Event]) {
    let mut prev_ts = 0u64;
    let mut open: Vec<u64> = Vec::new();
    for e in events {
        assert!(
            e.ts_us >= prev_ts,
            "trace lane `{label}`: timestamp ran backwards ({} -> {})",
            prev_ts,
            e.ts_us
        );
        prev_ts = e.ts_us;
        match &e.kind {
            EventKind::SpanBegin { span_id, .. } => open.push(*span_id),
            EventKind::SpanEnd { span_id, name } => {
                let pos = open.iter().rposition(|id| id == span_id);
                assert!(
                    pos.is_some(),
                    "trace lane `{label}`: end of span `{name}` (id {span_id}) without a begin"
                );
                if let Some(p) = pos {
                    open.remove(p);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_is_inert() {
        let t = Trace::off();
        assert!(!t.is_enabled());
        assert_eq!(t.begin_span("sdp", None), 0);
        t.end_span("sdp", 0);
        t.ipm_iter("sdp", IpmSample::default());
        t.epoch(0, 1.0, 0.5);
        t.ascent(0, 10, -0.1);
        assert!(t.dump().is_none());
        assert!(t.chrome_json().is_none());
        assert!(t.profile_text().is_none());
    }

    #[test]
    fn events_record_in_order_with_monotone_timestamps() {
        let t = Trace::recording();
        let s = t.begin_span("round", Some(3));
        t.epoch(0, 2.0, 1.0);
        t.epoch(1, 1.0, 0.5);
        t.end_span("round", s);
        let dump = t.dump().unwrap();
        assert_eq!(dump.tracks.len(), 1);
        assert_eq!(dump.tracks[0].label, "main");
        let ev = &dump.tracks[0].events;
        assert_eq!(ev.len(), 4);
        assert!(matches!(ev[0].kind, EventKind::SpanBegin { span_id, index: Some(3), .. } if span_id == s));
        assert!(matches!(ev[3].kind, EventKind::SpanEnd { span_id, .. } if span_id == s));
        assert!(ev.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        assert_eq!(dump.dropped, 0);
    }

    #[test]
    fn span_ids_are_unique_across_threads() {
        let t = Trace::recording();
        let a = t.begin_span("a", None);
        let t2 = t.clone();
        let b = std::thread::spawn(move || t2.begin_span("b", None))
            .join()
            .unwrap();
        assert_ne!(a, b);
        let dump = t.dump().unwrap();
        // Two lanes with the default label merge into one `main` track.
        assert_eq!(dump.tracks.len(), 1);
        assert_eq!(dump.event_count(), 2);
    }

    #[test]
    fn worker_labels_make_tracks() {
        let t = Trace::recording();
        t.epoch(0, 1.0, 1.0);
        let parent = current_worker();
        assert_eq!(parent, "main");
        let label = child_worker_label(&parent, 2);
        assert_eq!(label, "w2");
        assert_eq!(child_worker_label(&label, 1), "w2.1");
        let t2 = t.clone();
        std::thread::spawn(move || {
            let _g = enter_worker("w2".to_string());
            t2.epoch(1, 0.5, 0.5);
        })
        .join()
        .unwrap();
        let dump = t.dump().unwrap();
        let labels: Vec<&str> = dump.tracks.iter().map(|t| t.label.as_str()).collect();
        assert_eq!(labels, vec!["main", "w2"]);
    }

    #[test]
    fn worker_guard_restores_previous_label() {
        let outer = enter_worker("w1".to_string());
        assert_eq!(current_worker(), "w1");
        {
            let _inner = enter_worker("w1.3".to_string());
            assert_eq!(current_worker(), "w1.3");
        }
        assert_eq!(current_worker(), "w1");
        drop(outer);
        assert_eq!(current_worker(), "main");
    }

    #[test]
    fn capacity_overflow_counts_drops() {
        let t = Trace::recording_with_capacity(2);
        for i in 0..5 {
            t.epoch(i, 0.0, 0.0);
        }
        let dump = t.dump().unwrap();
        assert_eq!(dump.event_count(), 2);
        assert_eq!(dump.dropped, 3);
    }

    #[test]
    fn stopwatch_measures_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed() >= Duration::from_millis(1));
        assert!(sw.elapsed_s() > 0.0);
        let sw2 = Stopwatch::default();
        assert!(sw2.elapsed() <= sw.elapsed());
    }

    #[test]
    fn clock_is_monotone() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }

    #[cfg(feature = "sanitize")]
    #[test]
    #[should_panic(expected = "without a begin")]
    fn sanitize_rejects_unmatched_end() {
        let t = Trace::recording();
        t.end_span("ghost", 42);
        let _ = t.dump();
    }

    #[cfg(feature = "sanitize")]
    #[test]
    fn sanitize_accepts_balanced_and_open_spans() {
        let t = Trace::recording();
        let a = t.begin_span("outer", None);
        let b = t.begin_span("inner", None);
        t.end_span("inner", b);
        let _still_open = t.begin_span("tail", None);
        t.end_span("outer", a); // out-of-LIFO close is still balanced
        let dump = t.dump().unwrap();
        assert_eq!(dump.event_count(), 5);
    }
}
