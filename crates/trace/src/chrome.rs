//! Chrome trace-event JSON export and (exact-subset) parser.
//!
//! The emitted document is the classic `traceEvents` array format that both
//! `chrome://tracing` and Perfetto (<https://ui.perfetto.dev>, "Open trace
//! file") load directly:
//!
//! ```json
//! {"traceEvents":[
//! {"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"main"}},
//! {"ph":"B","pid":1,"tid":1,"ts":12,"name":"cegis","args":{"span_id":1}},
//! {"ph":"i","pid":1,"tid":1,"ts":14,"s":"t","name":"sdp-ipm-iter","args":{...}},
//! {"ph":"E","pid":1,"tid":1,"ts":20,"name":"cegis","args":{"span_id":1}}
//! ],"displayTimeUnit":"ms","otherData":{"schema":"snbc-trace/1","dropped":0}}
//! ```
//!
//! One `pid` (1) holds one `tid` per worker track; `thread_name` metadata
//! events carry the worker labels, so Perfetto shows tracks `main`, `w1`,
//! `w2.1`, …. Timestamps (`ts`) are integer microseconds from the shared
//! trace clock. Span begin/end pairs (`B`/`E`) carry the run-report span id
//! in `args.span_id`; iteration records are thread-scoped instant events
//! (`ph:"i"`, `s:"t"`) named `sdp-ipm-iter` / `lp-ipm-iter` / `learn-epoch`
//! / `cex-ascent`.
//!
//! [`ChromeTrace::parse`] reads back exactly what [`ChromeTrace::to_json_string`]
//! writes; because objects are emitted in a fixed field order, timestamps
//! are integers, and floats use shortest round-trip formatting, re-encoding
//! a parsed trace reproduces the input byte for byte (the round-trip test
//! gate in `crates/trace`).

use crate::json::{self, Value};
use crate::{Event, EventKind, IpmSample};

/// Schema tag stamped into the export's `otherData` section.
pub const SCHEMA: &str = "snbc-trace/1";

/// One worker track: every event recorded under one `snbc-par` worker
/// label, timestamp-ordered.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    /// Chrome thread id (1-based, assigned in label sort order).
    pub tid: u64,
    /// Worker label (`"main"`, `"w1"`, `"w2.1"`, …).
    pub label: String,
    /// The track's events, timestamp-ordered.
    pub events: Vec<Event>,
}

/// A complete trace snapshot: per-worker tracks plus the dropped-event count.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeTrace {
    /// Tracks sorted by label.
    pub tracks: Vec<Track>,
    /// Events discarded because a lane hit its ring-buffer capacity.
    pub dropped: u64,
}

impl ChromeTrace {
    /// Total number of events across all tracks.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Thread-count-invariant ordering keys: every event reduced to a string
    /// that excludes timestamps, track assignment, and span-id allocation
    /// order, returned sorted. Two runs of a deterministic pipeline at
    /// different `SNBC_THREADS` settings must produce identical key lists
    /// (enforced by `tests/par_determinism.rs`).
    pub fn ordering_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = Vec::with_capacity(self.event_count());
        for track in &self.tracks {
            for e in &track.events {
                keys.push(match &e.kind {
                    EventKind::SpanBegin { name, index, .. } => {
                        format!("B:{name}:{index:?}")
                    }
                    EventKind::SpanEnd { name, .. } => format!("E:{name}"),
                    EventKind::IpmIter { solver, sample } => format!(
                        "ipm:{solver}:{}:{:016x}:{:016x}:{:016x}:{:016x}:{:016x}:{:016x}:{}",
                        sample.iter,
                        sample.mu.to_bits(),
                        sample.rp_rel.to_bits(),
                        sample.rd_rel.to_bits(),
                        sample.gap_rel.to_bits(),
                        sample.alpha_p.to_bits(),
                        sample.alpha_d.to_bits(),
                        sample.cholesky
                    ),
                    EventKind::Epoch {
                        epoch,
                        loss,
                        grad_norm,
                    } => format!(
                        "epoch:{epoch}:{:016x}:{:016x}",
                        loss.to_bits(),
                        grad_norm.to_bits()
                    ),
                    EventKind::Ascent {
                        restart,
                        steps,
                        best,
                    } => format!("ascent:{restart}:{steps}:{:016x}", best.to_bits()),
                });
            }
        }
        keys.sort();
        keys
    }

    /// Serializes to the Chrome trace-event JSON document (one event per
    /// line, trailing newline).
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for track in &self.tracks {
            write_line(&mut out, &mut first, &meta_value(track));
        }
        for track in &self.tracks {
            for e in &track.events {
                write_line(&mut out, &mut first, &event_value(track.tid, e));
            }
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":");
        let other = Value::Obj(vec![
            ("schema".to_string(), Value::Str(SCHEMA.to_string())),
            ("dropped".to_string(), Value::Int(self.dropped)),
        ]);
        out.push_str(&other.to_compact_string());
        out.push_str("}\n");
        out
    }

    /// Parses a document produced by [`ChromeTrace::to_json_string`].
    ///
    /// Only the subset this crate emits is accepted; anything else (unknown
    /// event names, missing metadata, wrong schema tag) is an error string.
    pub fn parse(text: &str) -> Result<ChromeTrace, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        match v
            .get("otherData")
            .and_then(|o| o.get("schema"))
            .and_then(Value::as_str)
        {
            Some(SCHEMA) => {}
            Some(other) => return Err(format!("unsupported trace schema `{other}`")),
            None => return Err("missing `otherData.schema`".to_string()),
        }
        let dropped = v
            .get("otherData")
            .and_then(|o| o.get("dropped"))
            .and_then(Value::as_u64)
            .ok_or("missing `otherData.dropped`")?;
        let events = v
            .get("traceEvents")
            .and_then(Value::as_array)
            .ok_or("missing `traceEvents` array")?;
        let mut tracks: Vec<Track> = Vec::new();
        for ev in events {
            let ph = ev.get("ph").and_then(Value::as_str).ok_or("event missing `ph`")?;
            let tid = ev.get("tid").and_then(Value::as_u64).ok_or("event missing `tid`")?;
            if ph == "M" {
                let label = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .ok_or("metadata event missing `args.name`")?;
                tracks.push(Track {
                    tid,
                    label: label.to_string(),
                    events: Vec::new(),
                });
                continue;
            }
            let ts_us = ev.get("ts").and_then(Value::as_u64).ok_or("event missing `ts`")?;
            let kind = parse_kind(ph, ev)?;
            let track = tracks
                .iter_mut()
                .find(|t| t.tid == tid)
                .ok_or_else(|| format!("event references unknown tid {tid}"))?;
            track.events.push(Event { ts_us, kind });
        }
        Ok(ChromeTrace { tracks, dropped })
    }

    /// Renders the self-time profile tree ([`crate::profile::profile_text`]).
    pub fn profile_text(&self) -> String {
        crate::profile::profile_text(self)
    }
}

fn write_line(out: &mut String, first: &mut bool, v: &Value) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(&v.to_compact_string());
}

fn meta_value(track: &Track) -> Value {
    Value::Obj(vec![
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::Int(1)),
        ("tid".to_string(), Value::Int(track.tid)),
        ("name".to_string(), Value::Str("thread_name".to_string())),
        (
            "args".to_string(),
            Value::Obj(vec![("name".to_string(), Value::Str(track.label.clone()))]),
        ),
    ])
}

fn event_value(tid: u64, e: &Event) -> Value {
    let head = |ph: &str| {
        vec![
            ("ph".to_string(), Value::Str(ph.to_string())),
            ("pid".to_string(), Value::Int(1)),
            ("tid".to_string(), Value::Int(tid)),
            ("ts".to_string(), Value::Int(e.ts_us)),
        ]
    };
    let instant = |name: String, args: Vec<(String, Value)>| {
        let mut pairs = head("i");
        pairs.push(("s".to_string(), Value::Str("t".to_string())));
        pairs.push(("name".to_string(), Value::Str(name)));
        pairs.push(("args".to_string(), Value::Obj(args)));
        Value::Obj(pairs)
    };
    match &e.kind {
        EventKind::SpanBegin {
            name,
            index,
            span_id,
        } => {
            let mut pairs = head("B");
            pairs.push(("name".to_string(), Value::Str(name.clone())));
            let mut args = vec![("span_id".to_string(), Value::Int(*span_id))];
            if let Some(i) = index {
                args.push(("index".to_string(), Value::Int(*i)));
            }
            pairs.push(("args".to_string(), Value::Obj(args)));
            Value::Obj(pairs)
        }
        EventKind::SpanEnd { name, span_id } => {
            let mut pairs = head("E");
            pairs.push(("name".to_string(), Value::Str(name.clone())));
            pairs.push((
                "args".to_string(),
                Value::Obj(vec![("span_id".to_string(), Value::Int(*span_id))]),
            ));
            Value::Obj(pairs)
        }
        EventKind::IpmIter { solver, sample } => instant(
            format!("{solver}-ipm-iter"),
            vec![
                ("iter".to_string(), Value::Int(sample.iter)),
                ("mu".to_string(), Value::Num(sample.mu)),
                ("rp_rel".to_string(), Value::Num(sample.rp_rel)),
                ("rd_rel".to_string(), Value::Num(sample.rd_rel)),
                ("gap_rel".to_string(), Value::Num(sample.gap_rel)),
                ("alpha_p".to_string(), Value::Num(sample.alpha_p)),
                ("alpha_d".to_string(), Value::Num(sample.alpha_d)),
                ("cholesky".to_string(), Value::Int(sample.cholesky)),
            ],
        ),
        EventKind::Epoch {
            epoch,
            loss,
            grad_norm,
        } => instant(
            "learn-epoch".to_string(),
            vec![
                ("epoch".to_string(), Value::Int(*epoch)),
                ("loss".to_string(), Value::Num(*loss)),
                ("grad_norm".to_string(), Value::Num(*grad_norm)),
            ],
        ),
        EventKind::Ascent {
            restart,
            steps,
            best,
        } => instant(
            "cex-ascent".to_string(),
            vec![
                ("restart".to_string(), Value::Int(*restart)),
                ("steps".to_string(), Value::Int(*steps)),
                ("best".to_string(), Value::Num(*best)),
            ],
        ),
    }
}

fn parse_kind(ph: &str, ev: &Value) -> Result<EventKind, String> {
    let name = ev
        .get("name")
        .and_then(Value::as_str)
        .ok_or("event missing `name`")?;
    let args = ev.get("args").ok_or("event missing `args`")?;
    let arg_u64 = |k: &str| {
        args.get(k)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event `{name}` missing integer arg `{k}`"))
    };
    // Non-finite measurements serialize as `null`; read them back as NaN so
    // the dump (and its re-encoding) is faithful.
    let arg_f64 = |k: &str| match args.get(k) {
        Some(Value::Null) => Ok(f64::NAN),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("event `{name}` arg `{k}` not a number")),
        None => Err(format!("event `{name}` missing numeric arg `{k}`")),
    };
    match ph {
        "B" => Ok(EventKind::SpanBegin {
            name: name.to_string(),
            index: args.get("index").and_then(Value::as_u64),
            span_id: arg_u64("span_id")?,
        }),
        "E" => Ok(EventKind::SpanEnd {
            name: name.to_string(),
            span_id: arg_u64("span_id")?,
        }),
        "i" => match name {
            "learn-epoch" => Ok(EventKind::Epoch {
                epoch: arg_u64("epoch")?,
                loss: arg_f64("loss")?,
                grad_norm: arg_f64("grad_norm")?,
            }),
            "cex-ascent" => Ok(EventKind::Ascent {
                restart: arg_u64("restart")?,
                steps: arg_u64("steps")?,
                best: arg_f64("best")?,
            }),
            n => match n.strip_suffix("-ipm-iter") {
                Some(solver) => Ok(EventKind::IpmIter {
                    solver: solver.to_string(),
                    sample: IpmSample {
                        iter: arg_u64("iter")?,
                        mu: arg_f64("mu")?,
                        rp_rel: arg_f64("rp_rel")?,
                        rd_rel: arg_f64("rd_rel")?,
                        gap_rel: arg_f64("gap_rel")?,
                        alpha_p: arg_f64("alpha_p")?,
                        alpha_d: arg_f64("alpha_d")?,
                        cholesky: arg_u64("cholesky")?,
                    },
                }),
                None => Err(format!("unknown instant event `{n}`")),
            },
        },
        other => Err(format!("unsupported event phase `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixture stream exercising every event type across two tracks.
    pub(crate) fn fixture() -> ChromeTrace {
        let main_events = vec![
            Event {
                ts_us: 10,
                kind: EventKind::SpanBegin {
                    name: "cegis".to_string(),
                    index: None,
                    span_id: 1,
                },
            },
            Event {
                ts_us: 12,
                kind: EventKind::SpanBegin {
                    name: "round".to_string(),
                    index: Some(1),
                    span_id: 2,
                },
            },
            Event {
                ts_us: 20,
                kind: EventKind::Epoch {
                    epoch: 0,
                    loss: 0.5,
                    grad_norm: 1.25,
                },
            },
            Event {
                ts_us: 900,
                kind: EventKind::SpanEnd {
                    name: "round".to_string(),
                    span_id: 2,
                },
            },
            Event {
                ts_us: 1000,
                kind: EventKind::SpanEnd {
                    name: "cegis".to_string(),
                    span_id: 1,
                },
            },
        ];
        let worker_events = vec![
            Event {
                ts_us: 30,
                kind: EventKind::SpanBegin {
                    name: "sdp".to_string(),
                    index: None,
                    span_id: 3,
                },
            },
            Event {
                ts_us: 40,
                kind: EventKind::IpmIter {
                    solver: "sdp".to_string(),
                    sample: IpmSample {
                        iter: 0,
                        mu: 1.5e-3,
                        rp_rel: 0.25,
                        rd_rel: 0.125,
                        gap_rel: 0.0625,
                        alpha_p: 0.875,
                        alpha_d: 0.75,
                        cholesky: 5,
                    },
                },
            },
            Event {
                ts_us: 55,
                kind: EventKind::Ascent {
                    restart: 2,
                    steps: 57,
                    best: -0.01,
                },
            },
            Event {
                ts_us: 60,
                kind: EventKind::SpanEnd {
                    name: "sdp".to_string(),
                    span_id: 3,
                },
            },
        ];
        ChromeTrace {
            tracks: vec![
                Track {
                    tid: 1,
                    label: "main".to_string(),
                    events: main_events,
                },
                Track {
                    tid: 2,
                    label: "w1".to_string(),
                    events: worker_events,
                },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let trace = fixture();
        let text = trace.to_json_string();
        let back = ChromeTrace::parse(&text).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn golden_export_shape() {
        let text = fixture().to_json_string();
        // Perfetto-required scaffolding.
        assert!(text.starts_with("{\"traceEvents\":[\n"));
        assert!(text.contains(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"main\"}}"
        ));
        assert!(text.contains(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"w1\"}}"
        ));
        // Span pair with shared report id and round index.
        assert!(text.contains(
            "{\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":12,\"name\":\"round\",\"args\":{\"span_id\":2,\"index\":1}}"
        ));
        assert!(text.contains(
            "{\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":900,\"name\":\"round\",\"args\":{\"span_id\":2}}"
        ));
        // Iteration record on the worker track.
        assert!(text.contains(
            "{\"ph\":\"i\",\"pid\":1,\"tid\":2,\"ts\":40,\"s\":\"t\",\"name\":\"sdp-ipm-iter\",\
             \"args\":{\"iter\":0,\"mu\":0.0015,\"rp_rel\":0.25,\"rd_rel\":0.125,\"gap_rel\":0.0625,\
             \"alpha_p\":0.875,\"alpha_d\":0.75,\"cholesky\":5}}"
        ));
        assert!(text.ends_with(
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":\"snbc-trace/1\",\"dropped\":0}}\n"
        ));
    }

    #[test]
    fn non_finite_values_survive_as_null() {
        let mut trace = fixture();
        trace.tracks[0].events.push(Event {
            ts_us: 2000,
            kind: EventKind::Epoch {
                epoch: 1,
                loss: f64::INFINITY,
                grad_norm: f64::NAN,
            },
        });
        let text = trace.to_json_string();
        assert!(text.contains("\"loss\":null,\"grad_norm\":null"));
        let back = ChromeTrace::parse(&text).unwrap();
        match &back.tracks[0].events.last().unwrap().kind {
            EventKind::Epoch { loss, grad_norm, .. } => {
                assert!(loss.is_nan() && grad_norm.is_nan());
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(ChromeTrace::parse("not json").is_err());
        assert!(ChromeTrace::parse("{}").is_err());
        let wrong_schema = fixture()
            .to_json_string()
            .replace("snbc-trace/1", "snbc-trace/999");
        assert!(ChromeTrace::parse(&wrong_schema)
            .unwrap_err()
            .contains("unsupported trace schema"));
        let unknown_event = fixture()
            .to_json_string()
            .replace("cex-ascent", "mystery-event");
        assert!(ChromeTrace::parse(&unknown_event).is_err());
        let unknown_tid = fixture().to_json_string().replace("\"tid\":2,\"ts\"", "\"tid\":9,\"ts\"");
        assert!(ChromeTrace::parse(&unknown_tid)
            .unwrap_err()
            .contains("unknown tid"));
    }

    #[test]
    fn ordering_keys_ignore_time_track_and_span_ids() {
        let a = fixture();
        let mut b = fixture();
        // Shift every timestamp, renumber span ids, and swap track labels:
        // the ordering keys must not change.
        for track in &mut b.tracks {
            for e in &mut track.events {
                e.ts_us += 12345;
                match &mut e.kind {
                    EventKind::SpanBegin { span_id, .. } | EventKind::SpanEnd { span_id, .. } => {
                        *span_id += 100;
                    }
                    _ => {}
                }
            }
        }
        b.tracks.swap(0, 1);
        assert_eq!(a.ordering_keys(), b.ordering_keys());
        // A payload change does show up.
        let mut c = fixture();
        if let EventKind::Epoch { loss, .. } = &mut c.tracks[0].events[2].kind {
            *loss = 0.75;
        }
        assert_ne!(a.ordering_keys(), c.ordering_keys());
    }
}
