//! Minimal, hand-rolled JSON value type, writer, and parser (std-only).
//!
//! This mirrors the workspace's "no external dependencies" policy: trace
//! files and run reports must be machine-readable without pulling in
//! `serde`. The module lives in `snbc-trace` (the bottom-most observability
//! crate) and is re-exported by `snbc-telemetry` for the run-report schema.
//! The subset implemented is exactly what those two schemas need:
//!
//! - Objects preserve **insertion order** (they are vectors of pairs), so a
//!   serialized report is stable across runs and diff-friendly in
//!   `bench-out/`.
//! - Numbers are written with Rust's shortest round-trip `f64` formatting;
//!   integer-valued fields (counters) are kept exact in a dedicated
//!   [`Value::Int`] variant covering the full `u64` range.
//! - Non-finite floats (`NaN`, `±inf` — e.g. a margin gauge after solver
//!   breakdown) have no JSON representation and are written as `null`.
//! - Strings support the standard escapes plus `\uXXXX` (parsed, and
//!   emitted for control characters).

use std::fmt;

/// A JSON value. Objects are ordered `(key, value)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integer (counters, indices); kept exact over `u64`.
    Int(u64),
    /// Any other number; non-finite values serialize as `null`.
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::Num(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline-free body.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        write_value(self, 0, &mut out);
        out
    }

    /// Serializes without whitespace.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        write_compact(self, &mut out);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty_string())
    }
}

fn write_value(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                push_indent(indent + 1, out);
                write_value(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Obj(pairs) if !pairs.is_empty() => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                push_indent(indent + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_value(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        _ => write_compact(v, out),
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => {
            out.push_str(&n.to_string());
        }
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn push_indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// JSON has no NaN/inf: non-finite values degrade to `null` (documented in
/// docs/TELEMETRY.md — readers treat a null gauge as "solver broke down").
fn write_number(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's `Display` for f64 is the shortest representation that
        // round-trips, and its grammar (`-?d+(.d+)?(e-?d+)?`) is valid JSON.
        out.push_str(&v.to_string());
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // `char as u32` is the codepoint and cannot lose information.
            c if (c as u32) < 0x20 => { // audit:allow(lossy-cast)
                out.push_str(&format!("\\u{:04x}", c as u32)); // audit:allow(lossy-cast)
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry a byte offset and a short message.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            // The slice between escapes is valid UTF-8 (input is &str).
            s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(
                |_| self.err("invalid UTF-8 in string"),
            )?);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are not needed for report
                            // content; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits after \\u")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !fractional && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Obj(vec![
            ("schema".to_string(), Value::Str("snbc-run-report/1".to_string())),
            ("ok".to_string(), Value::Bool(true)),
            ("count".to_string(), Value::Int(u64::MAX)),
            ("loss".to_string(), Value::Num(3.25e-4)),
            ("nothing".to_string(), Value::Null),
            (
                "items".to_string(),
                Value::Arr(vec![Value::Int(1), Value::Num(-0.5), Value::Str("γ*".to_string())]),
            ),
            ("empty_obj".to_string(), Value::Obj(vec![])),
            ("empty_arr".to_string(), Value::Arr(vec![])),
        ]);
        for text in [v.to_pretty_string(), v.to_compact_string()] {
            assert_eq!(parse(&text).unwrap(), v, "source: {text}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e300, 5e-324, -2.5, 0.0] {
            let mut out = String::new();
            write_number(x, &mut out);
            let back = parse(&out).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "value {x}");
        }
    }

    #[test]
    fn non_finite_becomes_null() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let v = Value::Num(x);
            assert_eq!(v.to_compact_string(), "null");
        }
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("a\"b\\c\nd\te\u{0001}".to_string());
        let text = v.to_compact_string();
        assert_eq!(text, r#""a\"b\\c\nd\te\u0001""#);
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(
            parse(r#""Aé""#).unwrap(),
            Value::Str("Aé".to_string())
        );
    }

    #[test]
    fn parse_errors_carry_position() {
        let e = parse("{\"a\": }").unwrap_err();
        assert_eq!(e.offset, 6);
        assert!(parse("[1, 2").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn integers_stay_exact() {
        let text = "9007199254740993"; // 2^53 + 1: not representable in f64
        assert_eq!(parse(text).unwrap(), Value::Int(9007199254740993));
        assert_eq!(parse("-3").unwrap(), Value::Num(-3.0));
    }
}
