//! **snbc-par** — a zero-dependency, std-only deterministic parallel runtime.
//!
//! The container that builds this workspace has no registry access, so the
//! usual data-parallelism crates (rayon et al.) are unavailable; this crate
//! is the first-party substitute that every hot loop in the SNBC pipeline
//! routes through (enforced by the `raw-thread` audit rule). It provides:
//!
//! * [`join`] / [`join3`] — structured fork–join for a fixed number of
//!   heterogeneous tasks (the verifier's three independent LMI problems);
//! * [`par_map_collect`] — parallel map over `0..n` with results returned
//!   **in index order** (SDP block factorizations, counterexample restarts);
//! * [`par_map_reduce`] — chunked parallel map over `0..n` with a
//!   **deterministic reduction order** (learner gradient accumulation);
//! * [`par_for_chunks`] / [`par_for_chunks_scratch`] — partition a mutable
//!   slice into fixed-length chunks processed in parallel, optionally with a
//!   per-worker scratch state so inner loops do not allocate (Schur
//!   complement row assembly).
//!
//! # Determinism contract
//!
//! Every helper here is bitwise deterministic **across thread counts**: the
//! work decomposition is a fixed chunk grid that depends only on the problem
//! size (never on the number of workers), chunk results are stored by chunk
//! index, and reductions fold those slots serially in ascending index order.
//! The guaranteed-serial path taken when [`threads`]` == 1` runs the *same*
//! chunk grid in the same order without spawning a single thread, so
//! `SNBC_THREADS=1` and `SNBC_THREADS=64` produce byte-identical certificates
//! and telemetry reports (timings aside). See `docs/PARALLELISM.md`.
//!
//! # Pool size
//!
//! The worker count is resolved per parallel region, in priority order:
//! a process-wide override installed via [`set_threads`] /
//! [`ParConfig::install`], the `SNBC_THREADS` environment variable, and
//! finally [`std::thread::available_parallelism`]. The calling thread always
//! participates as worker 0, so a region with `threads() == k` spawns at
//! most `k - 1` scoped threads and `k == 1` spawns none.
//!
//! # Panics
//!
//! A panic on any worker is captured at the scope boundary and rethrown on
//! the calling thread (first panicking worker in spawn order wins); the
//! remaining workers finish draining their chunks first, so no partial state
//! escapes the scope.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker-count override; `0` means "not set" (fall back to the
/// `SNBC_THREADS` environment variable, then `available_parallelism`).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pool-size configuration for the runtime.
///
/// The free functions in this crate consult the process-wide setting, so a
/// config takes effect via [`ParConfig::install`]; embedders that want a
/// scoped choice can install, run, and restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Number of workers every parallel region uses (`>= 1`).
    pub threads: usize,
}

impl ParConfig {
    /// Resolves the worker count the way the free functions do: env var
    /// first, hardware parallelism otherwise.
    pub fn from_env() -> Self {
        ParConfig { threads: env_threads() }
    }

    /// The guaranteed-serial configuration: parallel regions run the same
    /// chunk grid inline and never spawn.
    pub fn serial() -> Self {
        ParConfig { threads: 1 }
    }

    /// Installs this worker count process-wide (overrides `SNBC_THREADS`).
    pub fn install(&self) {
        set_threads(Some(self.threads));
    }
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig::from_env()
    }
}

/// Installs (`Some(n)`) or clears (`None`) the process-wide worker-count
/// override. `Some(0)` is coerced to `Some(1)`.
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.store(n.map_or(0, |v| v.max(1)), Ordering::SeqCst);
}

/// Worker count for the next parallel region: the [`set_threads`] override
/// if installed, else `SNBC_THREADS`, else `available_parallelism()`.
///
/// The environment variable is re-read on every call (regions are coarse:
/// one epoch, one interior-point iteration), so tests can flip it between
/// in-process runs.
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    env_threads()
}

fn env_threads() -> usize {
    match std::env::var("SNBC_THREADS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(v) if v >= 1 => v,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `a` and `b` and returns both results, in parallel when the pool has
/// at least two workers (serial in declaration order otherwise).
///
/// `a` runs on the calling thread; `b` is spawned. A panic in either task is
/// rethrown at the scope boundary.
pub fn join<RA, RB>(
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let parent = snbc_trace::current_worker();
    std::thread::scope(|s| {
        let hb = s.spawn(move || {
            let _g = snbc_trace::enter_worker(snbc_trace::child_worker_label(&parent, 1));
            b()
        });
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

/// Three-way [`join`]: the verifier's init/unsafe/flow LMI problems.
///
/// `a` runs on the calling thread; `b` and `c` are spawned (when the pool
/// allows). Results come back in declaration order regardless of completion
/// order; with two workers, `b` and `c` share the spawned thread.
pub fn join3<RA, RB, RC>(
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
    c: impl FnOnce() -> RC + Send,
) -> (RA, RB, RC)
where
    RA: Send,
    RB: Send,
    RC: Send,
{
    let t = threads();
    if t <= 1 {
        let ra = a();
        let rb = b();
        let rc = c();
        return (ra, rb, rc);
    }
    let parent = snbc_trace::current_worker();
    if t == 2 {
        let (ra, (rb, rc)) = std::thread::scope(|s| {
            let label = snbc_trace::child_worker_label(&parent, 1);
            let h = s.spawn(move || {
                let _g = snbc_trace::enter_worker(label);
                let rb = b();
                let rc = c();
                (rb, rc)
            });
            let ra = a();
            match h.join() {
                Ok(bc) => (ra, bc),
                Err(p) => std::panic::resume_unwind(p),
            }
        });
        return (ra, rb, rc);
    }
    std::thread::scope(|s| {
        let lb = snbc_trace::child_worker_label(&parent, 1);
        let lc = snbc_trace::child_worker_label(&parent, 2);
        let hb = s.spawn(move || {
            let _g = snbc_trace::enter_worker(lb);
            b()
        });
        let hc = s.spawn(move || {
            let _g = snbc_trace::enter_worker(lc);
            c()
        });
        let ra = a();
        let rb = hb.join();
        let rc = hc.join();
        match (rb, rc) {
            (Ok(rb), Ok(rc)) => (ra, rb, rc),
            (Err(p), _) | (_, Err(p)) => std::panic::resume_unwind(p),
        }
    })
}

/// Fixed chunk grid over `0..n`: chunk `c` covers
/// `c*chunk .. min((c+1)*chunk, n)`. The grid depends only on `(n, chunk)`,
/// never on the worker count — the root of the determinism contract.
fn chunk_grid(n: usize, chunk: usize) -> (usize, usize) {
    let chunk = chunk.max(1);
    (chunk, n.div_ceil(chunk))
}

#[cfg(feature = "sanitize")]
fn check_cover(parts: &[Range<usize>], n: usize) {
    let mut next = 0usize;
    for r in parts {
        assert!(
            r.start == next && r.end >= r.start,
            "snbc-par sanitize: partition {:?} does not start at {} (grid over 0..{})",
            r,
            next,
            n
        );
        next = r.end;
    }
    assert!(
        next == n,
        "snbc-par sanitize: partitions cover 0..{next} but the index range is 0..{n}"
    );
}

/// Parallel map over `0..n`, returning results **in index order**.
///
/// Items are dealt to workers one at a time (suited to a small number of
/// coarse tasks: SDP block factorizations, gradient-ascent restarts); each
/// result is stored in its item's slot, so the output is independent of
/// which worker computed what.
pub fn par_map_collect<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let sink: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    let work = |_wid: usize| {
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            local.push((i, f(i)));
        }
        sink.lock().expect("snbc-par result sink").extend(local);
    };
    run_on_pool(workers, &work);
    for (i, r) in sink.into_inner().expect("snbc-par result sink") {
        debug_assert!(slots[i].is_none());
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("snbc-par: item not produced exactly once"))
        .collect()
}

/// Chunked parallel map–reduce over `0..n` with a deterministic fold order.
///
/// `map` is applied to each range of the fixed chunk grid (see the module
/// docs); the per-chunk results are then folded serially in ascending chunk
/// order with `fold`. Because the grid depends only on `(n, chunk)` and the
/// fold is ordered, floating-point accumulation is bitwise identical at any
/// thread count. Returns `None` iff `n == 0`.
pub fn par_map_reduce<R, M, F>(n: usize, chunk: usize, map: M, mut fold: F) -> Option<R>
where
    R: Send,
    M: Fn(Range<usize>) -> R + Sync,
    F: FnMut(R, R) -> R,
{
    if n == 0 {
        return None;
    }
    let (chunk, nchunks) = chunk_grid(n, chunk);
    let workers = threads().min(nchunks);
    let bounds = move |c: usize| c * chunk..((c + 1) * chunk).min(n);
    #[cfg(feature = "sanitize")]
    check_cover(&(0..nchunks).map(bounds).collect::<Vec<_>>(), n);
    let mut slots: Vec<Option<R>> = (0..nchunks).map(|_| None).collect();
    if workers <= 1 {
        // Guaranteed-serial path: same grid, same fold order, no spawns.
        for (c, slot) in slots.iter_mut().enumerate() {
            *slot = Some(map(bounds(c)));
        }
    } else {
        let next = AtomicUsize::new(0);
        let sink: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(nchunks));
        let work = |_wid: usize| {
            let mut local: Vec<(usize, R)> = Vec::new();
            loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= nchunks {
                    break;
                }
                local.push((c, map(bounds(c))));
            }
            sink.lock().expect("snbc-par result sink").extend(local);
        };
        run_on_pool(workers, &work);
        for (c, r) in sink.into_inner().expect("snbc-par result sink") {
            debug_assert!(slots[c].is_none());
            slots[c] = Some(r);
        }
    }
    let mut acc: Option<R> = None;
    for slot in slots {
        let r = slot.expect("snbc-par: chunk not produced exactly once");
        acc = Some(match acc {
            None => r,
            Some(a) => fold(a, r),
        });
    }
    acc
}

/// Partitions `data` into consecutive `chunk_len`-element chunks (the last
/// may be short) and processes them in parallel; `f(chunk_index, chunk)`.
///
/// Chunks are disjoint `&mut` sub-slices, so worker assignment cannot affect
/// the result; workers receive contiguous runs of chunks. With one worker
/// the chunks are processed inline in ascending order.
pub fn par_for_chunks<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_for_chunks_scratch(data, chunk_len, || (), |(), c, s| f(c, s));
}

/// [`par_for_chunks`] with a per-worker scratch state.
///
/// `init` runs once per worker and the resulting state is threaded through
/// every chunk that worker processes — the hook for reusable buffers that
/// keep inner loops allocation-free (e.g. the `U_k = Z⁻¹ (Σ Aₖ ∘ X)`
/// temporaries of the Schur assembly). Scratch contents must not influence
/// results (sanitize builds cannot check this; the determinism regression
/// test does, end to end).
pub fn par_for_chunks_scratch<T, S, I, F>(data: &mut [T], chunk_len: usize, init: I, f: F)
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let (chunk_len, nchunks) = chunk_grid(n, chunk_len);
    let workers = threads().min(nchunks);
    if workers <= 1 {
        let mut scratch = init();
        for (c, piece) in data.chunks_mut(chunk_len).enumerate() {
            f(&mut scratch, c, piece);
        }
        return;
    }
    // Static contiguous partition of the chunk grid across workers: worker w
    // takes chunks [w*per, min((w+1)*per, nchunks)). Deterministic because
    // each chunk's slice is disjoint from all others.
    let per = nchunks.div_ceil(workers);
    let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(workers);
    let mut rest = data;
    let mut c0 = 0usize;
    while c0 < nchunks {
        let c1 = (c0 + per).min(nchunks);
        let hi = (c1 * chunk_len).min(n);
        let lo = c0 * chunk_len;
        let (head, tail) = rest.split_at_mut(hi - lo);
        parts.push((c0, head));
        rest = tail;
        c0 = c1;
    }
    #[cfg(feature = "sanitize")]
    {
        let mut cover = Vec::new();
        let mut at = 0usize;
        for (_, p) in &parts {
            cover.push(at..at + p.len());
            at += p.len();
        }
        check_cover(&cover, n);
    }
    debug_assert!(rest.is_empty());
    let run_part = |first_chunk: usize, piece: &mut [T]| {
        let mut scratch = init();
        for (k, sub) in piece.chunks_mut(chunk_len).enumerate() {
            f(&mut scratch, first_chunk + k, sub);
        }
    };
    let parent = snbc_trace::current_worker();
    std::thread::scope(|s| {
        let mut iter = parts.into_iter();
        let mine = iter.next().expect("at least one partition");
        let handles: Vec<_> = iter
            .enumerate()
            .map(|(k, (c, piece))| {
                let label = snbc_trace::child_worker_label(&parent, k + 1);
                s.spawn(move || {
                    let _g = snbc_trace::enter_worker(label);
                    run_part(c, piece)
                })
            })
            .collect();
        run_part(mine.0, mine.1);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            if let Err(p) = h.join() {
                panic.get_or_insert(p);
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    });
}

/// Spawns `workers - 1` scoped threads running `work(wid)` and runs
/// `work(0)` on the calling thread; rethrows the first worker panic (in
/// spawn order) after all workers have joined.
fn run_on_pool(workers: usize, work: &(impl Fn(usize) + Sync)) {
    let parent = snbc_trace::current_worker();
    std::thread::scope(|s| {
        let handles: Vec<_> = (1..workers)
            .map(|w| {
                let label = snbc_trace::child_worker_label(&parent, w);
                s.spawn(move || {
                    let _g = snbc_trace::enter_worker(label);
                    work(w)
                })
            })
            .collect();
        work(0);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            if let Err(p) = h.join() {
                panic.get_or_insert(p);
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The override and `SNBC_THREADS` are process-global; serialize every
    /// test that touches them (cargo runs test fns on parallel threads).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        // The panic-propagation test poisons the lock by design.
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs `f` under a forced worker count, restoring the override after
    /// (also on unwind).
    fn with_threads<R>(t: usize, f: impl FnOnce() -> R) -> R {
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                set_threads(None);
            }
        }
        let _guard = test_lock();
        let _restore = Restore;
        set_threads(Some(t));
        f()
    }

    #[test]
    fn join_returns_in_declaration_order() {
        for t in [1, 2, 4] {
            let (a, b) = with_threads(t, || join(|| 1, || 2));
            assert_eq!((a, b), (1, 2));
            let (a, b, c) = with_threads(t, || join3(|| "a", || "b", || "c"));
            assert_eq!((a, b, c), ("a", "b", "c"));
        }
    }

    #[test]
    fn map_collect_preserves_index_order() {
        let serial: Vec<usize> = with_threads(1, || par_map_collect(97, |i| i * i));
        for t in [2, 3, 8] {
            let par: Vec<usize> = with_threads(t, || par_map_collect(97, |i| i * i));
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn map_reduce_is_bitwise_deterministic_across_thread_counts() {
        // Sum of values whose FP addition is order-sensitive; identical bits
        // at every thread count proves the fold order is fixed.
        let vals: Vec<f64> = (0..1000).map(|i| ((i * 2654435761_usize) as f64).sqrt() * 1e-3).collect();
        let sum_at = |t: usize| {
            with_threads(t, || {
                par_map_reduce(
                    vals.len(),
                    7,
                    |r| r.map(|i| vals[i]).fold(0.0f64, |a, v| a + v),
                    |a, b| a + b,
                )
                .unwrap()
            })
        };
        let s1 = sum_at(1);
        for t in [2, 3, 4, 16] {
            assert_eq!(s1.to_bits(), sum_at(t).to_bits(), "threads={t}");
        }
    }

    #[test]
    fn map_reduce_empty_range_is_none() {
        let r: Option<f64> = par_map_reduce(0, 8, |_| 0.0, |a, b| a + b);
        assert!(r.is_none());
    }

    #[test]
    fn for_chunks_writes_every_chunk_exactly_once() {
        for t in [1, 2, 5] {
            let mut data = vec![0u32; 103];
            with_threads(t, || {
                par_for_chunks(&mut data, 10, |c, piece| {
                    for (k, v) in piece.iter_mut().enumerate() {
                        assert_eq!(*v, 0);
                        *v = (c * 10 + k) as u32;
                    }
                });
            });
            let expect: Vec<u32> = (0..103).collect();
            assert_eq!(data, expect);
        }
    }

    #[test]
    fn for_chunks_scratch_reuses_per_worker_state() {
        let mut data = vec![0usize; 64];
        with_threads(3, || {
            par_for_chunks_scratch(
                &mut data,
                4,
                || Vec::<usize>::with_capacity(4),
                |scratch, c, piece| {
                    scratch.clear();
                    scratch.extend(piece.iter().map(|_| c));
                    piece.copy_from_slice(scratch);
                },
            );
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 4);
        }
    }

    #[test]
    fn worker_panic_is_rethrown_at_scope_boundary() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map_collect(16, |i| {
                    if i == 7 {
                        panic!("boom");
                    }
                    i
                })
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn env_var_sets_pool_size_when_no_override() {
        let _guard = test_lock();
        set_threads(None);
        std::env::set_var("SNBC_THREADS", "3");
        assert_eq!(threads(), 3);
        std::env::set_var("SNBC_THREADS", "not-a-number");
        assert_eq!(threads(), default_threads());
        std::env::remove_var("SNBC_THREADS");
        assert_eq!(threads(), default_threads());
        // Override beats the environment.
        std::env::set_var("SNBC_THREADS", "5");
        set_threads(Some(2));
        assert_eq!(threads(), 2);
        set_threads(None);
        std::env::remove_var("SNBC_THREADS");
    }

    #[test]
    fn serial_config_never_spawns() {
        // Indirect check: record the thread id seen by every item and assert
        // it is always the caller's.
        let me = std::thread::current().id();
        let ids = with_threads(1, || par_map_collect(32, |_| std::thread::current().id()));
        assert!(ids.iter().all(|id| *id == me));
        assert_eq!(ParConfig::serial().threads, 1);
    }
}
