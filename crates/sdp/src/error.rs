use std::error::Error;
use std::fmt;

use snbc_linalg::LinalgError;

/// Errors produced by the SDP solver.
#[derive(Debug, Clone, PartialEq)]
pub enum SdpError {
    /// Problem construction/validation error.
    Invalid(String),
    /// Interior-point iteration exceeded its budget without converging.
    ///
    /// Carries the last iterate's convergence state so callers (and the
    /// telemetry gauges) can distinguish "almost there" from "diverged":
    /// `rp_rel`/`rd_rel` are the relative primal/dual residuals and
    /// `gap_rel` the relative duality gap at the final iterate.
    IterationLimit {
        iterations: usize,
        mu: f64,
        rp_rel: f64,
        rd_rel: f64,
        gap_rel: f64,
    },
    /// The problem was detected to be (numerically) primal infeasible.
    Infeasible,
    /// The problem was detected to be (numerically) unbounded.
    Unbounded,
    /// A linear-algebra failure (e.g. Schur complement not factorizable).
    Numerical(LinalgError),
    /// Two blocks of incompatible kinds (dense vs diagonal) met in a
    /// block-wise operation — the block structure of the iterates diverged
    /// from the problem's shapes.
    BlockMismatch {
        /// The operation that detected the mismatch (`"dot"`, `"axpy"`, …).
        op: &'static str,
    },
}

impl fmt::Display for SdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdpError::Invalid(msg) => write!(f, "invalid problem: {msg}"),
            SdpError::IterationLimit {
                iterations,
                mu,
                rp_rel,
                rd_rel,
                gap_rel,
            } => write!(
                f,
                "interior-point iteration limit ({iterations}) reached at mu={mu:.3e} \
                 (rp={rp_rel:.3e} rd={rd_rel:.3e} gap={gap_rel:.3e})"
            ),
            SdpError::Infeasible => write!(f, "problem is primal infeasible"),
            SdpError::Unbounded => write!(f, "problem is unbounded"),
            SdpError::Numerical(e) => write!(f, "numerical failure: {e}"),
            SdpError::BlockMismatch { op } => {
                write!(f, "block kind mismatch (dense vs diagonal) in `{op}`")
            }
        }
    }
}

impl Error for SdpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SdpError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for SdpError {
    fn from(e: LinalgError) -> Self {
        SdpError::Numerical(e)
    }
}
