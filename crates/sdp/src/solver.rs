use snbc_linalg::{vec_ops, Cholesky, Matrix};

use crate::problem::{entries_dot, sparse_times_dense_into};
use crate::{Block, BlockMatrix, SdpError, SdpProblem};

/// Termination status of an SDP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdpStatus {
    /// Converged to the requested tolerance.
    Optimal,
    /// Stopped at a usable but less accurate point.
    NearOptimal,
}

/// Solution of an SDP.
#[derive(Debug, Clone)]
pub struct SdpSolution {
    /// Primal block variable `X`.
    pub x: BlockMatrix,
    /// Dual multipliers `y`.
    pub y: Vec<f64>,
    /// Dual slack `Z = C − Aᵀy`.
    pub z: BlockMatrix,
    /// `⟨C, X⟩`.
    pub primal_objective: f64,
    /// `bᵀy`.
    pub dual_objective: f64,
    /// Final duality measure `⟨X, Z⟩ / N`.
    pub mu: f64,
    /// Final relative primal residual.
    pub primal_residual: f64,
    /// Final relative dual residual.
    pub dual_residual: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Termination status.
    pub status: SdpStatus,
}

/// Infeasible primal–dual interior-point SDP solver (HKM direction with
/// Mehrotra predictor–corrector), the workhorse behind the paper's LMI
/// feasibility tests (13)–(15).
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct SdpSolver {
    /// Maximum interior-point iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on relative residuals and duality measure.
    pub tolerance: f64,
    /// Fraction-to-the-boundary step damping.
    pub step_fraction: f64,
    /// Diagonal regularization for the Schur complement.
    pub regularization: f64,
    /// Optional wall-clock budget for one solve; on expiry the best visited
    /// iterate is returned if usable, else
    /// [`SdpError::IterationLimit`]. Lets callers with an overall deadline
    /// (the paper's 7200 s `OT`) bound even a single large solve.
    pub time_limit: Option<std::time::Duration>,
    /// Telemetry sink; each solve records an `"sdp"` span with IPM iteration
    /// and Cholesky factorization counts plus the final duality measure μ and
    /// residuals. The default no-op sink costs one pointer check per solve —
    /// the iteration loop itself is never instrumented.
    pub telemetry: snbc_telemetry::Telemetry,
}

impl Default for SdpSolver {
    fn default() -> Self {
        SdpSolver {
            max_iterations: 100,
            tolerance: 1e-7,
            step_fraction: 0.98,
            regularization: 1e-14,
            time_limit: None,
            telemetry: snbc_telemetry::Telemetry::off(),
        }
    }
}

/// Solves with one round of iterative refinement (the Schur complement is
/// often ill-conditioned near convergence; refinement recovers a few digits
/// of primal feasibility at negligible cost).
fn solve_refined(chol: &Cholesky, rhs: &[f64]) -> Vec<f64> {
    let mut x = chol.solve(rhs);
    for _ in 0..2 {
        // r = rhs − M·x computed through the factorization's L·Lᵀ.
        let lx = chol.l().tr_matvec(&x);
        let mx = chol.l().matvec(&lx);
        let r: Vec<f64> = rhs.iter().zip(&mx).map(|(b, m)| b - m).collect();
        let dx = chol.solve(&r);
        for (xi, di) in x.iter_mut().zip(&dx) {
            *xi += di;
        }
    }
    x
}

/// Per-iteration factorization data for one block.
enum Scaling {
    Dense {
        zinv: Matrix,
        x: Matrix,
        x_chol: Cholesky,
        z_chol: Cholesky,
    },
    Diag {
        x: Vec<f64>,
        z: Vec<f64>,
    },
}

/// Serial per-iteration precompute for one diagonal block of the Schur
/// assembly: `d = x/z` plus the index-grouped coalesced coefficients (see
/// `build_schur` for the complexity argument).
struct DiagPre {
    d: Vec<f64>,
    per_index: Vec<Vec<(usize, f64)>>,
    per_constraint: Vec<Vec<(usize, f64)>>,
}

/// Fills row `k` of the Schur complement (columns `k..m`). For dense blocks,
/// a row needs only `U_k = Z⁻¹·(A_k·X)` — a single n×n product alive at once
/// (the full per-block cache would be O(m·n²) memory — hundreds of MB for
/// the large joint programs) — held in per-worker `scratch` so the
/// interior-point iterations do not allocate per row.
// audit:hot
fn assemble_schur_row(
    problem: &SdpProblem,
    scalings: &[Scaling],
    diag: &[Option<DiagPre>],
    m: usize,
    scratch: &mut [Option<(Matrix, Matrix)>],
    k: usize,
    row: &mut [f64],
) {
    let entries_k = problem.constraint_entries(k);
    for (j, scaling) in scalings.iter().enumerate() {
        match scaling {
            Scaling::Dense { zinv, x, .. } => {
                if entries_k.iter().all(|e| e.block != j) {
                    continue;
                }
                let n = zinv.nrows();
                // Lazy per-worker scratch: two n×n buffers per dense block,
                // allocated on the block's first row and reused for every
                // later row this worker owns. audit:allow(hot-alloc)
                let (ax, uk) = scratch[j]
                    .get_or_insert_with(|| (Matrix::zeros(n, n), Matrix::zeros(n, n)));
                sparse_times_dense_into(entries_k, j, x, ax);
                zinv.matmul_into(ax, uk);
                for l in k..m {
                    let entries_l = problem.constraint_entries(l);
                    let mut acc = 0.0;
                    for e in entries_l.iter().filter(|e| e.block == j) {
                        // tr(A_l · U_k) with A_l symmetric-sparse.
                        if e.row == e.col {
                            acc += e.value * uk[(e.row, e.col)];
                        } else {
                            acc += e.value * (uk[(e.row, e.col)] + uk[(e.col, e.row)]);
                        }
                    }
                    row[l] += acc;
                }
            }
            Scaling::Diag { .. } => {
                // M_kl += Σᵢ a_k[i]·a_l[i]·xᵢ/zᵢ, i ascending.
                // Populated by `build_schur` for every Diag block by
                // construction. audit:allow(panicking)
                let pre = diag[j].as_ref().expect("diag precompute");
                for &(i, aki) in &pre.per_constraint[k] {
                    let di = pre.d[i];
                    for &(l, ali) in &pre.per_index[i] {
                        if l >= k {
                            row[l] += aki * ali * di;
                        }
                    }
                }
            }
        }
    }
}

impl SdpSolver {
    /// Solves the SDP.
    ///
    /// # Errors
    ///
    /// * [`SdpError::Invalid`] — malformed problem;
    /// * [`SdpError::IterationLimit`] — no convergence within the budget;
    /// * [`SdpError::Infeasible`] / [`SdpError::Unbounded`] — detected
    ///   divergence of the iterates;
    /// * [`SdpError::Numerical`] — unrecoverable factorization failure.
    pub fn solve(&self, problem: &SdpProblem) -> Result<SdpSolution, SdpError> {
        // Telemetry wrapper: metrics are aggregated in plain locals inside
        // the solve and emitted once here, so the recording sink allocates
        // nothing in the iteration loop (and the no-op sink costs a null
        // check).
        let _span = self.telemetry.span("sdp");
        let mut cholesky_count: usize = 0;
        let result = self.solve_inner(problem, &mut cholesky_count);
        if self.telemetry.is_recording() {
            self.telemetry.label("workers", &snbc_par::threads().to_string());
            self.telemetry.add("cholesky", cholesky_count as u64);
            match &result {
                Ok(sol) => {
                    self.telemetry.add("iterations", sol.iterations as u64);
                    self.telemetry.gauge("duality_mu", sol.mu);
                    self.telemetry.gauge("primal_residual", sol.primal_residual);
                    self.telemetry.gauge("dual_residual", sol.dual_residual);
                    self.telemetry
                        .flag("optimal", matches!(sol.status, SdpStatus::Optimal));
                }
                Err(SdpError::IterationLimit {
                    iterations,
                    mu,
                    rp_rel,
                    rd_rel,
                    gap_rel,
                }) => {
                    self.telemetry.add("iterations", *iterations as u64);
                    self.telemetry.gauge("duality_mu", *mu);
                    // Final iterate's residual history: without these gauges a
                    // budget-limited solve is indistinguishable from a
                    // diverged one in the run report.
                    self.telemetry.gauge("primal_residual", *rp_rel);
                    self.telemetry.gauge("dual_residual", *rd_rel);
                    self.telemetry.gauge("gap_rel", *gap_rel);
                    self.telemetry.flag("optimal", false);
                }
                Err(_) => self.telemetry.flag("optimal", false),
            }
        }
        result
    }

    fn solve_inner(
        &self,
        problem: &SdpProblem,
        cholesky_count: &mut usize,
    ) -> Result<SdpSolution, SdpError> {
        problem.validate()?;
        let shapes = problem.shapes().to_vec();
        let m = problem.num_constraints();
        let b = problem.rhs().to_vec();
        let big_n = shapes.iter().map(|s| s.order()).sum::<usize>() as f64;

        // Initial iterates: scaled identities.
        let c_mat = problem.cost_matrix();
        let cnorm = c_mat.norm_fro();
        let mut anorm_max: f64 = 1.0;
        let mut init_scale: f64 = 10.0;
        for k in 0..m {
            let ak = problem.constraint_matrix(k);
            let an = ak.norm_fro();
            anorm_max = anorm_max.max(an);
            init_scale = init_scale.max(big_n.sqrt() * (1.0 + b[k].abs()) / (1.0 + an));
        }
        let mut x = BlockMatrix::identity(&shapes);
        x.scale_mut(init_scale);
        let mut z = BlockMatrix::identity(&shapes);
        z.scale_mut((1.0 + cnorm.max(anorm_max)).max(10.0));
        let mut y = vec![0.0; m];

        let bnorm = 1.0 + vec_ops::norm2(&b);
        let cnorm1 = 1.0 + cnorm;

        let mut best: Option<(f64, BlockMatrix, Vec<f64>, BlockMatrix, usize)> = None;
        let t0 = snbc_trace::Stopwatch::start();
        let trace = self.telemetry.trace();
        // Last iterate's convergence state, for IterationLimit diagnostics.
        let mut last_res = (f64::NAN, f64::NAN, f64::NAN);

        for iter in 0..self.max_iterations {
            let chol_at_entry = *cholesky_count;
            if let Some(limit) = self.time_limit {
                if t0.elapsed() > limit {
                    break; // fall through to the best-iterate return below
                }
            }
            // Residuals.
            let ax = problem.apply(&x);
            let rp: Vec<f64> = b.iter().zip(&ax).map(|(bi, a)| bi - a).collect();
            // Rd = C − Aᵀy − Z.
            let mut rd = c_mat.clone();
            problem.adjoint_accumulate(&y, -1.0, &mut rd);
            rd.axpy(-1.0, &z)?;

            let xz = x.dot(&z)?;
            let mu = xz / big_n;
            // Interior-point invariants: X and Z stay in the PSD cone interior
            // so ⟨X,Z⟩ ≥ 0, and every iterate stays finite (a NaN/∞ entry
            // makes the Frobenius norm non-finite).
            snbc_linalg::sanitize::check_invariant("sdp duality measure", xz >= 0.0, xz);
            snbc_linalg::sanitize::check_finite(
                "sdp iterates (‖X‖, ‖Z‖, ‖y‖)",
                &[x.norm_fro(), z.norm_fro(), vec_ops::norm2(&y)],
            );
            let pobj = problem.cost_dot(&x);
            let dobj = vec_ops::dot(&b, &y);
            let rp_rel = vec_ops::norm2(&rp) / bnorm;
            let rd_rel = rd.norm_fro() / cnorm1;
            let gap_rel = xz.abs() / (1.0 + pobj.abs() + dobj.abs());
            last_res = (rp_rel, rd_rel, gap_rel);

            // Debug-trace flag: gates stderr prints only, never solver results.
            // audit:allow(env-read)
            if std::env::var_os("SNBC_SDP_TRACE").is_some() {
                // audit:allow(raw-print) — env-gated debug trace, off by default
                eprintln!(
                    "sdp iter {iter}: rp={rp_rel:.3e} rd={rd_rel:.3e} gap={gap_rel:.3e} mu={mu:.3e}"
                );
            }

            let merit = rp_rel.max(rd_rel).max(gap_rel);
            if best.as_ref().is_none_or(|(bm, ..)| merit < *bm) {
                best = Some((merit, x.clone(), y.clone(), z.clone(), iter));
            }
            // Endgame divergence: as μ → 0 the scaled systems lose accuracy
            // and primal feasibility can deteriorate irrecoverably; once the
            // merit is far above the best visited, further iterations only
            // burn time.
            if let Some((bm, ..)) = &best {
                if mu < 1e-9 && merit > 50.0 * bm.max(1e-12) {
                    break;
                }
            }

            if rp_rel < self.tolerance && rd_rel < self.tolerance && gap_rel < self.tolerance {
                // Terminal iterate: no step is taken, so the step lengths are
                // zero and no factorizations were spent this round.
                trace.ipm_iter(
                    "sdp",
                    snbc_trace::IpmSample {
                        iter: iter as u64,
                        mu,
                        rp_rel,
                        rd_rel,
                        gap_rel,
                        ..Default::default()
                    },
                );
                return Ok(SdpSolution {
                    primal_objective: pobj,
                    dual_objective: dobj,
                    mu,
                    primal_residual: rp_rel,
                    dual_residual: rd_rel,
                    x,
                    y,
                    z,
                    iterations: iter,
                    status: SdpStatus::Optimal,
                });
            }

            // Divergence heuristics.
            let xnorm = x.norm_fro();
            let yznorm = vec_ops::norm_inf(&y).max(z.norm_fro());
            if xnorm > 1e13 || yznorm > 1e13 {
                return Err(if yznorm > xnorm {
                    SdpError::Infeasible
                } else {
                    SdpError::Unbounded
                });
            }
            if mu < 1e-6 * self.tolerance && rp_rel.max(rd_rel) > self.tolerance {
                break; // numerical floor, return best below
            }

            // Factor blocks.
            let scalings = self.factor_blocks(&x, &z, cholesky_count)?;

            // Schur complement M and the shared pieces of the rhs.
            let schur = self.build_schur(problem, &scalings, m, cholesky_count)?;

            // Predictor: ν = 0, no corrector.
            let (dx_aff, _dy_aff, dz_aff) =
                self.direction(problem, &scalings, &schur, &rp, &rd, &x, 0.0, None)?;
            let alpha_p_aff = self.max_step(&x, &dx_aff, &scalings, true)?;
            let alpha_d_aff = self.max_step(&z, &dz_aff, &scalings, false)?;
            // μ after the affine step.
            let mut x_aff = x.clone();
            x_aff.axpy(alpha_p_aff.min(1.0), &dx_aff)?;
            let mut z_aff = z.clone();
            z_aff.axpy(alpha_d_aff.min(1.0), &dz_aff)?;
            let mu_aff = x_aff.dot(&z_aff)? / big_n;
            let sigma = if mu > 0.0 {
                (mu_aff / mu).powi(3).clamp(1e-6, 1.0)
            } else {
                0.1
            };

            // Corrector.
            let (dx, dy, dz) = self.direction(
                problem,
                &scalings,
                &schur,
                &rp,
                &rd,
                &x,
                sigma * mu,
                Some((&dz_aff, &dx_aff)),
            )?;

            let alpha_p = (self.step_fraction * self.max_step(&x, &dx, &scalings, true)?).min(1.0);
            let alpha_d = (self.step_fraction * self.max_step(&z, &dz, &scalings, false)?).min(1.0);

            x.axpy(alpha_p, &dx)?;
            vec_ops::axpy(alpha_d, &dy, &mut y);
            z.axpy(alpha_d, &dz)?;

            trace.ipm_iter(
                "sdp",
                snbc_trace::IpmSample {
                    iter: iter as u64,
                    mu,
                    rp_rel,
                    rd_rel,
                    gap_rel,
                    alpha_p,
                    alpha_d,
                    cholesky: (*cholesky_count - chol_at_entry) as u64,
                },
            );
        }

        if let Some((merit, bx, by, bz, iter)) = best {
            if merit < 2e-3 {
                let pobj = problem.cost_dot(&bx);
                let dobj = vec_ops::dot(&b, &by);
                let mu = bx.dot(&bz)? / big_n;
                return Ok(SdpSolution {
                    primal_objective: pobj,
                    dual_objective: dobj,
                    mu,
                    primal_residual: merit,
                    dual_residual: merit,
                    x: bx,
                    y: by,
                    z: bz,
                    iterations: iter,
                    status: if merit < self.tolerance {
                        SdpStatus::Optimal
                    } else {
                        SdpStatus::NearOptimal
                    },
                });
            }
        }
        let mu = x.dot(&z)? / big_n;
        Err(SdpError::IterationLimit {
            iterations: self.max_iterations,
            mu,
            rp_rel: last_res.0,
            rd_rel: last_res.1,
            gap_rel: last_res.2,
        })
    }

    fn factor_blocks(
        &self,
        x: &BlockMatrix,
        z: &BlockMatrix,
        cholesky_count: &mut usize,
    ) -> Result<Vec<Scaling>, SdpError> {
        // One independent Cholesky pair per dense block, dealt across the
        // pool; results land by block index, so parallel == serial bitwise.
        let xbs = x.blocks();
        let zbs = z.blocks();
        let factored = snbc_par::par_map_collect(xbs.len(), |j| {
            let mut count = 0usize;
            let scaling = match (&xbs[j], &zbs[j]) {
                (Block::Dense(xm), Block::Dense(zm)) => {
                    count += 1;
                    let z_chol = zm.cholesky().or_else(|_| {
                        // Tiny perturbation rescue.
                        let mut p = zm.clone();
                        for i in 0..p.nrows() {
                            p[(i, i)] += 1e-12 * (1.0 + p[(i, i)].abs());
                        }
                        count += 1;
                        p.cholesky()
                    })?;
                    count += 1;
                    let x_chol = xm.cholesky().or_else(|_| {
                        let mut p = xm.clone();
                        for i in 0..p.nrows() {
                            p[(i, i)] += 1e-12 * (1.0 + p[(i, i)].abs());
                        }
                        count += 1;
                        p.cholesky()
                    })?;
                    Scaling::Dense {
                        zinv: z_chol.inverse(),
                        x: xm.clone(),
                        x_chol,
                        z_chol,
                    }
                }
                (Block::Diag(xd), Block::Diag(zd)) => Scaling::Diag {
                    x: xd.clone(),
                    z: zd.clone(),
                },
                _ => return Err(SdpError::BlockMismatch { op: "factor_blocks" }),
            };
            Ok::<(Scaling, usize), SdpError>((scaling, count))
        });
        let mut out = Vec::with_capacity(factored.len());
        for r in factored {
            let (scaling, count) = r?;
            // Serial index-ascending fold over the already-ordered
            // par_map_collect output; integer count.
            // audit:allow(unordered-reduce)
            *cholesky_count += count;
            out.push(scaling);
        }
        Ok(out)
    }

    /// Builds and factors the Schur complement
    /// `M_{kl} = Σⱼ tr(A_{kj} Zⱼ⁻¹ A_{lj} Xⱼ)` (symmetrized).
    fn build_schur(
        &self,
        problem: &SdpProblem,
        scalings: &[Scaling],
        m: usize,
        cholesky_count: &mut usize,
    ) -> Result<Cholesky, SdpError> {
        let mut big_m = Matrix::zeros(m, m);
        // Serial precompute of what the parallel row loop reads for diagonal
        // blocks: `d = x/z` plus the index-grouped coalesced coefficients
        // (`per_index[i]` = constraints touching diagonal index `i` with
        // a_ki the *sum* of that constraint's entry values there, ascending
        // in constraint; `per_constraint[k]` = the transpose view, ascending
        // in `i`). This keeps the assembly O(Σᵢ cᵢ²) instead of O(m²·nnz),
        // which matters when a scalar free variable (e.g. a barrier
        // coefficient) appears in hundreds of constraints.
        let mut diag: Vec<Option<DiagPre>> = Vec::with_capacity(scalings.len());
        for (j, scaling) in scalings.iter().enumerate() {
            let Scaling::Diag { x, z } = scaling else {
                diag.push(None);
                continue;
            };
            let d: Vec<f64> = x.iter().zip(z).map(|(xi, zi)| xi / zi).collect();
            let mut per_index: Vec<Vec<(usize, f64)>> = vec![Vec::new(); d.len()];
            for k in 0..m {
                for e in problem.constraint_entries(k).iter().filter(|e| e.block == j) {
                    match per_index[e.row].iter_mut().find(|(ck, _)| *ck == k) {
                        Some((_, cv)) => *cv += e.value,
                        None => per_index[e.row].push((k, e.value)),
                    }
                }
            }
            let mut per_constraint: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
            for (i, group) in per_index.iter().enumerate() {
                for &(k, v) in group {
                    per_constraint[k].push((i, v));
                }
            }
            diag.push(Some(DiagPre { d, per_index, per_constraint }));
        }
        // Row-parallel assembly: each worker owns a disjoint run of rows of
        // the row-major `M`; `assemble_schur_row` fills one row from the
        // per-worker scratch. Per-cell accumulation runs blocks-ascending
        // then indices-ascending, exactly the serial order: the assembled
        // matrix is bitwise identical at any thread count.
        snbc_par::par_for_chunks_scratch(
            big_m.as_mut_slice(),
            m,
            || vec![None::<(Matrix, Matrix)>; scalings.len()],
            |scratch, k, row| assemble_schur_row(problem, scalings, &diag, m, scratch, k, row),
        );
        // Symmetrize (HKM's Schur matrix is only approximately symmetric) and
        // regularize.
        for k in 0..m {
            for l in (k + 1)..m {
                big_m[(l, k)] = big_m[(k, l)];
            }
            big_m[(k, k)] += self.regularization * (1.0 + big_m[(k, k)]);
        }
        *cholesky_count += 1;
        big_m
            .cholesky()
            .or_else(|_| {
                for k in 0..m {
                    big_m[(k, k)] += 1e-7 * (1.0 + big_m[(k, k)]);
                }
                *cholesky_count += 1;
                big_m.cholesky()
            })
            .map_err(SdpError::from)
    }

    /// Computes the HKM direction for centering parameter `nu` (= σμ), with an
    /// optional Mehrotra second-order correction `(dZ_aff, dX_aff)`.
    #[allow(clippy::too_many_arguments)]
    fn direction(
        &self,
        problem: &SdpProblem,
        scalings: &[Scaling],
        schur: &Cholesky,
        rp: &[f64],
        rd: &BlockMatrix,
        x: &BlockMatrix,
        nu: f64,
        correction: Option<(&BlockMatrix, &BlockMatrix)>,
    ) -> Result<(BlockMatrix, Vec<f64>, BlockMatrix), SdpError> {
        let shapes: Vec<_> = problem.shapes().to_vec();
        let m = problem.num_constraints();

        // Rc_j = ν·Zⱼ⁻¹ − Xⱼ − Zⱼ⁻¹·(dZ_aff·dX_aff)ⱼ.
        let mut rc = BlockMatrix::zeros(&shapes);
        for (j, scaling) in scalings.iter().enumerate() {
            match scaling {
                Scaling::Dense { zinv, .. } => {
                    let n = zinv.nrows();
                    let mut blk = zinv.scale(nu);
                    let xj = x.block(j).as_dense()?;
                    for i in 0..n {
                        for c in 0..n {
                            blk[(i, c)] -= xj[(i, c)];
                        }
                    }
                    if let Some((dz_aff, dx_aff)) = correction {
                        let prod = dz_aff
                            .block(j)
                            .as_dense()?
                            .matmul(dx_aff.block(j).as_dense()?);
                        let corr = zinv.matmul(&prod);
                        for i in 0..n {
                            for c in 0..n {
                                blk[(i, c)] -= corr[(i, c)];
                            }
                        }
                    }
                    // The correction product is not symmetric; symmetrize so
                    // the sparse inner products (which assume symmetry) and
                    // the final dX agree.
                    blk.symmetrize();
                    *rc.block_mut(j) = Block::Dense(blk);
                }
                Scaling::Diag { x: xd, z: zd } => {
                    let mut blk: Vec<f64> = xd
                        .iter()
                        .zip(zd)
                        .map(|(xi, zi)| nu / zi - xi)
                        .collect();
                    if let Some((dz_aff, dx_aff)) = correction {
                        let dzd = dz_aff.block(j).as_diag()?;
                        let dxd = dx_aff.block(j).as_diag()?;
                        for (i, b) in blk.iter_mut().enumerate() {
                            *b -= dzd[i] * dxd[i] / zd[i];
                        }
                    }
                    *rc.block_mut(j) = Block::Diag(blk);
                }
            }
        }

        // rhs_k = rp_k − ⟨A_k, Rc⟩ + ⟨A_k, Z⁻¹·Rd·X⟩.
        let mut zrdx = BlockMatrix::zeros(&shapes);
        for (j, scaling) in scalings.iter().enumerate() {
            match scaling {
                Scaling::Dense { zinv, x: xj, .. } => {
                    let mut prod = zinv.matmul(rd.block(j).as_dense()?).matmul(xj);
                    // Z⁻¹·Rd·X is not symmetric; ⟨A, M⟩ = ⟨A, sym(M)⟩ for the
                    // symmetric constraint matrices, so symmetrize before the
                    // sparse dot products.
                    prod.symmetrize();
                    *zrdx.block_mut(j) = Block::Dense(prod);
                }
                Scaling::Diag { x: xd, z: zd } => {
                    let rdd = rd.block(j).as_diag()?;
                    let blk: Vec<f64> = (0..xd.len()).map(|i| rdd[i] * xd[i] / zd[i]).collect();
                    *zrdx.block_mut(j) = Block::Diag(blk);
                }
            }
        }
        let mut rhs = vec![0.0; m];
        for (k, r) in rhs.iter_mut().enumerate() {
            let entries = problem.constraint_entries(k);
            *r = rp[k] - entries_dot(entries, &rc) + entries_dot(entries, &zrdx);
        }

        let dy = solve_refined(schur, &rhs);

        // dZ = Rd − Aᵀdy.
        let mut dz = rd.clone();
        problem.adjoint_accumulate(&dy, -1.0, &mut dz);

        // dX = Rc − Z⁻¹·dZ·X, symmetrized.
        let mut dx = rc;
        for (j, scaling) in scalings.iter().enumerate() {
            match scaling {
                Scaling::Dense { zinv, x: xj, .. } => {
                    let prod = zinv.matmul(dz.block(j).as_dense()?).matmul(xj);
                    let blk = dx.block_mut(j);
                    if let Block::Dense(d) = blk {
                        for i in 0..d.nrows() {
                            for c in 0..d.ncols() {
                                d[(i, c)] -= prod[(i, c)];
                            }
                        }
                        d.symmetrize();
                    }
                }
                Scaling::Diag { x: xd, z: zd } => {
                    let dzd: Vec<f64> = dz.block(j).as_diag()?.to_vec();
                    if let Block::Diag(d) = dx.block_mut(j) {
                        for i in 0..d.len() {
                            d[i] -= dzd[i] * xd[i] / zd[i];
                        }
                    }
                }
            }
        }
        Ok((dx, dy, dz))
    }

    /// Largest `α` keeping `V + α·dV` in the PSD cone (capped at 1e6).
    fn max_step(
        &self,
        v: &BlockMatrix,
        dv: &BlockMatrix,
        scalings: &[Scaling],
        primal: bool,
    ) -> Result<f64, SdpError> {
        let mut alpha = 1.0e6_f64;
        for (j, (vb, db)) in v.blocks().iter().zip(dv.blocks()).enumerate() {
            match (vb, db) {
                (Block::Dense(_), Block::Dense(dm)) => {
                    // λ_min of L⁻¹·dV·L⁻ᵀ where V = L·Lᵀ.
                    let chol = match &scalings[j] {
                        Scaling::Dense { x_chol, z_chol, .. } => {
                            if primal {
                                x_chol
                            } else {
                                z_chol
                            }
                        }
                        Scaling::Diag { .. } => {
                            return Err(SdpError::BlockMismatch { op: "max_step" })
                        }
                    };
                    let n = dm.nrows();
                    // T = L⁻¹·dV (solve per column of dV on the left).
                    let mut t = Matrix::zeros(n, n);
                    for c in 0..n {
                        let col = dm.col(c);
                        let s = chol.solve_lower(&col);
                        for r in 0..n {
                            t[(r, c)] = s[r];
                        }
                    }
                    // W = T·L⁻ᵀ = (L⁻¹·Tᵀ)ᵀ.
                    let tt = t.transpose();
                    let mut w = Matrix::zeros(n, n);
                    for c in 0..n {
                        let col = tt.col(c);
                        let s = chol.solve_lower(&col);
                        for r in 0..n {
                            w[(r, c)] = s[r];
                        }
                    }
                    let mut ws = w.transpose();
                    ws.symmetrize();
                    let lmin = ws.min_eigenvalue()?;
                    if lmin < 0.0 {
                        alpha = alpha.min(-1.0 / lmin);
                    }
                }
                (Block::Diag(vd), Block::Diag(dd)) => {
                    for (vi, di) in vd.iter().zip(dd) {
                        if *di < 0.0 {
                            alpha = alpha.min(-vi / di);
                        }
                    }
                }
                _ => return Err(SdpError::BlockMismatch { op: "max_step" }),
            }
        }
        Ok(alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockShape;

    fn default_solver() -> SdpSolver {
        SdpSolver::default()
    }

    #[test]
    fn min_trace_with_unit_diagonal() {
        // min tr(X) s.t. X₀₀ = 1, X₁₁ = 1 ⇒ 2.
        let mut p = SdpProblem::new(vec![BlockShape::Dense(2)]);
        p.set_cost(0, 0, 0, 1.0);
        p.set_cost(0, 1, 1, 1.0);
        let k0 = p.add_constraint(1.0);
        p.set_coefficient(k0, 0, 0, 0, 1.0);
        let k1 = p.add_constraint(1.0);
        p.set_coefficient(k1, 0, 1, 1, 1.0);
        let sol = default_solver().solve(&p).unwrap();
        assert!((sol.primal_objective - 2.0).abs() < 1e-5);
        assert!(sol.x.min_eigenvalue().unwrap() > -1e-8);
    }

    #[test]
    fn off_diagonal_coupling() {
        // min X₀₀ + X₁₁ s.t. 2·X₀₁ (counted twice) = 2 ⇒ X₀₁ = 1, optimum 2
        // with X = ones (PSD boundary).
        let mut p = SdpProblem::new(vec![BlockShape::Dense(2)]);
        p.set_cost(0, 0, 0, 1.0);
        p.set_cost(0, 1, 1, 1.0);
        let k = p.add_constraint(1.0);
        p.set_coefficient(k, 0, 0, 1, 0.5); // ⟨A,X⟩ = X₀₁ (0.5 mirrored → ×2)
        let sol = default_solver().solve(&p).unwrap();
        assert!((sol.primal_objective - 2.0).abs() < 1e-4, "{}", sol.primal_objective);
    }

    #[test]
    fn diag_block_is_an_lp() {
        // min x₀ + 2x₁ s.t. x₀ + x₁ = 1, x ≥ 0 ⇒ 1.
        let mut p = SdpProblem::new(vec![BlockShape::Diag(2)]);
        p.set_cost(0, 0, 0, 1.0);
        p.set_cost(0, 1, 1, 2.0);
        let k = p.add_constraint(1.0);
        p.set_coefficient(k, 0, 0, 0, 1.0);
        p.set_coefficient(k, 0, 1, 1, 1.0);
        let sol = default_solver().solve(&p).unwrap();
        assert!((sol.primal_objective - 1.0).abs() < 1e-5);
        assert!((sol.x.block(0).as_diag().unwrap()[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn mixed_blocks() {
        // min tr(Xd) + s  s.t.  Xd₀₀ = 1, Xd₀₁·2·0.5 + s = 2 (s ≥ 0 diag).
        let mut p = SdpProblem::new(vec![BlockShape::Dense(2), BlockShape::Diag(1)]);
        p.set_cost(0, 0, 0, 1.0);
        p.set_cost(0, 1, 1, 1.0);
        p.set_cost(1, 0, 0, 1.0);
        let k0 = p.add_constraint(1.0);
        p.set_coefficient(k0, 0, 0, 0, 1.0);
        let k1 = p.add_constraint(2.0);
        p.set_coefficient(k1, 0, 0, 1, 0.5);
        p.set_coefficient(k1, 1, 0, 0, 1.0);
        let sol = default_solver().solve(&p).unwrap();
        // With X₀₀ = 1: choose X₀₁ = t, s = 2 − t, X₁₁ ≥ t². Cost = 1 + t² + 2 − t,
        // minimized at t = 1/2 ⇒ 1 + 0.25 + 1.5 = 2.75.
        assert!((sol.primal_objective - 2.75).abs() < 1e-4, "{}", sol.primal_objective);
    }

    #[test]
    fn weak_duality_holds() {
        let mut p = SdpProblem::new(vec![BlockShape::Dense(3)]);
        for i in 0..3 {
            p.set_cost(0, i, i, (i + 1) as f64);
        }
        p.set_cost(0, 0, 2, 0.3);
        let k0 = p.add_constraint(2.0);
        p.set_coefficient(k0, 0, 0, 0, 1.0);
        p.set_coefficient(k0, 0, 1, 1, 1.0);
        let k1 = p.add_constraint(1.0);
        p.set_coefficient(k1, 0, 1, 2, 0.5);
        let sol = default_solver().solve(&p).unwrap();
        assert!(sol.primal_objective >= sol.dual_objective - 1e-5);
        assert!(sol.x.min_eigenvalue().unwrap() > -1e-7);
        assert!(sol.z.min_eigenvalue().unwrap() > -1e-7);
    }

    #[test]
    fn infeasible_diagonal() {
        // x ≥ 0 with x₀ = −1.
        let mut p = SdpProblem::new(vec![BlockShape::Diag(1)]);
        p.set_cost(0, 0, 0, 1.0);
        let k = p.add_constraint(-1.0);
        p.set_coefficient(k, 0, 0, 0, 1.0);
        let r = default_solver().solve(&p);
        assert!(
            matches!(r, Err(SdpError::Infeasible) | Err(SdpError::IterationLimit { .. })),
            "{r:?}"
        );
    }

    #[test]
    fn feasibility_margin_problem() {
        // The SOS-layer pattern: max t s.t. X − t·I ⪰ 0 written as
        // X = H + t·I, H ⪰ 0, t ≤ 1, with X₀₀ = 2, X₁₁ = 2, X₀₁ = 1.
        // max t ⇔ min −t. Variables: H (dense 2), t (diag split t⁺, slack).
        // Constraints: H₀₀ + t = 2; H₁₁ + t = 2; H₀₁ = 1; t + s = 1.
        let mut p = SdpProblem::new(vec![BlockShape::Dense(2), BlockShape::Diag(2)]);
        p.set_cost(1, 0, 0, -1.0); // min −t
        let k0 = p.add_constraint(2.0);
        p.set_coefficient(k0, 0, 0, 0, 1.0);
        p.set_coefficient(k0, 1, 0, 0, 1.0);
        let k1 = p.add_constraint(2.0);
        p.set_coefficient(k1, 0, 1, 1, 1.0);
        p.set_coefficient(k1, 1, 0, 0, 1.0);
        let k2 = p.add_constraint(1.0);
        p.set_coefficient(k2, 0, 0, 1, 0.5);
        let k3 = p.add_constraint(1.0);
        p.set_coefficient(k3, 1, 0, 0, 1.0);
        p.set_coefficient(k3, 1, 1, 1, 1.0);
        let sol = default_solver().solve(&p).unwrap();
        // X = [[2,1],[1,2]] has λmin = 1, and t ≤ 1 binds ⇒ t* = 1.
        assert!((sol.primal_objective + 1.0).abs() < 1e-4, "{}", sol.primal_objective);
    }
}
