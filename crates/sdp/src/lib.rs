//! Semidefinite programming for the SNBC reproduction.
//!
//! The paper's verifier (§4.2) checks the three barrier-certificate conditions
//! by testing feasibility of the LMI problems (13)–(15). Each reduces to a
//! standard-form SDP over block-diagonal positive-semidefinite variables:
//!
//! ```text
//!     min  Σⱼ ⟨Cⱼ, Xⱼ⟩
//!     s.t. Σⱼ ⟨A_{kj}, Xⱼ⟩ = b_k,   k = 1..m,
//!          Xⱼ ⪰ 0,
//! ```
//!
//! where the blocks are Gram matrices of SOS multipliers (dense PSD blocks)
//! and split free/slack scalars (diagonal blocks).
//!
//! The paper relies on an off-the-shelf conic solver for this step; since no
//! mature pure-Rust SDP solver exists, this crate ports the standard
//! **infeasible primal–dual interior-point method** with the HKM search
//! direction and Mehrotra predictor–corrector — the same algorithm family as
//! SDPA/SDPT3/SeDuMi — on top of [`snbc_linalg`].
//!
//! # Telemetry
//!
//! When [`SdpSolver::telemetry`] holds a recording sink (see
//! [`snbc_telemetry`]), each `solve` emits an `"sdp"` span carrying the IPM
//! iteration count, the final duality measure `μ`, primal/dual residuals,
//! the number of Cholesky factorizations performed, and an `optimal` flag.
//! Metrics are aggregated in plain locals during the solve and recorded once
//! at the end, so the inner loop allocates nothing extra; with the default
//! no-op sink the instrumentation reduces to a null check.
//!
//! # Example
//!
//! ```
//! use snbc_sdp::{BlockShape, SdpProblem, SdpSolver};
//!
//! // min X₀₀ + X₁₁  s.t.  X₀₁ = 1, X ⪰ 0  (optimum 2 at X = [[1,1],[1,1]]).
//! let mut p = SdpProblem::new(vec![BlockShape::Dense(2)]);
//! p.set_cost(0, 0, 0, 1.0);
//! p.set_cost(0, 1, 1, 1.0);
//! let k = p.add_constraint(1.0);
//! p.set_coefficient(k, 0, 0, 1, 0.5); // mirrored entry: ⟨A, X⟩ = X₀₁
//! let sol = SdpSolver::default().solve(&p)?;
//! assert!((sol.primal_objective - 2.0).abs() < 1e-5);
//! # Ok::<(), snbc_sdp::SdpError>(())
//! ```

mod block;
mod error;
mod problem;
mod solver;

pub use block::{Block, BlockMatrix, BlockShape};
pub use error::SdpError;
pub use problem::SdpProblem;
pub use solver::{SdpSolution, SdpSolver, SdpStatus};
