use crate::error::SdpError;
use snbc_linalg::{LinalgError, Matrix};

/// Shape of one variable block in a block-diagonal SDP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockShape {
    /// A dense symmetric PSD block of the given order.
    Dense(usize),
    /// A diagonal (linear-cone) block of the given length; equivalent to that
    /// many scalar `≥ 0` variables.
    Diag(usize),
}

impl BlockShape {
    /// Order of the block (matrix dimension / vector length).
    pub fn order(self) -> usize {
        match self {
            BlockShape::Dense(n) | BlockShape::Diag(n) => n,
        }
    }
}

/// One block of a [`BlockMatrix`].
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// Dense symmetric block.
    Dense(Matrix),
    /// Diagonal block (only the diagonal is stored).
    Diag(Vec<f64>),
}

impl Block {
    /// Zero block of the given shape.
    pub fn zeros(shape: BlockShape) -> Self {
        match shape {
            BlockShape::Dense(n) => Block::Dense(Matrix::zeros(n, n)),
            BlockShape::Diag(n) => Block::Diag(vec![0.0; n]),
        }
    }

    /// Identity block of the given shape.
    pub fn identity(shape: BlockShape) -> Self {
        match shape {
            BlockShape::Dense(n) => Block::Dense(Matrix::identity(n)),
            BlockShape::Diag(n) => Block::Diag(vec![1.0; n]),
        }
    }

    /// Order of the block.
    pub fn order(&self) -> usize {
        match self {
            Block::Dense(m) => m.nrows(),
            Block::Diag(d) => d.len(),
        }
    }

    /// Frobenius inner product with another block of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`SdpError::BlockMismatch`] on shape mismatch.
    pub fn dot(&self, other: &Block) -> Result<f64, SdpError> {
        match (self, other) {
            (Block::Dense(a), Block::Dense(b)) => Ok(a.dot(b)),
            (Block::Diag(a), Block::Diag(b)) if a.len() == b.len() => {
                Ok(a.iter().zip(b).map(|(x, y)| x * y).sum())
            }
            _ => Err(SdpError::BlockMismatch { op: "dot" }),
        }
    }

    /// `self + α·other`, in place.
    ///
    /// # Errors
    ///
    /// Returns [`SdpError::BlockMismatch`] on shape mismatch (the block is
    /// left untouched).
    pub fn axpy(&mut self, alpha: f64, other: &Block) -> Result<(), SdpError> {
        match (self, other) {
            (Block::Dense(a), Block::Dense(b)) if a.nrows() == b.nrows() => {
                let bs = b.as_slice();
                for (x, y) in a.as_mut_slice().iter_mut().zip(bs) {
                    *x += alpha * y;
                }
                Ok(())
            }
            (Block::Diag(a), Block::Diag(b)) if a.len() == b.len() => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += alpha * y;
                }
                Ok(())
            }
            _ => Err(SdpError::BlockMismatch { op: "axpy" }),
        }
    }

    /// Scales in place.
    pub fn scale_mut(&mut self, alpha: f64) {
        match self {
            Block::Dense(a) => {
                for x in a.as_mut_slice() {
                    *x *= alpha;
                }
            }
            Block::Diag(a) => {
                for x in a.iter_mut() {
                    *x *= alpha;
                }
            }
        }
    }

    /// Trace of the block.
    pub fn trace(&self) -> f64 {
        match self {
            Block::Dense(a) => a.trace(),
            Block::Diag(a) => a.iter().sum(),
        }
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        match self {
            Block::Dense(a) => a.norm_fro(),
            Block::Diag(a) => a.iter().map(|v| v * v).sum::<f64>().sqrt(),
        }
    }

    /// Smallest eigenvalue (Jacobi for dense blocks, min for diagonal).
    ///
    /// # Errors
    ///
    /// Propagates eigensolver failures on dense blocks.
    pub fn min_eigenvalue(&self) -> Result<f64, LinalgError> {
        match self {
            Block::Dense(a) => a.min_eigenvalue(),
            Block::Diag(a) => Ok(a.iter().copied().fold(f64::INFINITY, f64::min)),
        }
    }

    /// Borrows the dense matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SdpError::BlockMismatch`] if the block is diagonal.
    pub fn as_dense(&self) -> Result<&Matrix, SdpError> {
        match self {
            Block::Dense(a) => Ok(a),
            Block::Diag(_) => Err(SdpError::BlockMismatch { op: "as_dense" }),
        }
    }

    /// Borrows the diagonal.
    ///
    /// # Errors
    ///
    /// Returns [`SdpError::BlockMismatch`] if the block is dense.
    pub fn as_diag(&self) -> Result<&[f64], SdpError> {
        match self {
            Block::Diag(a) => Ok(a),
            Block::Dense(_) => Err(SdpError::BlockMismatch { op: "as_diag" }),
        }
    }
}

/// A block-diagonal symmetric matrix: the variable/cost/iterate type of the
/// SDP solver.
///
/// # Example
///
/// ```
/// use snbc_sdp::{BlockMatrix, BlockShape};
///
/// let shapes = [BlockShape::Dense(2), BlockShape::Diag(3)];
/// let x = BlockMatrix::identity(&shapes);
/// assert_eq!(x.trace(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMatrix {
    blocks: Vec<Block>,
}

impl BlockMatrix {
    /// Zero matrix with the given block shapes.
    pub fn zeros(shapes: &[BlockShape]) -> Self {
        BlockMatrix {
            blocks: shapes.iter().map(|&s| Block::zeros(s)).collect(),
        }
    }

    /// Identity matrix with the given block shapes.
    pub fn identity(shapes: &[BlockShape]) -> Self {
        BlockMatrix {
            blocks: shapes.iter().map(|&s| Block::identity(s)).collect(),
        }
    }

    /// Builds from explicit blocks.
    pub fn from_blocks(blocks: Vec<Block>) -> Self {
        BlockMatrix { blocks }
    }

    /// The blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Mutable access to the blocks.
    pub fn blocks_mut(&mut self) -> &mut [Block] {
        &mut self.blocks
    }

    /// Block `j`.
    pub fn block(&self, j: usize) -> &Block {
        &self.blocks[j]
    }

    /// Mutable block `j`.
    pub fn block_mut(&mut self, j: usize) -> &mut Block {
        &mut self.blocks[j]
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Sum of block orders (the ambient dimension `N`).
    pub fn total_order(&self) -> usize {
        self.blocks.iter().map(Block::order).sum()
    }

    /// Frobenius inner product.
    ///
    /// # Errors
    ///
    /// Returns [`SdpError::BlockMismatch`] on shape mismatch.
    pub fn dot(&self, other: &BlockMatrix) -> Result<f64, SdpError> {
        if self.blocks.len() != other.blocks.len() {
            return Err(SdpError::BlockMismatch { op: "dot" });
        }
        let mut sum = 0.0;
        for (a, b) in self.blocks.iter().zip(&other.blocks) {
            sum += a.dot(b)?;
        }
        Ok(sum)
    }

    /// `self += α·other`.
    ///
    /// # Errors
    ///
    /// Returns [`SdpError::BlockMismatch`] on shape mismatch; blocks before
    /// the mismatching one will already have been updated.
    pub fn axpy(&mut self, alpha: f64, other: &BlockMatrix) -> Result<(), SdpError> {
        if self.blocks.len() != other.blocks.len() {
            return Err(SdpError::BlockMismatch { op: "axpy" });
        }
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            a.axpy(alpha, b)?;
        }
        Ok(())
    }

    /// Scales all blocks in place.
    pub fn scale_mut(&mut self, alpha: f64) {
        for b in &mut self.blocks {
            b.scale_mut(alpha);
        }
    }

    /// Trace over all blocks.
    pub fn trace(&self) -> f64 {
        self.blocks.iter().map(Block::trace).sum()
    }

    /// Frobenius norm over all blocks.
    pub fn norm_fro(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| {
                let n = b.norm_fro();
                n * n
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Smallest eigenvalue across all blocks.
    ///
    /// # Errors
    ///
    /// Propagates eigensolver failures.
    pub fn min_eigenvalue(&self) -> Result<f64, LinalgError> {
        let mut min = f64::INFINITY;
        for b in &self.blocks {
            min = min.min(b.min_eigenvalue()?);
        }
        Ok(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_trace_counts_orders() {
        let shapes = [BlockShape::Dense(3), BlockShape::Diag(2)];
        let x = BlockMatrix::identity(&shapes);
        assert_eq!(x.trace(), 5.0);
        assert_eq!(x.total_order(), 5);
        assert_eq!(x.num_blocks(), 2);
    }

    #[test]
    fn dot_and_axpy() {
        let shapes = [BlockShape::Dense(2), BlockShape::Diag(2)];
        let mut a = BlockMatrix::identity(&shapes);
        let b = BlockMatrix::identity(&shapes);
        assert_eq!(a.dot(&b).unwrap(), 4.0);
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.trace(), 12.0);
        a.scale_mut(0.5);
        assert_eq!(a.trace(), 6.0);
    }

    #[test]
    fn min_eigenvalue_across_blocks() {
        let mut x = BlockMatrix::identity(&[BlockShape::Dense(2), BlockShape::Diag(2)]);
        if let Block::Diag(d) = x.block_mut(1) {
            d[1] = -3.0;
        }
        assert_eq!(x.min_eigenvalue().unwrap(), -3.0);
    }

    #[test]
    fn mismatched_kinds_error() {
        let a = Block::identity(BlockShape::Dense(2));
        let b = Block::identity(BlockShape::Diag(2));
        assert_eq!(a.dot(&b), Err(SdpError::BlockMismatch { op: "dot" }));
        let mut a2 = a.clone();
        assert_eq!(
            a2.axpy(1.0, &b),
            Err(SdpError::BlockMismatch { op: "axpy" })
        );
        assert!(a.as_diag().is_err());
        assert!(b.as_dense().is_err());
        // BlockMatrix level: count mismatch is also an error, not a panic.
        let x = BlockMatrix::identity(&[BlockShape::Dense(2)]);
        let y = BlockMatrix::identity(&[BlockShape::Dense(2), BlockShape::Diag(1)]);
        assert!(x.dot(&y).is_err());
    }
}
