use crate::{Block, BlockMatrix, BlockShape, SdpError};
use snbc_linalg::Matrix;

/// A sparse symmetric coefficient entry: value `v` at `(row, col)` of a block
/// (mirrored at `(col, row)` when off-diagonal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Entry {
    pub block: usize,
    pub row: usize,
    pub col: usize,
    pub value: f64,
}

/// A standard-form semidefinite program
/// `min Σⱼ⟨Cⱼ, Xⱼ⟩  s.t.  Σⱼ⟨A_{kj}, Xⱼ⟩ = b_k, Xⱼ ⪰ 0`.
///
/// Costs and constraint coefficient matrices are stored sparsely as symmetric
/// entries; the SOS layer generates them directly from monomial products.
///
/// # Example
///
/// ```
/// use snbc_sdp::{BlockShape, SdpProblem};
///
/// let mut p = SdpProblem::new(vec![BlockShape::Dense(2), BlockShape::Diag(1)]);
/// p.set_cost(1, 0, 0, 1.0);           // minimize the scalar in the diag block
/// let k = p.add_constraint(2.0);      // ⟨A_k, X⟩ = 2
/// p.set_coefficient(k, 0, 0, 0, 1.0); // X₀₀ of the dense block
/// p.set_coefficient(k, 1, 0, 0, 1.0); // plus the diag scalar
/// assert_eq!(p.num_constraints(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SdpProblem {
    shapes: Vec<BlockShape>,
    cost: Vec<Entry>,
    /// Constraint k occupies `constraints[k]`.
    constraints: Vec<Vec<Entry>>,
    b: Vec<f64>,
}

impl SdpProblem {
    /// Creates a problem with the given block structure and no constraints.
    pub fn new(shapes: Vec<BlockShape>) -> Self {
        SdpProblem {
            shapes,
            cost: Vec::new(),
            constraints: Vec::new(),
            b: Vec::new(),
        }
    }

    /// Block shapes of the variable.
    pub fn shapes(&self) -> &[BlockShape] {
        &self.shapes
    }

    /// Number of equality constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Right-hand sides `b`.
    pub fn rhs(&self) -> &[f64] {
        &self.b
    }

    /// Adds a symmetric cost entry `⟨C, X⟩ += value·(X_{rc} + X_{cr})/…`
    /// (mirrored automatically for off-diagonal positions).
    ///
    /// # Panics
    ///
    /// Panics if the position is outside the block.
    pub fn set_cost(&mut self, block: usize, row: usize, col: usize, value: f64) {
        self.check_pos(block, row, col);
        let (row, col) = if row <= col { (row, col) } else { (col, row) };
        self.cost.push(Entry {
            block,
            row,
            col,
            value,
        });
    }

    /// Appends a new constraint with right-hand side `rhs`; returns its index.
    pub fn add_constraint(&mut self, rhs: f64) -> usize {
        self.constraints.push(Vec::new());
        self.b.push(rhs);
        self.constraints.len() - 1
    }

    /// Adds `delta` to the right-hand side of constraint `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn add_rhs(&mut self, k: usize, delta: f64) {
        self.b[k] += delta;
    }

    /// Adds a symmetric coefficient entry to constraint `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` or the position is out of range.
    pub fn set_coefficient(&mut self, k: usize, block: usize, row: usize, col: usize, value: f64) {
        assert!(k < self.constraints.len(), "constraint index out of range");
        self.check_pos(block, row, col);
        let (row, col) = if row <= col { (row, col) } else { (col, row) };
        self.constraints[k].push(Entry {
            block,
            row,
            col,
            value,
        });
    }

    fn check_pos(&self, block: usize, row: usize, col: usize) {
        let shape = self.shapes[block];
        match shape {
            BlockShape::Dense(n) => {
                assert!(row < n && col < n, "entry outside dense block of order {n}");
            }
            BlockShape::Diag(n) => {
                assert!(
                    row == col && row < n,
                    "diag block entries must be on the diagonal (order {n})"
                );
            }
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SdpError::Invalid`] for empty problems.
    pub fn validate(&self) -> Result<(), SdpError> {
        if self.shapes.is_empty() {
            return Err(SdpError::Invalid("no variable blocks".into()));
        }
        if self.constraints.is_empty() {
            return Err(SdpError::Invalid("no constraints".into()));
        }
        if self.shapes.iter().any(|s| s.order() == 0) {
            return Err(SdpError::Invalid("zero-order block".into()));
        }
        Ok(())
    }

    /// The cost as a block matrix.
    pub fn cost_matrix(&self) -> BlockMatrix {
        let mut c = BlockMatrix::zeros(&self.shapes);
        accumulate(&mut c, &self.cost, 1.0);
        c
    }

    /// Constraint `k` as a block matrix.
    pub fn constraint_matrix(&self, k: usize) -> BlockMatrix {
        let mut a = BlockMatrix::zeros(&self.shapes);
        accumulate(&mut a, &self.constraints[k], 1.0);
        a
    }

    /// Evaluates `⟨A_k, X⟩` using the sparse entries.
    pub fn constraint_dot(&self, k: usize, x: &BlockMatrix) -> f64 {
        entries_dot(&self.constraints[k], x)
    }

    /// Evaluates `⟨C, X⟩`.
    pub fn cost_dot(&self, x: &BlockMatrix) -> f64 {
        entries_dot(&self.cost, x)
    }

    /// Applies the adjoint `Aᵀy`: `Σ_k y_k A_k` accumulated into `out` with
    /// coefficient `alpha`.
    pub fn adjoint_accumulate(&self, y: &[f64], alpha: f64, out: &mut BlockMatrix) {
        for (k, entries) in self.constraints.iter().enumerate() {
            // Sparse skip: a zero multiplier contributes nothing exactly.
            if y[k] == 0.0 { // audit:allow(float-eq)
                continue;
            }
            accumulate(out, entries, alpha * y[k]);
        }
    }

    /// Computes `A(X)` into a vector.
    pub fn apply(&self, x: &BlockMatrix) -> Vec<f64> {
        (0..self.num_constraints())
            .map(|k| self.constraint_dot(k, x))
            .collect()
    }

    pub(crate) fn constraint_entries(&self, k: usize) -> &[Entry] {
        &self.constraints[k]
    }

}

/// Adds `alpha` times the symmetric entries into a block matrix.
pub(crate) fn accumulate(out: &mut BlockMatrix, entries: &[Entry], alpha: f64) {
    for e in entries {
        match out.block_mut(e.block) {
            Block::Dense(m) => {
                m[(e.row, e.col)] += alpha * e.value;
                if e.row != e.col {
                    m[(e.col, e.row)] += alpha * e.value;
                }
            }
            Block::Diag(d) => {
                d[e.row] += alpha * e.value;
            }
        }
    }
}

/// `⟨A, X⟩` where `A` is given by symmetric entries.
pub(crate) fn entries_dot(entries: &[Entry], x: &BlockMatrix) -> f64 {
    let mut acc = 0.0;
    for e in entries {
        match x.block(e.block) {
            Block::Dense(m) => {
                let factor = if e.row == e.col { 1.0 } else { 2.0 };
                acc += factor * e.value * m[(e.row, e.col)];
            }
            Block::Diag(d) => {
                acc += e.value * d[e.row];
            }
        }
    }
    acc
}

/// `A·X` for a sparse symmetric `A` (entries) restricted to one dense block,
/// written into a caller-provided `n×n` buffer (zeroed here) so per-worker
/// scratch can be reused across Schur complement rows.
pub(crate) fn sparse_times_dense_into(entries: &[Entry], block: usize, x: &Matrix, out: &mut Matrix) {
    out.as_mut_slice().fill(0.0);
    for e in entries.iter().filter(|e| e.block == block) {
        // A has value v at (row, col) and (col, row).
        let v = e.value;
        {
            let xr = x.row(e.col);
            let or = out.row_mut(e.row);
            for (o, xv) in or.iter_mut().zip(xr) {
                *o += v * xv;
            }
        }
        if e.row != e.col {
            let xr = x.row(e.row);
            let or = out.row_mut(e.col);
            for (o, xv) in or.iter_mut().zip(xr) {
                *o += v * xv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrices_round_trip() {
        let mut p = SdpProblem::new(vec![BlockShape::Dense(2), BlockShape::Diag(2)]);
        p.set_cost(0, 0, 1, 0.5);
        p.set_cost(1, 1, 1, 2.0);
        let k = p.add_constraint(3.0);
        p.set_coefficient(k, 0, 0, 0, 1.0);
        p.set_coefficient(k, 1, 0, 0, -1.0);

        let c = p.cost_matrix();
        assert_eq!(c.block(0).as_dense().unwrap()[(0, 1)], 0.5);
        assert_eq!(c.block(0).as_dense().unwrap()[(1, 0)], 0.5);
        assert_eq!(c.block(1).as_diag().unwrap()[1], 2.0);

        let x = BlockMatrix::identity(p.shapes());
        assert_eq!(p.constraint_dot(k, &x), 0.0); // 1·1 + (−1)·1
        assert_eq!(p.cost_dot(&x), 2.0); // off-diagonal doesn't hit identity
    }

    #[test]
    fn constraint_dot_counts_off_diagonal_twice() {
        let mut p = SdpProblem::new(vec![BlockShape::Dense(2)]);
        let k = p.add_constraint(0.0);
        p.set_coefficient(k, 0, 0, 1, 1.0);
        let mut x = BlockMatrix::zeros(p.shapes());
        if let Block::Dense(m) = x.block_mut(0) {
            m[(0, 1)] = 3.0;
            m[(1, 0)] = 3.0;
        }
        // ⟨A, X⟩ = 2·1·3 = 6 for the mirrored entry.
        assert_eq!(p.constraint_dot(k, &x), 6.0);
        let a = p.constraint_matrix(k);
        assert_eq!(a.dot(&x).unwrap(), 6.0);
    }

    #[test]
    fn adjoint_matches_sum() {
        let mut p = SdpProblem::new(vec![BlockShape::Dense(2)]);
        let k0 = p.add_constraint(0.0);
        p.set_coefficient(k0, 0, 0, 0, 1.0);
        let k1 = p.add_constraint(0.0);
        p.set_coefficient(k1, 0, 1, 1, 1.0);
        let mut out = BlockMatrix::zeros(p.shapes());
        p.adjoint_accumulate(&[2.0, -3.0], 1.0, &mut out);
        assert_eq!(out.block(0).as_dense().unwrap()[(0, 0)], 2.0);
        assert_eq!(out.block(0).as_dense().unwrap()[(1, 1)], -3.0);
    }

    #[test]
    fn sparse_times_dense_symmetric() {
        let entries = vec![Entry {
            block: 0,
            row: 0,
            col: 1,
            value: 2.0,
        }];
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut prod = Matrix::zeros(2, 2);
        sparse_times_dense_into(&entries, 0, &x, &mut prod);
        // A = [[0,2],[2,0]]; A·X = [[6,8],[2,4]].
        assert_eq!(prod[(0, 0)], 6.0);
        assert_eq!(prod[(0, 1)], 8.0);
        assert_eq!(prod[(1, 0)], 2.0);
        assert_eq!(prod[(1, 1)], 4.0);
    }

    #[test]
    fn validate_catches_empty() {
        let p = SdpProblem::new(vec![]);
        assert!(p.validate().is_err());
        let p2 = SdpProblem::new(vec![BlockShape::Dense(2)]);
        assert!(p2.validate().is_err()); // no constraints
    }

    #[test]
    #[should_panic(expected = "diag block entries")]
    fn diag_off_diagonal_panics() {
        let mut p = SdpProblem::new(vec![BlockShape::Diag(2)]);
        let k = p.add_constraint(0.0);
        p.set_coefficient(k, 0, 0, 1, 1.0);
    }
}
