//! Property-based tests of the interior-point SDP solver on random feasible
//! instances: weak duality, primal feasibility of the returned iterate, and
//! PSD-ness of both primal and dual variables.

use proptest::prelude::*;
use snbc_linalg::Matrix;
use snbc_sdp::{BlockShape, SdpProblem, SdpSolver};

/// Builds a random feasible SDP: pick a PSD `X* = GᵀG`, random symmetric
/// constraint matrices `A_k`, set `b_k = ⟨A_k, X*⟩`, random cost.
fn random_feasible(
    gen: &[f64],
    coeffs: &[f64],
    cost: &[f64],
    n: usize,
    m: usize,
) -> (SdpProblem, Matrix) {
    let g = Matrix::from_vec(n, n, gen[..n * n].to_vec());
    let xstar = g.transpose().matmul(&g);
    let mut p = SdpProblem::new(vec![BlockShape::Dense(n)]);
    let mut idx = 0;
    for i in 0..n {
        for j in i..n {
            p.set_cost(0, i, j, cost[idx % cost.len()]);
            idx += 1;
        }
    }
    for k in 0..m {
        let kc = p.add_constraint(0.0);
        let mut acc = 0.0;
        for i in 0..n {
            for j in i..n {
                let v = coeffs[(k * n * n + i * n + j) % coeffs.len()];
                p.set_coefficient(kc, 0, i, j, v);
                acc += if i == j { v * xstar[(i, j)] } else { 2.0 * v * xstar[(i, j)] };
            }
        }
        p.add_rhs(kc, acc);
    }
    (p, xstar)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn weak_duality_and_feasibility(
        gen in proptest::collection::vec(-1.0f64..1.0, 9),
        coeffs in proptest::collection::vec(-1.0f64..1.0, 27),
        cost in proptest::collection::vec(-1.0f64..1.0, 6),
    ) {
        let (p, _xstar) = random_feasible(&gen, &coeffs, &cost, 3, 2);
        match SdpSolver::default().solve(&p) {
            Ok(sol) => {
                // Weak duality.
                prop_assert!(
                    sol.primal_objective >= sol.dual_objective - 1e-4 * (1.0 + sol.primal_objective.abs()),
                    "primal {} < dual {}", sol.primal_objective, sol.dual_objective
                );
                // Primal residual small.
                let ax = p.apply(&sol.x);
                for (axk, bk) in ax.iter().zip(p.rhs()) {
                    prop_assert!((axk - bk).abs() < 1e-3 * (1.0 + bk.abs()),
                        "constraint violated: {axk} vs {bk}");
                }
                // Cone membership of both iterates.
                prop_assert!(sol.x.min_eigenvalue().unwrap() > -1e-6);
                prop_assert!(sol.z.min_eigenvalue().unwrap() > -1e-6);
            }
            // Unbounded is possible for random costs (the feasible X* only
            // guarantees primal feasibility); iteration-limit is tolerated on
            // borderline instances.
            Err(snbc_sdp::SdpError::Unbounded) => {}
            Err(snbc_sdp::SdpError::IterationLimit { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected solver failure: {e}"),
        }
    }

    #[test]
    fn trace_bounded_instances_solve_to_optimality(
        gen in proptest::collection::vec(-1.0f64..1.0, 9),
        diag in proptest::collection::vec(0.5f64..2.0, 3),
    ) {
        // min ⟨D, X⟩ with D ≻ 0, s.t. tr(X) = c: optimum is c·min(D_ii)
        // attained at a rank-1 X on the smallest diagonal entry (for diagonal
        // D the optimal X concentrates there).
        let _ = gen;
        let mut p = SdpProblem::new(vec![BlockShape::Dense(3)]);
        for i in 0..3 {
            p.set_cost(0, i, i, diag[i]);
        }
        let k = p.add_constraint(1.0);
        for i in 0..3 {
            p.set_coefficient(k, 0, i, i, 1.0);
        }
        let sol = SdpSolver::default().solve(&p).unwrap();
        let dmin = diag.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!((sol.primal_objective - dmin).abs() < 1e-4,
            "objective {} vs expected {dmin}", sol.primal_objective);
    }
}
