use std::cmp::Ordering;
use std::fmt;

/// A monomial `x^α = x₀^α₀ · x₁^α₁ ⋯`, stored as an exponent vector.
///
/// Monomials are ordered by **graded lexicographic** order (total degree
/// first, then lexicographic on the exponent vector with `x₀ > x₁ > …`),
/// which is exactly the ordering the paper uses for the basis `[x]_d` in §3.
///
/// The exponent vector is kept *trimmed*: trailing zero exponents are removed,
/// so a monomial is independent of the ambient number of variables. The
/// constant monomial is the empty vector.
///
/// # Example
///
/// ```
/// use snbc_poly::Monomial;
///
/// let xy = Monomial::new(vec![1, 1]);   // x0·x1
/// let x2 = Monomial::new(vec![2]);      // x0²
/// assert_eq!(xy.degree(), 2);
/// // Graded-lex: same degree, so compare lexicographically; x0² > x0·x1.
/// assert!(x2 > xy);
/// assert_eq!(xy.eval(&[2.0, 3.0]), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Monomial {
    exps: Vec<u32>,
}

impl Monomial {
    /// Creates a monomial from an exponent vector (trailing zeros trimmed).
    pub fn new(mut exps: Vec<u32>) -> Self {
        while exps.last() == Some(&0) {
            exps.pop();
        }
        Monomial { exps }
    }

    /// The constant monomial `1`.
    pub fn one() -> Self {
        Monomial { exps: Vec::new() }
    }

    /// The monomial `xᵢ`.
    pub fn var(i: usize) -> Self {
        let mut exps = vec![0; i + 1];
        exps[i] = 1;
        Monomial { exps }
    }

    /// The (trimmed) exponent vector.
    pub fn exponents(&self) -> &[u32] {
        &self.exps
    }

    /// Exponent of variable `i` (`0` beyond the stored length).
    pub fn exponent(&self, i: usize) -> u32 {
        self.exps.get(i).copied().unwrap_or(0)
    }

    /// Total degree `Σ αᵢ`.
    pub fn degree(&self) -> u32 {
        self.exps.iter().sum()
    }

    /// `true` for the constant monomial.
    pub fn is_one(&self) -> bool {
        self.exps.is_empty()
    }

    /// Index of the highest variable that appears, or `None` for a constant.
    pub fn max_var(&self) -> Option<usize> {
        if self.exps.is_empty() {
            None
        } else {
            Some(self.exps.len() - 1)
        }
    }

    /// Product of two monomials (adds exponents).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let n = self.exps.len().max(other.exps.len());
        let mut exps = vec![0u32; n];
        for (i, e) in exps.iter_mut().enumerate() {
            *e = self.exponent(i) + other.exponent(i);
        }
        Monomial::new(exps)
    }

    /// Evaluates the monomial at a point.
    ///
    /// # Panics
    ///
    /// Panics if `x` has fewer coordinates than the highest variable used.
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert!(
            x.len() >= self.exps.len(),
            "point has {} coordinates but monomial uses variable x{}",
            x.len(),
            self.exps.len().saturating_sub(1)
        );
        let mut v = 1.0;
        for (i, &e) in self.exps.iter().enumerate() {
            for _ in 0..e {
                v *= x[i];
            }
        }
        v
    }

    /// Derivative with respect to variable `i`: returns `(αᵢ, x^α / xᵢ)`, or
    /// `None` when the variable does not appear.
    pub fn derivative(&self, i: usize) -> Option<(f64, Monomial)> {
        let e = self.exponent(i);
        if e == 0 {
            return None;
        }
        let mut exps = self.exps.clone();
        exps[i] -= 1;
        Some((f64::from(e), Monomial::new(exps)))
    }
}

impl Ord for Monomial {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.degree().cmp(&other.degree()) {
            Ordering::Equal => {
                // Lexicographic with x0 > x1 > …: larger exponent on the
                // earliest differing variable wins.
                let n = self.exps.len().max(other.exps.len());
                for i in 0..n {
                    match self.exponent(i).cmp(&other.exponent(i)) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for Monomial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_one() {
            return write!(f, "1");
        }
        let mut first = true;
        for (i, &e) in self.exps.iter().enumerate() {
            if e == 0 {
                continue;
            }
            if !first {
                write!(f, "*")?;
            }
            first = false;
            if e == 1 {
                write!(f, "x{i}")?;
            } else {
                write!(f, "x{i}^{e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_zeros_trimmed() {
        assert_eq!(Monomial::new(vec![1, 0, 0]), Monomial::new(vec![1]));
        assert_eq!(Monomial::new(vec![0, 0]), Monomial::one());
    }

    #[test]
    fn graded_order_degree_first() {
        let x = Monomial::var(0);
        let y2 = Monomial::new(vec![0, 2]);
        assert!(x < y2, "degree 1 < degree 2");
    }

    #[test]
    fn lex_tie_break() {
        // x0² vs x0·x1 vs x1² (all degree 2): x0² > x0x1 > x1².
        let a = Monomial::new(vec![2]);
        let b = Monomial::new(vec![1, 1]);
        let c = Monomial::new(vec![0, 2]);
        assert!(a > b && b > c);
    }

    #[test]
    fn mul_adds_exponents() {
        let a = Monomial::new(vec![1, 2]);
        let b = Monomial::new(vec![0, 1, 3]);
        assert_eq!(a.mul(&b), Monomial::new(vec![1, 3, 3]));
    }

    #[test]
    fn eval_and_derivative() {
        let m = Monomial::new(vec![2, 1]); // x0² x1
        assert_eq!(m.eval(&[3.0, 2.0]), 18.0);
        let (c, dm) = m.derivative(0).unwrap();
        assert_eq!(c, 2.0);
        assert_eq!(dm, Monomial::new(vec![1, 1]));
        assert!(m.derivative(5).is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Monomial::one().to_string(), "1");
        assert_eq!(Monomial::new(vec![2, 0, 1]).to_string(), "x0^2*x2");
    }
}
