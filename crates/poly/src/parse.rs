use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::Polynomial;

/// Error returned when parsing a polynomial expression fails.
///
/// Carries the byte offset and a short description of what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolynomialError {
    offset: usize,
    message: String,
}

impl ParsePolynomialError {
    fn new(offset: usize, message: impl Into<String>) -> Self {
        ParsePolynomialError {
            offset,
            message: message.into(),
        }
    }

    /// Byte offset in the input at which parsing failed.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParsePolynomialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid polynomial at byte {}: {}", self.offset, self.message)
    }
}

impl Error for ParsePolynomialError {}

/// Parses expressions like `"0.5*x0^2*x1 - 3*x2 + 1"` or `"(x0+1)^2"`.
///
/// Grammar: `expr := term (('+'|'-') term)*`, `term := factor ('*' factor)*`,
/// `factor := atom ('^' uint)?`, `atom := number | 'x' uint | '(' expr ')' |
/// '-' factor`. Whitespace is ignored.
impl FromStr for Polynomial {
    type Err = ParsePolynomialError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut p = Parser {
            input: s.as_bytes(),
            pos: 0,
        };
        let poly = p.expr()?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(ParsePolynomialError::new(p.pos, "unexpected trailing input"));
        }
        Ok(poly)
    }
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn expr(&mut self) -> Result<Polynomial, ParsePolynomialError> {
        let mut acc = self.term()?;
        loop {
            match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    let t = self.term()?;
                    acc += &t;
                }
                Some(b'-') => {
                    self.pos += 1;
                    let t = self.term()?;
                    acc -= &t;
                }
                _ => return Ok(acc),
            }
        }
    }

    fn term(&mut self) -> Result<Polynomial, ParsePolynomialError> {
        let mut acc = self.factor()?;
        while self.peek() == Some(b'*') {
            self.pos += 1;
            let f = self.factor()?;
            acc *= &f;
        }
        Ok(acc)
    }

    fn factor(&mut self) -> Result<Polynomial, ParsePolynomialError> {
        let base = self.atom()?;
        if self.peek() == Some(b'^') {
            self.pos += 1;
            let e = self.uint()?;
            Ok(base.powi(e))
        } else {
            Ok(base)
        }
    }

    fn atom(&mut self) -> Result<Polynomial, ParsePolynomialError> {
        match self.peek() {
            Some(b'-') => {
                self.pos += 1;
                let f = self.factor()?;
                Ok(-&f)
            }
            Some(b'(') => {
                self.pos += 1;
                let inner = self.expr()?;
                if self.peek() == Some(b')') {
                    self.pos += 1;
                    Ok(inner)
                } else {
                    Err(ParsePolynomialError::new(self.pos, "expected ')'"))
                }
            }
            Some(b'x') => {
                self.pos += 1;
                let i = self.uint()? as usize;
                Ok(Polynomial::var(i))
            }
            Some(c) if c.is_ascii_digit() || c == b'.' => {
                let start = self.pos;
                while self.pos < self.input.len()
                    && (self.input[self.pos].is_ascii_digit()
                        || self.input[self.pos] == b'.'
                        || self.input[self.pos] == b'e'
                        || self.input[self.pos] == b'E'
                        || ((self.input[self.pos] == b'+' || self.input[self.pos] == b'-')
                            && self.pos > start
                            && (self.input[self.pos - 1] == b'e'
                                || self.input[self.pos - 1] == b'E')))
                {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.input[start..self.pos])
                    .expect("ascii slice is valid utf8");
                text.parse::<f64>()
                    .map(Polynomial::constant)
                    .map_err(|_| ParsePolynomialError::new(start, "invalid number"))
            }
            _ => Err(ParsePolynomialError::new(
                self.pos,
                "expected number, variable, '(' or '-'",
            )),
        }
    }

    fn uint(&mut self) -> Result<u32, ParsePolynomialError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(ParsePolynomialError::new(start, "expected integer"));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .expect("ascii slice is valid utf8")
            .parse()
            .map_err(|_| ParsePolynomialError::new(start, "integer out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_forms() {
        let a: Polynomial = "x0^2 + 2*x0*x1 + x1^2".parse().unwrap();
        let b: Polynomial = "(x0 + x1)^2".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scientific_notation_and_unary_minus() {
        let a: Polynomial = "-1.5e-1*x0 + 2E2".parse().unwrap();
        assert!((a.eval(&[2.0]) - (-0.3 + 200.0)).abs() < 1e-12);
    }

    #[test]
    fn whitespace_tolerant() {
        let a: Polynomial = "  x0  -   x1 ".parse().unwrap();
        assert_eq!(a, "x0-x1".parse().unwrap());
    }

    #[test]
    fn errors_carry_offset() {
        let err = "x0 + ".parse::<Polynomial>().unwrap_err();
        assert_eq!(err.offset(), 5);
        assert!("x0 )".parse::<Polynomial>().is_err());
        assert!("y0".parse::<Polynomial>().is_err());
    }

    #[test]
    fn display_round_trip() {
        let a: Polynomial = "0.159*x0^2 - 2.267*x0*x1 + 5.469*x2 - 10.541".parse().unwrap();
        let again: Polynomial = a.to_string().parse().unwrap();
        assert_eq!(a, again);
    }
}
