//! Sparse multivariate polynomial arithmetic for barrier-certificate synthesis.
//!
//! Everything symbolic in the SNBC pipeline is a polynomial: the vector field
//! `f(x, u)`, the semialgebraic set descriptions `θᵢ, ψᵢ, ξᵢ`, the controller
//! abstraction `h(x)`, the barrier certificate `B(x)` extracted from the
//! quadratic network, the multiplier `λ(x)`, and every SOS multiplier. This
//! crate provides:
//!
//! * [`Monomial`] — exponent vectors with the **graded lexicographic** order
//!   used by the paper's basis `[x]_d` (§3),
//! * [`Polynomial`] — sparse polynomials over `f64` with arithmetic,
//!   differentiation, composition/substitution and evaluation,
//! * [`monomial_basis`] — the monomial basis `[x]_d` of dimension
//!   `v = C(n+d, n)`,
//! * [`lie_derivative`] — the Lie derivative `L_f B = Σ ∂B/∂xᵢ · fᵢ`,
//! * a small expression parser for tests and examples.
//!
//! # Example
//!
//! ```
//! use snbc_poly::Polynomial;
//!
//! // B(x, y) = x² + y² − 1 and the rotation field f = (−y, x):
//! let b: Polynomial = "x0^2 + x1^2 - 1".parse()?;
//! let f = ["-x1".parse()?, "x0".parse()?];
//! // Circles are invariant: L_f B ≡ 0.
//! let lie = snbc_poly::lie_derivative(&b, &f);
//! assert!(lie.is_zero());
//! # Ok::<(), snbc_poly::ParsePolynomialError>(())
//! ```

mod basis;
mod monomial;
mod parse;
mod poly;

pub use basis::{basis_size, monomial_basis, monomials_of_degree};
pub use monomial::Monomial;
pub use parse::ParsePolynomialError;
pub use poly::{lie_derivative, Polynomial};
