use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::Monomial;

/// Coefficients with magnitude below this are dropped during normalization.
const COEFF_EPS: f64 = 0.0;

/// A sparse multivariate polynomial with `f64` coefficients.
///
/// Terms are kept in a [`BTreeMap`] keyed by [`Monomial`] in graded-lex order,
/// so iteration order is deterministic and matches the paper's basis listing
/// within arithmetic tolerances.
///
/// # Example
///
/// ```
/// use snbc_poly::Polynomial;
///
/// let x = Polynomial::var(0);
/// let y = Polynomial::var(1);
/// let p = &(&x * &x) + &(&y * &y);           // x² + y²
/// assert_eq!(p.eval(&[3.0, 4.0]), 25.0);
/// assert_eq!(p.degree(), 2);
/// let dp = p.partial(0);                     // 2x
/// assert_eq!(dp.eval(&[3.0, 4.0]), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polynomial {
    terms: BTreeMap<Monomial, f64>,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial {
            terms: BTreeMap::new(),
        }
    }

    /// The constant polynomial `c` (zero if `c == 0`).
    pub fn constant(c: f64) -> Self {
        let mut p = Polynomial::zero();
        if c.abs() > COEFF_EPS {
            p.terms.insert(Monomial::one(), c);
        }
        p
    }

    /// The polynomial `xᵢ`.
    pub fn var(i: usize) -> Self {
        let mut p = Polynomial::zero();
        p.terms.insert(Monomial::var(i), 1.0);
        p
    }

    /// A single term `c·x^α`.
    pub fn term(c: f64, m: Monomial) -> Self {
        let mut p = Polynomial::zero();
        if c.abs() > COEFF_EPS {
            p.terms.insert(m, c);
        }
        p
    }

    /// Builds a polynomial from parallel coefficient/basis slices, dropping
    /// zero coefficients.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_coeffs(coeffs: &[f64], basis: &[Monomial]) -> Self {
        assert_eq!(coeffs.len(), basis.len(), "coeff/basis length mismatch");
        let mut p = Polynomial::zero();
        for (&c, m) in coeffs.iter().zip(basis) {
            if c.abs() > COEFF_EPS {
                *p.terms.entry(m.clone()).or_insert(0.0) += c;
            }
        }
        p.normalize();
        p
    }

    /// Coefficient vector of this polynomial in the given basis.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial contains a monomial absent from `basis`.
    pub fn to_coeffs(&self, basis: &[Monomial]) -> Vec<f64> {
        let index: std::collections::HashMap<&Monomial, usize> =
            basis.iter().enumerate().map(|(i, m)| (m, i)).collect();
        let mut out = vec![0.0; basis.len()];
        for (m, &c) in &self.terms {
            let i = *index
                .get(m)
                .unwrap_or_else(|| panic!("monomial {m} not in the given basis"));
            out[i] = c;
        }
        out
    }

    /// `true` when there are no terms.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Total degree (`0` for the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Number of variables referenced (1 + highest variable index), `0` for
    /// constants.
    pub fn nvars(&self) -> usize {
        self.terms
            .keys()
            .filter_map(Monomial::max_var)
            .map(|v| v + 1)
            .max()
            .unwrap_or(0)
    }

    /// Number of nonzero terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Coefficient of monomial `m` (`0` if absent).
    pub fn coeff(&self, m: &Monomial) -> f64 {
        self.terms.get(m).copied().unwrap_or(0.0)
    }

    /// The constant term.
    pub fn constant_term(&self) -> f64 {
        self.coeff(&Monomial::one())
    }

    /// Iterates over `(monomial, coefficient)` pairs in graded-lex order.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, f64)> {
        self.terms.iter().map(|(m, &c)| (m, c))
    }

    /// Adds `c·x^α` in place.
    pub fn add_term(&mut self, c: f64, m: Monomial) {
        if c.abs() <= COEFF_EPS {
            return;
        }
        let entry = self.terms.entry(m.clone()).or_insert(0.0);
        *entry += c;
        if entry.abs() <= COEFF_EPS {
            self.terms.remove(&m);
        }
    }

    fn normalize(&mut self) {
        self.terms.retain(|_, c| c.abs() > COEFF_EPS);
    }

    /// Evaluates at a point.
    ///
    /// # Panics
    ///
    /// Panics if `x` has fewer coordinates than [`Self::nvars`].
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.terms.iter().map(|(m, c)| c * m.eval(x)).sum()
    }

    /// Partial derivative `∂/∂xᵢ`.
    pub fn partial(&self, i: usize) -> Polynomial {
        let mut out = Polynomial::zero();
        for (m, &c) in &self.terms {
            if let Some((k, dm)) = m.derivative(i) {
                out.add_term(c * k, dm);
            }
        }
        out
    }

    /// Gradient `(∂/∂x₀, …, ∂/∂x_{n−1})` for `n = nvars.max(min_vars)`.
    pub fn gradient(&self, min_vars: usize) -> Vec<Polynomial> {
        let n = self.nvars().max(min_vars);
        (0..n).map(|i| self.partial(i)).collect()
    }

    /// Evaluates the gradient numerically at a point.
    ///
    /// # Panics
    ///
    /// Panics if `x` has fewer coordinates than [`Self::nvars`].
    pub fn eval_gradient(&self, x: &[f64]) -> Vec<f64> {
        (0..x.len()).map(|i| self.partial(i).eval(x)).collect()
    }

    /// Evaluates a precomputed gradient (from [`Self::gradient`]) at `x` into
    /// `out` — the allocation-free form for hot ascent loops.
    /// [`Self::eval_gradient`] rebuilds every partial derivative on each call;
    /// callers iterating from many starts should build the gradient once and
    /// evaluate it through this instead.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `grads`.
    pub fn eval_gradient_into(grads: &[Polynomial], x: &[f64], out: &mut [f64]) {
        assert!(out.len() >= grads.len(), "gradient buffer too short");
        for (o, g) in out.iter_mut().zip(grads) {
            *o = g.eval(x);
        }
    }

    /// Multiplies by a scalar, returning a new polynomial.
    pub fn scale(&self, s: f64) -> Polynomial {
        // Exact zero short-circuit; any other scalar keeps every term.
        if s == 0.0 { // audit:allow(float-eq)
            return Polynomial::zero();
        }
        let mut out = self.clone();
        for c in out.terms.values_mut() {
            *c *= s;
        }
        out
    }

    /// Integer power by repeated multiplication.
    pub fn powi(&self, e: u32) -> Polynomial {
        let mut out = Polynomial::constant(1.0);
        for _ in 0..e {
            out = &out * self;
        }
        out
    }

    /// Substitutes polynomial `sub` for variable `i`, leaving other variables
    /// intact. Used to plug the controller abstraction `u = h(x)` into the
    /// open-loop field `f(x, u)`.
    ///
    /// # Example
    ///
    /// ```
    /// use snbc_poly::Polynomial;
    ///
    /// // f(x0, x1) = x1², substitute x1 := x0 + 1 ⇒ (x0+1)².
    /// let f: Polynomial = "x1^2".parse().unwrap();
    /// let h: Polynomial = "x0 + 1".parse().unwrap();
    /// let g = f.substitute(1, &h);
    /// assert_eq!(g, "x0^2 + 2*x0 + 1".parse().unwrap());
    /// ```
    pub fn substitute(&self, i: usize, sub: &Polynomial) -> Polynomial {
        let mut out = Polynomial::zero();
        for (m, &c) in &self.terms {
            let e = m.exponent(i);
            // Remove xᵢ from the monomial.
            let mut exps = m.exponents().to_vec();
            if i < exps.len() {
                exps[i] = 0;
            }
            let rest = Polynomial::term(c, Monomial::new(exps));
            let piece = &rest * &sub.powi(e);
            out += &piece;
        }
        out
    }

    /// Renames variables: variable `i` becomes variable `map[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial uses a variable not covered by `map`.
    pub fn remap_vars(&self, map: &[usize]) -> Polynomial {
        let mut out = Polynomial::zero();
        for (m, &c) in &self.terms {
            let mut exps = Vec::new();
            for (i, &e) in m.exponents().iter().enumerate() {
                if e == 0 {
                    continue;
                }
                let j = *map
                    .get(i)
                    .unwrap_or_else(|| panic!("variable x{i} not covered by remap"));
                if exps.len() <= j {
                    exps.resize(j + 1, 0);
                }
                exps[j] += e;
            }
            out.add_term(c, Monomial::new(exps));
        }
        out
    }

    /// Largest absolute coefficient (`0` for the zero polynomial).
    pub fn max_abs_coeff(&self) -> f64 {
        self.terms.values().fold(0.0, |m, c| m.max(c.abs()))
    }

    /// Drops terms with `|coefficient| ≤ tol`, returning the pruned polynomial.
    pub fn prune(&self, tol: f64) -> Polynomial {
        let mut out = self.clone();
        out.terms.retain(|_, c| c.abs() > tol);
        out
    }
}

/// The Lie derivative `L_f B(x) = Σᵢ ∂B/∂xᵢ · fᵢ(x)` of `b` along the vector
/// field `field` (Theorem 1 of the paper).
///
/// # Example
///
/// ```
/// use snbc_poly::{lie_derivative, Polynomial};
///
/// // B = x² + y², f = (−y, x) ⇒ L_f B = −2xy + 2xy = 0.
/// let b: Polynomial = "x0^2 + x1^2".parse().unwrap();
/// let f = ["-x1".parse().unwrap(), "x0".parse().unwrap()];
/// assert!(lie_derivative(&b, &f).is_zero());
/// ```
pub fn lie_derivative(b: &Polynomial, field: &[Polynomial]) -> Polynomial {
    let mut out = Polynomial::zero();
    for (i, fi) in field.iter().enumerate() {
        let db = b.partial(i);
        if db.is_zero() || fi.is_zero() {
            continue;
        }
        out += &(&db * fi);
    }
    out
}

impl Add for &Polynomial {
    type Output = Polynomial;

    fn add(self, rhs: &Polynomial) -> Polynomial {
        let mut out = self.clone();
        out += rhs;
        out
    }
}

impl AddAssign<&Polynomial> for Polynomial {
    fn add_assign(&mut self, rhs: &Polynomial) {
        for (m, &c) in &rhs.terms {
            self.add_term(c, m.clone());
        }
    }
}

impl Sub for &Polynomial {
    type Output = Polynomial;

    fn sub(self, rhs: &Polynomial) -> Polynomial {
        let mut out = self.clone();
        out -= rhs;
        out
    }
}

impl SubAssign<&Polynomial> for Polynomial {
    fn sub_assign(&mut self, rhs: &Polynomial) {
        for (m, &c) in &rhs.terms {
            self.add_term(-c, m.clone());
        }
    }
}

impl Mul for &Polynomial {
    type Output = Polynomial;

    fn mul(self, rhs: &Polynomial) -> Polynomial {
        let mut out = Polynomial::zero();
        for (ma, &ca) in &self.terms {
            for (mb, &cb) in &rhs.terms {
                out.add_term(ca * cb, ma.mul(mb));
            }
        }
        out
    }
}

impl MulAssign<&Polynomial> for Polynomial {
    fn mul_assign(&mut self, rhs: &Polynomial) {
        let prod = &*self * rhs;
        *self = prod;
    }
}

impl Neg for &Polynomial {
    type Output = Polynomial;

    fn neg(self) -> Polynomial {
        self.scale(-1.0)
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Display highest-degree terms first, the conventional reading order.
        let mut first = true;
        for (m, &c) in self.terms.iter().rev() {
            let (sign, mag) = if c < 0.0 { ("-", -c) } else { ("+", c) };
            if first {
                if sign == "-" {
                    write!(f, "-")?;
                }
                first = false;
            } else {
                write!(f, " {sign} ")?;
            }
            if m.is_one() {
                write!(f, "{mag}")?;
            } else if (mag - 1.0).abs() < 1e-12 {
                write!(f, "{m}")?;
            } else {
                write!(f, "{mag}*{m}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Polynomial {
        s.parse().unwrap()
    }

    #[test]
    fn eval_gradient_into_matches_eval_gradient() {
        let q = p("x0^2*x1 + 3*x1^2 - x0");
        let x = [1.5, -2.0];
        let grads = q.gradient(x.len());
        let mut buf = [0.0f64; 2];
        Polynomial::eval_gradient_into(&grads, &x, &mut buf);
        assert_eq!(buf.to_vec(), q.eval_gradient(&x));
    }

    #[test]
    fn arithmetic_identities() {
        let a = p("x0^2 - 2*x0*x1 + 3");
        let zero = Polynomial::zero();
        assert_eq!(&a + &zero, a);
        assert_eq!(&a - &a, zero);
        assert_eq!(&a * &Polynomial::constant(1.0), a);
        assert_eq!(&a * &zero, zero);
    }

    #[test]
    fn distributes() {
        let a = p("x0 + 1");
        let b = p("x0 - 1");
        assert_eq!(&a * &b, p("x0^2 - 1"));
    }

    #[test]
    fn eval_matches_structure() {
        let a = p("2*x0^2*x1 - x1 + 0.5");
        assert!((a.eval(&[2.0, 3.0]) - (24.0 - 3.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn partials_and_gradient() {
        let a = p("x0^3 + x0*x1^2");
        assert_eq!(a.partial(0), p("3*x0^2 + x1^2"));
        assert_eq!(a.partial(1), p("2*x0*x1"));
        assert_eq!(a.partial(3), Polynomial::zero());
        let g = a.gradient(2);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn lie_derivative_of_energy() {
        // Damped oscillator: f = (x1, −x0 − x1); V = x0² + x1².
        // L_f V = 2x0·x1 + 2x1·(−x0 − x1) = −2x1².
        let v = p("x0^2 + x1^2");
        let f = [p("x1"), p("-x0 - x1")];
        assert_eq!(lie_derivative(&v, &f), p("-2*x1^2"));
    }

    #[test]
    fn substitution_closed_loop() {
        // Open loop: ẋ = x1 + u with u := −2x0 ⇒ x1 − 2x0.
        let f = p("x1 + x2"); // x2 plays the role of u
        let h = p("-2*x0");
        assert_eq!(f.substitute(2, &h), p("x1 - 2*x0"));
    }

    #[test]
    fn coeff_round_trip() {
        let basis = crate::monomial_basis(2, 2);
        let a = p("1 + 2*x0 - 3*x1^2 + 0.25*x0*x1");
        let c = a.to_coeffs(&basis);
        assert_eq!(Polynomial::from_coeffs(&c, &basis), a);
    }

    #[test]
    fn remap_vars_shifts() {
        let a = p("x0^2 + x1");
        let b = a.remap_vars(&[2, 0]);
        assert_eq!(b, p("x2^2 + x0"));
    }

    #[test]
    fn powi_matches_repeated_mul() {
        let a = p("x0 + 1");
        assert_eq!(a.powi(0), Polynomial::constant(1.0));
        assert_eq!(a.powi(3), &(&a * &a) * &a);
    }

    #[test]
    fn display_readable() {
        let a = p("x0^2 - 2*x1 + 1");
        assert_eq!(a.to_string(), "x0^2 - 2*x1 + 1");
        assert_eq!(Polynomial::zero().to_string(), "0");
    }

    #[test]
    fn prune_drops_small_terms() {
        let a = p("x0 + 0.0000001*x1");
        let b = a.prune(1e-6);
        assert_eq!(b, p("x0"));
    }

    #[test]
    fn degree_and_nvars() {
        let a = p("x0*x2^3 + 1");
        assert_eq!(a.degree(), 4);
        assert_eq!(a.nvars(), 3);
        assert_eq!(Polynomial::zero().degree(), 0);
        assert_eq!(Polynomial::constant(5.0).nvars(), 0);
    }
}
