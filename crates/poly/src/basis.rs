use crate::Monomial;

/// Dimension `v = C(n+d, n)` of the monomial basis `[x]_d` in `n` variables
/// up to degree `d` (§3 of the paper).
///
/// # Example
///
/// ```
/// // Quadratic basis in 3 variables: 1, x0, x1, x2, x0², x0x1, … (10 terms).
/// assert_eq!(snbc_poly::basis_size(3, 2), 10);
/// ```
pub fn basis_size(nvars: usize, degree: u32) -> usize {
    // C(n+d, n) computed incrementally to avoid overflow for the sizes we use.
    let n = nvars as u128;
    let d = u128::from(degree);
    let mut num = 1u128;
    let mut den = 1u128;
    for i in 1..=n {
        num *= d + i;
        den *= i;
        // Keep the intermediate reduced.
        let g = gcd(num, den);
        num /= g;
        den /= g;
    }
    usize::try_from(num / den).expect("basis size overflows usize")
}

fn gcd(a: u128, b: u128) -> u128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// All monomials of exactly `degree` in `nvars` variables, in the paper's
/// graded-lex listing order for that degree (`x0^d` first, `x_{n-1}^d` last).
pub fn monomials_of_degree(nvars: usize, degree: u32) -> Vec<Monomial> {
    let mut out = Vec::new();
    let mut exps = vec![0u32; nvars];
    fill(&mut out, &mut exps, 0, degree);
    out
}

fn fill(out: &mut Vec<Monomial>, exps: &mut Vec<u32>, var: usize, remaining: u32) {
    if var == exps.len() {
        if remaining == 0 {
            out.push(Monomial::new(exps.clone()));
        }
        return;
    }
    if var + 1 == exps.len() {
        exps[var] = remaining;
        out.push(Monomial::new(exps.clone()));
        exps[var] = 0;
        return;
    }
    // Descending exponent on the earlier variable ⇒ paper's listing order.
    for e in (0..=remaining).rev() {
        exps[var] = e;
        fill(out, exps, var + 1, remaining - e);
    }
    exps[var] = 0;
}

/// The monomial basis `[x]_d` in `n` variables: all monomials of degree at
/// most `d`, ordered exactly as the paper lists them —
/// `[1, x₁, …, xₙ, x₁², x₁x₂, …, xₙ^d]` (degrees ascending, graded-lex within
/// each degree).
///
/// This ordering is the single source of truth for coefficient vectors
/// everywhere in the workspace (LP controller fitting, SOS Gram assembly,
/// network-to-polynomial extraction).
///
/// # Example
///
/// ```
/// use snbc_poly::{monomial_basis, Monomial};
///
/// let b = monomial_basis(2, 2);
/// let shown: Vec<String> = b.iter().map(|m| m.to_string()).collect();
/// assert_eq!(shown, ["1", "x0", "x1", "x0^2", "x0*x1", "x1^2"]);
/// assert_eq!(b.len(), snbc_poly::basis_size(2, 2));
/// ```
pub fn monomial_basis(nvars: usize, degree: u32) -> Vec<Monomial> {
    let mut out = Vec::with_capacity(basis_size(nvars, degree));
    for d in 0..=degree {
        out.extend(monomials_of_degree(nvars, d));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_binomials() {
        assert_eq!(basis_size(1, 3), 4);
        assert_eq!(basis_size(2, 2), 6);
        assert_eq!(basis_size(3, 2), 10);
        assert_eq!(basis_size(12, 2), 91);
        assert_eq!(basis_size(12, 4), 1820);
        assert_eq!(basis_size(5, 0), 1);
    }

    #[test]
    fn basis_length_matches_size() {
        for n in 1..5 {
            for d in 0..5 {
                assert_eq!(monomial_basis(n, d).len(), basis_size(n, d));
            }
        }
    }

    #[test]
    fn paper_listing_order_degree_two_three_vars() {
        let shown: Vec<String> = monomial_basis(3, 2).iter().map(|m| m.to_string()).collect();
        assert_eq!(
            shown,
            [
                "1", "x0", "x1", "x2", "x0^2", "x0*x1", "x0*x2", "x1^2", "x1*x2", "x2^2"
            ]
        );
    }

    #[test]
    fn monomials_unique() {
        let b = monomial_basis(4, 3);
        let mut seen = std::collections::HashSet::new();
        for m in &b {
            assert!(seen.insert(m.clone()), "duplicate monomial {m}");
        }
    }

    #[test]
    fn degrees_ascending() {
        let b = monomial_basis(3, 4);
        for w in b.windows(2) {
            assert!(w[0].degree() <= w[1].degree());
        }
    }
}
