//! Property-based tests: the polynomial type satisfies the commutative-ring
//! axioms, differentiation is linear and Leibniz, and evaluation is a ring
//! homomorphism. These invariants underpin every symbolic step of the
//! barrier-certificate pipeline.

use proptest::prelude::*;
use snbc_poly::{lie_derivative, monomial_basis, Monomial, Polynomial};

/// Strategy: a random polynomial in 2 variables of degree ≤ 3 with small
/// integer-ish coefficients (keeps evaluation exact enough for equality).
fn poly2() -> impl Strategy<Value = Polynomial> {
    let basis_len = monomial_basis(2, 3).len();
    proptest::collection::vec(-4i32..=4, basis_len).prop_map(|coeffs| {
        let basis = monomial_basis(2, 3);
        let floats: Vec<f64> = coeffs.iter().map(|&c| f64::from(c) * 0.5).collect();
        Polynomial::from_coeffs(&floats, &basis)
    })
}

fn point() -> impl Strategy<Value = [f64; 2]> {
    [-1.5f64..1.5, -1.5f64..1.5]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_commutes(a in poly2(), b in poly2()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn addition_associates(a in poly2(), b in poly2(), c in poly2()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn multiplication_commutes(a in poly2(), b in poly2()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn distributive_law(a in poly2(), b in poly2(), c in poly2()) {
        let lhs = &a * &(&b + &c);
        let rhs = &(&a * &b) + &(&a * &c);
        // Floating point: compare coefficients within tolerance.
        prop_assert!((&lhs - &rhs).max_abs_coeff() < 1e-9);
    }

    #[test]
    fn additive_inverse(a in poly2()) {
        prop_assert!((&a - &a).is_zero());
        prop_assert!((&a + &(-&a)).is_zero());
    }

    #[test]
    fn one_is_neutral(a in poly2()) {
        prop_assert_eq!(&a * &Polynomial::constant(1.0), a.clone());
    }

    #[test]
    fn zero_annihilates(a in poly2()) {
        prop_assert!((&a * &Polynomial::zero()).is_zero());
    }

    #[test]
    fn evaluation_is_ring_homomorphism(a in poly2(), b in poly2(), x in point()) {
        let sum = &a + &b;
        let prod = &a * &b;
        prop_assert!((sum.eval(&x) - (a.eval(&x) + b.eval(&x))).abs() < 1e-8);
        prop_assert!((prod.eval(&x) - a.eval(&x) * b.eval(&x)).abs() < 1e-6);
    }

    #[test]
    fn differentiation_is_linear(a in poly2(), b in poly2()) {
        let sum = &a + &b;
        let ds = sum.partial(0);
        let want = &a.partial(0) + &b.partial(0);
        prop_assert!((&ds - &want).max_abs_coeff() < 1e-9);
    }

    #[test]
    fn leibniz_rule(a in poly2(), b in poly2()) {
        let prod = &a * &b;
        let dp = prod.partial(1);
        let want = &(&a.partial(1) * &b) + &(&a * &b.partial(1));
        prop_assert!((&dp - &want).max_abs_coeff() < 1e-8);
    }

    #[test]
    fn lie_derivative_is_linear_in_b(a in poly2(), b in poly2()) {
        let field = [Polynomial::var(1), -&Polynomial::var(0)];
        let sum = &a + &b;
        let l = lie_derivative(&sum, &field);
        let want = &lie_derivative(&a, &field) + &lie_derivative(&b, &field);
        prop_assert!((&l - &want).max_abs_coeff() < 1e-9);
    }

    #[test]
    fn coeff_round_trip(a in poly2()) {
        let basis = monomial_basis(2, 3);
        let coeffs = a.to_coeffs(&basis);
        prop_assert_eq!(Polynomial::from_coeffs(&coeffs, &basis), a);
    }

    #[test]
    fn substitution_matches_pointwise(a in poly2(), x in point()) {
        // Substitute x1 := x0² and compare pointwise.
        let sub: Polynomial = "x0^2".parse().unwrap();
        let g = a.substitute(1, &sub);
        let direct = a.eval(&[x[0], x[0] * x[0]]);
        prop_assert!((g.eval(&[x[0], 0.0]) - direct).abs() < 1e-6);
    }

    #[test]
    fn monomial_order_is_total_and_consistent(
        ea in proptest::collection::vec(0u32..4, 3),
        eb in proptest::collection::vec(0u32..4, 3),
    ) {
        let a = Monomial::new(ea);
        let b = Monomial::new(eb);
        // Totality + antisymmetry.
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert_eq!(b.cmp(&a), std::cmp::Ordering::Greater),
            std::cmp::Ordering::Greater => prop_assert_eq!(b.cmp(&a), std::cmp::Ordering::Less),
            std::cmp::Ordering::Equal => prop_assert_eq!(a.clone(), b.clone()),
        }
        // Graded: strictly smaller degree ⇒ strictly smaller monomial.
        if a.degree() < b.degree() {
            prop_assert!(a < b);
        }
        // Multiplicative monotonicity: a ≤ b ⇒ a·m ≤ b·m.
        let m = Monomial::new(vec![1, 0, 2]);
        if a <= b {
            prop_assert!(a.mul(&m) <= b.mul(&m));
        }
    }
}
