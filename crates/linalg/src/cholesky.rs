use crate::{LinalgError, Matrix};

/// Panel width of the left-looking Cholesky factorization. A pure locality
/// knob: the update order within every `L` entry is unchanged (see
/// [`chol_row_update`]), so any width gives bit-identical factors; 32
/// columns × 8 bytes keeps a row prefix plus the panel in L1. Blocked
/// *right-looking* variants (trailing-matrix GEMM updates) are deliberately
/// not used — they reorder the subtraction chain and would break the
/// workspace's bitwise-stability contract (docs/PERFORMANCE.md).
const CHOL_NB: usize = 32;

/// The inner Cholesky kernel: `s − Σ xᵢ·yᵢ` accumulated *sequentially in
/// index order* — exactly the subtraction chain of the textbook left-looking
/// loop, split across panels by slicing `x`/`y`. A separate dot-product
/// accumulator would not be bitwise equal (`a − (t₁ + t₂) ≠ a − t₁ − t₂` in
/// floating point), and skipping zero multiplicands could flip signed
/// zeros, so neither shortcut is taken.
// audit:hot
fn chol_row_update(mut s: f64, x: &[f64], y: &[f64]) -> f64 {
    for (a, b) in x.iter().zip(y) {
        s -= a * b;
    }
    s
}

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// Used throughout the SDP interior-point solver: for factoring scaled iterates
/// and the Schur complement of the Newton system.
///
/// # Example
///
/// ```
/// use snbc_linalg::Matrix;
///
/// # fn main() -> Result<(), snbc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let c = a.cholesky()?;
/// let l = c.l();
/// let back = l.matmul(&l.transpose());
/// assert!((&back - &a).norm_max() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Computes the factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if any pivot is `≤ 0` or
    /// non-finite, and [`LinalgError::ShapeMismatch`] for non-square input.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                expected: (a.nrows(), a.nrows()),
                found: (a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        // Panelled left-looking factorization. For each `CHOL_NB`-column
        // panel `[p, phi)`:
        //
        //   phase 1 applies the updates from the already-final columns
        //   `[0, p)` to the whole panel block, row by row — the row-`i`
        //   prefix `l[i][..p]` is read once and reused for up to `CHOL_NB`
        //   panel columns while cache-hot (the locality win over the
        //   unblocked loop, which re-streams it per column of `L`);
        //
        //   phase 2 finishes the panel with the textbook left-looking
        //   recurrence restricted to the in-panel columns `[p, j)`.
        //
        // Each entry's subtraction chain is the phase-1 range `[0, p)`
        // followed by the phase-2 range `[p, j)` — concatenated, that is the
        // naive `k = 0..j` ascending order exactly, so the factor (and any
        // pivot failure, at the same index with the same value) is bitwise
        // identical to the unblocked loop (`tests/tiled_equivalence.rs`).
        let mut p = 0;
        while p < n {
            let phi = (p + CHOL_NB).min(n);
            // Phase 1: seed the panel block from A and fold in columns [0, p).
            for i in p..n {
                for j in p..phi.min(i + 1) {
                    let s = chol_row_update(a[(i, j)], &l.row(i)[..p], &l.row(j)[..p]);
                    l[(i, j)] = s;
                }
            }
            // Phase 2: factor the panel columns in order.
            for j in p..phi {
                let d = chol_row_update(l[(j, j)], &l.row(j)[p..j], &l.row(j)[p..j]);
                if !(d > 0.0) || !d.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite { index: j, pivot: d });
                }
                let dj = d.sqrt();
                l[(j, j)] = dj;
                for i in (j + 1)..n {
                    let s = chol_row_update(l[(i, j)], &l.row(i)[p..j], &l.row(j)[p..j]);
                    l[(i, j)] = s / dj;
                }
            }
            p = phi;
        }
        crate::sanitize::check_finite("Cholesky::new", l.as_slice());
        crate::sanitize::check_positive(
            "Cholesky::new (pivots)",
            &(0..n).map(|i| l[(i, i)]).collect::<Vec<_>>(),
        );
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.nrows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Forward: L·y = b
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        // Backward: Lᵀ·x = y
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.l[(k, i)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        y
    }

    /// Solves `L·y = b` (forward substitution only).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.nrows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        y
    }

    /// Solves `Lᵀ·x = b` (backward substitution only).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve_upper(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.nrows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut x = b.to_vec();
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.l[(k, i)] * x[k];
            }
            x[i] /= self.l[(i, i)];
        }
        x
    }

    /// Inverse of `A` reconstructed from the factorization.
    pub fn inverse(&self) -> Matrix {
        let n = self.l.nrows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        inv
    }

    /// `log det A = 2·Σ log Lᵢᵢ`, used by barrier functions.
    pub fn log_det(&self) -> f64 {
        (0..self.l.nrows())
            .map(|i| self.l[(i, i)].ln())
            .sum::<f64>()
            * 2.0
    }
}

/// LDLᵀ factorization of a symmetric matrix without pivoting.
///
/// Suitable for symmetric *quasi-definite* systems, e.g. the augmented KKT
/// systems arising in interior-point methods where the (1,1) block is positive
/// definite and the (2,2) block negative definite.
///
/// # Example
///
/// ```
/// use snbc_linalg::Matrix;
///
/// # fn main() -> Result<(), snbc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, -3.0]]);
/// let f = a.ldlt()?;
/// let x = f.solve(&[1.0, 0.0]);
/// let r = a.matvec(&x);
/// assert!((r[0] - 1.0).abs() < 1e-12 && r[1].abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Ldlt {
    l: Matrix,
    d: Vec<f64>,
}

impl Ldlt {
    /// Computes the factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if a diagonal pivot vanishes, and
    /// [`LinalgError::ShapeMismatch`] for non-square input.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                expected: (a.nrows(), a.nrows()),
                found: (a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        let mut l = Matrix::identity(n);
        let mut d = vec![0.0; n];
        for j in 0..n {
            let mut dj = a[(j, j)];
            for k in 0..j {
                dj -= l[(j, k)] * l[(j, k)] * d[k];
            }
            if dj.abs() < 1e-300 || !dj.is_finite() {
                return Err(LinalgError::Singular { column: j });
            }
            d[j] = dj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)] * d[k];
                }
                l[(i, j)] = s / dj;
            }
        }
        crate::sanitize::check_finite("Ldlt::new", l.as_slice());
        crate::sanitize::check_finite("Ldlt::new (pivots)", &d);
        Ok(Ldlt { l, d })
    }

    /// The unit lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// The diagonal `D`.
    pub fn d(&self) -> &[f64] {
        &self.d
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.nrows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
        }
        for i in 0..n {
            y[i] /= self.d[i];
        }
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.l[(k, i)] * y[k];
            }
        }
        y
    }

    /// Number of negative pivots (the matrix inertia's negative count).
    pub fn negative_pivots(&self) -> usize {
        self.d.iter().filter(|&&d| d < 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -0.2], &[0.5, -0.2, 5.0]])
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let c = a.cholesky().unwrap();
        let back = c.l().matmul(&c.l().transpose());
        assert!((&back - &a).norm_max() < 1e-12);
    }

    #[test]
    fn cholesky_solve_matches_lu() {
        let a = spd3();
        let b = [1.0, -2.0, 0.3];
        let x1 = a.cholesky().unwrap().solve(&b);
        let x2 = a.solve(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(
            a.cholesky(),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn cholesky_log_det() {
        let a = spd3();
        let c = a.cholesky().unwrap();
        let det = a.lu().unwrap().det();
        assert!((c.log_det() - det.ln()).abs() < 1e-10);
    }

    #[test]
    fn cholesky_inverse() {
        let a = spd3();
        let inv = a.cholesky().unwrap().inverse();
        let prod = a.matmul(&inv);
        assert!((&prod - &Matrix::identity(3)).norm_max() < 1e-10);
    }

    #[test]
    fn forward_backward_split_composes() {
        let a = spd3();
        let c = a.cholesky().unwrap();
        let b = [0.3, 1.0, -2.0];
        let y = c.solve_lower(&b);
        let x = c.solve_upper(&y);
        let full = c.solve(&b);
        for (u, v) in x.iter().zip(&full) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn ldlt_handles_quasi_definite() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, -3.0, 0.5], &[0.0, 0.5, -1.0]]);
        let f = a.ldlt().unwrap();
        assert_eq!(f.negative_pivots(), 2);
        let x = f.solve(&[1.0, 2.0, 3.0]);
        let r = a.matvec(&x);
        assert!((r[0] - 1.0).abs() < 1e-10);
        assert!((r[1] - 2.0).abs() < 1e-10);
        assert!((r[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn ldlt_rejects_singular() {
        let a = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0]]);
        assert!(matches!(a.ldlt(), Err(LinalgError::Singular { .. })));
    }
}
