use crate::{LinalgError, Matrix};

/// LU factorization with partial pivoting: `P·A = L·U`.
///
/// General-purpose square solver used wherever symmetry/definiteness cannot be
/// assumed (e.g. least-squares normal equations with regularization disabled,
/// Newton systems in counterexample refinement).
///
/// # Example
///
/// ```
/// use snbc_linalg::Matrix;
///
/// # fn main() -> Result<(), snbc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[0.0, 1.0], &[2.0, 0.0]]);
/// let lu = a.lu()?;
/// assert!((lu.det() + 2.0).abs() < 1e-14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined storage: strictly-lower part of L (unit diagonal implicit) and
    /// upper-triangular U.
    lu: Matrix,
    perm: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Computes the factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if no pivot above `1e-300` exists in
    /// some column, and [`LinalgError::ShapeMismatch`] for non-square input.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                expected: (a.nrows(), a.nrows()),
                found: (a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Pivot selection.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-300 || !best.is_finite() {
                return Err(LinalgError::Singular { column: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                for j in (k + 1)..n {
                    let v = m * lu[(k, j)];
                    lu[(i, j)] -= v;
                }
            }
        }
        crate::sanitize::check_finite("Lu::new", lu.as_slice());
        Ok(Lu { lu, perm, sign })
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.nrows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[self.perm[i]];
            for k in 0..i {
                s -= self.lu[(i, k)] * y[k];
            }
            y[i] = s;
        }
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.lu[(i, k)] * y[k];
            }
            y[i] /= self.lu[(i, i)];
        }
        y
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.lu.nrows() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the original matrix.
    pub fn inverse(&self) -> Matrix {
        let n = self.lu.nrows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_random_system() {
        let a = Matrix::from_rows(&[&[3.0, -1.0, 2.0], &[1.0, 4.0, 0.0], &[-2.0, 1.0, 5.0]]);
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = a.lu().unwrap().solve(&b);
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn det_of_permutation_needs_sign() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((a.lu().unwrap().det() + 1.0).abs() < 1e-14);
    }

    #[test]
    fn inverse_round_trip() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[5.0, 3.0]]);
        let inv = a.lu().unwrap().inverse();
        let prod = a.matmul(&inv);
        assert!((&prod - &Matrix::identity(2)).norm_max() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }
}
