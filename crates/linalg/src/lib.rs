//! Dense linear-algebra substrate for the SNBC reproduction.
//!
//! Every numerical solver in the workspace (the LP solver used for Chebyshev
//! controller approximation, the SDP interior-point solver behind the SOS/LMI
//! verifier, and the neural-network training code) is built on the small dense
//! kernel provided here: a row-major [`Matrix`] type plus factorizations
//! (Cholesky, LDLᵀ, LU, QR) and a Jacobi eigensolver for symmetric matrices.
//!
//! The matrices arising in barrier-certificate synthesis are small-to-moderate
//! (Gram matrices of monomial bases, Schur complements over coefficient
//! constraints), so a cache-friendly dense representation with `f64` entries is
//! the right tool; no sparse machinery is needed.
//!
//! # Tiling and the bitwise contract
//!
//! The two hottest kernels — GEMM ([`Matrix::matmul`], tiles `GEMM_MC = 64`
//! rows × `GEMM_NC = 256` columns of the output) and the Cholesky
//! factorization ([`Matrix::cholesky`], `CHOL_NB = 32`-column panels) — are
//! cache-tiled, but only in ways that leave every floating-point operation
//! sequence unchanged: GEMM keeps each output element's full ascending `k`
//! accumulation (no `k`-blocking), and the Cholesky panels concatenate their
//! update ranges into exactly the textbook `k = 0..j` subtraction chain. The
//! tile sizes are therefore pure locality knobs — any value produces
//! bit-identical results (pinned by `tests/tiled_equivalence.rs`), which is
//! what the workspace determinism contract (docs/PARALLELISM.md) and the
//! strict `snbc-bench check` baselines require of a kernel change. Measured
//! effects and tuning guidance: docs/PERFORMANCE.md.
//!
//! # Example
//!
//! ```
//! use snbc_linalg::Matrix;
//!
//! # fn main() -> Result<(), snbc_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
//! let chol = a.cholesky()?;
//! let x = chol.solve(&[1.0, 2.0]);
//! let r = a.matvec(&x);
//! assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod cholesky;
mod eigen;
mod error;
mod lu;
mod matrix;
mod qr;
pub mod sanitize;
pub mod vec_ops;

pub use cholesky::{Cholesky, Ldlt};
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::Qr;
