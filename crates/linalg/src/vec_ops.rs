//! Free functions on `&[f64]` vectors.
//!
//! These helpers avoid a heavyweight vector newtype: the workspace passes
//! coordinates, gradients and residuals around as plain slices, and these are
//! the handful of BLAS-1 style kernels everything needs.
//!
//! # Example
//!
//! ```
//! use snbc_linalg::vec_ops;
//!
//! let x = [3.0, 4.0];
//! assert_eq!(vec_ops::norm2(&x), 5.0);
//! assert_eq!(vec_ops::dot(&x, &x), 25.0);
//! ```

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm (maximum absolute entry); `0` for the empty slice.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// `y ← y + α·x`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Elementwise sum `a + b` as a new vector.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Elementwise difference `a − b` as a new vector.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Scalar multiple `α·a` as a new vector.
pub fn scale(alpha: f64, a: &[f64]) -> Vec<f64> {
    a.iter().map(|x| alpha * x).collect()
}

/// Euclidean distance between two points.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist2 length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 21.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn add_sub_scale_dist() {
        assert_eq!(add(&[1.0], &[2.0]), vec![3.0]);
        assert_eq!(sub(&[1.0], &[2.0]), vec![-1.0]);
        assert_eq!(scale(2.0, &[1.5]), vec![3.0]);
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }
}
