use crate::{LinalgError, Matrix};

/// Eigendecomposition `A = V·diag(λ)·Vᵀ` of a symmetric matrix, computed by
/// cyclic Jacobi rotations.
///
/// The SOS verifier uses the smallest eigenvalue of candidate Gram matrices to
/// certify positive semidefiniteness with an explicit margin, and the SDP
/// solver uses eigenvalue-based step-length safeguards.
///
/// # Example
///
/// ```
/// use snbc_linalg::Matrix;
///
/// # fn main() -> Result<(), snbc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let eig = a.symmetric_eigen()?;
/// let mut ev = eig.eigenvalues().to_vec();
/// ev.sort_by(f64::total_cmp);
/// assert!((ev[0] - 1.0).abs() < 1e-10 && (ev[1] - 3.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Computes the decomposition by cyclic Jacobi sweeps.
    ///
    /// The input is symmetrized (`(A+Aᵀ)/2`) first, so slight numerical
    /// asymmetry is tolerated.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NoConvergence`] if the off-diagonal Frobenius
    /// mass has not dropped below `1e-14 · ‖A‖` after 100 sweeps, and
    /// [`LinalgError::ShapeMismatch`] for non-square input.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                expected: (a.nrows(), a.nrows()),
                found: (a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        let mut m = a.clone();
        m.symmetrize();
        let mut v = Matrix::identity(n);
        let scale = m.norm_fro().max(1e-300);
        let tol = 1e-14 * scale;
        const MAX_SWEEPS: usize = 100;
        for _sweep in 0..MAX_SWEEPS {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += m[(i, j)] * m[(i, j)];
                }
            }
            let off = (2.0 * off).sqrt();
            if off <= tol {
                let eigenvalues = (0..n).map(|i| m[(i, i)]).collect();
                return Ok(SymmetricEigen {
                    eigenvalues,
                    eigenvectors: v,
                });
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= 1e-300 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    // Apply rotation to M on both sides.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        Err(LinalgError::NoConvergence {
            iterations: MAX_SWEEPS,
            residual: (2.0 * off).sqrt(),
        })
    }

    /// Eigenvalues (unsorted; paired with eigenvector columns).
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Orthogonal eigenvector matrix; column `i` pairs with `eigenvalues()[i]`.
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// Smallest eigenvalue.
    pub fn min(&self) -> f64 {
        self.eigenvalues
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest eigenvalue.
    pub fn max(&self) -> f64 {
        self.eigenvalues
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstructs_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 1.0, 0.5], &[1.0, 2.0, -0.3], &[0.5, -0.3, 1.0]]);
        let eig = a.symmetric_eigen().unwrap();
        let v = eig.eigenvectors();
        let d = Matrix::from_diag(eig.eigenvalues());
        let back = v.matmul(&d).matmul(&v.transpose());
        assert!((&back - &a).norm_max() < 1e-10);
    }

    #[test]
    fn eigenvectors_orthogonal() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 4.0]]);
        let eig = a.symmetric_eigen().unwrap();
        let v = eig.eigenvectors();
        let vtv = v.transpose().matmul(v);
        assert!((&vtv - &Matrix::identity(2)).norm_max() < 1e-12);
    }

    #[test]
    fn diagonal_matrix_is_trivial() {
        let a = Matrix::from_diag(&[5.0, -1.0, 2.0]);
        let eig = a.symmetric_eigen().unwrap();
        assert!((eig.min() + 1.0).abs() < 1e-14);
        assert!((eig.max() - 5.0).abs() < 1e-14);
    }

    #[test]
    fn trace_is_sum_of_eigenvalues() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[2.0, -3.0, 1.0], &[0.0, 1.0, 0.5]]);
        let eig = a.symmetric_eigen().unwrap();
        let sum: f64 = eig.eigenvalues().iter().sum();
        assert!((sum - a.trace()).abs() < 1e-10);
    }

    #[test]
    fn psd_min_eigenvalue_nonnegative() {
        // Gram matrix of random vectors is PSD.
        let b = Matrix::from_rows(&[&[1.0, 0.3], &[0.2, -0.7], &[-0.5, 0.9]]);
        let g = b.matmul(&b.transpose());
        assert!(g.min_eigenvalue().unwrap() > -1e-12);
    }
}
