use std::error::Error;
use std::fmt;

/// Errors produced by factorizations and solvers in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// A Cholesky factorization encountered a non-positive pivot; the matrix is
    /// not (numerically) positive definite. Carries the pivot index and value.
    NotPositiveDefinite { index: usize, pivot: f64 },
    /// An LU factorization found no usable pivot; the matrix is singular to
    /// working precision. Carries the column at which elimination failed.
    Singular { column: usize },
    /// Matrix dimensions were incompatible for the requested operation.
    ShapeMismatch {
        expected: (usize, usize),
        found: (usize, usize),
    },
    /// An iterative method (e.g. the Jacobi eigensolver) failed to converge
    /// within its sweep budget.
    NoConvergence { iterations: usize, residual: f64 },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { index, pivot } => write!(
                f,
                "matrix is not positive definite: pivot {pivot:.3e} at index {index}"
            ),
            LinalgError::Singular { column } => {
                write!(f, "matrix is singular: no pivot in column {column}")
            }
            LinalgError::ShapeMismatch { expected, found } => write!(
                f,
                "shape mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            LinalgError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
        }
    }
}

impl Error for LinalgError {}
