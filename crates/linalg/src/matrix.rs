use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use crate::{Cholesky, Ldlt, LinalgError, Lu, Qr, SymmetricEigen};

/// GEMM output-block height (rows of `A` per tile). 64 rows × 8 bytes ×
/// a few-hundred-column panel keeps the working set within L2 on any modern
/// core. Only the *output* traversal is tiled — blocking the `k` dimension
/// (the classic third GEMM loop split) would reorder the floating-point
/// accumulation and break the workspace's bitwise-stability contract, so
/// that knob is deliberately absent (docs/PERFORMANCE.md).
const GEMM_MC: usize = 64;

/// GEMM output-block width (columns of `B` per tile): the streaming width
/// of the `B` panel. Like [`GEMM_MC`], a pure locality knob — output tiles
/// are independent, so any value gives bit-identical results.
const GEMM_NC: usize = 256;

/// A dense, row-major matrix of `f64` entries.
///
/// This is the workhorse type of the workspace: Gram matrices in SOS programs,
/// Schur complements in interior-point methods and neural-network weight
/// matrices are all `Matrix` values.
///
/// # Example
///
/// ```
/// use snbc_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = a.transpose();
/// assert_eq!(b[(0, 1)], 3.0);
/// assert_eq!(a.matmul(&b)[(0, 0)], 5.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.ncols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[i] = acc;
        }
        y
    }

    /// Transposed matrix–vector product `Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.nrows()`.
    pub fn tr_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "tr_matvec dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            let row = self.row(i);
            let xi = x[i];
            for (yj, a) in y.iter_mut().zip(row) {
                *yj += a * xi;
            }
        }
        y
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.ncols() != other.nrows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_kernel(other, &mut out);
        out
    }

    /// `self · other` written into `out` (which must already have the
    /// product's shape). Same accumulation order as [`Matrix::matmul`], so
    /// the two are bitwise interchangeable; this variant lets hot loops
    /// (e.g. the per-row Schur assembly scratch buffers) avoid allocating.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul_into output shape mismatch"
        );
        out.data.fill(0.0);
        self.matmul_kernel(other, out);
    }

    /// Cache-tiled GEMM kernel shared by [`Matrix::matmul`] and
    /// [`Matrix::matmul_into`]; `out` must be pre-zeroed with the product's
    /// shape.
    ///
    /// Tiling is over the output: `GEMM_MC`-row × `GEMM_NC`-column blocks,
    /// with the `k` loop kept *full and ascending* inside each block, so
    /// every `out[(i, j)]` accumulates its products in exactly the order the
    /// naive i-k-j loop used — the tiling is a pure traversal reordering of
    /// *independent* output elements and is therefore bitwise identical to
    /// the untiled kernel (property-tested in `tests/tiled_equivalence.rs`).
    /// The win is locality: a `GEMM_MC × k` panel of `A` and a
    /// `k × GEMM_NC` panel of `B` stay cache-resident while producing one
    /// output block, instead of streaming all of `B` per row of `A`.
    // audit:hot
    fn matmul_kernel(&self, other: &Matrix, out: &mut Matrix) {
        let (m, n) = (self.rows, other.cols);
        let mut ib = 0;
        while ib < m {
            let ihi = (ib + GEMM_MC).min(m);
            let mut jb = 0;
            while jb < n {
                let jhi = (jb + GEMM_NC).min(n);
                for i in ib..ihi {
                    for k in 0..self.cols {
                        let aik = self[(i, k)];
                        // Sparse-coefficient skip; exactness is intended.
                        if aik == 0.0 { // audit:allow(float-eq)
                            continue;
                        }
                        let brow = &other.row(k)[jb..jhi];
                        let orow = &mut out.row_mut(i)[jb..jhi];
                        for (o, b) in orow.iter_mut().zip(brow) {
                            *o += aik * b;
                        }
                    }
                }
                jb = jhi;
            }
            ib = ihi;
        }
    }

    /// Scales every entry by `s`, returning a new matrix.
    pub fn scale(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= s;
        }
        out
    }

    /// Frobenius inner product `⟨A, B⟩ = Σᵢⱼ AᵢⱼBᵢⱼ`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn dot(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (∞-norm of the vectorization).
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Symmetrizes in place: `A ← (A + Aᵀ)/2`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let v = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = v;
                self[(j, i)] = v;
            }
        }
    }

    /// Measures asymmetry: `max |Aᵢⱼ − Aⱼᵢ|`.
    pub fn asymmetry(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..self.rows.min(self.cols) {
            for j in (i + 1)..self.cols.min(self.rows) {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Cholesky factorization `A = L·Lᵀ` for symmetric positive-definite `A`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when a pivot is not
    /// strictly positive.
    pub fn cholesky(&self) -> Result<Cholesky, LinalgError> {
        Cholesky::new(self)
    }

    /// LDLᵀ factorization for symmetric (possibly indefinite-leaning) matrices
    /// without pivoting; suitable for quasi-definite systems.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when a diagonal pivot vanishes.
    pub fn ldlt(&self) -> Result<Ldlt, LinalgError> {
        Ldlt::new(self)
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] for numerically singular matrices.
    pub fn lu(&self) -> Result<Lu, LinalgError> {
        Lu::new(self)
    }

    /// Householder QR factorization (works for `rows ≥ cols`).
    pub fn qr(&self) -> Qr {
        Qr::new(self)
    }

    /// Full eigendecomposition of a symmetric matrix by cyclic Jacobi sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NoConvergence`] if the off-diagonal mass does not
    /// fall below tolerance within the sweep budget.
    pub fn symmetric_eigen(&self) -> Result<SymmetricEigen, LinalgError> {
        SymmetricEigen::new(self)
    }

    /// Smallest eigenvalue of a symmetric matrix (convenience wrapper).
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError::NoConvergence`] from the Jacobi sweep.
    pub fn min_eigenvalue(&self) -> Result<f64, LinalgError> {
        let eig = self.symmetric_eigen()?;
        Ok(eig
            .eigenvalues()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min))
    }

    /// Solves `A·x = b` via LU with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] for singular systems.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        Ok(self.lu()?.solve(b))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut out = self.clone();
        out += rhs;
        out
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut out = self.clone();
        out -= rhs;
        out
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 4.0]]);
        let x = vec![3.0, 7.0];
        let via_vec = a.matvec(&x);
        let xm = Matrix::from_vec(2, 1, x);
        let via_mat = a.matmul(&xm);
        assert!((via_vec[0] - via_mat[(0, 0)]).abs() < 1e-15);
        assert!((via_vec[1] - via_mat[(1, 0)]).abs() < 1e-15);
    }

    #[test]
    fn tr_matvec_is_transpose_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = vec![1.0, -1.0];
        assert_eq!(a.tr_matvec(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn dot_and_trace() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.dot(&a), 30.0);
        assert_eq!(a.trace(), 5.0);
    }

    #[test]
    fn symmetrize_removes_asymmetry() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 3.0]]);
        assert!(a.asymmetry() > 0.0);
        a.symmetrize();
        assert_eq!(a.asymmetry(), 0.0);
        assert_eq!(a[(0, 1)], 3.0);
    }

    #[test]
    fn solve_round_trip() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        let b = a.matvec(&x);
        assert!((b[0] - 3.0).abs() < 1e-12);
        assert!((b[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.trace(), 6.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_shape_panics() {
        let a = Matrix::zeros(2, 3);
        let _ = a.matvec(&[1.0, 2.0]);
    }
}
