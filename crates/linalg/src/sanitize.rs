//! Runtime numeric sanitizer — the dynamic counterpart of `snbc-audit`.
//!
//! Enabled with the `sanitize` cargo feature (`snbc-lp` and `snbc-sdp`
//! forward their own `sanitize` features here). When active, factorization
//! outputs and interior-point iterates are checked after every producing
//! operation; the **first** operation that yields a non-finite value (or
//! breaks a step invariant such as "Cholesky pivots are positive" or "the
//! duality measure is non-negative") aborts with a message naming that
//! operation — the numerics analog of an address-sanitizer report. Without
//! the feature every check compiles to nothing.
//!
//! The checks deliberately panic rather than return errors: a sanitizer
//! firing means the *solver's own invariants* are broken (not the user's
//! input), and the stack at the first bad write is exactly what one wants.

/// Abort if any value in `values` is NaN or ±∞, naming the producing `op`.
#[inline]
pub fn check_finite(op: &'static str, values: &[f64]) {
    if cfg!(feature = "sanitize") {
        for (i, v) in values.iter().enumerate() {
            if !v.is_finite() {
                // audit:allow(panicking)
                panic!("sanitize: `{op}` produced non-finite value {v} at index {i}");
            }
        }
    }
}

/// Abort if any value in `values` is not strictly positive (or non-finite).
/// Used for Cholesky/LDLᵀ pivots and interior-point slack variables.
#[inline]
pub fn check_positive(op: &'static str, values: &[f64]) {
    if cfg!(feature = "sanitize") {
        for (i, v) in values.iter().enumerate() {
            if !(*v > 0.0) || !v.is_finite() {
                // audit:allow(panicking)
                panic!("sanitize: `{op}` invariant violated: value {v} at index {i} is not strictly positive");
            }
        }
    }
}

/// Abort if a step invariant does not hold. `detail` is the violating value.
#[inline]
pub fn check_invariant(op: &'static str, holds: bool, detail: f64) {
    if cfg!(feature = "sanitize") && !holds {
        // audit:allow(panicking)
        panic!("sanitize: `{op}` step invariant violated (value {detail})");
    }
}

/// True when the sanitizer is compiled in (for tests and diagnostics).
#[inline]
pub const fn enabled() -> bool {
    cfg!(feature = "sanitize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_values_pass() {
        check_finite("test", &[0.0, -1.0, 1e300]);
        check_positive("test", &[1e-300, 2.0]);
        check_invariant("test", true, 0.0);
    }

    #[test]
    #[cfg_attr(not(feature = "sanitize"), ignore = "sanitize feature disabled")]
    fn non_finite_aborts_when_enabled() {
        let caught = std::panic::catch_unwind(|| check_finite("op-name", &[1.0, f64::NAN]));
        let err = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(err.contains("op-name"), "message should name the op: {err}");
        assert!(err.contains("index 1"), "message should locate the value: {err}");
    }

    #[test]
    #[cfg_attr(not(feature = "sanitize"), ignore = "sanitize feature disabled")]
    fn nonpositive_pivot_aborts_when_enabled() {
        assert!(std::panic::catch_unwind(|| check_positive("chol", &[1.0, 0.0])).is_err());
        assert!(std::panic::catch_unwind(|| check_invariant("gap", false, -1.0)).is_err());
    }
}
