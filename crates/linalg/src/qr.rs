use crate::Matrix;

/// Householder QR factorization `A = Q·R` for `m ≥ n` matrices.
///
/// Used for stable least-squares solves (polynomial coefficient fitting in the
/// NNCChecker baseline, controller regression diagnostics).
///
/// # Example
///
/// ```
/// use snbc_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
/// let qr = a.qr();
/// // Least squares fit of y = 1 + 2x through three exact points.
/// let x = qr.solve_least_squares(&[1.0, 3.0, 5.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Householder vectors stored below the diagonal, R on/above it.
    qr: Matrix,
    /// The scalar β of each Householder reflector `H = I − β v vᵀ`.
    betas: Vec<f64>,
}

impl Qr {
    /// Computes the factorization.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has more columns than rows.
    pub fn new(a: &Matrix) -> Self {
        let (m, n) = (a.nrows(), a.ncols());
        assert!(m >= n, "QR requires rows >= cols (got {m}x{n})");
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];
        for k in 0..n {
            // Build Householder vector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm < 1e-300 {
                betas[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // Reflector H = I − β v vᵀ with v = (v0, a[k+1..m, k]).
            let mut vnorm2 = v0 * v0;
            for i in (k + 1)..m {
                vnorm2 += qr[(i, k)] * qr[(i, k)];
            }
            let beta = 2.0 / vnorm2;
            // Apply the reflector to the trailing columns (the stored v below
            // the diagonal of column k is untouched while we do this).
            for j in (k + 1)..n {
                let mut s = v0 * qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= beta;
                qr[(k, j)] -= s * v0;
                for i in (k + 1)..m {
                    let vi = qr[(i, k)];
                    qr[(i, j)] -= s * vi;
                }
            }
            // Column k itself becomes (…, alpha, 0, …, 0); store the
            // Householder vector normalized so that v0 = 1, folding v0 into β.
            qr[(k, k)] = alpha;
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            betas[k] = beta * v0 * v0;
        }
        Qr { qr, betas }
    }

    /// The upper-triangular factor `R` (n×n).
    pub fn r(&self) -> Matrix {
        let n = self.qr.ncols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }

    /// Applies `Qᵀ` to a vector of length m.
    fn apply_qt(&self, b: &[f64]) -> Vec<f64> {
        let (m, n) = (self.qr.nrows(), self.qr.ncols());
        let mut y = b.to_vec();
        for k in 0..n {
            let beta = self.betas[k];
            // β = 0.0 is an exact sentinel set during factorization.
            if beta == 0.0 { // audit:allow(float-eq)
                continue;
            }
            // v = (1, qr[k+1..m, k])
            let mut s = y[k];
            for i in (k + 1)..m {
                s += self.qr[(i, k)] * y[i];
            }
            s *= beta;
            y[k] -= s;
            for i in (k + 1)..m {
                y[i] -= s * self.qr[(i, k)];
            }
        }
        y
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not equal the row count, or if `R` is exactly
    /// singular (rank-deficient `A`).
    pub fn solve_least_squares(&self, b: &[f64]) -> Vec<f64> {
        let (m, n) = (self.qr.nrows(), self.qr.ncols());
        assert_eq!(b.len(), m, "rhs length mismatch");
        let y = self.apply_qt(b);
        let mut x = y[..n].to_vec();
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                x[i] -= self.qr[(i, j)] * x[j];
            }
            let rii = self.qr[(i, i)];
            assert!(rii.abs() > 1e-300, "rank-deficient least-squares system");
            x[i] /= rii;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_reconstructs_through_square_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = [5.0, 10.0];
        let x = a.qr().solve_least_squares(&b);
        let r = a.matvec(&x);
        assert!((r[0] - 5.0).abs() < 1e-12 && (r[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[1.0, 1.0],
            &[1.0, 2.0],
            &[1.0, 3.0],
        ]);
        let b = [0.9, 3.1, 5.0, 7.2];
        let x = a.qr().solve_least_squares(&b);
        // Normal equations AᵀA x = Aᵀ b.
        let at = a.transpose();
        let ata = at.matmul(&a);
        let atb = at.matvec(&b);
        let x2 = ata.solve(&atb).unwrap();
        for (u, v) in x.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10, "{u} vs {v}");
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let r = a.qr().r();
        assert_eq!(r[(1, 0)], 0.0);
    }
}
