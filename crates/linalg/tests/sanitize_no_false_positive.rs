//! Property test: on well-posed inputs the `sanitize` feature must be
//! invisible — Cholesky and LU factorizations of random SPD matrices succeed
//! without the sanitizer firing (no false positives).
//!
//! Run with `cargo test -p snbc-linalg --features sanitize` to exercise the
//! checks for real; without the feature the same test pins the baseline
//! behavior the sanitizer must not change.

use proptest::prelude::*;
use snbc_linalg::Matrix;

/// `B·Bᵀ + εI` is SPD for any `B`; the shift keeps the smallest eigenvalue
/// away from the rounding noise floor so Cholesky is well-defined.
fn random_spd(entries: &[f64], n: usize) -> Matrix {
    let b = Matrix::from_vec(n, n, entries[..n * n].to_vec());
    let mut a = b.matmul(&b.transpose());
    for i in 0..n {
        a[(i, i)] += 1e-3;
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_on_spd_never_trips_sanitizer(
        entries in proptest::collection::vec(-10.0f64..10.0, 16),
    ) {
        let a = random_spd(&entries, 4);
        // Under `--features sanitize` any non-finite entry or non-positive
        // pivot in the factor aborts the process; reaching the assertions
        // below therefore proves the sanitizer stayed silent.
        let c = a.cholesky().expect("SPD input must factor");
        let back = c.l().matmul(&c.l().transpose());
        prop_assert!((&back - &a).norm_max() < 1e-8 * (1.0 + a.norm_max()));
        let x = c.solve(&[1.0, -1.0, 2.0, 0.5]);
        prop_assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn lu_on_spd_never_trips_sanitizer(
        entries in proptest::collection::vec(-10.0f64..10.0, 16),
    ) {
        let a = random_spd(&entries, 4);
        let lu = a.lu().expect("SPD input is nonsingular");
        prop_assert!(lu.det() > 0.0, "SPD determinant must be positive, got {}", lu.det());
        let x = lu.solve(&[0.5, 0.0, -3.0, 1.0]);
        let r = a.matvec(&x);
        prop_assert!((r[0] - 0.5).abs() < 1e-6 * (1.0 + a.norm_max()));
    }

    #[test]
    fn ldlt_on_spd_never_trips_sanitizer(
        entries in proptest::collection::vec(-10.0f64..10.0, 16),
    ) {
        let a = random_spd(&entries, 4);
        let f = a.ldlt().expect("SPD input must factor");
        prop_assert_eq!(f.negative_pivots(), 0);
    }
}
