//! Bitwise equivalence of the cache-tiled kernels against the untiled
//! reference loops they replaced.
//!
//! The tiled GEMM keeps the `k` accumulation full and ascending per output
//! element, and the panelled Cholesky concatenates its two phase ranges into
//! the naive `k = 0..j` subtraction chain — so both must reproduce the old
//! kernels *bit for bit*, not just within tolerance. These tests pin that:
//! every comparison is on `f64::to_bits`, across shapes that cross the
//! `GEMM_MC = 64`, `GEMM_NC = 256`, and `CHOL_NB = 32` tile boundaries.

use proptest::prelude::*;
use snbc_linalg::{LinalgError, Matrix};

/// The pre-tiling GEMM reference: i-k-j with the sparse-coefficient skip.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (a.nrows(), a.ncols(), b.ncols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aip = a[(i, p)];
            // Same exact-zero skip as the production kernel.
            if aip == 0.0 { // audit:allow(float-eq)
                continue;
            }
            for j in 0..n {
                out[(i, j)] += aip * b[(p, j)];
            }
        }
    }
    out
}

/// The pre-panelling Cholesky reference: textbook left-looking loop.
fn naive_cholesky(a: &Matrix) -> Result<Matrix, (usize, f64)> {
    let n = a.nrows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if !(d > 0.0) || !d.is_finite() {
            return Err((j, d));
        }
        let dj = d.sqrt();
        l[(j, j)] = dj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / dj;
        }
    }
    Ok(l)
}

/// Deterministic pseudo-random fill (LCG) with exact zeros sprinkled in to
/// exercise the sparse skip; no external RNG so shapes can be large.
fn fill(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut m = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            m[(i, j)] = if state % 7 == 0 {
                0.0
            } else {
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 10.0 - 5.0
            };
        }
    }
    m
}

/// `B·Bᵀ + shift·I` — SPD with a well-separated spectrum floor.
fn spd(n: usize, seed: u64) -> Matrix {
    let b = fill(n, n, seed);
    let mut a = b.matmul(&b.transpose());
    for i in 0..n {
        a[(i, i)] += 0.5 * n as f64;
    }
    a
}

fn assert_bits_equal(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!((got.nrows(), got.ncols()), (want.nrows(), want.ncols()), "{what}: shape");
    for i in 0..got.nrows() {
        for j in 0..got.ncols() {
            assert_eq!(
                got[(i, j)].to_bits(),
                want[(i, j)].to_bits(),
                "{what}: entry ({i}, {j}): {} vs {}",
                got[(i, j)],
                want[(i, j)]
            );
        }
    }
}

#[test]
fn tiled_gemm_matches_naive_across_tile_boundaries() {
    // Shapes straddling the GEMM_MC = 64 row and GEMM_NC = 256 column
    // boundaries, plus degenerate and skinny cases.
    let shapes: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (5, 3, 4),
        (63, 10, 255),
        (64, 10, 256),
        (65, 7, 257),
        (96, 33, 300),
        (31, 64, 8),
        (128, 1, 40),
    ];
    for (case, &(m, k, n)) in shapes.iter().enumerate() {
        let a = fill(m, k, 1 + case as u64);
        let b = fill(k, n, 100 + case as u64);
        let want = naive_matmul(&a, &b);
        assert_bits_equal(&a.matmul(&b), &want, &format!("matmul {m}x{k}x{n}"));
        let mut out = Matrix::zeros(m, n);
        a.matmul_into(&b, &mut out);
        assert_bits_equal(&out, &want, &format!("matmul_into {m}x{k}x{n}"));
    }
}

#[test]
fn panelled_cholesky_matches_naive_across_panel_boundaries() {
    // Orders straddling the CHOL_NB = 32 panel boundary.
    for (case, &n) in [1usize, 2, 31, 32, 33, 64, 70, 97].iter().enumerate() {
        let a = spd(n, 7 + case as u64);
        let want = naive_cholesky(&a).expect("SPD reference must factor");
        let got = a.cholesky().expect("SPD must factor");
        assert_bits_equal(got.l(), &want, &format!("cholesky n={n}"));
    }
}

#[test]
fn panelled_cholesky_fails_identically_to_naive() {
    // Break positive-definiteness in the *second* panel so the failure
    // requires phase-1 updates to have been applied bit-exactly first.
    let mut a = spd(60, 42);
    a[(40, 40)] = -3.0;
    let (want_idx, want_pivot) = naive_cholesky(&a).expect_err("not PD");
    match a.cholesky() {
        Err(LinalgError::NotPositiveDefinite { index, pivot }) => {
            assert_eq!(index, want_idx, "failure index");
            assert_eq!(pivot.to_bits(), want_pivot.to_bits(), "failure pivot bits");
        }
        other => panic!("expected NotPositiveDefinite, got {other:?}"),
    }
}

/// Not a correctness test — a manual micro-benchmark comparing the naive
/// reference kernels against the tiled production kernels. This is the
/// probe that produced the kernel table in `docs/PERFORMANCE.md`; re-run
/// it when re-measuring:
///
/// ```text
/// cargo test --release -p snbc-linalg --test tiled_equivalence -- --ignored --nocapture
/// ```
#[test]
#[ignore = "perf probe, run manually with --release --ignored --nocapture"]
fn kernel_perf_probe() {
    use std::hint::black_box;
    use std::time::Instant;

    // Warm-up pass, then best-of-3 to tame scheduler noise.
    fn best_of_3(f: &mut dyn FnMut()) -> f64 {
        f();
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    }

    println!("kernel            n    naive (ms)   tiled (ms)   speedup");
    for &n in &[128usize, 256, 384] {
        let a = fill(n, n, 1);
        let b = fill(n, n, 2);
        let naive = best_of_3(&mut || {
            black_box(naive_matmul(black_box(&a), black_box(&b)));
        });
        let tiled = best_of_3(&mut || {
            black_box(black_box(&a).matmul(black_box(&b)));
        });
        println!(
            "gemm           {n:4}   {:10.2}   {:10.2}   {:6.2}x",
            naive * 1e3,
            tiled * 1e3,
            naive / tiled
        );
    }
    for &n in &[192usize, 320, 448] {
        let a = spd(n, 3);
        let naive = best_of_3(&mut || {
            black_box(naive_cholesky(black_box(&a))).expect("SPD");
        });
        let tiled = best_of_3(&mut || {
            black_box(black_box(&a).cholesky()).expect("SPD");
        });
        println!(
            "cholesky       {n:4}   {:10.2}   {:10.2}   {:6.2}x",
            naive * 1e3,
            tiled * 1e3,
            naive / tiled
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tiled_gemm_matches_naive_on_random_matrices(
        entries in proptest::collection::vec(-10.0f64..10.0, 72),
    ) {
        // 6×4 · 4×6 plus a 6×6 square from the same pool.
        let a = Matrix::from_vec(6, 4, entries[..24].to_vec());
        let b = Matrix::from_vec(4, 6, entries[24..48].to_vec());
        let want = naive_matmul(&a, &b);
        let got = a.matmul(&b);
        for i in 0..6 {
            for j in 0..6 {
                prop_assert_eq!(got[(i, j)].to_bits(), want[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn panelled_cholesky_matches_naive_on_random_spd(
        entries in proptest::collection::vec(-5.0f64..5.0, 36),
    ) {
        let b = Matrix::from_vec(6, 6, entries.clone());
        let mut a = b.matmul(&b.transpose());
        for i in 0..6 {
            a[(i, i)] += 1e-2;
        }
        let want = naive_cholesky(&a).expect("SPD reference must factor");
        let got = a.cholesky().expect("SPD must factor");
        for i in 0..6 {
            for j in 0..6 {
                prop_assert_eq!(got.l()[(i, j)].to_bits(), want[(i, j)].to_bits());
            }
        }
    }
}
