//! Dense two-phase primal simplex.
//!
//! An independent LP implementation used to cross-validate the interior-point
//! solver in tests (two solvers agreeing on random instances is a strong
//! correctness signal) and to solve tiny LPs exactly where an active-set
//! answer is convenient.

use snbc_linalg::Matrix;

use crate::LpError;

/// Result of a simplex solve on a standard-form LP.
#[derive(Debug, Clone)]
pub struct SimplexSolution {
    /// Primal solution.
    pub x: Vec<f64>,
    /// Objective value.
    pub objective: f64,
    /// Indices of the final basis.
    pub basis: Vec<usize>,
}

const EPS: f64 = 1e-9;

/// Solves `min cᵀx  s.t.  Ax = b, x ≥ 0` by the two-phase tableau simplex.
///
/// Intended for small/medium dense problems (tests, cross-checks); the
/// interior-point method in [`crate::solve_standard`] is the production path.
///
/// # Errors
///
/// * [`LpError::Infeasible`] — phase 1 ends with positive artificial cost;
/// * [`LpError::Unbounded`] — an entering column has no positive pivot;
/// * [`LpError::IterationLimit`] — cycling guard tripped.
pub fn solve(a: &Matrix, b: &[f64], c: &[f64]) -> Result<SimplexSolution, LpError> {
    let (m, n) = (a.nrows(), a.ncols());
    if b.len() != m || c.len() != n {
        return Err(LpError::Dimension("simplex input size mismatch".into()));
    }
    // Ensure b ≥ 0 by flipping row signs.
    let mut tab = Matrix::zeros(m, n + m);
    let mut rhs = vec![0.0; m];
    for i in 0..m {
        let flip = if b[i] < 0.0 { -1.0 } else { 1.0 };
        for j in 0..n {
            tab[(i, j)] = flip * a[(i, j)];
        }
        tab[(i, n + i)] = 1.0; // artificial
        rhs[i] = flip * b[i];
    }
    let mut basis: Vec<usize> = (n..n + m).collect();

    // Phase 1: minimize sum of artificials.
    let phase1_cost: Vec<f64> = (0..n + m).map(|j| if j >= n { 1.0 } else { 0.0 }).collect();
    let obj1 = run_phases(&mut tab, &mut rhs, &mut basis, &phase1_cost, n + m)?;
    if obj1 > 1e-7 {
        return Err(LpError::Infeasible);
    }
    // Drive remaining artificials out of the basis where possible.
    for i in 0..m {
        if basis[i] >= n {
            // Find a structural column with a nonzero pivot in this row.
            if let Some(j) = (0..n).find(|&j| tab[(i, j)].abs() > EPS) {
                pivot(&mut tab, &mut rhs, &mut basis, i, j);
            }
        }
    }

    // Phase 2 on structural columns only (artificials pinned by huge cost).
    let mut phase2_cost = vec![0.0; n + m];
    phase2_cost[..n].copy_from_slice(c);
    for cost in phase2_cost.iter_mut().skip(n) {
        *cost = 1e30; // effectively forbid re-entering artificials
    }
    let objective = run_phases(&mut tab, &mut rhs, &mut basis, &phase2_cost, n)?;

    let mut x = vec![0.0; n];
    for (i, &bi) in basis.iter().enumerate() {
        if bi < n {
            x[bi] = rhs[i];
        }
    }
    Ok(SimplexSolution {
        x,
        objective,
        basis,
    })
}

/// Runs simplex iterations for the given costs; returns the final objective.
fn run_phases(
    tab: &mut Matrix,
    rhs: &mut [f64],
    basis: &mut [usize],
    cost: &[f64],
    allowed_cols: usize,
) -> Result<f64, LpError> {
    let m = tab.nrows();
    let max_iter = 50 * (tab.ncols() + m);
    for _ in 0..max_iter {
        // Reduced costs: c_j − c_Bᵀ B⁻¹ A_j; the tableau is kept in B⁻¹A form,
        // so reduced cost = c_j − Σᵢ c_{basis[i]}·tab[i][j].
        let mut entering = None;
        let mut best = -EPS;
        for j in 0..allowed_cols {
            if basis.contains(&j) {
                continue;
            }
            let mut r = cost[j];
            for i in 0..m {
                r -= cost[basis[i]] * tab[(i, j)];
            }
            if r < best {
                best = r;
                entering = Some(j);
            }
        }
        let Some(j) = entering else {
            let obj = (0..m).map(|i| cost[basis[i]] * rhs[i]).sum();
            return Ok(obj);
        };
        // Ratio test.
        let mut leaving = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let aij = tab[(i, j)];
            if aij > EPS {
                let ratio = rhs[i] / aij;
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && leaving.is_some_and(|l: usize| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let Some(i) = leaving else {
            return Err(LpError::Unbounded);
        };
        pivot(tab, rhs, basis, i, j);
    }
    Err(LpError::IterationLimit {
        iterations: max_iter,
        mu: f64::NAN,
    })
}

fn pivot(tab: &mut Matrix, rhs: &mut [f64], basis: &mut [usize], row: usize, col: usize) {
    let m = tab.nrows();
    let ncols = tab.ncols();
    let p = tab[(row, col)];
    for j in 0..ncols {
        tab[(row, j)] /= p;
    }
    rhs[row] /= p;
    for i in 0..m {
        if i == row {
            continue;
        }
        let f = tab[(i, col)];
        // Exact zero needs no elimination; a tolerance here would corrupt
        // the tableau.
        if f == 0.0 { // audit:allow(float-eq)
            continue;
        }
        for j in 0..ncols {
            let v = f * tab[(row, j)];
            tab[(i, j)] -= v;
        }
        rhs[i] -= f * rhs[row];
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_standard, LpOptions};

    #[test]
    fn matches_textbook() {
        let a = Matrix::from_rows(&[
            &[1.0, 0.0, 1.0, 0.0, 0.0],
            &[0.0, 2.0, 0.0, 1.0, 0.0],
            &[3.0, 2.0, 0.0, 0.0, 1.0],
        ]);
        let b = [4.0, 12.0, 18.0];
        let c = [-3.0, -5.0, 0.0, 0.0, 0.0];
        let sol = solve(&a, &b, &c).unwrap();
        assert!((sol.objective + 36.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        // x₀ = −1 with x₀ ≥ 0.
        let a = Matrix::from_rows(&[&[1.0]]);
        assert!(matches!(solve(&a, &[-1.0], &[1.0]), Err(LpError::Infeasible)));
    }

    #[test]
    fn unbounded_detected() {
        // min −x₀ s.t. x₀ − x₁ = 0 (both can grow).
        let a = Matrix::from_rows(&[&[1.0, -1.0]]);
        assert!(matches!(
            solve(&a, &[0.0], &[-1.0, 0.0]),
            Err(LpError::Unbounded)
        ));
    }

    #[test]
    fn agrees_with_ipm_on_random_instances() {
        // Deterministic pseudo-random feasible LPs: pick x* ≥ 0, b = A x*.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for _case in 0..10 {
            let (m, n) = (4, 9);
            let a = Matrix::from_fn(m, n, |_, _| next() * 2.0 - 1.0);
            let xstar: Vec<f64> = (0..n).map(|_| next() + 0.1).collect();
            let b = a.matvec(&xstar);
            let c: Vec<f64> = (0..n).map(|_| next() * 2.0 - 1.0).collect();
            let sx = solve(&a, &b, &c);
            let ip = solve_standard(&a, &b, &c, &LpOptions::default());
            match (sx, ip) {
                (Ok(s), Ok(p)) => {
                    assert!(
                        (s.objective - p.objective).abs() < 1e-5 * (1.0 + s.objective.abs()),
                        "simplex {} vs ipm {}",
                        s.objective,
                        p.objective
                    );
                }
                (Err(LpError::Unbounded), Err(LpError::Unbounded)) => {}
                (s, p) => panic!("solver disagreement: {s:?} vs {p:?}"),
            }
        }
    }
}
