//! Linear programming for the SNBC reproduction.
//!
//! The controller-abstraction step of the paper (§3) reduces the Chebyshev
//! approximation problem (4) to the linear program (5): few variables (the
//! polynomial coefficients `h` and the bound `t`) but *many* constraints (two
//! per mesh point). This crate provides:
//!
//! * [`solve_standard`] — a Mehrotra predictor–corrector interior-point solver
//!   for standard-form LPs `min cᵀx  s.t.  Ax = b, x ≥ 0`, using dense normal
//!   equations (size = number of rows), and
//! * [`solve_inequality`] — a front-end for `min cᵀz  s.t.  Gz ≤ g` with free
//!   `z`, solved through its standard-form dual so the linear algebra stays
//!   at the (small) variable dimension regardless of the mesh size, and
//! * [`simplex`] — a dense two-phase simplex used as an independent
//!   cross-check in tests.
//!
//! # Telemetry
//!
//! When [`LpOptions::telemetry`] holds a recording sink (see
//! [`snbc_telemetry`]), each interior-point solve emits an `"lp"` span with
//! the iteration count, the final duality measure `μ = xᵀs / n`, the
//! objective value, and an `optimal` flag — recorded once per solve, never
//! inside the iteration loop.
//!
//! # Example
//!
//! ```
//! use snbc_lp::{solve_inequality, LpOptions};
//! use snbc_linalg::Matrix;
//!
//! // min t  s.t.  z − t ≤ 1, −z − t ≤ −1  (best uniform approx of the point 1).
//! let g = Matrix::from_rows(&[&[1.0, -1.0], &[-1.0, -1.0]]);
//! let sol = solve_inequality(&[0.0, 1.0], &g, &[1.0, -1.0], &LpOptions::default())?;
//! assert!(sol.z[1].abs() < 1e-6); // optimal t = 0
//! # Ok::<(), snbc_lp::LpError>(())
//! ```

mod error;
mod ipm;
pub mod simplex;

pub use error::LpError;
pub use ipm::{
    solve_inequality, solve_standard, InequalitySolution, LpOptions, LpSolution, LpStatus,
};
