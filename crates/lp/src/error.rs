use std::error::Error;
use std::fmt;

use snbc_linalg::LinalgError;

/// Errors produced by the LP solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// Input dimensions are inconsistent.
    Dimension(String),
    /// The interior-point iteration exceeded its budget without converging.
    IterationLimit { iterations: usize, mu: f64 },
    /// The problem was detected to be (numerically) primal infeasible.
    Infeasible,
    /// The problem was detected to be (numerically) unbounded below.
    Unbounded,
    /// A linear-algebra failure (e.g. normal equations not factorizable).
    Numerical(LinalgError),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Dimension(msg) => write!(f, "dimension error: {msg}"),
            LpError::IterationLimit { iterations, mu } => write!(
                f,
                "interior-point iteration limit ({iterations}) reached at mu={mu:.3e}"
            ),
            LpError::Infeasible => write!(f, "problem is primal infeasible"),
            LpError::Unbounded => write!(f, "problem is unbounded"),
            LpError::Numerical(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl Error for LpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LpError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for LpError {
    fn from(e: LinalgError) -> Self {
        LpError::Numerical(e)
    }
}
