use snbc_linalg::{vec_ops, Matrix};

use crate::LpError;

/// Options controlling the interior-point LP solver.
#[derive(Debug, Clone)]
pub struct LpOptions {
    /// Maximum interior-point iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on relative residuals and duality measure.
    pub tolerance: f64,
    /// Fraction-to-the-boundary step damping.
    pub step_fraction: f64,
    /// Diagonal regularization added to the normal equations.
    pub regularization: f64,
    /// Telemetry sink; each solve records an `"lp"` span with its iteration
    /// count and final duality measure μ. The default no-op sink costs one
    /// pointer check per solve.
    pub telemetry: snbc_telemetry::Telemetry,
}

impl Default for LpOptions {
    fn default() -> Self {
        LpOptions {
            max_iterations: 200,
            tolerance: 1e-8,
            step_fraction: 0.995,
            regularization: 1e-12,
            telemetry: snbc_telemetry::Telemetry::off(),
        }
    }
}

/// Termination status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// Converged to the requested tolerance.
    Optimal,
    /// Stopped early at a usable but less accurate point.
    NearOptimal,
}

/// Solution of a standard-form LP `min cᵀx  s.t.  Ax = b, x ≥ 0`.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Primal variables.
    pub x: Vec<f64>,
    /// Dual variables (multipliers of `Ax = b`).
    pub y: Vec<f64>,
    /// Dual slacks.
    pub s: Vec<f64>,
    /// Objective value `cᵀx`.
    pub objective: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Final duality measure `μ = xᵀs / n` at the returned iterate.
    pub mu: f64,
    /// Termination status.
    pub status: LpStatus,
}

/// Solution of an inequality-form LP `min cᵀz  s.t.  Gz ≤ g` with free `z`.
#[derive(Debug, Clone)]
pub struct InequalitySolution {
    /// Primal variables of the inequality-form problem.
    pub z: Vec<f64>,
    /// Objective value `cᵀz`.
    pub objective: f64,
    /// Iterations used by the underlying standard-form solve.
    pub iterations: usize,
    /// Termination status.
    pub status: LpStatus,
}

/// Solves `min cᵀx  s.t.  Ax = b, x ≥ 0` with Mehrotra's predictor–corrector
/// method on dense normal equations `A·D·Aᵀ` (size = `A.nrows()`).
///
/// # Errors
///
/// * [`LpError::Dimension`] — inconsistent input sizes;
/// * [`LpError::IterationLimit`] — no convergence within the budget;
/// * [`LpError::Infeasible`] / [`LpError::Unbounded`] — detected divergence of
///   the iterates;
/// * [`LpError::Numerical`] — normal equations could not be factorized even
///   with regularization.
pub fn solve_standard(a: &Matrix, b: &[f64], c: &[f64], opts: &LpOptions) -> Result<LpSolution, LpError> {
    // Telemetry wrapper: a no-op sink skips everything but one null check;
    // the inner loop itself is untouched either way.
    let _span = opts.telemetry.span("lp");
    let result = solve_standard_inner(a, b, c, opts);
    if opts.telemetry.is_recording() {
        match &result {
            Ok(sol) => {
                opts.telemetry.add("iterations", sol.iterations as u64);
                opts.telemetry.gauge("duality_mu", sol.mu);
                opts.telemetry.gauge("objective", sol.objective);
                opts.telemetry.flag("optimal", matches!(sol.status, LpStatus::Optimal));
            }
            Err(LpError::IterationLimit { iterations, mu }) => {
                opts.telemetry.add("iterations", *iterations as u64);
                opts.telemetry.gauge("duality_mu", *mu);
                opts.telemetry.flag("optimal", false);
            }
            Err(_) => opts.telemetry.flag("optimal", false),
        }
    }
    result
}

fn solve_standard_inner(
    a: &Matrix,
    b: &[f64],
    c: &[f64],
    opts: &LpOptions,
) -> Result<LpSolution, LpError> {
    let (m, n) = (a.nrows(), a.ncols());
    if b.len() != m {
        return Err(LpError::Dimension(format!(
            "b has length {} but A has {} rows",
            b.len(),
            m
        )));
    }
    if c.len() != n {
        return Err(LpError::Dimension(format!(
            "c has length {} but A has {} columns",
            c.len(),
            n
        )));
    }
    if n == 0 || m == 0 {
        return Err(LpError::Dimension("empty problem".into()));
    }

    // Mehrotra's heuristic starting point.
    let (mut x, mut y, mut s) = starting_point(a, b, c)?;

    let bnorm = vec_ops::norm2(b).max(1.0);
    let cnorm = vec_ops::norm2(c).max(1.0);

    // Best iterate seen so far, by the merit max(rp, rd, μ): near machine
    // precision the normal equations degrade and residuals can oscillate, so
    // we never return anything worse than the best visited point.
    let mut best: Option<(f64, Vec<f64>, Vec<f64>, Vec<f64>, usize)> = None;
    let trace = opts.telemetry.trace();

    for iter in 0..opts.max_iterations {
        // Residuals.
        let ax = a.matvec(&x);
        let rp: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let aty = a.tr_matvec(&y);
        let rd: Vec<f64> = c
            .iter()
            .zip(&aty)
            .zip(&s)
            .map(|((ci, ayi), si)| ci - ayi - si)
            .collect();
        let mu = vec_ops::dot(&x, &s) / n as f64;
        // Interior-point invariants: x, s stay strictly positive (so μ, their
        // scaled inner product, is non-negative) and every iterate is finite.
        snbc_linalg::sanitize::check_invariant("lp::ipm duality measure", mu >= 0.0, mu);
        snbc_linalg::sanitize::check_positive("lp::ipm primal iterate x", &x);
        snbc_linalg::sanitize::check_positive("lp::ipm dual slack s", &s);
        snbc_linalg::sanitize::check_finite("lp::ipm dual iterate y", &y);

        let rp_rel = vec_ops::norm2(&rp) / bnorm;
        let rd_rel = vec_ops::norm2(&rd) / cnorm;
        let cx = vec_ops::dot(c, &x);
        let by = vec_ops::dot(b, &y);
        let gap_rel = (cx - by).abs() / (1.0 + cx.abs());

        // Debug-trace flag: gates stderr prints only, never solver results.
        // audit:allow(env-read)
        if std::env::var_os("SNBC_LP_TRACE").is_some() {
            // audit:allow(raw-print) — env-gated debug trace, off by default
            eprintln!("iter {iter}: rp={rp_rel:.3e} rd={rd_rel:.3e} gap={gap_rel:.3e} mu={mu:.3e}");
        }
        let merit = rp_rel.max(rd_rel).max(mu).max(gap_rel * 0.1);
        if best.as_ref().is_none_or(|(m, ..)| merit < *m) {
            best = Some((merit, x.clone(), y.clone(), s.clone(), iter));
        }
        if rp_rel < opts.tolerance && rd_rel < opts.tolerance && mu < opts.tolerance {
            // Terminal iterate: no step taken, no factorization spent.
            trace.ipm_iter(
                "lp",
                snbc_trace::IpmSample {
                    iter: iter as u64,
                    mu,
                    rp_rel,
                    rd_rel,
                    gap_rel,
                    ..Default::default()
                },
            );
            return Ok(LpSolution {
                objective: cx,
                x,
                y,
                s,
                iterations: iter,
                mu,
                status: LpStatus::Optimal,
            });
        }
        // Numerical floor: once complementarity is far below the attainable
        // feasibility level, further iterations only oscillate.
        if mu < 1e-4 * opts.tolerance && rp_rel.max(rd_rel) > opts.tolerance {
            break;
        }

        // Crude divergence checks: an unbounded primal drives ‖x‖ → ∞ while
        // the duals stay bounded; primal infeasibility drives the duals.
        let xnorm = vec_ops::norm_inf(&x);
        let ynorm = vec_ops::norm_inf(&y).max(vec_ops::norm_inf(&s));
        if xnorm > 1e14 || ynorm > 1e14 {
            return Err(if ynorm > xnorm {
                LpError::Infeasible
            } else {
                LpError::Unbounded
            });
        }

        // Normal equations matrix M = A·diag(x/s)·Aᵀ + reg·I.
        let d: Vec<f64> = x.iter().zip(&s).map(|(xi, si)| xi / si).collect();
        let mut mm = Matrix::zeros(m, m);
        for k in 0..n {
            let dk = d[k];
            // Sparse-coefficient skip; exactness is intended.
            if dk == 0.0 { // audit:allow(float-eq)
                continue;
            }
            let col = a.col(k);
            for i in 0..m {
                let v = dk * col[i];
                if v == 0.0 { // audit:allow(float-eq)
                    continue;
                }
                for j in i..m {
                    mm[(i, j)] += v * col[j];
                }
            }
        }
        for i in 0..m {
            for j in 0..i {
                mm[(i, j)] = mm[(j, i)];
            }
            mm[(i, i)] += opts.regularization * (1.0 + mm[(i, i)]);
        }
        let mut chol_spent = 1u64;
        let chol = match mm.cholesky() {
            Ok(chol) => chol,
            Err(_) => {
                // Retry with heavier regularization once.
                for i in 0..m {
                    mm[(i, i)] += 1e-8 * (1.0 + mm[(i, i)]);
                }
                chol_spent += 1;
                mm.cholesky()?
            }
        };

        // Predictor (affine) direction: rc = x∘s.
        let rc_aff: Vec<f64> = x.iter().zip(&s).map(|(xi, si)| xi * si).collect();
        let (dx_aff, _dy_aff, ds_aff) = solve_kkt(a, &chol, &d, &rp, &rd, &rc_aff, &x, &s);
        let alpha_p_aff = max_step(&x, &dx_aff);
        let alpha_d_aff = max_step(&s, &ds_aff);
        let mu_aff = {
            let mut acc = 0.0;
            for i in 0..n {
                acc += (x[i] + alpha_p_aff * dx_aff[i]) * (s[i] + alpha_d_aff * ds_aff[i]);
            }
            acc / n as f64
        };
        let sigma = if mu > 0.0 { (mu_aff / mu).powi(3).clamp(1e-8, 1.0) } else { 0.1 };

        // Corrector: rc = x∘s + dx_aff∘ds_aff − σμ·1.
        let rc: Vec<f64> = (0..n)
            .map(|i| x[i] * s[i] + dx_aff[i] * ds_aff[i] - sigma * mu)
            .collect();
        let (dx, dy, ds) = solve_kkt(a, &chol, &d, &rp, &rd, &rc, &x, &s);

        let alpha_p = (opts.step_fraction * max_step(&x, &dx)).min(1.0);
        let alpha_d = (opts.step_fraction * max_step(&s, &ds)).min(1.0);

        vec_ops::axpy(alpha_p, &dx, &mut x);
        vec_ops::axpy(alpha_d, &dy, &mut y);
        vec_ops::axpy(alpha_d, &ds, &mut s);

        trace.ipm_iter(
            "lp",
            snbc_trace::IpmSample {
                iter: iter as u64,
                mu,
                rp_rel,
                rd_rel,
                gap_rel,
                alpha_p,
                alpha_d,
                cholesky: chol_spent,
            },
        );
    }

    // Return the best visited iterate if it is reasonably converged.
    if let Some((merit, bx, by, bs, iter)) = best {
        if merit < 1e-6 {
            let objective = vec_ops::dot(c, &bx);
            let mu = vec_ops::dot(&bx, &bs) / n as f64;
            return Ok(LpSolution {
                x: bx,
                y: by,
                s: bs,
                objective,
                iterations: iter,
                mu,
                status: if merit < opts.tolerance {
                    LpStatus::Optimal
                } else {
                    LpStatus::NearOptimal
                },
            });
        }
    }
    let mu = vec_ops::dot(&x, &s) / n as f64;
    Err(LpError::IterationLimit {
        iterations: opts.max_iterations,
        mu,
    })
}

/// Solves the Newton system given the factorized normal equations.
#[allow(clippy::too_many_arguments)]
fn solve_kkt(
    a: &Matrix,
    chol: &snbc_linalg::Cholesky,
    d: &[f64],
    rp: &[f64],
    rd: &[f64],
    rc: &[f64],
    _x: &[f64],
    s: &[f64],
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let n = a.ncols();
    // rhs = rp + A·S⁻¹·(rc + X·rd)  with D = X/S:
    // A·S⁻¹·rc + A·D·rd.
    let mut tmp = vec![0.0; n];
    for i in 0..n {
        tmp[i] = rc[i] / s[i] + d[i] * rd[i];
    }
    let mut rhs = a.matvec(&tmp);
    for (r, p) in rhs.iter_mut().zip(rp) {
        *r += p;
    }
    let dy = chol.solve(&rhs);
    // ds = rd − Aᵀdy; dx = −S⁻¹·rc − D·ds.
    let atdy = a.tr_matvec(&dy);
    let ds: Vec<f64> = rd.iter().zip(&atdy).map(|(r, v)| r - v).collect();
    let dx: Vec<f64> = (0..n).map(|i| -rc[i] / s[i] - d[i] * ds[i]).collect();
    (dx, dy, ds)
}

/// Largest step `α ∈ (0, 1e30]` with `v + α·dv ≥ 0`.
fn max_step(v: &[f64], dv: &[f64]) -> f64 {
    let mut alpha = f64::INFINITY;
    for (vi, di) in v.iter().zip(dv) {
        if *di < 0.0 {
            alpha = alpha.min(-vi / di);
        }
    }
    alpha.min(1.0e30)
}

/// Mehrotra's starting point: least-squares estimates shifted into the
/// positive orthant.
fn starting_point(a: &Matrix, b: &[f64], c: &[f64]) -> Result<(Vec<f64>, Vec<f64>, Vec<f64>), LpError> {
    let m = a.nrows();
    // AAᵀ with a little regularization.
    let mut aat = Matrix::zeros(m, m);
    for i in 0..m {
        for j in i..m {
            let mut acc = 0.0;
            let ri = a.row(i);
            let rj = a.row(j);
            for k in 0..a.ncols() {
                acc += ri[k] * rj[k];
            }
            aat[(i, j)] = acc;
            aat[(j, i)] = acc;
        }
    }
    for i in 0..m {
        aat[(i, i)] += 1e-10 * (1.0 + aat[(i, i)]);
    }
    let chol = aat.cholesky()?;
    // x̃ = Aᵀ(AAᵀ)⁻¹ b;  ỹ = (AAᵀ)⁻¹ A c;  s̃ = c − Aᵀỹ.
    let w = chol.solve(b);
    let x0 = a.tr_matvec(&w);
    let ac = a.matvec(c);
    let y0 = chol.solve(&ac);
    let aty = a.tr_matvec(&y0);
    let s0: Vec<f64> = c.iter().zip(&aty).map(|(ci, v)| ci - v).collect();

    let dx = (-x0.iter().copied().fold(f64::INFINITY, f64::min)).max(0.0) + 0.1;
    let ds = (-s0.iter().copied().fold(f64::INFINITY, f64::min)).max(0.0) + 0.1;
    let mut x: Vec<f64> = x0.iter().map(|v| v + dx).collect();
    let mut s: Vec<f64> = s0.iter().map(|v| v + ds).collect();
    // Second-stage shift balancing the complementarity products.
    let xs = vec_ops::dot(&x, &s);
    let sum_s: f64 = s.iter().sum();
    let sum_x: f64 = x.iter().sum();
    let dx2 = 0.5 * xs / sum_s.max(1e-12);
    let ds2 = 0.5 * xs / sum_x.max(1e-12);
    for v in &mut x {
        *v += dx2;
    }
    for v in &mut s {
        *v += ds2;
    }
    Ok((x, y0, s))
}

/// Solves `min cᵀz  s.t.  Gz ≤ g` with free `z`, via its standard-form dual.
///
/// The dual is `min gᵀw  s.t.  Gᵀw = −c, w ≥ 0`; the multipliers of that
/// problem's equality constraints recover `z` directly, so the factorization
/// size is `z.len()` — independent of the number of inequality rows. This is
/// what makes dense Chebyshev meshes with thousands of points cheap.
///
/// # Errors
///
/// Same as [`solve_standard`]; note that infeasibility of the *dual* signals
/// unboundedness of the inequality-form problem and vice versa.
pub fn solve_inequality(
    c: &[f64],
    g_mat: &Matrix,
    g_rhs: &[f64],
    opts: &LpOptions,
) -> Result<InequalitySolution, LpError> {
    let (rows, cols) = (g_mat.nrows(), g_mat.ncols());
    if c.len() != cols {
        return Err(LpError::Dimension(format!(
            "c has length {} but G has {} columns",
            c.len(),
            cols
        )));
    }
    if g_rhs.len() != rows {
        return Err(LpError::Dimension(format!(
            "g has length {} but G has {} rows",
            g_rhs.len(),
            rows
        )));
    }
    let a = g_mat.transpose();
    let b: Vec<f64> = c.iter().map(|v| -v).collect();
    let sol = match solve_standard(&a, &b, g_rhs, opts) {
        Ok(sol) => sol,
        Err(LpError::Infeasible) => return Err(LpError::Unbounded),
        Err(LpError::Unbounded) => return Err(LpError::Infeasible),
        Err(e) => return Err(e),
    };
    // Standard-form dual variables y satisfy Gz ≤ g with z = −y and the
    // objective cᵀz = −bᵀy = gᵀw at optimum. Derivation: the standard-form
    // dual is max bᵀy s.t. Aᵀy ≤ c_std, i.e. max (−c)ᵀy s.t. G y ≤ g,
    // which matches min cᵀz s.t. Gz ≤ g under z = y.
    let z = sol.y.clone();
    let objective = vec_ops::dot(c, &z);
    Ok(InequalitySolution {
        z,
        objective,
        iterations: sol.iterations,
        status: sol.status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_form_textbook() {
        // min −3x₀ − 5x₁  s.t.  x₀ + s₁ = 4, 2x₁ + s₂ = 12, 3x₀ + 2x₁ + s₃ = 18.
        let a = Matrix::from_rows(&[
            &[1.0, 0.0, 1.0, 0.0, 0.0],
            &[0.0, 2.0, 0.0, 1.0, 0.0],
            &[3.0, 2.0, 0.0, 0.0, 1.0],
        ]);
        let b = [4.0, 12.0, 18.0];
        let c = [-3.0, -5.0, 0.0, 0.0, 0.0];
        let sol = solve_standard(&a, &b, &c, &LpOptions::default()).unwrap();
        assert!((sol.objective + 36.0).abs() < 1e-6, "objective {}", sol.objective);
        assert!((sol.x[0] - 2.0).abs() < 1e-5);
        assert!((sol.x[1] - 6.0).abs() < 1e-5);
    }

    #[test]
    fn inequality_form_box() {
        // min −z₀ − z₁  s.t.  z ≤ (1, 2), −z ≤ 0 ⇒ optimum −3 at (1, 2).
        let g = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[-1.0, 0.0],
            &[0.0, -1.0],
        ]);
        let sol = solve_inequality(&[-1.0, -1.0], &g, &[1.0, 2.0, 0.0, 0.0], &LpOptions::default())
            .unwrap();
        assert!((sol.objective + 3.0).abs() < 1e-6);
        assert!((sol.z[0] - 1.0).abs() < 1e-5);
        assert!((sol.z[1] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn chebyshev_fit_line_through_parabola() {
        // Best uniform linear fit to y = x² on {−1, −0.5, 0, 0.5, 1} has error
        // 0.5 at the Chebyshev points (equioscillation): p(x) = x²-ish → fit
        // a + b·x with minimal max error = 0.5, a = 0.5, b = 0.
        let xs = [-1.0, -0.5, 0.0, 0.5, 1.0];
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut rhs = Vec::new();
        for &x in &xs {
            let k = x * x;
            // (a + b·x) − t ≤ k  and −(a + b·x) − t ≤ −k.
            rows.push(vec![1.0, x, -1.0]);
            rhs.push(k);
            rows.push(vec![-1.0, -x, -1.0]);
            rhs.push(-k);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let g = Matrix::from_rows(&row_refs);
        let sol = solve_inequality(&[0.0, 0.0, 1.0], &g, &rhs, &LpOptions::default()).unwrap();
        assert!((sol.objective - 0.5).abs() < 1e-6, "objective {}", sol.objective);
        assert!((sol.z[0] - 0.5).abs() < 1e-5, "a = {}", sol.z[0]);
        assert!(sol.z[1].abs() < 1e-5, "b = {}", sol.z[1]);
    }

    #[test]
    fn detects_unbounded() {
        // min −z  with z ≤ ∞ constraint only trivially: z − t*0 ≤ 1 has
        // recession direction? Use: min −z₀ s.t. −z₀ ≤ 0 (z₀ ≥ 0, unbounded above).
        let g = Matrix::from_rows(&[&[-1.0]]);
        let r = solve_inequality(&[-1.0], &g, &[0.0], &LpOptions::default());
        assert!(matches!(r, Err(LpError::Unbounded) | Err(LpError::IterationLimit { .. })));
    }

    #[test]
    fn dimension_errors() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            solve_standard(&a, &[1.0], &[0.0; 3], &LpOptions::default()),
            Err(LpError::Dimension(_))
        ));
        assert!(matches!(
            solve_standard(&a, &[1.0, 2.0], &[0.0; 2], &LpOptions::default()),
            Err(LpError::Dimension(_))
        ));
    }

    #[test]
    fn degenerate_rows_still_solve() {
        // Duplicate constraint rows make AAᵀ singular without regularization.
        let a = Matrix::from_rows(&[&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0]]);
        let b = [1.0, 1.0];
        let c = [1.0, 2.0, 3.0];
        let sol = solve_standard(&a, &b, &c, &LpOptions::default()).unwrap();
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }
}
