use std::error::Error;
use std::fmt;

use snbc_sdp::SdpError;

/// Errors produced by the SOS layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SosError {
    /// Program construction error (mismatched variables, empty program, …).
    Invalid(String),
    /// The underlying SDP reported the feasibility problem infeasible, or the
    /// achieved margin was not positive: no SOS certificate of the requested
    /// degrees exists (numerically).
    Infeasible { margin: f64 },
    /// The SDP solver failed.
    Solver(SdpError),
}

impl fmt::Display for SosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SosError::Invalid(msg) => write!(f, "invalid SOS program: {msg}"),
            SosError::Infeasible { margin } => {
                write!(f, "no SOS certificate found (margin {margin:.3e})")
            }
            SosError::Solver(e) => write!(f, "SDP solver failure: {e}"),
        }
    }
}

impl Error for SosError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SosError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SdpError> for SosError {
    fn from(e: SdpError) -> Self {
        match e {
            SdpError::Infeasible => SosError::Infeasible {
                margin: f64::NEG_INFINITY,
            },
            other => SosError::Solver(other),
        }
    }
}
