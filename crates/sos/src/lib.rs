//! Sum-of-squares programming on top of the [`snbc_sdp`] interior-point solver.
//!
//! This crate is the bridge between polynomial identities and semidefinite
//! programming. The paper's verifier (§4.2) must solve problems of the shape
//!
//! ```text
//!     find  σᵢ(x) ∈ Σ[x],  λ(x) ∈ ℝ[x]
//!     s.t.  known(x) − Σᵢ σᵢ(x)·gᵢ(x) − λ(x)·B(x) ∈ Σ[x]
//! ```
//!
//! which [`SosProgram`] compiles to a block SDP: every unknown SOS polynomial
//! becomes a Gram matrix over the basis `[x]_d` (the paper's §3 ordering, via
//! [`snbc_poly::monomial_basis`]); every free polynomial becomes split
//! nonnegative coefficient pairs; every polynomial identity becomes one linear
//! equality per monomial.
//!
//! Feasibility is decided with an explicit margin: the solver maximizes `t`
//! such that every Gram block satisfies `G ⪰ t·I` (with `t ≤ t_max`), so
//! `t* > 0` certifies *strict* feasibility and the returned witness has a
//! quantified distance from the PSD boundary — this is exactly the convex
//! LMI feasibility test that replaces the paper's earlier BMI formulation.
//!
//! # Features
//!
//! With the `sanitize` feature (forwarded to [`snbc_linalg`] and
//! [`snbc_sdp`]), extracted Gram blocks are additionally checked to be
//! finite, symmetric, and PSD up to the margin shift at solution-extraction
//! time; the underlying solvers check their interior iterates. Telemetry for
//! the compiled SDPs comes from the [`snbc_sdp`] layer: each solve of an
//! [`SosProgram`] emits one `"sdp"` span per attempt when the solver's sink
//! records.
//!
//! # Example
//!
//! ```
//! use snbc_sos::{SosExpr, SosProgram};
//! use snbc_poly::Polynomial;
//!
//! // Certify 2x² − 2x + 1 ∈ Σ[x] (it is (x−1)² + x²).
//! let p: Polynomial = "2*x0^2 - 2*x0 + 1".parse().unwrap();
//! let mut prog = SosProgram::new(1);
//! prog.require_sos(SosExpr::from_poly(p));
//! let sol = prog.solve_default()?;
//! assert!(sol.margin() > 0.0);
//! # Ok::<(), snbc_sos::SosError>(())
//! ```

mod decompose;
mod error;
mod program;

pub use decompose::{extract_squares, SosDecomposition};
pub use error::SosError;
pub use program::{SosExpr, SosProgram, SosSolution, UnknownId};
