use snbc_linalg::Matrix;
use snbc_poly::{Monomial, Polynomial};

/// An explicit sum-of-squares decomposition `p(x) = Σₖ qₖ(x)²`.
///
/// Produced from a Gram certificate by [`extract_squares`]; evaluating the
/// squares reproduces the original polynomial up to the stated residual.
#[derive(Debug, Clone)]
pub struct SosDecomposition {
    /// The square roots `qₖ`.
    pub squares: Vec<Polynomial>,
    /// `‖p − Σ qₖ²‖∞` over coefficients, a measure of numerical fidelity.
    pub residual: f64,
}

/// Extracts an explicit SOS decomposition from a Gram certificate
/// `p = basisᵀ·G·basis` with `G ⪰ 0` by eigendecomposition:
/// `G = Σ λₖ vₖvₖᵀ ⇒ p = Σ (√λₖ · vₖᵀ·basis)²` (negative eigenvalues below
/// `-tol` are reported through the residual instead of silently dropped).
///
/// # Errors
///
/// Returns the eigensolver error if the Gram matrix cannot be diagonalized.
///
/// # Example
///
/// ```
/// use snbc_linalg::Matrix;
/// use snbc_poly::{monomial_basis, Polynomial};
/// use snbc_sos::extract_squares;
///
/// // G = I over basis [1, x] gives p = 1 + x².
/// let basis = monomial_basis(1, 1);
/// let g = Matrix::identity(2);
/// let p: Polynomial = "1 + x0^2".parse().unwrap();
/// let dec = extract_squares(&p, &basis, &g).unwrap();
/// assert!(dec.residual < 1e-12);
/// assert_eq!(dec.squares.len(), 2);
/// ```
pub fn extract_squares(
    p: &Polynomial,
    basis: &[Monomial],
    gram: &Matrix,
) -> Result<SosDecomposition, snbc_linalg::LinalgError> {
    let eig = gram.symmetric_eigen()?;
    let v = eig.eigenvectors();
    let mut squares = Vec::new();
    for (k, &lambda) in eig.eigenvalues().iter().enumerate() {
        if lambda <= 0.0 {
            continue;
        }
        let scale = lambda.sqrt();
        let mut q = Polynomial::zero();
        for (i, m) in basis.iter().enumerate() {
            q.add_term(scale * v[(i, k)], m.clone());
        }
        if !q.is_zero() {
            squares.push(q);
        }
    }
    // Residual: p − Σ q².
    let mut recon = Polynomial::zero();
    for q in &squares {
        recon += &(q * q);
    }
    let residual = (p - &recon).max_abs_coeff();
    Ok(SosDecomposition { squares, residual })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SosExpr, SosProgram};
    use snbc_poly::monomial_basis;

    #[test]
    fn decomposition_reproduces_polynomial() {
        let p: Polynomial = "2*x0^2 - 2*x0*x1 + x1^2 + 1".parse().unwrap();
        let mut prog = SosProgram::new(2);
        let cert = prog.require_sos(SosExpr::from_poly(p.clone()));
        let sol = prog.solve_default().unwrap();
        let (basis, gram) = sol.gram(cert).unwrap();
        let dec = extract_squares(sol.poly(cert), basis, gram).unwrap();
        assert!(dec.residual < 1e-6, "residual {}", dec.residual);
        // Check p ≈ Σ q² pointwise as well.
        for x in [[-1.0, 0.5], [0.3, 2.0], [0.0, 0.0]] {
            let direct = p.eval(&x);
            let via: f64 = dec.squares.iter().map(|q| q.eval(&x).powi(2)).sum();
            assert!((direct - via).abs() < 1e-4, "{direct} vs {via}");
        }
    }

    #[test]
    fn handles_rank_deficient_gram() {
        // p = x² exactly: Gram [[0,0],[0,1]] over [1, x].
        let basis = monomial_basis(1, 1);
        let g = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0]]);
        let p: Polynomial = "x0^2".parse().unwrap();
        let dec = extract_squares(&p, &basis, &g).unwrap();
        assert_eq!(dec.squares.len(), 1);
        assert!(dec.residual < 1e-12);
    }
}
