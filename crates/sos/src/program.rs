use std::collections::BTreeMap;

use snbc_linalg::Matrix;
use snbc_poly::{monomial_basis, Monomial, Polynomial};
use snbc_sdp::{BlockShape, SdpProblem, SdpSolver};

use crate::SosError;

/// Handle to an unknown polynomial declared in a [`SosProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnknownId(usize);

#[derive(Debug, Clone)]
enum UnknownKind {
    /// SOS polynomial with Gram matrix over the given monomial basis.
    Sos { basis: Vec<Monomial> },
    /// Free polynomial with unconstrained coefficients over the given basis.
    Free { basis: Vec<Monomial> },
}

/// An affine polynomial expression
/// `constant(x) + Σᵢ multiplierᵢ(x) · unknownᵢ(x)`.
///
/// The building block of SOS constraints: the LMI problems (13)–(15) of the
/// paper are all of this shape with known multipliers (the set polynomials
/// `θᵢ, ψᵢ, ξᵢ` and the learned `B`) and unknown SOS/free polynomials.
#[derive(Debug, Clone, Default)]
pub struct SosExpr {
    constant: Polynomial,
    terms: Vec<(UnknownId, Polynomial)>,
}

impl SosExpr {
    /// The zero expression.
    pub fn new() -> Self {
        SosExpr::default()
    }

    /// An expression consisting of a known polynomial only.
    pub fn from_poly(p: Polynomial) -> Self {
        SosExpr {
            constant: p,
            terms: Vec::new(),
        }
    }

    /// Adds a known polynomial.
    pub fn add_poly(mut self, p: &Polynomial) -> Self {
        self.constant += p;
        self
    }

    /// Adds `multiplier(x) · unknown(x)`.
    pub fn add_term(mut self, multiplier: Polynomial, unknown: UnknownId) -> Self {
        self.terms.push((unknown, multiplier));
        self
    }

    /// Adds `coeff · unknown(x)`.
    pub fn add_scaled_unknown(self, coeff: f64, unknown: UnknownId) -> Self {
        self.add_term(Polynomial::constant(coeff), unknown)
    }
}

/// Declarative SOS feasibility program; see the [crate docs](crate) for the
/// overall picture and an example.
#[derive(Debug, Clone)]
pub struct SosProgram {
    nvars: usize,
    unknowns: Vec<UnknownKind>,
    /// Constraints of the form `expr ≡ 0`.
    zero_constraints: Vec<SosExpr>,
    /// Cap on the feasibility margin variable `t` (keeps the SDP bounded).
    pub margin_cap: f64,
    /// Feasibility acceptance threshold: a solved margin `t* > −tolerance`
    /// counts as feasible. Exact SOS decompositions with rank-deficient Gram
    /// matrices (e.g. perfect squares) have a true optimal margin of 0, which
    /// the interior-point solver reports as a tiny negative number.
    pub margin_tolerance: f64,
}

impl SosProgram {
    /// Creates an empty program over `nvars` variables.
    pub fn new(nvars: usize) -> Self {
        SosProgram {
            nvars,
            unknowns: Vec::new(),
            zero_constraints: Vec::new(),
            margin_cap: 1.0,
            margin_tolerance: 1e-7,
        }
    }

    /// Number of ambient variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Declares an unknown SOS polynomial of degree ≤ `degree` (rounded down
    /// to even); its Gram matrix ranges over the basis `[x]_{degree/2}`.
    pub fn add_sos(&mut self, degree: u32) -> UnknownId {
        let basis = monomial_basis(self.nvars, degree / 2);
        self.unknowns.push(UnknownKind::Sos { basis });
        UnknownId(self.unknowns.len() - 1)
    }

    /// Declares an unknown free polynomial of degree ≤ `degree`.
    pub fn add_free(&mut self, degree: u32) -> UnknownId {
        self.add_free_restricted(degree, self.nvars)
    }

    /// Declares an unknown free polynomial of degree ≤ `degree` that may only
    /// mention the first `nvars` ambient variables. Used for the multiplier
    /// `λ(x)` in the flow condition (15), which ranges over `x` but not over
    /// the controller-error variable `w`.
    ///
    /// # Panics
    ///
    /// Panics if `nvars` exceeds the program's ambient dimension.
    pub fn add_free_restricted(&mut self, degree: u32, nvars: usize) -> UnknownId {
        assert!(
            nvars <= self.nvars,
            "restricted variable count {nvars} exceeds ambient {}",
            self.nvars
        );
        let basis = monomial_basis(nvars, degree);
        self.unknowns.push(UnknownKind::Free { basis });
        UnknownId(self.unknowns.len() - 1)
    }

    /// Requires `expr(x) ≡ 0` as a polynomial identity.
    pub fn require_zero(&mut self, expr: SosExpr) {
        self.zero_constraints.push(expr);
    }

    /// Requires `expr(x) ∈ Σ[x]`: an internal SOS certificate unknown `c` is
    /// created and `expr − c ≡ 0` is imposed. Returns the certificate's id.
    pub fn require_sos(&mut self, expr: SosExpr) -> UnknownId {
        // Degree bound of the expression decides the certificate basis.
        let mut deg = expr.constant.degree();
        for (id, q) in &expr.terms {
            let ud = match &self.unknowns[id.0] {
                UnknownKind::Sos { basis } => 2 * basis.iter().map(Monomial::degree).max().unwrap_or(0),
                UnknownKind::Free { basis } => basis.iter().map(Monomial::degree).max().unwrap_or(0),
            };
            deg = deg.max(q.degree() + ud);
        }
        let cert = self.add_sos(deg + deg % 2);
        let expr = expr.add_scaled_unknown(-1.0, cert);
        self.require_zero(expr);
        cert
    }

    /// Compiles and solves the program with the default SDP solver settings.
    ///
    /// # Errors
    ///
    /// See [`SosProgram::solve`].
    pub fn solve_default(&self) -> Result<SosSolution, SosError> {
        self.solve(&SdpSolver::default())
    }

    /// Compiles the program to a block SDP (with margin maximization) and
    /// solves it.
    ///
    /// # Errors
    ///
    /// * [`SosError::Invalid`] — empty program or malformed expression;
    /// * [`SosError::Infeasible`] — solved, but the achieved margin is not
    ///   positive (no strictly feasible certificate of these degrees);
    /// * [`SosError::Solver`] — the SDP solver failed.
    pub fn solve(&self, solver: &SdpSolver) -> Result<SosSolution, SosError> {
        if self.zero_constraints.is_empty() {
            return Err(SosError::Invalid("no constraints".into()));
        }
        // Block layout: one dense block per SOS unknown, then one diag block
        // for all free coefficients (split +/−), then one diag block
        // [t⁺, t⁻, slack] for the feasibility margin.
        let mut shapes = Vec::new();
        let mut sos_block = vec![usize::MAX; self.unknowns.len()];
        let mut free_offset = vec![usize::MAX; self.unknowns.len()];
        let mut free_len = 0usize;
        for (i, u) in self.unknowns.iter().enumerate() {
            match u {
                UnknownKind::Sos { basis } => {
                    sos_block[i] = shapes.len();
                    shapes.push(BlockShape::Dense(basis.len()));
                }
                UnknownKind::Free { basis } => {
                    free_offset[i] = free_len;
                    free_len += basis.len();
                }
            }
        }
        let free_block = shapes.len();
        if free_len > 0 {
            shapes.push(BlockShape::Diag(2 * free_len));
        }
        let margin_block = shapes.len();
        shapes.push(BlockShape::Diag(3));

        let mut sdp = SdpProblem::new(shapes);
        // Objective: maximize t = t⁺ − t⁻ ⇒ min −t⁺ + t⁻.
        sdp.set_cost(margin_block, 0, 0, -1.0);
        sdp.set_cost(margin_block, 1, 1, 1.0);
        // t⁺ − t⁻ + s = margin_cap.
        let kcap = sdp.add_constraint(self.margin_cap);
        sdp.set_coefficient(kcap, margin_block, 0, 0, 1.0);
        sdp.set_coefficient(kcap, margin_block, 1, 1, -1.0);
        sdp.set_coefficient(kcap, margin_block, 2, 2, 1.0);

        // One equality constraint per monomial per expression.
        for expr in &self.zero_constraints {
            let mut rows: BTreeMap<Monomial, usize> = BTreeMap::new();
            let mut row =
                |sdp: &mut SdpProblem, m: &Monomial| -> usize {
                    *rows.entry(m.clone()).or_insert_with(|| sdp.add_constraint(0.0))
                };
            // Known part moves to the rhs: Σ contributions = −constant_μ.
            // We instead keep rhs 0 and record the constant as part of the
            // constraint right-hand side directly below.
            for (m, c) in expr.constant.iter() {
                let k = row(&mut sdp, m);
                // ⟨A, X⟩ = b: put the constant on the rhs.
                add_rhs(&mut sdp, k, -c);
            }
            for (id, q) in &expr.terms {
                if q.is_zero() {
                    continue;
                }
                match &self.unknowns[id.0] {
                    UnknownKind::Sos { basis } => {
                        let blk = sos_block[id.0];
                        for a in 0..basis.len() {
                            for bidx in a..basis.len() {
                                let mab = basis[a].mul(&basis[bidx]);
                                for (qm, qc) in q.iter() {
                                    let target = mab.mul(qm);
                                    let k = row(&mut sdp, &target);
                                    sdp.set_coefficient(k, blk, a, bidx, qc);
                                    // Margin shift: G = H + t·I touches only
                                    // the diagonal.
                                    if a == bidx {
                                        sdp.set_coefficient(k, margin_block, 0, 0, qc);
                                        sdp.set_coefficient(k, margin_block, 1, 1, -qc);
                                    }
                                }
                            }
                        }
                    }
                    UnknownKind::Free { basis } => {
                        let off = free_offset[id.0];
                        for (ci, cm) in basis.iter().enumerate() {
                            for (qm, qc) in q.iter() {
                                let target = cm.mul(qm);
                                let k = row(&mut sdp, &target);
                                let pos = 2 * (off + ci);
                                sdp.set_coefficient(k, free_block, pos, pos, qc);
                                sdp.set_coefficient(k, free_block, pos + 1, pos + 1, -qc);
                            }
                        }
                    }
                }
            }
        }

        let sol = solver.solve(&sdp)?;
        let margin_diag = sol.x.block(margin_block).as_diag()?;
        let t = margin_diag[0] - margin_diag[1];

        // Extract the unknowns (shifting Gram diagonals by t).
        let mut polys = Vec::with_capacity(self.unknowns.len());
        let mut grams = Vec::with_capacity(self.unknowns.len());
        for (i, u) in self.unknowns.iter().enumerate() {
            match u {
                UnknownKind::Sos { basis } => {
                    let h = sol.x.block(sos_block[i]).as_dense()?.clone();
                    let mut g = h;
                    for a in 0..g.nrows() {
                        g[(a, a)] += t;
                    }
                    // sanitize: the extracted Gram block G = H + t·I must be
                    // finite and symmetric (H is a primal SDP iterate), and
                    // PSD up to the margin shift: λ_min(G) ≥ min(t, 0) − tol
                    // since H ⪰ 0 up to solver tolerance. The λ_min
                    // computation is itself gated so the release build does
                    // no extra work.
                    #[cfg(feature = "sanitize")]
                    {
                        snbc_linalg::sanitize::check_finite(
                            "sos::gram extraction",
                            g.as_slice(),
                        );
                        let mut asym: f64 = 0.0;
                        for a in 0..g.nrows() {
                            for b in (a + 1)..g.ncols() {
                                asym = asym.max((g[(a, b)] - g[(b, a)]).abs());
                            }
                        }
                        let scale = 1.0 + g.norm_fro();
                        snbc_linalg::sanitize::check_invariant(
                            "sos::gram symmetric",
                            asym <= 1e-8 * scale,
                            asym,
                        );
                        let lmin = g.min_eigenvalue().unwrap_or(f64::NAN);
                        snbc_linalg::sanitize::check_invariant(
                            "sos::gram psd up to margin shift",
                            lmin >= t.min(0.0) - 1e-6 * scale,
                            lmin,
                        );
                    }
                    let mut p = Polynomial::zero();
                    for a in 0..basis.len() {
                        for bidx in 0..basis.len() {
                            p.add_term(g[(a, bidx)], basis[a].mul(&basis[bidx]));
                        }
                    }
                    polys.push(p);
                    grams.push(Some((basis.clone(), g)));
                }
                UnknownKind::Free { basis } => {
                    let d = sol.x.block(free_block).as_diag()?;
                    let off = free_offset[i];
                    let mut p = Polynomial::zero();
                    for (ci, cm) in basis.iter().enumerate() {
                        let v = d[2 * (off + ci)] - d[2 * (off + ci) + 1];
                        p.add_term(v, cm.clone());
                    }
                    polys.push(p);
                    grams.push(None);
                }
            }
        }

        let solution = SosSolution {
            polys,
            grams,
            margin: t,
            sdp_iterations: sol.iterations,
        };
        if t <= -self.margin_tolerance {
            return Err(SosError::Infeasible { margin: t });
        }
        Ok(solution)
    }
}

/// Adjusts the right-hand side of constraint `k` by `delta`.
fn add_rhs(sdp: &mut SdpProblem, k: usize, delta: f64) {
    // SdpProblem stores rhs immutably through add_constraint; emulate
    // accumulation with a tiny shim: we rebuild by tracking here.
    sdp.add_rhs(k, delta);
}

/// Witness returned by a successful [`SosProgram::solve`].
#[derive(Debug, Clone)]
pub struct SosSolution {
    polys: Vec<Polynomial>,
    grams: Vec<Option<(Vec<Monomial>, Matrix)>>,
    margin: f64,
    sdp_iterations: usize,
}

impl SosSolution {
    /// The solved polynomial for an unknown.
    pub fn poly(&self, id: UnknownId) -> &Polynomial {
        &self.polys[id.0]
    }

    /// The Gram matrix and its monomial basis for an SOS unknown (`None` for
    /// free unknowns).
    pub fn gram(&self, id: UnknownId) -> Option<(&[Monomial], &Matrix)> {
        self.grams[id.0].as_ref().map(|(b, g)| (b.as_slice(), g))
    }

    /// The achieved feasibility margin `t*` (min eigenvalue shift applied to
    /// every Gram block); strictly positive for accepted certificates.
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Interior-point iterations used by the compiled SDP.
    pub fn sdp_iterations(&self) -> usize {
        self.sdp_iterations
    }

    /// Residual `‖expr‖∞` of an identity under the solved unknowns: how
    /// closely `expr ≡ 0` holds with the numerical solution plugged in.
    pub fn residual(&self, expr: &SosExpr) -> f64 {
        let mut p = expr.constant.clone();
        for (id, q) in &expr.terms {
            p += &(q * &self.polys[id.0]);
        }
        p.max_abs_coeff()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certifies_simple_sos() {
        // x² + 2x + 1 = (x+1)².
        let p: Polynomial = "x0^2 + 2*x0 + 1".parse().unwrap();
        let mut prog = SosProgram::new(1);
        let cert = prog.require_sos(SosExpr::from_poly(p.clone()));
        let sol = prog.solve_default().unwrap();
        // (x+1)² is SOS on the boundary of the cone (rank-1 Gram): the
        // optimal margin is exactly 0.
        assert!(sol.margin() > -1e-7);
        // Certificate reproduces the polynomial.
        let diff = &p - sol.poly(cert);
        assert!(diff.max_abs_coeff() < 1e-5, "residual {}", diff.max_abs_coeff());
    }

    #[test]
    fn rejects_negative_polynomial() {
        // −x² − 1 is negative everywhere: not SOS.
        let p: Polynomial = "-x0^2 - 1".parse().unwrap();
        let mut prog = SosProgram::new(1);
        prog.require_sos(SosExpr::from_poly(p));
        assert!(matches!(
            prog.solve_default(),
            Err(SosError::Infeasible { .. }) | Err(SosError::Solver(_))
        ));
    }

    #[test]
    fn rejects_indefinite_polynomial() {
        // x (changes sign): not SOS.
        let p: Polynomial = "x0".parse().unwrap();
        let mut prog = SosProgram::new(1);
        prog.require_sos(SosExpr::from_poly(p));
        assert!(prog.solve_default().is_err());
    }

    #[test]
    fn motzkin_like_multiplier_problem() {
        // Positivstellensatz toy: certify x ≥ 0 on [0, 1] via
        // x = σ₀ + σ₁·x·(1−x) is impossible for deg σ₁ = 0? Actually
        // x − σ₁·x(1−x) SOS with σ₁ = 1 gives x − x + x² = x². Feasible.
        let x: Polynomial = "x0".parse().unwrap();
        let g: Polynomial = "x0*(1 - x0)".parse().unwrap();
        let mut prog = SosProgram::new(1);
        let sigma = prog.add_sos(0);
        let expr = SosExpr::from_poly(x).add_term(-&g, sigma);
        prog.require_sos(expr);
        let sol = prog.solve_default().unwrap();
        // The certificate x² is on the cone boundary; margin ≈ 0 is correct.
        assert!(sol.margin() > -1e-7);
        // σ must be a (numerically) nonnegative constant.
        assert!(sol.poly(sigma).constant_term() >= -1e-7);
    }

    #[test]
    fn free_unknown_interpolates() {
        // Find free λ (deg 0) with  (2 − λ)·x² ∈ SOS and (λ − 1)·x² ∈ SOS:
        // any λ ∈ [1, 2] works; the margin maximization picks an interior λ.
        let x2: Polynomial = "x0^2".parse().unwrap();
        let mut prog = SosProgram::new(1);
        let lam = prog.add_free(0);
        let e1 = SosExpr::from_poly(x2.scale(2.0)).add_term(-&x2, lam);
        let e2 = SosExpr::from_poly(-&x2).add_term(x2.clone(), lam);
        prog.require_sos(e1);
        prog.require_sos(e2);
        let sol = prog.solve_default().unwrap();
        let l = sol.poly(lam).constant_term();
        assert!((0.9..=2.1).contains(&l), "lambda = {l}");
    }

    #[test]
    fn residual_of_solution_is_small() {
        let p: Polynomial = "x0^2 + x1^2 + 2".parse().unwrap();
        let mut prog = SosProgram::new(2);
        let cert = prog.require_sos(SosExpr::from_poly(p.clone()));
        let sol = prog.solve_default().unwrap();
        let expr = SosExpr::from_poly(p).add_scaled_unknown(-1.0, cert);
        assert!(sol.residual(&expr) < 1e-5);
    }

    #[test]
    fn empty_program_invalid() {
        let prog = SosProgram::new(1);
        assert!(matches!(prog.solve_default(), Err(SosError::Invalid(_))));
    }
}
