//! `snbc-audit` — numerical-soundness static analysis for the SNBC workspace.
//!
//! The from-scratch interior-point solvers (`snbc-lp`, `snbc-sdp`) and the
//! factorization kernels under them (`snbc-linalg`) stand in for MOSEK-class
//! solvers; a silent NaN or an exact-float-equality branch inside an IPM
//! iteration can turn a "verified" barrier certificate into a wrong answer.
//! This crate is the standing gate against that class of bug:
//!
//! - a comment/string-aware tokenizer ([`tokenizer`]) — no `syn`, std only;
//! - a brace-matched item tree ([`syntax`]) mapping every token to its
//!   scope, statement span, and structural `#[cfg(test)]`/`#[test]` status;
//! - per-scope `use`-alias symbol tables ([`scopes`]) so rules resolve
//!   renamed imports instead of pattern-matching raw paths;
//! - a statement-level dataflow engine ([`dataflow`]): per-function def-use
//!   chains tracking value provenance across `let` rebinds, reassignments,
//!   and projections, plus `snbc_par` call/closure geometry — the substrate
//!   for the provenance-aware rules;
//! - soundness + determinism rules ([`rules`]): exact float comparisons,
//!   panicking calls and swallowed `Result`s in solver library code (def-use
//!   based: a dead `Result` binding is flagged wherever it hides), lossy
//!   numeric casts, `HashMap`/`HashSet` iteration, raw `thread::spawn` /
//!   `Instant::now` / `std::env` reads / `println!`-family printing outside
//!   their owner crates, unordered float reductions over values that *flow*
//!   from parallel output (however many bindings away), and `snbc_par`
//!   closures capturing mutable or interior-mutable shared state
//!   (`par-capture-race`);
//! - an interprocedural effect engine: per-function effect leaves
//!   ([`effects`]), a workspace call graph with SCC-fixpoint propagation
//!   ([`callgraph`]), and declarative contracts over the propagated sets
//!   ([`contracts`]) — solver crates transitively env/thread/clock-free,
//!   `// audit:hot` functions transitively allocation-free, parallel
//!   callees fold-order-safe;
//! - architecture rules ([`arch`]): Cargo.toml dependencies must match the
//!   DESIGN.md DAG, externals limited to `rand`/`proptest`/`criterion`/`serde`;
//! - a versioned regression baseline ([`baseline`], format v2) with
//!   statement-scoped `// audit:allow(<rule>)` suppressions;
//! - deterministic machine reports ([`sarif`] over the canonical [`json`]
//!   encoder): `--format json` (`snbc-audit/4`, findings carry call chains
//!   and def-use chains, with a self-describing rule-version catalog) and
//!   `--format sarif` (SARIF 2.1.0 with `codeFlows`), byte-identical
//!   across runs and `SNBC_THREADS`; [`graphout`] dumps the call/arch graph
//!   as canonical JSON or DOT (`snbc-audit graph`).
//!
//! The binary exits non-zero on regressions, so `ci.sh` and the tier-1 test
//! suite can use it as a gate; `snbc-audit explain <rule>` documents each
//! rule. See `docs/AUDIT.md` for the full catalog and formats. The runtime
//! counterpart is the `sanitize` cargo feature on
//! `snbc-linalg`/`snbc-lp`/`snbc-sdp`, which asserts finiteness and step
//! invariants inside the hot loops themselves.

pub mod arch;
pub mod callgraph;
pub mod contracts;
pub mod dataflow;
pub mod effects;
pub mod graphout;
pub mod json;
pub mod sarif;
pub mod scopes;
pub mod syntax;
pub mod baseline;
pub mod rules;
pub mod tokenizer;

use callgraph::{CallGraph, FileAnalysis};
use rules::{Finding, ScanOptions};
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose `src/` trees must not contain panicking calls: the solver
/// stack that the verifier side of CEGIS leans on, plus the batch service
/// (`portfolio`), whose job loop must degrade malformed input and cache
/// defects to typed errors rather than abort a fleet run.
pub const SOLVER_CRATES: &[&str] = &["linalg", "lp", "sdp", "sos", "interval", "portfolio"];

/// Crates allowed to touch `std::thread` directly: the deterministic parallel
/// runtime itself and the telemetry sink (thread-name labels). Everything
/// else must route parallelism through `snbc-par` (`raw-thread` rule).
pub const THREAD_OWNER_CRATES: &[&str] = &["par", "telemetry"];

/// Crates allowed to call `Instant::now()` directly: the trace clock itself
/// plus the observability crates that wrap it. Everything else must time
/// through `snbc_trace::Stopwatch` / `snbc_trace::now_us` so all timings sit
/// on the single trace epoch (`raw-instant` rule).
pub const INSTANT_OWNER_CRATES: &[&str] = &["trace", "telemetry", "par"];

/// Crates allowed to read the process environment: the deterministic runtime
/// (`SNBC_THREADS`), the CLI (user-facing flags), and the audit tool itself.
/// Everywhere else an env read is a hidden input that breaks run-report
/// reproducibility (`env-read` rule).
pub const ENV_OWNER_CRATES: &[&str] = &["par", "cli", "audit"];

/// Crates whose own code may perform unordered float folds: the parallel
/// runtime, whose reduction trees are deterministic by construction. The
/// `unordered-fp-fold` effect is masked at leaves inside these crates.
pub const FOLD_OWNER_CRATES: &[&str] = &["par"];

/// Crates whose library code may print to stdout/stderr directly: the CLI
/// (whose job is terminal output) and the audit tool itself. Everywhere else
/// a `println!`/`eprintln!` in library code bypasses the observability
/// surfaces (progress events, telemetry, tracing) and pollutes stdout that
/// callers may be piping (`raw-print` rule; `src/bin/` targets and
/// `src/main.rs` are exempt as binary entry points).
pub const PRINT_OWNER_CRATES: &[&str] = &["cli", "audit"];

/// Configuration for a workspace audit run.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Workspace root (the directory holding the top-level `Cargo.toml`).
    pub root: PathBuf,
    /// Workspace-relative glob filters for *reported* findings (`--paths`).
    /// Empty means everything. The scan itself always covers the whole
    /// workspace — interprocedural contracts need the full call graph — so
    /// incremental mode narrows the report, never the analysis: a finding in
    /// `crates/lp` caused by an edit in `crates/linalg` still shows up when
    /// you filter to either crate.
    pub paths: Vec<String>,
}

impl AuditConfig {
    pub fn new(root: PathBuf) -> AuditConfig {
        AuditConfig { root, paths: Vec::new() }
    }
}

/// Match a workspace-relative path against a `--paths` pattern. `*` matches
/// any run of characters **including `/`**, `?` matches one character. A
/// pattern with no metacharacters also matches as a directory prefix, so
/// `--paths crates/lp` means `crates/lp/**`.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    if !pattern.contains('*') && !pattern.contains('?') {
        let prefix = pattern.trim_end_matches('/');
        if text == prefix {
            return true;
        }
        return text.starts_with(prefix) && text.as_bytes().get(prefix.len()) == Some(&b'/');
    }
    // Classic two-pointer wildcard match with star backtracking.
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = pi;
            mark = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// Result of a workspace audit: all unsuppressed findings, sorted, plus the
/// linked call graph the effect contracts ran over (kept for `graph` dumps).
#[derive(Debug, Default)]
pub struct AuditReport {
    pub findings: Vec<Finding>,
    /// Files scanned (workspace-relative), for reporting/coverage checks.
    pub files_scanned: usize,
    pub graph: CallGraph,
}

/// Walk `crates/*/src/**/*.rs` plus every `crates/*/Cargo.toml` and apply all
/// rules: pass 1 scans each file (syntactic rules + call-graph harvest),
/// pass 2 links the workspace graph, propagates effects, and runs the
/// contracts. IO problems are hard errors: an unreadable source file must
/// fail the gate, not silently shrink its coverage.
pub fn audit_workspace(cfg: &AuditConfig) -> Result<AuditReport, String> {
    let crates_dir = cfg.root.join("crates");
    let mut report = AuditReport::default();
    let mut analyses: Vec<FileAnalysis> = Vec::new();
    let mut crate_deps: Vec<(String, String)> = Vec::new();

    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    for crate_dir in &crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();

        let manifest_path = crate_dir.join("Cargo.toml");
        if manifest_path.is_file() {
            let manifest = fs::read_to_string(&manifest_path)
                .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
            let rel = rel_path(&cfg.root, &manifest_path);
            report
                .findings
                .extend(arch::check_manifest(&crate_name, &rel, &manifest));
            for dep in arch::parse_dependencies(&manifest) {
                if dep.section != "dependencies" {
                    continue;
                }
                if let Some(dir) = crate_dir_of_package(&dep.name) {
                    crate_deps.push((crate_name.clone(), dir));
                }
            }
        }

        let src_dir = crate_dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let opts = ScanOptions::for_crate(&crate_name);
        let mut sources = Vec::new();
        collect_rs_files(&src_dir, &mut sources)?;
        sources.sort();
        for path in sources {
            let src = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = rel_path(&cfg.root, &path);
            let scan = rules::scan_source_full(&rel, &src, opts, &crate_name);
            report.findings.extend(scan.findings);
            analyses.push(scan.analysis);
            report.files_scanned += 1;
        }
    }

    crate_deps.sort();
    crate_deps.dedup();
    report.graph = CallGraph::build(&analyses);
    report.graph.crate_deps = crate_deps;
    report.findings.extend(contracts::check(&report.graph));
    if !cfg.paths.is_empty() {
        report
            .findings
            .retain(|f| cfg.paths.iter().any(|p| glob_match(p, &f.file)));
    }
    report.findings.sort();
    Ok(report)
}

/// Audit an in-memory set of `(crate_name, rel_path, source)` files — the
/// multi-crate fixture entry point used by interprocedural tests. Runs the
/// same two passes as [`audit_workspace`] minus the manifest checks.
pub fn audit_files(files: &[(&str, &str, &str)]) -> AuditReport {
    let mut report = AuditReport::default();
    let mut analyses: Vec<FileAnalysis> = Vec::new();
    for (crate_name, rel, src) in files {
        let opts = ScanOptions::for_crate(crate_name);
        let scan = rules::scan_source_full(rel, src, opts, crate_name);
        report.findings.extend(scan.findings);
        analyses.push(scan.analysis);
        report.files_scanned += 1;
    }
    report.graph = CallGraph::build(&analyses);
    report.findings.extend(contracts::check(&report.graph));
    report.findings.sort();
    report
}

/// Map an internal package name to its crate directory (`snbc-linalg` →
/// "linalg"; the `crates/core` package is plain `snbc`). External packages
/// return None.
fn crate_dir_of_package(package: &str) -> Option<String> {
    if package == "snbc" {
        return Some("core".to_string());
    }
    package.strip_prefix("snbc-").map(|rest| rest.to_string())
}

/// Render findings grouped by rule, for terminal output.
pub fn render_findings(findings: &[Finding]) -> String {
    let mut out = String::new();
    for rule in rules::RULES.iter().map(|info| info.rule) {
        let of_rule: Vec<&Finding> = findings.iter().filter(|f| f.rule == rule).collect();
        if of_rule.is_empty() {
            continue;
        }
        out.push_str(&format!("[{}] {} finding(s)\n", rule.id(), of_rule.len()));
        for f in of_rule {
            out.push_str(&format!("  {}:{}: {}\n", f.file, f.line, f.message));
            // Contract findings carry the interprocedural call chain; skip
            // frame 0 (the flagged site itself, already printed above).
            for frame in f.chain.iter().skip(1) {
                out.push_str(&format!(
                    "    via {}:{}: {}\n",
                    frame.file, frame.line, frame.note
                ));
            }
        }
    }
    out
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| format!("cannot read dir entry under {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audits_the_real_workspace() {
        // CARGO_MANIFEST_DIR = crates/audit → workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap();
        let report = audit_workspace(&AuditConfig::new(root)).unwrap();
        // The workspace has 14 crates with ~90 source files; if we ever scan
        // fewer than 50 something is broken in the walker.
        assert!(report.files_scanned > 50, "only scanned {}", report.files_scanned);
    }

    #[test]
    fn glob_match_semantics() {
        // `*` crosses `/`.
        assert!(glob_match("crates/*/src/*.rs", "crates/lp/src/lib.rs"));
        assert!(glob_match("crates/*", "crates/lp/src/solver/ipm.rs"));
        assert!(glob_match("*ipm*", "crates/lp/src/solver/ipm.rs"));
        assert!(!glob_match("crates/*/tests/*.rs", "crates/lp/src/lib.rs"));
        // `?` is exactly one character.
        assert!(glob_match("crates/l?/src/lib.rs", "crates/lp/src/lib.rs"));
        assert!(!glob_match("crates/l?/src/lib.rs", "crates/linalg/src/lib.rs"));
        // A literal pattern is a directory prefix (or exact match).
        assert!(glob_match("crates/lp", "crates/lp/src/lib.rs"));
        assert!(glob_match("crates/lp/", "crates/lp/src/lib.rs"));
        assert!(glob_match("crates/lp/src/lib.rs", "crates/lp/src/lib.rs"));
        assert!(!glob_match("crates/lp", "crates/lp2/src/lib.rs"));
    }

    #[test]
    fn paths_filter_narrows_the_report_not_the_scan() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap();
        let mut cfg = AuditConfig::new(root);
        cfg.paths = vec!["crates/does-not-exist".to_string()];
        let report = audit_workspace(&cfg).unwrap();
        // Same full coverage as the unfiltered run…
        assert!(report.files_scanned > 50);
        // …and every finding outside the filter is dropped.
        assert!(report.findings.is_empty());
    }
}
