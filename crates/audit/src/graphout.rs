//! Canonical dumps of the workspace call/arch graph (`snbc-audit graph`).
//!
//! Two formats, both deterministic byte-for-byte:
//!
//! - **JSON** (`snbc-audit-graph/1`, via the canonical [`crate::json`]
//!   encoder): crates with their manifest dependency edges, every linked
//!   function with its propagated effect set, and every resolved call edge.
//! - **DOT**: one cluster per crate with function nodes (hot functions drawn
//!   bold, effect names in the label), solid call edges, and the crate-level
//!   arch DAG as dashed edges between crate anchor nodes.

use crate::callgraph::CallGraph;
use crate::json::{render, Value};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Graph JSON schema identifier; bump on any shape change.
pub const GRAPH_SCHEMA: &str = "snbc-audit-graph/1";

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

/// Render the call/arch graph as canonical JSON.
pub fn render_graph_json(graph: &CallGraph) -> String {
    let crate_names: BTreeSet<&str> = graph
        .nodes
        .iter()
        .map(|n| n.crate_name.as_str())
        .chain(graph.crate_deps.iter().map(|(c, _)| c.as_str()))
        .collect();
    let crates: Vec<Value> = crate_names
        .iter()
        .map(|&name| {
            let mut deps: Vec<&str> = graph
                .crate_deps
                .iter()
                .filter(|(c, _)| c == name)
                .map(|(_, d)| d.as_str())
                .collect();
            deps.sort_unstable();
            deps.dedup();
            obj(vec![
                ("name", s(name)),
                ("deps", Value::Arr(deps.into_iter().map(s).collect())),
            ])
        })
        .collect();

    let functions: Vec<Value> = graph
        .nodes
        .iter()
        .enumerate()
        .map(|(id, node)| {
            let effects: Vec<Value> = graph.effects[id].iter().map(|e| s(e.name())).collect();
            obj(vec![
                ("id", Value::Int(id as i64)),
                ("crate", s(&node.crate_name)),
                ("symbol", s(&node.symbol)),
                ("file", s(&node.file)),
                ("line", Value::Int(node.decl.line as i64)),
                ("arity", Value::Int(node.decl.arity as i64)),
                ("hot", Value::Bool(node.decl.hot)),
                ("effects", Value::Arr(effects)),
            ])
        })
        .collect();

    let mut edges: Vec<Value> = Vec::new();
    for (id, resolved) in graph.resolved.iter().enumerate() {
        for (ci, callees) in resolved {
            let call = &graph.nodes[id].decl.calls[*ci];
            for &callee in callees {
                edges.push(obj(vec![
                    ("from", Value::Int(id as i64)),
                    ("to", Value::Int(i64::from(callee))),
                    ("line", Value::Int(call.line as i64)),
                ]));
            }
        }
    }

    let doc = obj(vec![
        ("schema", s(GRAPH_SCHEMA)),
        ("crates", Value::Arr(crates)),
        ("functions", Value::Arr(functions)),
        ("edges", Value::Arr(edges)),
    ]);
    render(&doc)
}

fn dot_escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render the call/arch graph as Graphviz DOT.
pub fn render_graph_dot(graph: &CallGraph) -> String {
    let mut out = String::new();
    out.push_str("digraph snbc {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");

    let crate_names: BTreeSet<&str> = graph
        .nodes
        .iter()
        .map(|n| n.crate_name.as_str())
        .chain(graph.crate_deps.iter().map(|(c, _)| c.as_str()))
        .chain(graph.crate_deps.iter().map(|(_, d)| d.as_str()))
        .collect();

    for &name in &crate_names {
        let _ = writeln!(out, "  subgraph \"cluster_{name}\" {{");
        let _ = writeln!(out, "    label=\"{}\";", dot_escape(name));
        let _ = writeln!(out, "    \"crate_{name}\" [shape=point, style=invis];");
        for (id, node) in graph.nodes.iter().enumerate() {
            if node.crate_name != name {
                continue;
            }
            let effects = graph.effects[id].names();
            let label = if effects.is_empty() {
                node.decl.qualified.clone()
            } else {
                format!("{}\\n[{}]", node.decl.qualified, effects)
            };
            let style = if node.decl.hot {
                ", style=bold, color=red"
            } else {
                ""
            };
            let _ = writeln!(out, "    n{id} [label=\"{}\"{style}];", dot_escape(&label));
        }
        out.push_str("  }\n");
    }

    for (id, resolved) in graph.resolved.iter().enumerate() {
        let mut targets: Vec<u32> = resolved
            .iter()
            .flat_map(|(_, callees)| callees.iter().copied())
            .collect();
        targets.sort_unstable();
        targets.dedup();
        for callee in targets {
            let _ = writeln!(out, "  n{id} -> n{callee};");
        }
    }

    // Crate-level arch DAG, dashed, between the invisible cluster anchors.
    let mut deps: Vec<&(String, String)> = graph.crate_deps.iter().collect();
    deps.sort();
    deps.dedup();
    for (from, to) in deps {
        let _ = writeln!(
            out,
            "  \"crate_{from}\" -> \"crate_{to}\" [style=dashed, constraint=false, \
             ltail=\"cluster_{from}\", lhead=\"cluster_{to}\"];"
        );
    }

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{CallGraph, FileAnalysis};
    use crate::effects::leaf_effects;
    use crate::scopes::ScopeTable;
    use crate::syntax::ItemTree;
    use crate::tokenizer::tokenize;

    fn graph() -> CallGraph {
        let files: Vec<FileAnalysis> = [
            (
                "util",
                "crates/util/src/lib.rs",
                "pub fn peek() -> bool { std::env::var(\"X\").is_ok() }\n",
            ),
            (
                "lp",
                "crates/lp/src/lib.rs",
                "pub fn solve() -> bool { snbc_util::peek() }\n",
            ),
        ]
        .iter()
        .map(|(c, f, src)| {
            let lexed = tokenize(src);
            let tree = ItemTree::build(&lexed.tokens);
            let scopes = ScopeTable::build(&lexed.tokens, &tree);
            let leaves = leaf_effects(&lexed.tokens, &tree, &scopes);
            crate::callgraph::analyze_file(c, f, &lexed, &tree, &scopes, &leaves, &[])
        })
        .collect();
        let mut g = CallGraph::build(&files);
        g.crate_deps = vec![("lp".to_string(), "util".to_string())];
        g
    }

    #[test]
    fn json_dump_is_canonical_and_parseable() {
        let g = graph();
        let text = render_graph_json(&g);
        let doc = crate::json::parse(&text).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some(GRAPH_SCHEMA)
        );
        assert_eq!(crate::json::render(&doc), text, "canonical bytes");
        let functions = doc.get("functions").and_then(Value::as_arr).unwrap();
        assert_eq!(functions.len(), 2);
        // `lp::solve` carries the propagated reads-env effect.
        let solve = functions
            .iter()
            .find(|f| f.get("symbol").and_then(Value::as_str) == Some("lp::solve"))
            .unwrap();
        let effects = solve.get("effects").and_then(Value::as_arr).unwrap();
        assert!(effects.iter().any(|e| e.as_str() == Some("reads-env")));
        assert_eq!(doc.get("edges").and_then(Value::as_arr).map(<[Value]>::len), Some(1));
    }

    #[test]
    fn dot_dump_has_clusters_and_edges() {
        let g = graph();
        let dot = render_graph_dot(&g);
        assert!(dot.contains("subgraph \"cluster_lp\""), "{dot}");
        assert!(dot.contains("subgraph \"cluster_util\""), "{dot}");
        assert!(dot.contains("->"), "{dot}");
        assert!(dot.contains("style=dashed"), "{dot}");
        assert!(dot.ends_with("}\n"));
    }
}
