//! Workspace-level call graph and interprocedural effect propagation.
//!
//! Built in two passes over the files the audit already tokenizes:
//!
//! 1. **Harvest** ([`analyze_file`]): every non-test `fn` scope becomes a
//!    [`FnDecl`] carrying its arity, `// audit:hot` marker, effect leaves
//!    (from [`crate::effects`], ownership-masked and `audit:allow`-filtered),
//!    and call sites. Path calls keep their alias-resolved path; method calls
//!    keep name + arity (receiver included).
//! 2. **Link** ([`CallGraph::build`]): call sites resolve to workspace
//!    functions — path calls narrowed by their `snbc_*` crate head when
//!    present, otherwise preferring same-crate matches; method calls
//!    conservatively by name + arity, unioning every match. Unmatched calls
//!    contribute the `unresolved-call` effect, making each inferred set an
//!    explicit lower bound. Effects then propagate to a fixpoint: SCC
//!    condensation (iterative Tarjan, so recursion and mutual recursion
//!    converge) followed by one reverse-topological union pass.
//!
//! Everything iterates vectors in index order or `BTreeMap`s, so node ids,
//! edges, and chains are deterministic across runs and `SNBC_THREADS`.

use crate::effects::{self, Effect, EffectSet, Leaf};
use crate::scopes::ScopeTable;
use crate::syntax::{ItemTree, ScopeKind};
use crate::tokenizer::{Lexed, Suppression, Token, TokenKind};
use std::collections::BTreeMap;

/// A callable argument of a `snbc_par` entry-point call: a closure's token
/// range, or a bare function path passed by name.
#[derive(Debug, Clone)]
pub struct CallableArg {
    /// Token range `[lo, hi)` of the argument (file-local indices).
    pub range: (usize, usize),
    /// Set when the argument is a bare path (`helper`, `m::helper`): the
    /// final segment, resolved by name alone at link time.
    pub fn_name: Option<String>,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name: last path segment, or the method name.
    pub name: String,
    /// Alias-resolved (or as-written) path; empty for method calls.
    pub path: String,
    /// Argument count; method calls count the receiver.
    pub arity: usize,
    pub is_method: bool,
    /// File-local token index of the callee identifier.
    pub tok: usize,
    pub line: usize,
    /// Lines owned by the enclosing statement (suppression attachment) —
    /// closure-body lines belong to the closure's own statements.
    pub stmt_lines: Vec<usize>,
    /// Callable arguments, recorded only for `snbc_par` entry points.
    pub callable_args: Vec<CallableArg>,
}

/// One effect leaf inside a function body, with its statement's line set.
#[derive(Debug, Clone)]
pub struct LeafSite {
    pub effect: Effect,
    pub tok: usize,
    pub line: usize,
    pub stmt_lines: Vec<usize>,
    pub what: String,
}

/// One non-test function declaration.
#[derive(Debug, Clone)]
pub struct FnDecl {
    pub name: String,
    /// `mod::Impl::name` within the file (crate prefix added at link time).
    pub qualified: String,
    pub arity: usize,
    pub line: usize,
    /// Carries an `// audit:hot` marker (≤ 2 lines above the `fn` keyword,
    /// tolerating one attribute line between).
    pub hot: bool,
    pub leaves: Vec<LeafSite>,
    pub calls: Vec<CallSite>,
}

/// Per-file harvest: everything the linker needs after tokens are dropped.
#[derive(Debug, Clone, Default)]
pub struct FileAnalysis {
    pub crate_name: String,
    pub file: String,
    pub fns: Vec<FnDecl>,
    pub suppressions: Vec<Suppression>,
}

/// The `snbc_par` entry points whose callable arguments must stay
/// deterministic (`par-callee` contract).
pub const PAR_ENTRY_POINTS: &[&str] = &[
    "par_map_collect",
    "par_map_reduce",
    "par_for_chunks",
    "par_for_chunks_scratch",
    "join",
    "join3",
];

const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "move", "in", "else", "let", "mut",
    "ref", "break", "continue", "await", "self", "super", "crate", "where", "unsafe", "use",
    "pub", "impl", "trait", "mod", "const", "static", "type", "dyn", "box", "as",
];

/// Harvest one file. `extra_fold_leaves` carries `unordered-fp-fold` sites
/// detected by the rule layer (nondet iteration / ad-hoc reductions), already
/// suppression-filtered by their own rules.
pub fn analyze_file(
    crate_name: &str,
    file: &str,
    lexed: &Lexed,
    tree: &ItemTree,
    scopes: &ScopeTable,
    leaves: &[Leaf],
    extra_fold_leaves: &[Leaf],
) -> FileAnalysis {
    let tokens = &lexed.tokens;
    let text = |i: usize| tokens.get(i).map_or("", |t: &Token| t.text.as_str());

    // Raw leaf tokens exclude themselves from call-site scanning even when
    // the leaf is later masked (a masked `spawn` is still not a workspace
    // call). Fold leaves anchor on operators/methods, never on call idents.
    let mut leaf_toks: Vec<usize> = leaves.iter().map(|l| l.tok).collect();
    leaf_toks.sort_unstable();

    let mut fns = Vec::new();
    let mut fn_of_scope: BTreeMap<u32, usize> = BTreeMap::new();
    for (sid, scope) in tree.scopes.iter().enumerate() {
        if scope.kind != ScopeKind::Fn || scope.is_test {
            continue;
        }
        let sid = sid as u32; // audit:allow(lossy-cast) — scope ids fit u32
        let fn_line = tokens[scope.range.0].line;
        let hot = lexed
            .hot_markers
            .iter()
            .any(|&m| m <= fn_line && fn_line - m <= 2);
        fn_of_scope.insert(sid, fns.len());
        fns.push(FnDecl {
            name: scope.name.clone(),
            qualified: qualified_name(tree, sid),
            arity: decl_arity(tokens, scope.range.0, scope.body.0),
            line: fn_line,
            hot,
            leaves: Vec::new(),
            calls: Vec::new(),
        });
    }

    // Attach leaves: masked when the crate owns the effect or the site
    // carries the matching `audit:allow` (a sanctioned/justified leaf must
    // not propagate to callers either).
    for leaf in leaves.iter().chain(extra_fold_leaves) {
        if leaf.effect.owner_crates().contains(&crate_name) {
            continue;
        }
        let stmt_lines = tree.stmt_lines(leaf.tok, leaf.line);
        if let Some(rule_id) = leaf.effect.allow_rule_id() {
            if suppressed_at(&lexed.suppressions, rule_id, &stmt_lines, leaf.line) {
                continue;
            }
        }
        let Some(fid) = tree.enclosing_fn(leaf.tok) else {
            continue;
        };
        let Some(&decl) = fn_of_scope.get(&fid) else {
            continue;
        };
        fns[decl].leaves.push(LeafSite {
            effect: leaf.effect,
            tok: leaf.tok,
            line: leaf.line,
            stmt_lines,
            what: leaf.what.clone(),
        });
    }

    // Call sites, per declaring fn.
    for (&sid, &decl) in &fn_of_scope {
        let (lo, hi) = tree.scopes[sid as usize].body;
        let mut i = lo;
        while i < hi {
            if tree.enclosing_fn(i) != Some(sid)
                || tree.in_test.get(i).copied().unwrap_or(false)
                || tokens[i].kind != TokenKind::Ident
            {
                i += 1;
                continue;
            }
            let name = text(i);
            if !effects::is_called(tokens, i)
                || leaf_toks.binary_search(&i).is_ok()
                || CALL_KEYWORDS.contains(&name)
                || name.starts_with(|c: char| c.is_ascii_uppercase())
                || text(i + 1) == "!"
                // Attribute heads inside bodies: `#[cfg(...)]`, `#[allow(...)]`.
                || (i >= 2 && text(i - 1) == "[" && text(i - 2) == "#")
            {
                i += 1;
                continue;
            }
            let is_method = i > 0 && text(i - 1) == ".";
            let open = call_open_paren(tokens, i);
            let args = split_call_args(tokens, open, hi);
            let path = if is_method {
                String::new()
            } else {
                scopes.resolve_at(tokens, tree, i).path
            };
            let callable_args = if !is_method && PAR_ENTRY_POINTS.contains(&name) && par_path(&path)
            {
                args.iter()
                    .filter_map(|&r| callable_arg(tokens, r))
                    .collect()
            } else {
                Vec::new()
            };
            fns[decl].calls.push(CallSite {
                name: name.to_string(),
                path,
                arity: args.len() + usize::from(is_method),
                is_method,
                tok: i,
                line: tokens[i].line,
                stmt_lines: tree.stmt_lines(i, tokens[i].line),
                callable_args,
            });
            i += 1;
        }
    }

    FileAnalysis {
        crate_name: crate_name.to_string(),
        file: file.to_string(),
        fns,
        suppressions: lexed.suppressions.clone(),
    }
}

/// True when a statement's own lines (or the line directly above one of
/// them) carry an `audit:allow(<rule>)` marker. Mirrors the rule layer's
/// suppression logic. `stmt_lines` comes from
/// [`ItemTree::stmt_lines`](crate::syntax::ItemTree::stmt_lines), so a
/// marker inside a closure body covers only the closure's own statements —
/// never the enclosing outer statement, whose lines exclude the body.
pub fn suppressed_at(
    suppressions: &[Suppression],
    rule_id: &str,
    stmt_lines: &[usize],
    line: usize,
) -> bool {
    suppressions.iter().any(|s| {
        s.rule == rule_id
            && (s.line == line
                || s.line + 1 == line
                || stmt_lines.contains(&s.line)
                || stmt_lines.contains(&(s.line + 1)))
    })
}

fn par_path(path: &str) -> bool {
    path.starts_with("snbc_par::") || !path.contains("::")
}

fn qualified_name(tree: &ItemTree, sid: u32) -> String {
    let mut parts = Vec::new();
    let mut cur = Some(sid);
    while let Some(id) = cur {
        let s = &tree.scopes[id as usize];
        if !s.name.is_empty() {
            parts.push(s.name.clone());
        }
        cur = s.parent;
    }
    parts.reverse();
    parts.join("::")
}

/// Parameter count of a fn header: the comma-split arity of the first paren
/// group outside generics (`fn f<T: Fn(usize)>(x: T, n: usize)` → 2).
fn decl_arity(tokens: &[Token], kw: usize, body_start: usize) -> usize {
    let text = |i: usize| tokens.get(i).map_or("", |t: &Token| t.text.as_str());
    let mut i = kw + 1;
    let mut angle = 0i32;
    while i < body_start {
        match text(i) {
            "<" => angle += 1,
            ">" => angle -= 1,
            "<<" => angle += 2,
            ">>" => angle -= 2,
            "(" if angle == 0 => break,
            _ => {}
        }
        i += 1;
    }
    if i >= body_start {
        return 0;
    }
    count_segments(tokens, i, body_start, true)
}

fn call_open_paren(tokens: &[Token], i: usize) -> usize {
    let text = |j: usize| tokens.get(j).map_or("", |t: &Token| t.text.as_str());
    if text(i + 1) == "(" {
        return i + 1;
    }
    // Turbofish: `ident::<...>(`.
    let mut j = i + 2;
    let mut angle = 0i32;
    while j < tokens.len() {
        match text(j) {
            "<" => angle += 1,
            ">" => angle -= 1,
            "<<" => angle += 2,
            ">>" => angle -= 2,
            "(" if angle == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

/// Count comma-separated segments between the paren at `open` and its match.
/// `track_angles` additionally nests `<...>` (parameter *types* contain
/// generic commas; call arguments contain comparisons instead).
fn count_segments(tokens: &[Token], open: usize, hi: usize, track_angles: bool) -> usize {
    split_ranges(tokens, open, hi, track_angles).len()
}

/// Top-level argument token ranges of the paren group at `open`.
fn split_call_args(tokens: &[Token], open: usize, hi: usize) -> Vec<(usize, usize)> {
    split_ranges(tokens, open, hi, false)
}

fn split_ranges(
    tokens: &[Token],
    open: usize,
    hi: usize,
    track_angles: bool,
) -> Vec<(usize, usize)> {
    let text = |i: usize| tokens.get(i).map_or("", |t: &Token| t.text.as_str());
    if open >= hi || text(open) != "(" {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut seg_start = open + 1;
    let mut seg_nonempty = false;
    let mut j = open + 1;
    while j < hi {
        let t = text(j);
        match t {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if t == ")" && depth == 0 {
                    if seg_nonempty {
                        out.push((seg_start, j));
                    }
                    return out;
                }
                depth -= 1;
            }
            "<" if track_angles => angle += 1,
            ">" if track_angles => angle -= 1,
            "<<" if track_angles => angle += 2,
            ">>" if track_angles => angle -= 2,
            "," if depth == 0 && angle == 0 => {
                if seg_nonempty {
                    out.push((seg_start, j));
                }
                seg_start = j + 1;
                seg_nonempty = false;
                j += 1;
                continue;
            }
            // Closure parameter pipes at argument top level: `|a, b|` commas
            // must not split the argument list. A `|` is a closure opener
            // when it follows a list boundary or `move`; scan to its mate.
            "|" if depth == 0 && !track_angles && closure_opener(tokens, j, open) => {
                seg_nonempty = true;
                j += 1;
                let mut inner = 0i32;
                while j < hi {
                    match text(j) {
                        "(" | "[" | "{" => inner += 1,
                        ")" | "]" | "}" => inner -= 1,
                        "|" if inner == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
            }
            _ => {}
        }
        if !t.is_empty() {
            seg_nonempty = true;
        }
        j += 1;
    }
    if seg_nonempty {
        out.push((seg_start, hi));
    }
    out
}

fn closure_opener(tokens: &[Token], j: usize, open: usize) -> bool {
    if j == open + 1 {
        return true;
    }
    matches!(
        tokens.get(j - 1).map(|t| t.text.as_str()),
        Some("," | "(" | "move" | "=" | "=>" | "return" | "&&" | "||")
    )
}

/// Classify one argument range as callable: a closure (contains `|`/`||` at
/// its top level) or a bare function path.
fn callable_arg(tokens: &[Token], range: (usize, usize)) -> Option<CallableArg> {
    let (lo, hi) = range;
    let text = |i: usize| tokens.get(i).map_or("", |t: &Token| t.text.as_str());
    let mut depth = 0i32;
    for j in lo..hi {
        match text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "|" | "||" if depth == 0 => {
                return Some(CallableArg { range, fn_name: None });
            }
            "move" if depth == 0 => {}
            _ => {}
        }
    }
    // Bare path: idents, `::`, and a possible leading `&`.
    let mut last_ident: Option<&str> = None;
    for j in lo..hi {
        let t = &tokens[j];
        match t.text.as_str() {
            "::" | "&" => {}
            _ if t.kind == TokenKind::Ident => last_ident = Some(t.text.as_str()),
            _ => return None,
        }
    }
    last_ident.map(|name| CallableArg {
        range,
        fn_name: Some(name.to_string()),
    })
}

// ---------------------------------------------------------------------------
// Linking and propagation.

/// One linked function node.
#[derive(Debug, Clone)]
pub struct FnNode {
    pub crate_name: String,
    pub file: String,
    pub decl: FnDecl,
    /// `crate::mod::Impl::name`, the symbol used in chains and dumps.
    pub symbol: String,
}

/// The linked workspace call graph with propagated effect sets.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// Per node: `(call index into decl.calls, resolved callee node ids)`.
    pub resolved: Vec<Vec<(usize, Vec<u32>)>>,
    /// Direct (leaf) effects, after masking/suppression.
    pub direct: Vec<EffectSet>,
    /// Transitive effects at the fixpoint.
    pub effects: Vec<EffectSet>,
    /// Per-file suppression tables, keyed by workspace-relative path.
    pub suppressions: BTreeMap<String, Vec<Suppression>>,
    /// Crate dependency edges `(crate, dep)` from the manifests, for dumps.
    pub crate_deps: Vec<(String, String)>,
}

/// A step in a reported call chain (converted to `rules::Frame` upstream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainStep {
    pub file: String,
    pub line: usize,
    pub note: String,
}

impl CallGraph {
    pub fn build(files: &[FileAnalysis]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut suppressions = BTreeMap::new();
        for fa in files {
            suppressions.insert(fa.file.clone(), fa.suppressions.clone());
            for decl in &fa.fns {
                nodes.push(FnNode {
                    crate_name: fa.crate_name.clone(),
                    file: fa.file.clone(),
                    symbol: format!("{}::{}", fa.crate_name, decl.qualified),
                    decl: decl.clone(),
                });
            }
        }

        // (name, arity) → candidate node ids, insertion (= node id) ordered.
        let mut index: BTreeMap<(String, usize), Vec<u32>> = BTreeMap::new();
        for (id, node) in nodes.iter().enumerate() {
            index
                .entry((node.decl.name.clone(), node.decl.arity))
                .or_default()
                .push(id as u32); // audit:allow(lossy-cast) — node ids fit u32
        }

        let mut resolved: Vec<Vec<(usize, Vec<u32>)>> = Vec::with_capacity(nodes.len());
        let mut direct: Vec<EffectSet> = Vec::with_capacity(nodes.len());
        for node in &nodes {
            let mut eff = EffectSet::EMPTY;
            for leaf in &node.decl.leaves {
                eff.insert(leaf.effect);
            }
            let mut res = Vec::new();
            for (ci, call) in node.decl.calls.iter().enumerate() {
                let callees = resolve_call(&index, &nodes, node, call);
                if callees.is_empty() {
                    eff.insert(Effect::UnresolvedCall);
                } else {
                    res.push((ci, callees));
                }
            }
            resolved.push(res);
            direct.push(eff);
        }

        let mut graph = CallGraph {
            nodes,
            resolved,
            direct,
            effects: Vec::new(),
            suppressions,
            crate_deps: Vec::new(),
        };
        graph.propagate();
        graph
    }

    /// Resolve a bare function name (a callable argument passed by path) to
    /// candidate nodes, any arity, preferring the caller's crate.
    pub fn resolve_by_name(&self, from: u32, name: &str) -> Vec<u32> {
        let caller_crate = &self.nodes[from as usize].crate_name;
        let mut all: Vec<u32> = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if node.decl.name == name {
                all.push(id as u32); // audit:allow(lossy-cast) — node ids fit u32
            }
        }
        let same: Vec<u32> = all
            .iter()
            .copied()
            .filter(|&id| &self.nodes[id as usize].crate_name == caller_crate)
            .collect();
        if same.is_empty() {
            all
        } else {
            same
        }
    }

    /// SCC condensation + one reverse-topological union pass. Tarjan emits
    /// SCCs callees-first, so each component can union its successors'
    /// finished sets immediately.
    fn propagate(&mut self) {
        let n = self.nodes.len();
        let succ: Vec<Vec<u32>> = (0..n)
            .map(|id| {
                let mut s: Vec<u32> = self.resolved[id]
                    .iter()
                    .flat_map(|(_, callees)| callees.iter().copied())
                    .collect();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();

        // Iterative Tarjan.
        const UNSET: u32 = u32::MAX;
        let mut idx = vec![UNSET; n];
        let mut low = vec![0u32; n];
        let mut comp = vec![UNSET; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut sccs: Vec<Vec<u32>> = Vec::new();
        let mut counter = 0u32;

        for root in 0..n {
            if idx[root] != UNSET {
                continue;
            }
            // (node, next-successor position) work stack.
            let mut work: Vec<(u32, usize)> = vec![(root as u32, 0)]; // audit:allow(lossy-cast) — node ids fit u32
            while let Some(&(v, pos)) = work.last() {
                let v = v as usize;
                if pos == 0 {
                    idx[v] = counter;
                    low[v] = counter;
                    counter += 1;
                    stack.push(v as u32); // audit:allow(lossy-cast) — node ids fit u32
                    on_stack[v] = true;
                }
                if let Some(&w) = succ[v].get(pos) {
                    work.last_mut().expect("tarjan frame").1 += 1;
                    let w = w as usize;
                    if idx[w] == UNSET {
                        work.push((w as u32, 0)); // audit:allow(lossy-cast) — node ids fit u32
                    } else if on_stack[w] {
                        low[v] = low[v].min(idx[w]);
                    }
                } else {
                    work.pop();
                    if let Some(&(p, _)) = work.last() {
                        let p = p as usize;
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == idx[v] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w as usize] = false;
                            comp[w as usize] = sccs.len() as u32; // audit:allow(lossy-cast) — scc ids fit u32
                            scc.push(w);
                            if w as usize == v {
                                break;
                            }
                        }
                        scc.sort_unstable();
                        sccs.push(scc);
                    }
                }
            }
        }

        // SCCs are emitted callees-first: successors of any member are in an
        // already-finished component (or the same one).
        let mut scc_effects: Vec<EffectSet> = Vec::with_capacity(sccs.len());
        for scc in &sccs {
            let mut eff = EffectSet::EMPTY;
            for &v in scc {
                eff.union_with(self.direct[v as usize]);
                for &w in &succ[v as usize] {
                    let c = comp[w as usize] as usize;
                    if c < scc_effects.len() {
                        eff.union_with(scc_effects[c]);
                    }
                }
            }
            scc_effects.push(eff);
        }
        self.effects = (0..n).map(|v| scc_effects[comp[v] as usize]).collect();
    }

    /// Transitive effects of a node.
    pub fn effects_of(&self, id: u32) -> EffectSet {
        self.effects[id as usize]
    }

    /// Look up a node by its `crate::...::name` symbol (first match).
    pub fn find_symbol(&self, symbol: &str) -> Option<u32> {
        self.nodes
            .iter()
            .position(|n| n.symbol == symbol)
            .map(|i| i as u32) // audit:allow(lossy-cast) — node ids fit u32
    }

    /// Shortest deterministic call chain from `from` down to a leaf of
    /// `effect`: BFS over nodes carrying the effect transitively, lowest node
    /// id first. Returns one step per hop plus the leaf site itself.
    pub fn chain_to_leaf(&self, from: u32, effect: Effect) -> Vec<ChainStep> {
        let mut steps = Vec::new();
        let mut cur = from;
        let mut guard = 0usize;
        loop {
            let node = &self.nodes[cur as usize];
            if let Some(leaf) = node.decl.leaves.iter().find(|l| l.effect == effect) {
                steps.push(ChainStep {
                    file: node.file.clone(),
                    line: leaf.line,
                    note: format!("{} in `{}`", leaf.what, node.symbol),
                });
                return steps;
            }
            // First call site (in token order) reaching a callee that carries
            // the effect; among its candidates, the lowest node id.
            let mut next: Option<(usize, u32)> = None;
            for (ci, callees) in &self.resolved[cur as usize] {
                if let Some(&callee) = callees
                    .iter()
                    .find(|&&c| self.effects[c as usize].contains(effect))
                {
                    next = Some((*ci, callee));
                    break;
                }
            }
            let Some((ci, callee)) = next else {
                return steps; // effect came through an unresolved call
            };
            let call = &node.decl.calls[ci];
            steps.push(ChainStep {
                file: node.file.clone(),
                line: call.line,
                note: format!(
                    "`{}` calls `{}`",
                    node.symbol,
                    self.nodes[callee as usize].symbol
                ),
            });
            cur = callee;
            guard += 1;
            if guard > self.nodes.len() {
                return steps; // cycle without a leaf (effect via unresolved)
            }
        }
    }
}

fn resolve_call(
    index: &BTreeMap<(String, usize), Vec<u32>>,
    nodes: &[FnNode],
    caller: &FnNode,
    call: &CallSite,
) -> Vec<u32> {
    let Some(candidates) = index.get(&(call.name.clone(), call.arity)) else {
        return Vec::new();
    };
    if call.is_method {
        // Conservative: any workspace method with this name + arity.
        return candidates.clone();
    }
    // A `snbc_*::` head names the crate exactly.
    if let Some(target) = crate_of_path(&call.path) {
        return candidates
            .iter()
            .copied()
            .filter(|&id| nodes[id as usize].crate_name == target)
            .collect();
    }
    // Otherwise prefer same-crate definitions; cross-crate calls always
    // carry a `snbc_*` head in this workspace (enforced by the arch rule).
    let same: Vec<u32> = candidates
        .iter()
        .copied()
        .filter(|&id| nodes[id as usize].crate_name == caller.crate_name)
        .collect();
    if same.is_empty() {
        candidates.clone()
    } else {
        same
    }
}

/// Map a path head to a workspace crate directory: `snbc_par::…` → "par",
/// `snbc::…` → "core" (the package of `crates/core` is `snbc`).
fn crate_of_path(path: &str) -> Option<String> {
    let head = path.split("::").next().unwrap_or("");
    if head == "snbc" {
        return Some("core".to_string());
    }
    head.strip_prefix("snbc_").map(|rest| rest.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::leaf_effects;
    use crate::syntax::ItemTree;
    use crate::tokenizer::tokenize;

    fn analyze(crate_name: &str, file: &str, src: &str) -> FileAnalysis {
        let lexed = tokenize(src);
        let tree = ItemTree::build(&lexed.tokens);
        let scopes = ScopeTable::build(&lexed.tokens, &tree);
        let leaves = leaf_effects(&lexed.tokens, &tree, &scopes);
        analyze_file(crate_name, file, &lexed, &tree, &scopes, &leaves, &[])
    }

    fn graph(files: &[(&str, &str, &str)]) -> CallGraph {
        let analyses: Vec<FileAnalysis> = files
            .iter()
            .map(|(c, f, s)| analyze(c, f, s))
            .collect();
        CallGraph::build(&analyses)
    }

    #[test]
    fn harvests_decls_calls_and_arities() {
        let src = "fn helper(a: f64, b: f64) -> f64 { a + b }\n\
                   fn main2(xs: Vec<(f64, f64)>) -> f64 {\n\
                       helper(1.0, 2.0) + xs[0].0\n\
                   }\n";
        let fa = analyze("lp", "crates/lp/src/lib.rs", src);
        assert_eq!(fa.fns.len(), 2);
        assert_eq!(fa.fns[0].arity, 2);
        assert_eq!(fa.fns[1].arity, 1, "generic commas must not split params");
        let call = &fa.fns[1].calls[0];
        assert_eq!((call.name.as_str(), call.arity), ("helper", 2));
    }

    #[test]
    fn closure_args_do_not_break_arity() {
        let src = "fn f(n: usize) {\n\
                       snbc_par::par_map_reduce(n, 8, |lo, hi| lo + hi, |a, b| a + b);\n\
                   }\n";
        let fa = analyze("core", "crates/core/src/lib.rs", src);
        let call = &fa.fns[0].calls[0];
        assert_eq!(call.arity, 4, "closure pipes must not split the arg list");
        // Two closures plus the bare ident `n` (conservatively kept as a
        // potential fn pointer — it only matters if the name links to a fn).
        assert_eq!(call.callable_args.len(), 3);
        let closures = call.callable_args.iter().filter(|a| a.fn_name.is_none());
        assert_eq!(closures.count(), 2);
        assert_eq!(call.callable_args[0].fn_name.as_deref(), Some("n"));
    }

    #[test]
    fn hot_marker_attaches_within_two_lines() {
        let src = "// audit:hot\n#[inline]\nfn hot1() {}\n\nfn cold() {}\n";
        let fa = analyze("sdp", "crates/sdp/src/lib.rs", src);
        assert!(fa.fns[0].hot);
        assert!(!fa.fns[1].hot);
    }

    #[test]
    fn effects_propagate_across_crates() {
        let g = graph(&[
            (
                "dynamics",
                "crates/dynamics/src/lib.rs",
                "pub fn peek() -> bool { std::env::var(\"X\").is_ok() }\n",
            ),
            (
                "lp",
                "crates/lp/src/lib.rs",
                "pub fn solve() -> bool { snbc_dynamics::peek() }\n\
                 pub fn outer() -> bool { solve() }\n",
            ),
        ]);
        let peek = g.find_symbol("dynamics::peek").unwrap();
        let outer = g.find_symbol("lp::outer").unwrap();
        assert!(g.effects_of(peek).contains(Effect::ReadsEnv));
        assert!(g.effects_of(outer).contains(Effect::ReadsEnv), "transitive");
        let chain = g.chain_to_leaf(outer, Effect::ReadsEnv);
        assert_eq!(chain.len(), 3, "{chain:?}");
        assert!(chain[2].note.contains("std::env::var"), "{chain:?}");
    }

    #[test]
    fn owner_crate_leaves_are_masked() {
        let g = graph(&[
            (
                "par",
                "crates/par/src/lib.rs",
                "pub fn pool_size() -> usize { std::env::var(\"SNBC_THREADS\").map_or(1, |_| 2) }\n",
            ),
            (
                "core",
                "crates/core/src/lib.rs",
                "pub fn train() -> usize { snbc_par::pool_size() }\n",
            ),
        ]);
        let train = g.find_symbol("core::train").unwrap();
        assert!(
            !g.effects_of(train).contains(Effect::ReadsEnv),
            "sanctioned env read in the owner crate must not propagate"
        );
    }

    #[test]
    fn mutual_recursion_converges_via_scc() {
        let g = graph(&[(
            "lp",
            "crates/lp/src/lib.rs",
            "pub fn even(n: u64) -> bool { if n == 0 { true } else { odd(n - 1) } }\n\
             pub fn odd(n: u64) -> bool { if n == 0 { reads(n) } else { even(n - 1) } }\n\
             fn reads(_n: u64) -> bool { std::env::var(\"X\").is_ok() }\n",
        )]);
        let even = g.find_symbol("lp::even").unwrap();
        let odd = g.find_symbol("lp::odd").unwrap();
        assert!(g.effects_of(even).contains(Effect::ReadsEnv));
        assert!(g.effects_of(odd).contains(Effect::ReadsEnv));
    }

    #[test]
    fn method_calls_resolve_conservatively_by_name_and_arity() {
        let g = graph(&[(
            "sos",
            "crates/sos/src/lib.rs",
            "pub struct A; impl A { pub fn step(&self) { std::env::var(\"X\").ok(); } }\n\
             pub struct B; impl B { pub fn step(&self) {} }\n\
             pub fn drive(a: &A) { a.step(); }\n",
        )]);
        let drive = g.find_symbol("sos::drive").unwrap();
        // Both `step` impls match (name + arity); the union carries the env
        // read — conservative, never silently effect-free.
        assert!(g.effects_of(drive).contains(Effect::ReadsEnv));
    }

    #[test]
    fn unresolved_calls_are_explicit() {
        let g = graph(&[(
            "nn",
            "crates/nn/src/lib.rs",
            "pub fn f(rng: &mut R) -> f64 { rng.gen_range(0.0, 1.0) }\n",
        )]);
        let f = g.find_symbol("nn::f").unwrap();
        assert!(g.effects_of(f).contains(Effect::UnresolvedCall));
        assert!(!g.effects_of(f).contains(Effect::ReadsEnv));
    }

    #[test]
    fn allow_marker_masks_a_leaf_from_propagation() {
        let g = graph(&[(
            "sdp",
            "crates/sdp/src/lib.rs",
            "pub fn dbg_knob() -> bool {\n\
                 // audit:allow(env-read) — debug-only, cannot affect results\n\
                 std::env::var(\"SNBC_SDP_DEBUG\").is_ok()\n\
             }\n\
             pub fn solve() -> bool { dbg_knob() }\n",
        )]);
        let solve = g.find_symbol("sdp::solve").unwrap();
        assert!(!g.effects_of(solve).contains(Effect::ReadsEnv));
    }
}
